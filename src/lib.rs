//! # TransER
//!
//! A complete Rust reproduction of **"TransER: Homogeneous Transfer
//! Learning for Entity Resolution"** (Kirielle, Christen & Ranbaduge,
//! EDBT 2022) — the instance-based transfer-learning framework for entity
//! resolution on structured data, together with every substrate it needs:
//! the ER pipeline (similarity comparators, MinHash-LSH blocking,
//! record-pair comparison), from-scratch traditional classifiers with
//! calibrated probabilities, a KD-tree, a small linear-algebra kit, the
//! six baselines of the paper's evaluation, synthetic workload generators
//! calibrated against the paper's seven data sets, and an experiment
//! harness regenerating every table and figure.
//!
//! ## Quick start
//!
//! ```
//! use transer::prelude::*;
//!
//! // Generate a small source -> target transfer task (DBLP-ACM style
//! // source, DBLP-Scholar style target).
//! let pair = ScenarioPair::Bibliographic.domain_pair(0.05, 42).unwrap();
//!
//! // Run TransER with a logistic-regression classifier.
//! let transer = TransEr::new(TransErConfig::default(), ClassifierKind::LogisticRegression, 7)
//!     .unwrap();
//! let output = transer
//!     .fit_predict(&pair.source.x, &pair.source.y, &pair.target.x)
//!     .unwrap();
//!
//! // Evaluate against the (held-out) target ground truth.
//! let cm = evaluate(&output.labels, &pair.target.y);
//! println!("P={:.2} R={:.2} F*={:.2}", cm.precision(), cm.recall(), cm.f_star());
//! assert!(cm.f_star() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `transer-common` | records, feature matrices, labels, datasets |
//! | [`similarity`] | `transer-similarity` | Jaro-Winkler, Jaccard, Levenshtein, ... |
//! | [`blocking`] | `transer-blocking` | MinHash LSH, standard blocking, comparison step |
//! | [`knn`] | `transer-knn` | KD-tree k-nearest-neighbour index |
//! | [`linalg`] | `transer-linalg` | dense matrices, Jacobi eigendecomposition |
//! | [`ml`] | `transer-ml` | logistic regression, CART, random forest, SVM, MLP/GRL |
//! | [`metrics`] | `transer-metrics` | precision, recall, F1, F*, histograms |
//! | [`datagen`] | `transer-datagen` | the seven synthetic workload generators |
//! | [`core`] | `transer-core` | **the TransER algorithm** (SEL / GEN / TCL) |
//! | [`robust`] | `transer-robust` | fault injection, degradation helpers |
//! | [`baselines`] | `transer-baselines` | Naive, DTAL*, DR, LocIT*, TCA, Coral |
//! | [`eval`] | `transer-eval` | the table/figure experiment harness |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use transer_baselines as baselines;
pub use transer_blocking as blocking;
pub use transer_common as common;
pub use transer_core as core;
pub use transer_datagen as datagen;
pub use transer_eval as eval;
pub use transer_knn as knn;
pub use transer_linalg as linalg;
pub use transer_metrics as metrics;
pub use transer_ml as ml;
pub use transer_robust as robust;
pub use transer_similarity as similarity;

/// The most commonly used items in one import.
pub mod prelude {
    pub use transer_baselines::{
        all_baselines, Coral, DeepRanker, DtalStar, LocItStar, Naive, ResourceBudget, RunContext,
        TaskView, Tca, TransferMethod,
    };
    pub use transer_blocking::{
        one_to_one_matching, transitive_clusters, Comparison, MinHashLsh, MinHashLshConfig,
    };
    pub use transer_common::{
        AttrType, AttrValue, DomainPair, FeatureMatrix, Label, LabeledDataset, Record, Schema,
    };
    pub use transer_core::{
        active_transfer, best_source, rank_sources, select_instances, suggest_queries,
        SemiSupervisedTransEr, TransEr, TransErConfig, Variant,
    };
    pub use transer_datagen::{Scenario, ScenarioPair};
    pub use transer_metrics::{evaluate, ConfusionMatrix, MeanStd};
    pub use transer_ml::{Classifier, ClassifierKind};
    pub use transer_similarity::Measure;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let x = FeatureMatrix::from_vecs(&[vec![0.9], vec![0.1]]).unwrap();
        let y = vec![Label::Match, Label::NonMatch];
        let ds = LabeledDataset::new("t", x, y).unwrap();
        assert_eq!(ds.num_matches(), 1);
    }
}

//! Cross-crate property tests on the TransER pipeline over the
//! controllable feature-vector generator.

use proptest::prelude::*;
use transer::core::select_instances;
use transer::datagen::vectors::{domain_pair, VectorDomainConfig};
use transer::prelude::*;

fn config_strategy() -> impl Strategy<Value = VectorDomainConfig> {
    (100usize..400, 2usize..6, 0.15..0.4f64, 0.0..0.15f64, 0u64..1000).prop_map(
        |(n, m, match_rate, ambiguity, seed)| VectorDomainConfig {
            n,
            m,
            match_rate,
            ambiguity,
            seed,
            ..Default::default()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn selection_is_a_sorted_subset_honouring_thresholds(cfg in config_strategy()) {
        let pair = domain_pair(&cfg, 0.05, 0.05, 200).expect("generation");
        let tc = TransErConfig::default();
        let sel = select_instances(&pair.source.x, &pair.source.y, &pair.target.x, &tc)
            .expect("selection");
        prop_assert_eq!(sel.scores.len(), pair.source.len());
        // Indices sorted, in range, and exactly the threshold-passing set.
        let mut prev = None;
        for &i in &sel.indices {
            prop_assert!(i < pair.source.len());
            if let Some(p) = prev {
                prop_assert!(i > p);
            }
            prev = Some(i);
        }
        for (i, s) in sel.scores.iter().enumerate() {
            let should_keep = s.sim_c >= tc.t_c && s.sim_l >= tc.t_l;
            prop_assert_eq!(sel.indices.contains(&i), should_keep, "instance {}", i);
            prop_assert!((0.0..=1.0).contains(&s.sim_c));
            prop_assert!((0.0..=1.0).contains(&s.sim_l));
        }
    }

    #[test]
    fn pipeline_output_is_total_and_deterministic(cfg in config_strategy()) {
        let pair = domain_pair(&cfg, 0.03, 0.02, 150).expect("generation");
        let t = TransEr::new(TransErConfig::default(), ClassifierKind::LogisticRegression, 5)
            .expect("config");
        let a = t.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("run");
        let b = t.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("run");
        prop_assert_eq!(a.labels.len(), pair.target.len());
        prop_assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn confusion_matrix_is_consistent(cfg in config_strategy()) {
        let pair = domain_pair(&cfg, 0.02, 0.0, 120).expect("generation");
        let t = TransEr::new(TransErConfig::default(), ClassifierKind::DecisionTree, 5)
            .expect("config");
        let out = t.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("run");
        let cm = evaluate(&out.labels, &pair.target.y);
        prop_assert_eq!(cm.total(), pair.target.len());
        let f1 = cm.f1();
        prop_assert!((cm.f_star() - f1 / (2.0 - f1)).abs() < 1e-9);
        prop_assert!(cm.f_star() <= cm.precision().max(1e-12) + 1e-9 || cm.tp == 0);
    }

    #[test]
    fn easy_separable_domains_are_solved(seed in 0u64..500) {
        // With no ambiguity, no flips, and no shift, TransER must recover
        // the generating rule almost perfectly.
        let cfg = VectorDomainConfig {
            n: 300,
            ambiguity: 0.0,
            flip_rate: 0.0,
            seed,
            ..Default::default()
        };
        let pair = domain_pair(&cfg, 0.0, 0.0, 200).expect("generation");
        let t = TransEr::new(TransErConfig::default(), ClassifierKind::LogisticRegression, 1)
            .expect("config");
        let out = t.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x).expect("run");
        let cm = evaluate(&out.labels, &pair.target.y);
        prop_assert!(cm.f_star() > 0.9, "F* {} on a trivial task", cm.f_star());
    }
}

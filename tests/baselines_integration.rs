//! Integration tests for the baselines on generated workloads: every
//! method either completes with full-length output or fails with one of
//! the documented resource outcomes.

use transer::eval::directed_tasks;
use transer::prelude::*;

#[test]
fn every_baseline_handles_a_real_task() {
    let tasks = directed_tasks(0.03, 7).expect("generation");
    let task = &tasks[0]; // DBLP-ACM -> DBLP-Scholar
    let ctx = RunContext::new(
        ClassifierKind::LogisticRegression,
        3,
        ResourceBudget { max_memory_bytes: 1 << 30, max_secs: 300.0 },
    );
    for method in all_baselines() {
        match method.run(&task.view(), &ctx) {
            Ok(labels) => {
                assert_eq!(labels.len(), task.target.len(), "{}", method.name());
            }
            Err(e) => panic!("{} failed on a small task: {e}", method.name()),
        }
    }
}

#[test]
fn tca_hits_memory_guard_on_mid_sized_tasks() {
    // The defining Table 2 pattern: TCA completes on the small
    // bibliographic pair but memory-exceeds beyond it.
    let tasks = directed_tasks(0.08, 7).expect("generation");
    let music = tasks.iter().find(|t| t.name == "MB -> MSD").expect("task exists");
    let ctx = RunContext::new(
        ClassifierKind::LogisticRegression,
        0,
        ResourceBudget { max_memory_bytes: 64 << 20, max_secs: 300.0 },
    );
    let err = Tca::default().run(&music.view(), &ctx).unwrap_err();
    assert!(matches!(err, transer::common::Error::MemoryExceeded { .. }), "expected ME, got {err}");
}

#[test]
fn time_budget_produces_te() {
    let tasks = directed_tasks(0.05, 7).expect("generation");
    let task = &tasks[2]; // MSD -> MB (big enough that TCA needs real time)
    let ctx = RunContext::new(
        ClassifierKind::LogisticRegression,
        0,
        ResourceBudget { max_memory_bytes: 8 << 30, max_secs: 0.0 },
    );
    let err = Tca::default().run(&task.view(), &ctx).unwrap_err();
    assert!(matches!(err, transer::common::Error::TimeExceeded { .. }), "expected TE, got {err}");
}

#[test]
fn deep_baselines_use_the_raw_text() {
    let tasks = directed_tasks(0.03, 9).expect("generation");
    let task = &tasks[0];
    assert_eq!(task.source_texts.len(), task.source.len());
    assert!(!task.source_texts[0].0.is_empty());
    let ctx = RunContext::default();
    let with_text = DtalStar::default().run(&task.view(), &ctx).expect("runs");
    let mut view = task.view();
    view.source_texts = None;
    view.target_texts = None;
    let without_text = DtalStar::default().run(&view, &ctx).expect("runs");
    assert_eq!(with_text.len(), without_text.len());
    // The representation genuinely matters: predictions differ.
    assert_ne!(with_text, without_text);
}

#[test]
fn similarity_feature_methods_beat_deep_methods_on_structured_data() {
    // The paper's central claim: on short, noisy structured attributes
    // the similarity-feature methods dominate the embedding-based deep
    // ones (DTAL* stays competitive only on the clean DBLP-ACM target).
    let tasks = directed_tasks(0.05, 42).expect("generation");
    let task = tasks.iter().find(|t| t.name == "MSD -> MB").expect("exists");
    let ctx = RunContext::new(ClassifierKind::LogisticRegression, 3, ResourceBudget::default());

    let naive = Naive.run(&task.view(), &ctx).expect("naive");
    let dtal = DtalStar::default().run(&task.view(), &ctx).expect("dtal");
    let dr = DeepRanker::default().run(&task.view(), &ctx).expect("dr");

    let f = |labels: &[Label]| evaluate(labels, &task.target.y).f_star();
    assert!(
        f(&naive) > f(&dtal) + 0.05,
        "naive {} should clearly beat DTAL* {}",
        f(&naive),
        f(&dtal)
    );
    assert!(f(&naive) > f(&dr) + 0.05, "naive {} should clearly beat DR {}", f(&naive), f(&dr));
}

//! End-to-end integration tests: records → blocking → comparison →
//! transfer → evaluation, across every scenario family.

use transer::prelude::*;

const SCALE: f64 = 0.03;

#[test]
fn every_scenario_supports_the_full_pipeline() {
    for scenario in Scenario::ALL {
        let ds =
            scenario.generate(SCALE, 11).unwrap_or_else(|e| panic!("{}: {e}", scenario.name()));
        assert!(!ds.is_empty(), "{} generated nothing", scenario.name());
        assert_eq!(ds.x.cols(), scenario.num_features());
        // Every feature is a similarity in [0, 1].
        for row in ds.x.iter_rows() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v), "{}: feature {v}", scenario.name());
            }
        }
        // Matches exist but are a minority-to-moderate share; at tiny
        // scales the smallest scenario keeps few non-match candidates, so
        // the bound is loose (the harness verifies real imbalance at the
        // experiment scales).
        assert!(ds.num_matches() > 0, "{} has no matches", scenario.name());
        assert!(ds.match_rate() < 0.7, "{} match rate {}", scenario.name(), ds.match_rate());
    }
}

#[test]
fn transer_runs_on_every_directed_pair_with_every_classifier() {
    for pair in ScenarioPair::ALL {
        for dp in pair.both_directions(SCALE, 5).expect("generation") {
            for kind in ClassifierKind::PAPER_SET {
                let t = TransEr::new(TransErConfig::default(), kind, 9).expect("config");
                let out = t
                    .fit_predict(&dp.source.x, &dp.source.y, &dp.target.x)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", dp.label(), kind.name()));
                assert_eq!(out.labels.len(), dp.target.len());
                let cm = evaluate(&out.labels, &dp.target.y);
                // Sanity floor: the pipeline must be far better than random
                // on its own workloads.
                assert!(
                    cm.f_star() > 0.05,
                    "{} [{}]: F* {} collapsed",
                    dp.label(),
                    kind.name(),
                    cm.f_star()
                );
            }
        }
    }
}

#[test]
fn transer_is_deterministic_end_to_end() {
    let dp = ScenarioPair::Music.domain_pair(SCALE, 3).expect("generation");
    let run = || {
        let t = TransEr::new(TransErConfig::default(), ClassifierKind::RandomForest, 17)
            .expect("config");
        t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline").labels
    };
    assert_eq!(run(), run());
}

#[test]
fn transer_beats_naive_on_the_music_task() {
    // The paper's signature result: MSD -> MB, where the target's match
    // cluster sits at depressed similarities and the source-trained model
    // under-predicts matches.
    let dp = ScenarioPair::Music.domain_pair(0.1, 42).expect("generation");
    let mut transer_f = MeanStd::new();
    let mut naive_f = MeanStd::new();
    for kind in [ClassifierKind::LogisticRegression, ClassifierKind::RandomForest] {
        let t = TransEr::new(TransErConfig::default(), kind, 7).expect("config");
        let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline");
        transer_f.push(evaluate(&out.labels, &dp.target.y).f_star());
        let mut naive = kind.build(7);
        naive.fit(&dp.source.x, &dp.source.y).expect("fit");
        naive_f.push(evaluate(&naive.predict(&dp.target.x), &dp.target.y).f_star());
    }
    assert!(
        transer_f.mean() > naive_f.mean() - 0.02,
        "TransER {} should not trail Naive {}",
        transer_f.mean(),
        naive_f.mean()
    );
}

#[test]
fn selection_drops_instances_and_fallbacks_work() {
    let dp = ScenarioPair::BpDp.domain_pair(SCALE, 21).expect("generation");
    let t = TransEr::new(TransErConfig::default(), ClassifierKind::LogisticRegression, 1)
        .expect("config");
    let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline");
    let d = out.diagnostics;
    assert_eq!(d.source_count, dp.source.len());
    assert!(d.selected_count <= d.source_count);

    // Impossible thresholds must degrade gracefully, never panic.
    let strict = TransErConfig { t_c: 1.0, t_l: 1.0, t_p: 1.0, ..Default::default() };
    let t = TransEr::new(strict, ClassifierKind::LogisticRegression, 1).expect("config");
    let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline");
    assert_eq!(out.labels.len(), dp.target.len());
}

#[test]
fn reversed_pairs_swap_roles_exactly() {
    let dp = ScenarioPair::Bibliographic.domain_pair(SCALE, 2).expect("generation");
    let rev = dp.reversed();
    assert_eq!(dp.source, rev.target);
    assert_eq!(dp.target, rev.source);
}

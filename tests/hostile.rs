//! Hostile-input property tests: arbitrary matrices carrying NaN / ±Inf
//! cells, constant columns, tiny (0–2 row) domains and duplicate rows are
//! driven through the full pipeline under every paper classifier and
//! every fault-injection site. The contract is the panic-free guarantee:
//! each run returns `Ok` (possibly via the degradation ladder) with
//! target-aligned labels, or a typed `Err` that renders — never a panic.

use proptest::prelude::*;
use transer::prelude::*;
use transer::robust::{self, site, FaultKind};
use transer_core::select_instances_with_pool;
use transer_parallel::Pool;

const MAX_SRC: usize = 10;
const MAX_TGT: usize = 6;
const MAX_COLS: usize = 4;

/// Everything one hostile case needs, generated from flat pools so no
/// `prop_flat_map` is required: dimensions, a cell pool with per-cell
/// corruption selectors, a label pool, and structural mutations.
#[derive(Debug, Clone)]
struct HostileCase {
    n_src: usize,
    n_tgt: usize,
    cols: usize,
    cells: Vec<f64>,
    labels: Vec<Label>,
    duplicate_rows: bool,
    constant_col: bool,
}

fn cell(selector: u8, value: f64) -> f64 {
    match selector {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => 0.0,
        _ => value,
    }
}

fn case_strategy() -> impl Strategy<Value = HostileCase> {
    (
        0usize..=MAX_SRC,
        0usize..=MAX_TGT,
        1usize..=MAX_COLS,
        prop::collection::vec((0u8..16, 0.0f64..1.0), (MAX_SRC + MAX_TGT) * MAX_COLS),
        prop::collection::vec(0u8..2, MAX_SRC),
        0u8..2,
        0u8..2,
    )
        .prop_map(|(n_src, n_tgt, cols, pool, label_pool, dup, constant)| HostileCase {
            n_src,
            n_tgt,
            cols,
            cells: pool.into_iter().map(|(s, v)| cell(s, v)).collect(),
            labels: label_pool.into_iter().map(|b| Label::from_bool(b == 1)).collect(),
            duplicate_rows: dup == 1,
            constant_col: constant == 1,
        })
}

impl HostileCase {
    /// Build an `n x cols` matrix from the shared cell pool, applying the
    /// structural mutations. Zero-row matrices are built by truncation
    /// because `from_vecs` (correctly) rejects an empty row list.
    fn matrix(&self, n: usize, offset: usize) -> FeatureMatrix {
        let mut rows = Vec::with_capacity(n.max(1));
        for r in 0..n.max(1) {
            let src_row = if self.duplicate_rows { 0 } else { r };
            let start = (offset + src_row) * self.cols;
            let mut row = self.cells[start..start + self.cols].to_vec();
            if self.constant_col {
                row[0] = 1.0;
            }
            rows.push(row);
        }
        let mut m = FeatureMatrix::from_vecs(&rows).expect("pool rows are rectangular");
        m.truncate_rows(n);
        m
    }

    fn source(&self) -> (FeatureMatrix, Vec<Label>) {
        (self.matrix(self.n_src, 0), self.labels[..self.n_src].to_vec())
    }

    fn target(&self) -> FeatureMatrix {
        self.matrix(self.n_tgt, MAX_SRC)
    }
}

/// The fault plan for one case: index 0 disarms the harness, the rest
/// select a (site, kind) pair.
const FAULT_SITES: [&str; 8] = [
    site::COMPARE,
    site::BLOCKING,
    site::SEL_KNN,
    site::GEN_FIT,
    site::GEN_PREDICT,
    site::TCL_BALANCE,
    site::TCL_FIT,
    site::POOL_DISPATCH,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Core tentpole property: hostile matrices through `fit_predict`
    /// under every classifier and an arbitrary armed fault site are
    /// always `Ok` with aligned labels or a typed error — never a panic.
    #[test]
    fn fit_predict_is_total_on_hostile_inputs(
        case in case_strategy(),
        fault_site in 0usize..=FAULT_SITES.len(),
        fault_kind in 0usize..FaultKind::ALL.len(),
    ) {
        let _guard = robust::test_lock();
        let (xs, ys) = case.source();
        let xt = case.target();
        let plan = fault_site
            .checked_sub(1)
            .map(|s| format!("{}:{}", FAULT_SITES[s], FaultKind::ALL[fault_kind].as_str()));
        robust::set_plan(plan.as_deref());
        for kind in ClassifierKind::PAPER_SET {
            let t = TransEr::new(TransErConfig { k: 3, ..Default::default() }, kind, 7)
                .expect("config");
            match t.fit_predict(&xs, &ys, &xt) {
                Ok(out) => prop_assert_eq!(
                    out.labels.len(),
                    xt.rows(),
                    "{}: labels misaligned under {:?}",
                    kind.name(),
                    plan
                ),
                Err(e) => prop_assert!(
                    !e.to_string().is_empty(),
                    "{}: error must render under {:?}",
                    kind.name(),
                    plan
                ),
            }
        }
        robust::set_plan(None);
    }

    /// Determinism rider: with the harness disarmed, instance selection
    /// over hostile matrices is bit-identical at 1 and 4 workers.
    #[test]
    fn selection_on_hostile_inputs_ignores_worker_count(case in case_strategy()) {
        let _guard = robust::test_lock();
        robust::set_plan(None);
        let (xs, ys) = case.source();
        let xt = case.target();
        let cfg = TransErConfig { k: 3, ..Default::default() };
        let seq = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1));
        let par = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(4));
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.indices, &b.indices);
                for (sa, sb) in a.scores.iter().zip(&b.scores) {
                    prop_assert_eq!(sa.sim_c.to_bits(), sb.sim_c.to_bits());
                    prop_assert_eq!(sa.sim_l.to_bits(), sb.sim_l.to_bits());
                    prop_assert_eq!(sa.sim_v.to_bits(), sb.sim_v.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "worker count changed outcome: {:?} vs {:?}", a, b),
        }
    }
}

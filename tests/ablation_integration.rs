//! Integration tests for the ablation variants (Table 4 semantics).

use transer::core::select_instances;
use transer::prelude::*;

fn pair() -> DomainPair {
    ScenarioPair::BpDp.domain_pair(0.04, 13).expect("generation")
}

#[test]
fn without_sel_transfers_the_whole_source() {
    let dp = pair();
    let cfg = TransErConfig { variant: Variant::without_sel(), ..Default::default() };
    let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 1).expect("config");
    let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline");
    assert_eq!(out.diagnostics.selected_count, dp.source.len());
}

#[test]
fn dropping_a_filter_can_only_grow_the_selection() {
    let dp = pair();
    let full = TransErConfig::default();
    let no_c = TransErConfig { variant: Variant::without_sim_c(), ..full };
    let no_l = TransErConfig { variant: Variant::without_sim_l(), ..full };
    let count = |cfg: &TransErConfig| {
        select_instances(&dp.source.x, &dp.source.y, &dp.target.x, cfg)
            .expect("selection")
            .indices
            .len()
    };
    let base = count(&full);
    assert!(count(&no_c) >= base, "removing sim_c must not shrink selection");
    assert!(count(&no_l) >= base, "removing sim_l must not shrink selection");
}

#[test]
fn sim_v_can_only_shrink_the_selection() {
    let dp = pair();
    let full = TransErConfig::default();
    let with_v = TransErConfig { variant: Variant::with_sim_v(), ..full };
    let select = |cfg: &TransErConfig| {
        select_instances(&dp.source.x, &dp.source.y, &dp.target.x, cfg).expect("selection").indices
    };
    let base = select(&full);
    let v = select(&with_v);
    assert!(v.len() <= base.len());
    for i in &v {
        assert!(base.contains(i), "sim_v selection must be a subset");
    }
}

#[test]
fn without_gen_tcl_produces_no_pseudo_labels() {
    let dp = pair();
    let cfg = TransErConfig { variant: Variant::without_gen_tcl(), ..Default::default() };
    let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 1).expect("config");
    let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).expect("pipeline");
    assert!(out.pseudo.is_none());
    assert_eq!(out.labels.len(), dp.target.len());
}

#[test]
fn all_variants_complete_on_all_paper_classifiers() {
    let dp = pair();
    for (name, variant) in Variant::ablation_suite() {
        for kind in ClassifierKind::PAPER_SET {
            let cfg = TransErConfig { variant, ..Default::default() };
            let t = TransEr::new(cfg, kind, 2).expect("config");
            let out = t
                .fit_predict(&dp.source.x, &dp.source.y, &dp.target.x)
                .unwrap_or_else(|e| panic!("{name} [{}]: {e}", kind.name()));
            assert_eq!(out.labels.len(), dp.target.len(), "{name}");
        }
    }
}

//! An *updatable* MinHash-LSH index for the serving path.
//!
//! The batch blockers in [`crate::MinHashLsh`] rebuild their band buckets
//! from scratch on every call — fine for one-shot runs, wasteful for a
//! long-lived service where the reference database changes one record at a
//! time. [`LshIndex`] keeps the band buckets persistent across
//! [`LshIndex::insert`] / [`LshIndex::remove`] and answers
//! [`LshIndex::query`] against the current live set.
//!
//! # Equivalence contract
//! At any point in any insert/remove interleaving, `query` returns exactly
//! the candidate set a from-scratch index built over the surviving records
//! would return — bit-identical, including the `max_bucket` cap, which is
//! applied to *live* members only (a bucket crowded with tombstones is not
//! spuriously skipped). This is property-tested in
//! `tests/lsh_index.rs`.
//!
//! # Tombstones and compaction
//! `remove` does not eagerly scan every bucket the record landed in; it
//! flips the entry to a tombstone and defers the purge. Queries filter
//! tombstones on the fly. Once tombstones pass the compaction threshold
//! (at least [`COMPACT_MIN_TOMBSTONES`] dead entries *and* as many dead as
//! live), the buckets are rebuilt over the live set. [`LshIndex::compact`]
//! forces this eagerly.
//!
//! # Persistence
//! [`LshIndex::save`] / [`LshIndex::load`] round-trip the index through the
//! versioned JSON format of `transer_trace::json` (schema-version field,
//! strict parse: unknown keys are rejected, like `trace_report --check`).
//! Band keys are full 64-bit hashes — beyond the 2^53 exact-integer range
//! of a JSON number — so they are serialised as 16-digit hex strings.

use std::collections::{BTreeMap, HashMap};

use transer_common::{Error, Record, Result};
use transer_parallel::{CostClass, CostHint, Pool};
use transer_trace::json::{self, obj, Json};

use crate::minhash::{MinHashLsh, MinHashLshConfig};

/// Compaction triggers once at least this many tombstones have accumulated
/// (and tombstones outnumber live entries). Small indexes never pay a
/// rebuild; heavily churned ones amortise it.
pub const COMPACT_MIN_TOMBSTONES: usize = 64;

/// Schema version of the on-disk index format.
pub const INDEX_SCHEMA_VERSION: u64 = 1;

#[derive(Debug, Clone)]
struct Entry {
    /// Band bucket keys this id was inserted under (empty for records whose
    /// token set is empty — they never block).
    keys: Vec<u64>,
    /// `false` marks a tombstone: still present in `buckets`, filtered out
    /// of every query, purged at the next compaction.
    live: bool,
}

/// An updatable MinHash-LSH index over a mutable reference database.
///
/// Ids are caller-assigned `usize` keys (the serving layer uses positions
/// in its reference record store). See the module docs for the equivalence
/// contract, tombstone policy and on-disk format.
#[derive(Debug, Clone)]
pub struct LshIndex {
    lsh: MinHashLsh,
    attrs: Option<Vec<usize>>,
    /// Band key → member ids in insertion order; may contain tombstoned ids
    /// until the next compaction.
    buckets: HashMap<u64, Vec<usize>>,
    /// Every id represented in `buckets` (live or tombstoned) → its entry.
    entries: HashMap<usize, Entry>,
    dead: usize,
}

impl LshIndex {
    /// Create an empty index blocking on the given attribute indices
    /// (`None` = all attributes).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `config` is invalid — see
    /// [`MinHashLshConfig::validate`].
    pub fn new(config: MinHashLshConfig, attrs: Option<&[usize]>) -> Result<Self> {
        Ok(LshIndex {
            lsh: MinHashLsh::new(config)?,
            attrs: attrs.map(<[usize]>::to_vec),
            buckets: HashMap::new(),
            entries: HashMap::new(),
            dead: 0,
        })
    }

    /// Build an index over `records`, assigning ids `0..records.len()`.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] on an invalid `config` or (impossible
    /// here) duplicate ids.
    pub fn from_records(
        config: MinHashLshConfig,
        attrs: Option<&[usize]>,
        records: &[Record],
    ) -> Result<Self> {
        let mut index = LshIndex::new(config, attrs)?;
        for (id, record) in records.iter().enumerate() {
            index.insert(id, record)?;
        }
        Ok(index)
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.entries.len() - self.dead
    }

    /// Whether the index holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of tombstoned entries awaiting compaction.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Whether `id` is live in the index.
    pub fn contains(&self, id: usize) -> bool {
        self.entries.get(&id).is_some_and(|e| e.live)
    }

    /// Iterate over the live ids, in arbitrary order.
    pub fn ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.entries.iter().filter(|(_, e)| e.live).map(|(&id, _)| id)
    }

    /// The blocking attribute mask.
    pub fn attrs(&self) -> Option<&[usize]> {
        self.attrs.as_deref()
    }

    /// The LSH configuration.
    pub fn config(&self) -> &MinHashLshConfig {
        self.lsh.config()
    }

    /// Insert a record under a caller-assigned id. Re-inserting an id that
    /// was previously removed is allowed (the stale bucket entries are
    /// purged first); re-inserting a *live* id is an error.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `id` is already live.
    pub fn insert(&mut self, id: usize, record: &Record) -> Result<()> {
        match self.entries.get(&id) {
            Some(e) if e.live => {
                return Err(Error::InvalidParameter {
                    name: "id",
                    message: format!("id {id} is already in the index"),
                });
            }
            Some(_) => self.purge(id),
            None => {}
        }
        let keys = self.lsh.record_band_keys(record, self.attrs.as_deref()).unwrap_or_default();
        for &key in &keys {
            self.buckets.entry(key).or_default().push(id);
        }
        self.entries.insert(id, Entry { keys, live: true });
        transer_trace::counter("blocking.lsh_index.inserts", 1);
        Ok(())
    }

    /// Remove a record by id (tombstone; see the module docs).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `id` is not live in the index.
    pub fn remove(&mut self, id: usize) -> Result<()> {
        match self.entries.get_mut(&id) {
            Some(e) if e.live => {
                e.live = false;
                self.dead += 1;
            }
            _ => {
                return Err(Error::InvalidParameter {
                    name: "id",
                    message: format!("id {id} is not in the index"),
                });
            }
        }
        transer_trace::counter("blocking.lsh_index.removes", 1);
        if self.dead >= COMPACT_MIN_TOMBSTONES && self.dead >= self.len() {
            self.compact();
        }
        Ok(())
    }

    /// Eagerly drop one tombstoned id from every bucket it occupies
    /// (re-insertion path; compaction handles the bulk case).
    fn purge(&mut self, id: usize) {
        let Some(old) = self.entries.remove(&id) else { return };
        for key in &old.keys {
            if let Some(members) = self.buckets.get_mut(key) {
                members.retain(|&m| m != id);
                if members.is_empty() {
                    self.buckets.remove(key);
                }
            }
        }
        self.dead -= 1;
    }

    /// Rebuild the band buckets over the live set, dropping every
    /// tombstone. Queries before and after are bit-identical.
    pub fn compact(&mut self) {
        self.entries.retain(|_, e| e.live);
        self.dead = 0;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::with_capacity(self.buckets.len());
        for (&id, entry) in &self.entries {
            for &key in &entry.keys {
                buckets.entry(key).or_default().push(id);
            }
        }
        self.buckets = buckets;
        transer_trace::counter("blocking.lsh_index.compactions", 1);
    }

    /// Candidate ids for one probe record: live members of every uncapped
    /// bucket the probe's bands hash into, sorted and deduplicated. The
    /// `max_bucket` cap counts live members only, so the result is
    /// bit-identical to a from-scratch index over the surviving records.
    pub fn query(&self, record: &Record) -> Vec<usize> {
        let Some(keys) = self.lsh.record_band_keys(record, self.attrs.as_deref()) else {
            transer_trace::counter("blocking.lsh_index.queries", 1);
            return Vec::new();
        };
        let cap = if self.config().max_bucket == 0 { usize::MAX } else { self.config().max_bucket };
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        for key in keys {
            let Some(members) = self.buckets.get(&key) else { continue };
            if self.dead == 0 {
                if members.len() <= cap {
                    out.extend_from_slice(members);
                }
            } else {
                scratch.clear();
                scratch.extend(members.iter().copied().filter(|&id| self.contains(id)));
                if scratch.len() <= cap {
                    out.extend_from_slice(&scratch);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        transer_trace::counter("blocking.lsh_index.queries", 1);
        transer_trace::counter("blocking.lsh_index.candidates", out.len() as u64);
        out
    }

    /// [`LshIndex::query`] over a batch, parallelised on `pool`. Output is
    /// in probe order and bit-identical for every worker count.
    pub fn query_batch(&self, records: &[Record], pool: &Pool) -> Vec<Vec<usize>> {
        let hint = CostHint::new(records.len(), CostClass::Medium);
        pool.par_map_costed(records, hint, |rec| self.query(rec))
    }

    /// Serialise the index (live entries only) to the versioned JSON
    /// document format.
    pub fn to_json(&self) -> Json {
        let ids: BTreeMap<usize, &Entry> =
            self.entries.iter().filter(|(_, e)| e.live).map(|(&id, e)| (id, e)).collect();
        let entries: Vec<Json> = ids
            .into_iter()
            .map(|(id, e)| {
                obj(vec![
                    ("id", Json::Num(id as f64)),
                    (
                        "keys",
                        Json::Arr(e.keys.iter().map(|k| Json::Str(format!("{k:016x}"))).collect()),
                    ),
                ])
            })
            .collect();
        let config = self.config();
        obj(vec![
            ("schema_version", Json::Num(INDEX_SCHEMA_VERSION as f64)),
            (
                "config",
                obj(vec![
                    ("num_hashes", Json::Num(config.num_hashes as f64)),
                    ("bands", Json::Num(config.bands as f64)),
                    ("seed", Json::Str(format!("{:016x}", config.seed))),
                    ("max_bucket", Json::Num(config.max_bucket as f64)),
                ]),
            ),
            (
                "attrs",
                self.attrs.as_ref().map_or(Json::Null, |a| {
                    Json::Arr(a.iter().map(|&i| Json::Num(i as f64)).collect())
                }),
            ),
            ("entries", Json::Arr(entries)),
        ])
    }

    /// Rebuild an index from its [`LshIndex::to_json`] document.
    ///
    /// # Errors
    /// [`Error::Persist`] on schema-version mismatch, unknown keys, or any
    /// malformed field; [`Error::InvalidParameter`] when the embedded
    /// config fails validation.
    pub fn from_json(doc: &Json) -> Result<Self> {
        let top = strict_obj(doc, &["schema_version", "config", "attrs", "entries"], "index")?;
        let version = num_field(top, "schema_version", "index")?;
        if version != INDEX_SCHEMA_VERSION as f64 {
            return Err(Error::Persist(format!(
                "index: unsupported schema_version {version} (expected {INDEX_SCHEMA_VERSION})"
            )));
        }
        let config_doc =
            top.get("config").ok_or_else(|| Error::Persist("index: missing config".into()))?;
        let cfg = strict_obj(config_doc, &["num_hashes", "bands", "seed", "max_bucket"], "config")?;
        let config = MinHashLshConfig {
            num_hashes: usize_field(cfg, "num_hashes", "config")?,
            bands: usize_field(cfg, "bands", "config")?,
            seed: hex_field(cfg, "seed", "config")?,
            max_bucket: usize_field(cfg, "max_bucket", "config")?,
        };
        let attrs: Option<Vec<usize>> = match top.get("attrs") {
            None | Some(Json::Null) => None,
            Some(Json::Arr(items)) => Some(
                items
                    .iter()
                    .map(|j| {
                        j.as_num().map(|n| n as usize).ok_or_else(|| {
                            Error::Persist("index: attrs entries must be numbers".into())
                        })
                    })
                    .collect::<Result<_>>()?,
            ),
            Some(_) => return Err(Error::Persist("index: attrs must be an array or null".into())),
        };
        let mut index = LshIndex::new(config, attrs.as_deref())?;
        let entries = top
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| Error::Persist("index: entries must be an array".into()))?;
        for entry in entries {
            let e = strict_obj(entry, &["id", "keys"], "entry")?;
            let id = usize_field(e, "id", "entry")?;
            let keys = e
                .get("keys")
                .and_then(Json::as_arr)
                .ok_or_else(|| Error::Persist("entry: keys must be an array".into()))?
                .iter()
                .map(|j| {
                    j.as_str().and_then(|s| u64::from_str_radix(s, 16).ok()).ok_or_else(|| {
                        Error::Persist("entry: keys must be 16-digit hex strings".into())
                    })
                })
                .collect::<Result<Vec<u64>>>()?;
            if index.entries.contains_key(&id) {
                return Err(Error::Persist(format!("index: duplicate entry id {id}")));
            }
            // Trust the persisted keys rather than re-hashing: the records
            // themselves are not stored in the index artefact.
            for &key in &keys {
                index.buckets.entry(key).or_default().push(id);
            }
            index.entries.insert(id, Entry { keys, live: true });
        }
        Ok(index)
    }

    /// Write the index to `path` as pretty-printed JSON.
    ///
    /// # Errors
    /// [`Error::Persist`] on I/O failure.
    pub fn save(&self, path: &str) -> Result<()> {
        json::write_pretty(path, &self.to_json())
            .map_err(|e| Error::Persist(format!("index: cannot write {path}: {e}")))
    }

    /// Load an index previously written by [`LshIndex::save`].
    ///
    /// # Errors
    /// [`Error::Persist`] on I/O or parse failure — see
    /// [`LshIndex::from_json`].
    pub fn load(path: &str) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Persist(format!("index: cannot read {path}: {e}")))?;
        let doc =
            json::parse(&text).map_err(|e| Error::Persist(format!("index: parse {path}: {e}")))?;
        LshIndex::from_json(&doc)
    }
}

/// The strict-parse primitive shared by the persistence formats: `doc` must
/// be an object and every key must be in `allowed` (unknown keys are a
/// forward-compatibility hazard, not silently ignorable).
pub(crate) fn strict_obj<'a>(
    doc: &'a Json,
    allowed: &[&str],
    ctx: &str,
) -> Result<&'a BTreeMap<String, Json>> {
    let map =
        doc.as_obj().ok_or_else(|| Error::Persist(format!("{ctx}: expected a JSON object")))?;
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::Persist(format!("{ctx}: unknown key {key:?}")));
        }
    }
    Ok(map)
}

fn num_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<f64> {
    map.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| Error::Persist(format!("{ctx}: missing numeric field {key:?}")))
}

fn usize_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<usize> {
    let n = num_field(map, key, ctx)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(Error::Persist(format!("{ctx}: field {key:?} is not an exact index: {n}")));
    }
    Ok(n as usize)
}

fn hex_field(map: &BTreeMap<String, Json>, key: &str, ctx: &str) -> Result<u64> {
    map.get(key)
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or_else(|| Error::Persist(format!("{ctx}: field {key:?} must be a hex string")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;

    fn rec(id: u64, title: &str) -> Record {
        Record::new(id, id, vec![AttrValue::Text(title.into())])
    }

    fn corpus() -> Vec<Record> {
        let titles = [
            "a fast algorithm for record linkage",
            "record linkage at scale",
            "the beatles abbey road",
            "entity resolution with transfer learning",
            "transfer learning for entity resolution",
        ];
        (0..40).map(|i| rec(i, &format!("{} part {}", titles[i as usize % 5], i % 7))).collect()
    }

    #[test]
    fn query_matches_from_scratch_rebuild_after_churn() {
        let recs = corpus();
        let config = MinHashLshConfig::default();
        let mut index = LshIndex::from_records(config, None, &recs).expect("valid config");
        for id in [3usize, 7, 11, 20] {
            index.remove(id).expect("live id");
        }
        index.insert(7, &recs[7]).expect("re-insert after remove");
        let survivors: Vec<usize> = (0..recs.len()).filter(|&i| index.contains(i)).collect();
        let mut fresh = LshIndex::new(config, None).expect("valid config");
        for &id in &survivors {
            fresh.insert(id, &recs[id]).expect("fresh insert");
        }
        for probe in &recs {
            assert_eq!(index.query(probe), fresh.query(probe));
        }
    }

    #[test]
    fn max_bucket_counts_live_members_only() {
        // All-identical records land in the same buckets; with a cap of 3
        // and 5 records the buckets are skipped, but after enough removals
        // the 3 survivors must block again.
        let recs: Vec<Record> = (0..5).map(|i| rec(i, "identical title text")).collect();
        let config = MinHashLshConfig { max_bucket: 3, ..Default::default() };
        let mut index = LshIndex::from_records(config, None, &recs).expect("valid config");
        assert!(index.query(&recs[0]).is_empty(), "over-cap bucket must be skipped");
        index.remove(1).expect("live");
        index.remove(4).expect("live");
        assert_eq!(index.query(&recs[0]), vec![0, 2, 3], "cap must see live members only");
    }

    #[test]
    fn compaction_preserves_queries_and_drops_tombstones() {
        let recs = corpus();
        let mut index =
            LshIndex::from_records(MinHashLshConfig::default(), None, &recs).expect("valid");
        for id in 0..10 {
            index.remove(id).expect("live");
        }
        let before: Vec<Vec<usize>> = recs.iter().map(|r| index.query(r)).collect();
        assert_eq!(index.tombstones(), 10);
        index.compact();
        assert_eq!(index.tombstones(), 0);
        let after: Vec<Vec<usize>> = recs.iter().map(|r| index.query(r)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn double_insert_and_missing_remove_are_typed_errors() {
        let recs = corpus();
        let mut index = LshIndex::new(MinHashLshConfig::default(), None).expect("valid");
        index.insert(0, &recs[0]).expect("first insert");
        assert!(matches!(
            index.insert(0, &recs[1]),
            Err(Error::InvalidParameter { name: "id", .. })
        ));
        assert!(matches!(index.remove(99), Err(Error::InvalidParameter { name: "id", .. })));
    }

    #[test]
    fn empty_token_records_never_block_but_count_as_live() {
        let mut index = LshIndex::new(MinHashLshConfig::default(), None).expect("valid");
        let empty = Record::new(0, 0, vec![AttrValue::Missing]);
        index.insert(0, &empty).expect("insert");
        assert!(index.contains(0));
        assert_eq!(index.len(), 1);
        assert!(index.query(&empty).is_empty());
        index.remove(0).expect("live");
        assert_eq!(index.len(), 0);
    }

    #[test]
    fn json_round_trip_is_query_identical() {
        let recs = corpus();
        let mut index =
            LshIndex::from_records(MinHashLshConfig::default(), Some(&[0]), &recs).expect("valid");
        index.remove(5).expect("live");
        let doc = index.to_json();
        let loaded = LshIndex::from_json(&doc).expect("round trip");
        assert_eq!(loaded.len(), index.len());
        assert_eq!(loaded.attrs(), index.attrs());
        for probe in &recs {
            assert_eq!(index.query(probe), loaded.query(probe));
        }
        // And through the text form (the actual on-disk path).
        let reparsed = json::parse(&doc.to_pretty()).expect("valid json");
        let loaded2 = LshIndex::from_json(&reparsed).expect("text round trip");
        assert_eq!(loaded2.query(&recs[0]), index.query(&recs[0]));
    }

    #[test]
    fn strict_parse_rejects_unknown_keys_and_wrong_version() {
        let index =
            LshIndex::from_records(MinHashLshConfig::default(), None, &corpus()).expect("valid");
        let mut doc = index.to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("surprise".into(), Json::Num(1.0));
        }
        assert!(matches!(LshIndex::from_json(&doc), Err(Error::Persist(_))));
        let mut doc = index.to_json();
        if let Json::Obj(map) = &mut doc {
            map.insert("schema_version".into(), Json::Num(999.0));
        }
        let err = LshIndex::from_json(&doc).expect_err("wrong version");
        assert!(err.to_string().contains("schema_version"), "{err}");
    }
}

//! The record-pair comparison step: turning candidate pairs into similarity
//! feature vectors and ground-truth labels.

use transer_common::{AttrValue, Error, FeatureMatrix, Label, LabeledDataset, Record, Result};
use transer_similarity::Measure;

use crate::CandidatePair;

/// Declares the feature space: which similarity [`Measure`] applies to
/// which attribute index. Sharing one `Comparison` between the source and
/// target domains is exactly the homogeneous-TL assumption
/// (`X^S = X^T`) of the paper.
///
/// ```
/// use transer_blocking::Comparison;
/// use transer_common::{AttrValue, Record};
/// use transer_similarity::Measure;
///
/// let cmp = Comparison::new(vec![(0, Measure::TokenJaccard), (1, Measure::Year)]).unwrap();
/// let a = Record::new(0, 1, vec![AttrValue::Text("deep matching".into()), AttrValue::Number(2018.0)]);
/// let b = Record::new(0, 1, vec![AttrValue::Text("deep matching".into()), AttrValue::Number(2019.0)]);
/// let v = cmp.feature_vector(&a, &b);
/// assert_eq!(v[0], 1.0);
/// assert!((v[1] - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `(attribute index, measure)` per feature, in feature order.
    pub features: Vec<(usize, Measure)>,
}

impl Comparison {
    /// Create from `(attribute index, measure)` pairs.
    ///
    /// # Errors
    /// Returns [`Error::EmptyInput`] when no features are declared.
    pub fn new(features: Vec<(usize, Measure)>) -> Result<Self> {
        if features.is_empty() {
            return Err(Error::EmptyInput("comparison features"));
        }
        Ok(Comparison { features })
    }

    /// Number of features `m`.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The feature vector `x_ij` of one record pair. Missing values yield
    /// similarity 0 (nothing to agree on).
    pub fn feature_vector(&self, a: &Record, b: &Record) -> Vec<f64> {
        self.features
            .iter()
            .map(|&(attr, measure)| compare_values(measure, &a.values[attr], &b.values[attr]))
            .collect()
    }

    /// Compare all candidate pairs between two databases, producing the
    /// feature matrix and ground-truth labels (from the records' entity
    /// identifiers).
    pub fn compare_pairs(
        &self,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
    ) -> (FeatureMatrix, Vec<Label>) {
        let mut x = FeatureMatrix::empty(self.num_features());
        let mut y = Vec::with_capacity(pairs.len());
        for &(i, j) in pairs {
            let (a, b) = (&left[i], &right[j]);
            x.push_row(&self.feature_vector(a, b));
            y.push(Label::from_bool(a.entity == b.entity));
        }
        (x, y)
    }

    /// Convenience: compare pairs and bundle the result as a named
    /// [`LabeledDataset`].
    ///
    /// # Errors
    /// Propagates [`LabeledDataset::new`] errors (cannot occur for aligned
    /// outputs, but kept in the signature for API stability).
    pub fn compare_to_dataset(
        &self,
        name: impl Into<String>,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
    ) -> Result<LabeledDataset> {
        let (x, y) = self.compare_pairs(left, right, pairs);
        LabeledDataset::new(name, x, y)
    }
}

fn compare_values(measure: Measure, a: &AttrValue, b: &AttrValue) -> f64 {
    match (a, b) {
        (AttrValue::Text(x), AttrValue::Text(y)) => measure.text(x, y),
        (AttrValue::Number(x), AttrValue::Number(y)) => measure.number(*x, *y),
        (AttrValue::Text(x), AttrValue::Number(y)) => measure.text(x, &y.to_string()),
        (AttrValue::Number(x), AttrValue::Text(y)) => measure.text(&x.to_string(), y),
        _ => 0.0, // at least one side missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, entity: u64, title: &str, year: f64) -> Record {
        Record::new(id, entity, vec![AttrValue::Text(title.into()), AttrValue::Number(year)])
    }

    fn cmp() -> Comparison {
        Comparison::new(vec![(0, Measure::TokenJaccard), (1, Measure::Year)]).unwrap()
    }

    #[test]
    fn feature_vectors_and_labels() {
        let left = vec![rec(0, 100, "deep entity matching", 2018.0)];
        let right = vec![
            rec(0, 100, "deep entity matching", 2018.0),
            rec(1, 200, "something else entirely", 1970.0),
        ];
        let (x, y) = cmp().compare_pairs(&left, &right, &[(0, 0), (0, 1)]);
        assert_eq!(x.rows(), 2);
        assert_eq!(x.row(0), &[1.0, 1.0]);
        assert!(x.row(1)[0] < 0.3);
        assert_eq!(y, vec![Label::Match, Label::NonMatch]);
    }

    #[test]
    fn missing_values_score_zero() {
        let a = Record::new(0, 1, vec![AttrValue::Missing, AttrValue::Number(2000.0)]);
        let b = rec(1, 1, "anything", 2000.0);
        let v = cmp().feature_vector(&a, &b);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn mixed_text_number_compares_textually() {
        let a = Record::new(0, 1, vec![AttrValue::Text("x".into()), AttrValue::Text("1999".into())]);
        let b = rec(1, 1, "x", 1999.0);
        let v = cmp().feature_vector(&a, &b);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn dataset_bundling() {
        let left = vec![rec(0, 1, "a b", 2000.0)];
        let right = vec![rec(0, 1, "a b", 2000.0)];
        let ds = cmp().compare_to_dataset("test", &left, &right, &[(0, 0)]).unwrap();
        assert_eq!(ds.name, "test");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.num_matches(), 1);
    }

    #[test]
    fn empty_feature_space_rejected() {
        assert!(Comparison::new(vec![]).is_err());
    }
}

//! The record-pair comparison step: turning candidate pairs into similarity
//! feature vectors and ground-truth labels.
//!
//! Two execution strategies share one bit-identical kernel
//! ([`prepared_pair`]):
//!
//! * **Global-prepare** (small candidate sets): prepare every record of
//!   both sides up front, then stream flat row-major chunks.
//! * **Block-sharded** (large candidate sets): cut the pair list into
//!   shards aligned to left-record group boundaries — the natural locality
//!   unit the blocker emits — and give each shard its *own* prepared-value
//!   caches, built on the worker that consumes them. Peak memory stays
//!   bounded by the shard size instead of `O(records × features)`, and
//!   each shard emits a column-major row block straight into a
//!   preallocated [`ColMajorMatrix`] with no per-pair staging.

use std::collections::HashMap;

use transer_common::{
    AttrValue, ColMajorMatrix, Error, FeatureMatrix, Label, LabeledDataset, Record, Result,
    StrInterner,
};
use transer_parallel::{CostHint, Pool};
use transer_similarity::{Measure, PreparedText, SimKernel};

use crate::CandidatePair;

/// Candidate pairs per parallel work unit in [`Comparison::compare_pairs`]:
/// small enough to rebalance ragged comparison costs, large enough that
/// dispatch overhead vanishes against the per-pair similarity work.
const PAIR_CHUNK: usize = 256;

/// Estimated cost of one prepared pairwise comparison across a feature
/// row — the grain hint for the pair loop.
const PAIR_COMPARE_NANOS: u64 = 10_000;

/// Estimated cost of preparing one record's attribute values.
const PREPARE_NANOS: u64 = 20_000;

/// Target pairs per shard in the block-sharded path: large enough to
/// amortise the shard-local cache build, small enough that shards balance
/// and per-shard memory stays a rounding error.
const SHARD_TARGET_PAIRS: usize = 2048;

/// Candidate-set size at which [`Comparison::compare_pairs`] switches from
/// the global-prepare path to the block-sharded path: below this the two
/// full prepared-side vectors are cheap and the shard machinery is pure
/// overhead.
const SHARDED_MIN_PAIRS: usize = 16_384;

/// Declares the feature space: which similarity [`Measure`] applies to
/// which attribute index. Sharing one `Comparison` between the source and
/// target domains is exactly the homogeneous-TL assumption
/// (`X^S = X^T`) of the paper.
///
/// ```
/// use transer_blocking::Comparison;
/// use transer_common::{AttrValue, Record};
/// use transer_similarity::Measure;
///
/// let cmp = Comparison::new(vec![(0, Measure::TokenJaccard), (1, Measure::Year)]).unwrap();
/// let a = Record::new(0, 1, vec![AttrValue::Text("deep matching".into()), AttrValue::Number(2018.0)]);
/// let b = Record::new(0, 1, vec![AttrValue::Text("deep matching".into()), AttrValue::Number(2019.0)]);
/// let v = cmp.feature_vector(&a, &b);
/// assert_eq!(v[0], 1.0);
/// assert!((v[1] - 0.9).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// `(attribute index, measure)` per feature, in feature order.
    pub features: Vec<(usize, Measure)>,
    /// The similarity kernel engine every comparison runs on. Defaults to
    /// `TRANSER_SIM_KERNEL`; override with [`Comparison::with_kernel`].
    kernel: SimKernel,
}

impl Comparison {
    /// Create from `(attribute index, measure)` pairs.
    ///
    /// # Errors
    /// Returns [`Error::EmptyInput`] when no features are declared.
    pub fn new(features: Vec<(usize, Measure)>) -> Result<Self> {
        if features.is_empty() {
            return Err(Error::EmptyInput("comparison features"));
        }
        Ok(Comparison { features, kernel: SimKernel::from_env() })
    }

    /// Pin the similarity kernel engine, overriding `TRANSER_SIM_KERNEL` —
    /// the hook the engine-equivalence tests and benchmarks use to run
    /// both engines in one process.
    #[must_use]
    pub fn with_kernel(mut self, kernel: SimKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Number of features `m`.
    pub fn num_features(&self) -> usize {
        self.features.len()
    }

    /// The feature vector `x_ij` of one record pair. Missing values yield
    /// similarity 0 (nothing to agree on).
    pub fn feature_vector(&self, a: &Record, b: &Record) -> Vec<f64> {
        let mut out = vec![0.0; self.num_features()];
        self.feature_vector_into(a, b, &mut out);
        out
    }

    /// Write the feature vector of one record pair into `out` without
    /// allocating — the form the batched matrix path uses.
    ///
    /// # Panics
    /// Panics when `out.len() != self.num_features()`.
    pub fn feature_vector_into(&self, a: &Record, b: &Record, out: &mut [f64]) {
        assert_eq!(out.len(), self.num_features(), "feature buffer length");
        for (slot, &(attr, measure)) in out.iter_mut().zip(&self.features) {
            *slot = compare_values(self.kernel, measure, &a.values[attr], &b.values[attr]);
        }
    }

    /// Precompute, per record, the per-feature state every pair comparison
    /// needs (token sets, q-gram sets, parsed numbers, …) — tokenising each
    /// record once instead of once per candidate pair.
    fn prepare_records(&self, records: &[Record], pool: &Pool) -> Vec<Vec<PreparedValue>> {
        let hint = CostHint::with_per_item_nanos(records.len(), PREPARE_NANOS);
        pool.par_map_costed(records, hint, |record| self.prepare_one(record))
    }

    /// The per-feature prepared values of one record.
    fn prepare_one(&self, record: &Record) -> Vec<PreparedValue> {
        self.features
            .iter()
            .map(|&(attr, measure)| PreparedValue::new(self.kernel, measure, &record.values[attr]))
            .collect()
    }

    /// [`Comparison::prepare_one`] through a shard-local [`StrInterner`]:
    /// the fast engine's token and wide q-gram profiles come out as dense
    /// `u32` ids, comparable against every other value prepared through
    /// the *same* interner (the per-shard contract of the block-sharded
    /// path).
    fn prepare_one_interned(
        &self,
        record: &Record,
        interner: &mut StrInterner,
    ) -> Vec<PreparedValue> {
        self.features
            .iter()
            .map(|&(attr, measure)| {
                PreparedValue::new_interned(self.kernel, measure, &record.values[attr], interner)
            })
            .collect()
    }

    /// Compare all candidate pairs between two databases, producing the
    /// feature matrix and ground-truth labels (from the records' entity
    /// identifiers). Runs on the global [`Pool`] (`TRANSER_THREADS`);
    /// results are bit-identical for every worker count.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if the assembled matrix buffer
    /// is not rectangular (cannot occur by construction) and
    /// [`Error::FaultInjected`] under a `compare:task_fail` plan.
    pub fn compare_pairs(
        &self,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
    ) -> Result<(FeatureMatrix, Vec<Label>)> {
        self.compare_pairs_with_pool(left, right, pairs, &Pool::global())
    }

    /// [`Comparison::compare_pairs`] on an explicit [`Pool`] — the hook the
    /// determinism tests and benchmarks use to pin the worker count.
    ///
    /// # Errors
    /// As for [`Comparison::compare_pairs`].
    pub fn compare_pairs_with_pool(
        &self,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
        pool: &Pool,
    ) -> Result<(FeatureMatrix, Vec<Label>)> {
        let _span = transer_trace::span("blocking.compare");
        let (mut x, mut y) = if pairs.len() >= SHARDED_MIN_PAIRS {
            let (cm, y) = self.compare_pairs_colmajor_with_pool(left, right, pairs, pool)?;
            (cm.to_feature_matrix()?, y)
        } else {
            self.compare_pairs_global_prepare(left, right, pairs, pool)?
        };
        if let Some(kind) = transer_robust::fired(transer_robust::site::COMPARE) {
            if kind == transer_robust::FaultKind::TaskFail {
                return Err(Error::FaultInjected(transer_robust::site::COMPARE));
            }
            transer_robust::corrupt_matrix(&mut x, kind);
            transer_robust::corrupt_labels(&mut y, kind);
        }
        Ok((x, y))
    }

    /// The global-prepare strategy: both record sides prepared up front,
    /// flat row-major output. Best below [`SHARDED_MIN_PAIRS`].
    fn compare_pairs_global_prepare(
        &self,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
        pool: &Pool,
    ) -> Result<(FeatureMatrix, Vec<Label>)> {
        let m = self.num_features();
        let prepared_left = self.prepare_records(left, pool);
        let prepared_right = self.prepare_records(right, pool);
        // One prepared value per (record, feature); each pair then reads
        // two of them from the cache instead of re-deriving them.
        transer_trace::counter("compare.prepared", ((left.len() + right.len()) * m) as u64);
        transer_trace::counter("compare.pairs", pairs.len() as u64);
        transer_trace::counter("compare.invocations", (pairs.len() * m) as u64);
        transer_trace::counter("compare.cache_hits", (2 * pairs.len() * m) as u64);
        let pair_hint = CostHint::with_per_item_nanos(pairs.len(), PAIR_COMPARE_NANOS);
        let data: Vec<f64> =
            pool.par_chunks_costed(pairs, Some(PAIR_CHUNK), pair_hint, |_, chunk| {
                let mut rows = Vec::with_capacity(chunk.len() * m);
                for &(i, j) in chunk {
                    for (f, &(_, measure)) in self.features.iter().enumerate() {
                        rows.push(prepared_pair(
                            self.kernel,
                            measure,
                            &prepared_left[i][f],
                            &prepared_right[j][f],
                        ));
                    }
                }
                rows
            });
        let x = FeatureMatrix::from_rows(data, pairs.len(), m)?;
        Ok((x, pair_labels(left, right, pairs)))
    }

    /// The block-sharded strategy: the pair list is cut into shards
    /// aligned to left-record group boundaries, every shard builds its own
    /// prepared-value caches on the worker that consumes it, and each
    /// shard's feature rows are written column-major straight into a
    /// preallocated [`ColMajorMatrix`] (one `memcpy` per shard per
    /// column at merge time). Bit-identical to the global-prepare path —
    /// both reduce to [`prepared_pair`] on the same prepared inputs.
    ///
    /// Peak memory scales with `shard size × features`, not
    /// `records × features`: the property that keeps the 10^6-record
    /// ladder rung inside a bounded footprint.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] if a shard emits a malformed
    /// block (cannot occur by construction).
    pub fn compare_pairs_colmajor_with_pool(
        &self,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
        pool: &Pool,
    ) -> Result<(ColMajorMatrix, Vec<Label>)> {
        let m = self.num_features();
        transer_trace::counter("compare.pairs", pairs.len() as u64);
        transer_trace::counter("compare.invocations", (pairs.len() * m) as u64);
        let ranges = shard_ranges(pairs, SHARD_TARGET_PAIRS);
        transer_trace::counter("compare.shards", ranges.len() as u64);
        let per_shard = (pairs.len() as u64 / ranges.len().max(1) as u64)
            .saturating_mul(PAIR_COMPARE_NANOS)
            .saturating_add(PREPARE_NANOS);
        let hint = CostHint::with_per_item_nanos(ranges.len(), per_shard);
        let blocks: Vec<Vec<f64>> = pool.par_map_costed(&ranges, hint, |&(s, e)| {
            let shard = &pairs[s..e];
            let len = shard.len();
            let mut block = vec![0.0; len * m];
            // One scratch feature row, reused across the whole shard: the
            // kernel writes it sequentially, then it scatters into the
            // column-major block.
            let mut scratch = vec![0.0; m];
            // Shard-local interner: the fast engine's token/gram profiles
            // become dense u32 ids. Ids are consistent exactly within this
            // shard's caches — which is the only scope they are compared
            // in — and scores consult id equality only, so the choice of
            // interner (and hence shard layout) cannot change a score.
            let mut interner = StrInterner::new();
            let mut left_prepared: Vec<PreparedValue> = Vec::new();
            let mut current_left = usize::MAX;
            let mut right_cache: HashMap<usize, Vec<PreparedValue>> = HashMap::new();
            let mut prepares = 0u64;
            for (r, &(i, j)) in shard.iter().enumerate() {
                if i != current_left || left_prepared.is_empty() {
                    left_prepared = self.prepare_one_interned(&left[i], &mut interner);
                    current_left = i;
                    prepares += 1;
                }
                let right_prepared = match right_cache.entry(j) {
                    std::collections::hash_map::Entry::Occupied(o) => o.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        prepares += 1;
                        v.insert(self.prepare_one_interned(&right[j], &mut interner))
                    }
                };
                for (f, (slot, &(_, measure))) in scratch.iter_mut().zip(&self.features).enumerate()
                {
                    *slot =
                        prepared_pair(self.kernel, measure, &left_prepared[f], &right_prepared[f]);
                }
                for (f, &v) in scratch.iter().enumerate() {
                    block[f * len + r] = v;
                }
            }
            transer_trace::counter("compare.prepared", prepares * m as u64);
            transer_trace::counter(
                "compare.cache_hits",
                (2 * len as u64).saturating_sub(prepares) * m as u64,
            );
            block
        });
        let mut x = ColMajorMatrix::zeros(pairs.len(), m);
        for (&(s, e), block) in ranges.iter().zip(&blocks) {
            x.copy_rows_from_block(s, block, e - s);
        }
        Ok((x, pair_labels(left, right, pairs)))
    }

    /// Convenience: compare pairs and bundle the result as a named
    /// [`LabeledDataset`].
    ///
    /// # Errors
    /// Propagates [`Comparison::compare_pairs`] and [`LabeledDataset::new`]
    /// errors.
    pub fn compare_to_dataset(
        &self,
        name: impl Into<String>,
        left: &[Record],
        right: &[Record],
        pairs: &[CandidatePair],
    ) -> Result<LabeledDataset> {
        let (x, y) = self.compare_pairs(left, right, pairs)?;
        LabeledDataset::new(name, x, y)
    }
}

/// Ground-truth labels of the candidate pairs, from the records' entity
/// identifiers.
fn pair_labels(left: &[Record], right: &[Record], pairs: &[CandidatePair]) -> Vec<Label> {
    pairs.iter().map(|&(i, j)| Label::from_bool(left[i].entity == right[j].entity)).collect()
}

/// Cut `pairs` into contiguous shard ranges of roughly `target` pairs,
/// preferring cuts at left-record group boundaries (where `pairs[k].0`
/// changes) so each left record's prepared values live in exactly one
/// shard. A pathological single group is force-split at `4 × target` so
/// one bucket cannot serialise the whole stage.
fn shard_ranges(pairs: &[CandidatePair], target: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(pairs.len() / target.max(1) + 1);
    let mut start = 0;
    for k in 1..pairs.len() {
        let len = k - start;
        let group_boundary = pairs[k].0 != pairs[k - 1].0;
        if (len >= target && group_boundary) || len >= 4 * target {
            ranges.push((start, k));
            start = k;
        }
    }
    if start < pairs.len() {
        ranges.push((start, pairs.len()));
    }
    ranges
}

fn compare_values(kernel: SimKernel, measure: Measure, a: &AttrValue, b: &AttrValue) -> f64 {
    match (a, b) {
        (AttrValue::Text(x), AttrValue::Text(y)) => measure.text_with(kernel, x, y),
        (AttrValue::Number(x), AttrValue::Number(y)) => measure.number_with(kernel, *x, *y),
        (AttrValue::Text(x), AttrValue::Number(y)) => measure.text_with(kernel, x, &y.to_string()),
        (AttrValue::Number(x), AttrValue::Text(y)) => measure.text_with(kernel, &x.to_string(), y),
        _ => 0.0, // at least one side missing
    }
}

/// One record attribute prepared for a specific feature column.
#[derive(Debug, Clone)]
enum PreparedValue {
    Missing,
    /// Textual value with the measure's per-value work hoisted out.
    Text(PreparedText),
    /// Numeric value: the raw number for measures with a native numeric
    /// path, plus the prepared decimal rendering for the text fallbacks
    /// and Text/Number cross comparisons.
    Number {
        raw: f64,
        text: PreparedText,
    },
}

impl PreparedValue {
    fn new(kernel: SimKernel, measure: Measure, value: &AttrValue) -> Self {
        match value {
            AttrValue::Text(s) => PreparedValue::Text(measure.prepare_with(kernel, s)),
            AttrValue::Number(x) => PreparedValue::Number {
                raw: *x,
                // The rendering is moved into the preparation, so the Raw
                // family stores it without a second allocation.
                text: measure.prepare_owned_with(kernel, x.to_string()),
            },
            AttrValue::Missing => PreparedValue::Missing,
        }
    }

    /// [`PreparedValue::new`] through a shard-local interner; every value
    /// of a shard — including numeric renderings — must go through the
    /// same interner so their id profiles stay comparable.
    fn new_interned(
        kernel: SimKernel,
        measure: Measure,
        value: &AttrValue,
        interner: &mut StrInterner,
    ) -> Self {
        match value {
            AttrValue::Text(s) => {
                PreparedValue::Text(measure.prepare_interned_with(kernel, s, interner))
            }
            AttrValue::Number(x) => PreparedValue::Number {
                raw: *x,
                text: measure.prepare_owned_interned_with(kernel, x.to_string(), interner),
            },
            AttrValue::Missing => PreparedValue::Missing,
        }
    }
}

/// [`compare_values`] over prepared inputs — bit-identical by construction:
/// every arm reduces to the same similarity call on the same data (the
/// `number_native` split mirrors [`Measure::number`]'s dispatch, and the
/// text fallback there operates on exactly the renderings cached in
/// [`PreparedValue::Number`]).
fn prepared_pair(kernel: SimKernel, measure: Measure, a: &PreparedValue, b: &PreparedValue) -> f64 {
    use PreparedValue as P;
    match (a, b) {
        (P::Text(x), P::Text(y)) => measure.prepared_with(kernel, x, y),
        (P::Number { raw: x, text: tx }, P::Number { raw: y, text: ty }) => {
            if measure.number_native() {
                measure.number_with(kernel, *x, *y)
            } else {
                measure.prepared_with(kernel, tx, ty)
            }
        }
        (P::Text(x), P::Number { text: y, .. }) => measure.prepared_with(kernel, x, y),
        (P::Number { text: x, .. }, P::Text(y)) => measure.prepared_with(kernel, x, y),
        _ => 0.0, // at least one side missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, entity: u64, title: &str, year: f64) -> Record {
        Record::new(id, entity, vec![AttrValue::Text(title.into()), AttrValue::Number(year)])
    }

    fn cmp() -> Comparison {
        Comparison::new(vec![(0, Measure::TokenJaccard), (1, Measure::Year)]).unwrap()
    }

    #[test]
    fn feature_vectors_and_labels() {
        let left = vec![rec(0, 100, "deep entity matching", 2018.0)];
        let right = vec![
            rec(0, 100, "deep entity matching", 2018.0),
            rec(1, 200, "something else entirely", 1970.0),
        ];
        let (x, y) = cmp().compare_pairs(&left, &right, &[(0, 0), (0, 1)]).unwrap();
        assert_eq!(x.rows(), 2);
        assert_eq!(x.row(0), &[1.0, 1.0]);
        assert!(x.row(1)[0] < 0.3);
        assert_eq!(y, vec![Label::Match, Label::NonMatch]);
    }

    #[test]
    fn missing_values_score_zero() {
        let a = Record::new(0, 1, vec![AttrValue::Missing, AttrValue::Number(2000.0)]);
        let b = rec(1, 1, "anything", 2000.0);
        let v = cmp().feature_vector(&a, &b);
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn mixed_text_number_compares_textually() {
        let a =
            Record::new(0, 1, vec![AttrValue::Text("x".into()), AttrValue::Text("1999".into())]);
        let b = rec(1, 1, "x", 1999.0);
        let v = cmp().feature_vector(&a, &b);
        assert_eq!(v[1], 1.0);
    }

    #[test]
    fn dataset_bundling() {
        let left = vec![rec(0, 1, "a b", 2000.0)];
        let right = vec![rec(0, 1, "a b", 2000.0)];
        let ds = cmp().compare_to_dataset("test", &left, &right, &[(0, 0)]).unwrap();
        assert_eq!(ds.name, "test");
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.num_matches(), 1);
    }

    #[test]
    fn empty_feature_space_rejected() {
        assert!(Comparison::new(vec![]).is_err());
    }

    #[test]
    fn feature_vector_into_matches_allocating_form() {
        let a = rec(0, 1, "deep entity matching", 2018.0);
        let b = rec(1, 1, "deep matching", 2019.0);
        let c = cmp();
        let mut buf = vec![9.9; c.num_features()];
        c.feature_vector_into(&a, &b, &mut buf);
        assert_eq!(buf, c.feature_vector(&a, &b));
    }

    #[test]
    #[should_panic(expected = "feature buffer length")]
    fn feature_vector_into_checks_length() {
        let a = rec(0, 1, "x", 1.0);
        cmp().feature_vector_into(&a, &a, &mut [0.0]);
    }

    /// The prepared matrix path must equal the per-pair `feature_vector`
    /// path bit-for-bit, for every measure and every Text/Number/Missing
    /// value combination.
    #[test]
    fn prepared_path_matches_feature_vector_exactly() {
        let measures = [
            Measure::Jaro,
            Measure::JaroWinkler,
            Measure::Levenshtein,
            Measure::TokenJaccard,
            Measure::QgramJaccard(2),
            Measure::TokenDice,
            Measure::QgramDice(3),
            Measure::TokenOverlap,
            Measure::Lcs,
            Measure::MongeElkanJw,
            Measure::Soundex,
            Measure::Exact,
            Measure::Numeric(5.0),
            Measure::Year,
        ];
        let values = [
            AttrValue::Text("deep entity matching".into()),
            AttrValue::Text("1999".into()),
            AttrValue::Text(String::new()),
            AttrValue::Number(1999.0),
            AttrValue::Number(1999.5),
            AttrValue::Missing,
        ];
        // One record per value; a comparison applying every measure to it.
        let comparison = Comparison::new(measures.iter().map(|&m| (0, m)).collect()).unwrap();
        let records: Vec<Record> = values
            .iter()
            .enumerate()
            .map(|(i, v)| Record::new(i as u64, 0, vec![v.clone()]))
            .collect();
        let pairs: Vec<CandidatePair> =
            (0..records.len()).flat_map(|i| (0..records.len()).map(move |j| (i, j))).collect();
        for workers in [1, 4] {
            let (x, _) = comparison
                .compare_pairs_with_pool(
                    &records,
                    &records,
                    &pairs,
                    &transer_parallel::Pool::new(workers),
                )
                .unwrap();
            for (row, &(i, j)) in pairs.iter().enumerate() {
                let direct = comparison.feature_vector(&records[i], &records[j]);
                for (f, (got, want)) in x.row(row).iter().zip(&direct).enumerate() {
                    assert!(
                        got.to_bits() == want.to_bits(),
                        "workers={workers} {:?} on rows ({i}, {j}): {got} != {want}",
                        measures[f],
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_compare_is_deterministic() {
        let left: Vec<Record> = (0..40)
            .map(|i| {
                rec(i, i, &format!("record number {i} with some title text"), 1950.0 + i as f64)
            })
            .collect();
        let right = left.clone();
        let pairs: Vec<CandidatePair> =
            (0..40).flat_map(|i| (0..40).map(move |j| (i as usize, j as usize))).collect();
        let c = cmp();
        let seq = c
            .compare_pairs_with_pool(&left, &right, &pairs, &transer_parallel::Pool::new(1))
            .unwrap();
        let par = c
            .compare_pairs_with_pool(&left, &right, &pairs, &transer_parallel::Pool::new(4))
            .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn shard_ranges_cover_and_respect_groups() {
        // Pairs with ragged left groups, including one oversized group.
        let mut pairs: Vec<CandidatePair> = Vec::new();
        for i in 0..40 {
            let fanout = if i == 7 { 50 } else { 1 + i % 5 };
            for j in 0..fanout {
                pairs.push((i, j));
            }
        }
        let ranges = shard_ranges(&pairs, 10);
        assert!(ranges.len() > 1);
        // Exact cover, in order.
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, pairs.len());
        for w in ranges.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // Cuts land on group boundaries unless the group is oversized.
        for w in ranges.windows(2) {
            let k = w[0].1;
            let same_group = pairs[k].0 == pairs[k - 1].0;
            assert!(!same_group || w[0].1 - w[0].0 >= 40, "cut inside small group at {k}");
        }
        assert!(shard_ranges(&[], 10).is_empty());
        assert_eq!(shard_ranges(&[(0, 0)], 10), vec![(0, 1)]);
    }

    /// The block-sharded path must be bit-identical to the global-prepare
    /// path — and to itself under inline vs pooled dispatch — on every
    /// measure and value shape.
    #[test]
    fn sharded_colmajor_path_matches_global_prepare_exactly() {
        use transer_parallel::{GrainMode, Pool};
        let comparison = Comparison::new(vec![
            (0, Measure::TokenJaccard),
            (0, Measure::MongeElkanJw),
            (1, Measure::Year),
            (1, Measure::Numeric(5.0)),
        ])
        .unwrap();
        let records: Vec<Record> = (0..60)
            .map(|i| match i % 5 {
                0 => rec(i, i % 11, &format!("entity record number {i} title words"), 1980.0),
                1 => rec(i, i % 11, &format!("entity record {i}"), 1980.0 + i as f64),
                2 => Record::new(i, i % 11, vec![AttrValue::Missing, AttrValue::Number(2000.0)]),
                3 => Record::new(
                    i,
                    i % 11,
                    vec![AttrValue::Text(format!("{i}")), AttrValue::Text("1999".into())],
                ),
                _ => {
                    Record::new(i, i % 11, vec![AttrValue::Text(String::new()), AttrValue::Missing])
                }
            })
            .collect();
        // Ragged, sorted pair list like the blocker emits.
        let pairs: Vec<CandidatePair> = (0..records.len())
            .flat_map(|i| (0..1 + (i * 7) % 9).map(move |j| (i, (i + j) % 60)))
            .collect();
        let seq = Pool::new(1);
        let (expect, labels_expect) =
            comparison.compare_pairs_global_prepare(&records, &records, &pairs, &seq).unwrap();
        for (workers, mode) in
            [(1, GrainMode::Auto), (4, GrainMode::AlwaysInline), (4, GrainMode::AlwaysPool)]
        {
            let pool = Pool::new(workers).with_grain(mode);
            let (cm, labels) = comparison
                .compare_pairs_colmajor_with_pool(&records, &records, &pairs, &pool)
                .unwrap();
            assert_eq!(labels, labels_expect);
            let x = cm.to_feature_matrix().unwrap();
            assert_eq!(x.rows(), expect.rows());
            for r in 0..x.rows() {
                for (a, b) in x.row(r).iter().zip(expect.row(r)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "workers={workers} {mode:?} row {r}");
                }
            }
        }
    }

    #[test]
    fn compare_fault_site_covers_every_kind() {
        let _guard = transer_robust::test_lock();
        let left = vec![rec(0, 1, "a b", 2000.0), rec(1, 2, "c d", 2001.0)];
        let right = left.clone();
        let pairs = [(0, 0), (0, 1), (1, 1)];
        let c = cmp();

        transer_robust::set_plan(Some("compare:task_fail"));
        assert_eq!(c.compare_pairs(&left, &right, &pairs), Err(Error::FaultInjected("compare")));

        transer_robust::set_plan(Some("compare:nan"));
        let (x, y) = c.compare_pairs(&left, &right, &pairs).unwrap();
        assert!(x.as_slice().iter().any(|v| v.is_nan()));
        assert_eq!(y.len(), pairs.len());

        transer_robust::set_plan(Some("compare:empty"));
        let (x, y) = c.compare_pairs(&left, &right, &pairs).unwrap();
        assert!(x.is_empty() && y.is_empty());

        transer_robust::set_plan(Some("compare:single_class"));
        let (_, y) = c.compare_pairs(&left, &right, &pairs).unwrap();
        assert!(y.iter().all(|l| *l == Label::NonMatch));

        transer_robust::set_plan(None);
        let (x, y) = c.compare_pairs(&left, &right, &pairs).unwrap();
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(y[0], Label::Match);
    }
}

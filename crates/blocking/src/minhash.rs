//! MinHash signatures with LSH banding — the blocking technique of the
//! paper's experimental setup (Section 5.1.1).
//!
//! Each record's token set is summarised by `num_hashes` min-wise hashes;
//! the signature is cut into `bands` bands of `rows = num_hashes / bands`
//! values, each band is hashed into a bucket, and two records become a
//! candidate pair when they share at least one bucket. The probability that
//! records with token Jaccard `s` collide is `1 − (1 − s^rows)^bands`, the
//! classic S-curve.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_common::Record;
use transer_parallel::{CostClass, CostHint, Pool};

use crate::tokenize::token_hashes_masked;
use crate::CandidatePair;

/// Configuration of the MinHash LSH blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinHashLshConfig {
    /// Total number of min-wise hash functions (signature length).
    pub num_hashes: usize,
    /// Number of LSH bands; must divide `num_hashes`.
    pub bands: usize,
    /// Seed for the random hash coefficients.
    pub seed: u64,
    /// Skip buckets holding more than this many records (0 = unlimited).
    /// High-frequency buckets (`john macdonald` in a Skye parish) generate
    /// quadratically many uninformative candidates; capping them is the
    /// standard block-size filter of Papadakis et al. (2020).
    pub max_bucket: usize,
}

impl Default for MinHashLshConfig {
    fn default() -> Self {
        // 8 bands x 4 rows: collision probability 0.5 at Jaccard ~0.54,
        // catching typo-corrupted matches while pruning most non-matches.
        MinHashLshConfig { num_hashes: 32, bands: 8, seed: 0xB10C, max_bucket: 0 }
    }
}

/// MinHash LSH blocker over record token sets.
#[derive(Debug, Clone)]
pub struct MinHashLsh {
    config: MinHashLshConfig,
    /// Per-hash-function odd multipliers and offsets for the
    /// multiply-shift universal hash family.
    coeffs: Vec<(u64, u64)>,
}

impl MinHashLsh {
    /// Create a blocker.
    ///
    /// # Panics
    /// Panics when `bands` does not divide `num_hashes`, or either is zero.
    pub fn new(config: MinHashLshConfig) -> Self {
        assert!(config.num_hashes > 0 && config.bands > 0, "hashes and bands must be positive");
        assert_eq!(config.num_hashes % config.bands, 0, "bands must divide num_hashes");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let coeffs = (0..config.num_hashes)
            .map(|_| (rng.random::<u64>() | 1, rng.random::<u64>()))
            .collect();
        MinHashLsh { config, coeffs }
    }

    /// Rows per band.
    pub fn rows_per_band(&self) -> usize {
        self.config.num_hashes / self.config.bands
    }

    /// MinHash signature of a token-hash set; all-`u64::MAX` for an empty
    /// set (such records never collide).
    pub fn signature(&self, token_hashes: &[u64]) -> Vec<u64> {
        self.coeffs
            .iter()
            .map(|&(a, b)| {
                token_hashes
                    .iter()
                    .map(|&t| a.wrapping_mul(t).wrapping_add(b))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Band bucket keys of a signature.
    fn band_keys(&self, signature: &[u64]) -> Vec<u64> {
        let rows = self.rows_per_band();
        signature
            .chunks_exact(rows)
            .enumerate()
            .map(|(band, chunk)| {
                let mut h = DefaultHasher::new();
                band.hash(&mut h);
                chunk.hash(&mut h);
                h.finish()
            })
            .collect()
    }

    /// Tokenise, sign and band every record in parallel; `None` marks
    /// records with empty token sets (which never block). Output is in
    /// record order, so downstream bucket insertion stays deterministic.
    fn all_band_keys(
        &self,
        records: &[Record],
        attrs: Option<&[usize]>,
        pool: &Pool,
    ) -> Vec<Option<Vec<u64>>> {
        // Tokenise + sign + band is per-record tokenising/hashing work.
        let hint = CostHint::new(records.len(), CostClass::Medium);
        pool.par_map_costed(records, hint, |rec| {
            let hashes = token_hashes_masked(rec, attrs);
            if hashes.is_empty() {
                None
            } else {
                Some(self.band_keys(&self.signature(&hashes)))
            }
        })
    }

    /// Candidate pairs for linking two databases: indices `(i, j)` with `i`
    /// into `left` and `j` into `right`, deduplicated and sorted.
    pub fn candidate_pairs(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        self.candidate_pairs_masked(left, right, None)
    }

    /// Like [`MinHashLsh::candidate_pairs`] but blocking only on the given
    /// attribute indices (`None` = all attributes) — see
    /// [`crate::record_tokens_masked`]. Signature computation and bucket
    /// probing run on the global [`Pool`] (`TRANSER_THREADS`); the sorted,
    /// deduplicated output is identical for every worker count.
    pub fn candidate_pairs_masked(
        &self,
        left: &[Record],
        right: &[Record],
        attrs: Option<&[usize]>,
    ) -> Vec<CandidatePair> {
        self.candidate_pairs_masked_with_pool(left, right, attrs, &Pool::global())
    }

    /// [`MinHashLsh::candidate_pairs_masked`] on an explicit [`Pool`].
    pub fn candidate_pairs_masked_with_pool(
        &self,
        left: &[Record],
        right: &[Record],
        attrs: Option<&[usize]>,
        pool: &Pool,
    ) -> Vec<CandidatePair> {
        let _span = transer_trace::span("blocking.candidates");
        // Bucket the left records per band, then probe with the right.
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, keys) in self.all_band_keys(left, attrs, pool).iter().enumerate() {
            for &key in keys.iter().flatten() {
                buckets.entry(key).or_default().push(i as u32);
            }
        }
        let cap = if self.config.max_bucket == 0 { usize::MAX } else { self.config.max_bucket };
        let right_keys = self.all_band_keys(right, attrs, pool);
        // Per right record: a handful of bucket probes and pair pushes.
        let probe_hint = CostHint::new(right_keys.len(), CostClass::Light);
        let mut pairs: Vec<CandidatePair> =
            pool.par_chunks_costed(&right_keys, None, probe_hint, |start, chunk| {
                let mut local = Vec::new();
                for (k, keys) in chunk.iter().enumerate() {
                    let j = start + k;
                    for &key in keys.iter().flatten() {
                        if let Some(lefts) = buckets.get(&key) {
                            if lefts.len() > cap {
                                continue;
                            }
                            local.extend(lefts.iter().map(|&i| (i as usize, j)));
                        }
                    }
                }
                local
            });
        pairs.sort_unstable();
        pairs.dedup();
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.minhash.candidates", pairs.len() as u64);
        pairs
    }

    /// Candidate pairs for deduplication within one database: `(i, j)` with
    /// `i < j`, deduplicated and sorted. Signature computation runs on the
    /// global [`Pool`].
    pub fn candidate_pairs_dedup(&self, records: &[Record]) -> Vec<CandidatePair> {
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for (i, keys) in self.all_band_keys(records, None, &Pool::global()).iter().enumerate() {
            for &key in keys.iter().flatten() {
                buckets.entry(key).or_default().push(i as u32);
            }
        }
        let cap = if self.config.max_bucket == 0 { usize::MAX } else { self.config.max_bucket };
        let mut pairs = Vec::new();
        for members in buckets.values() {
            if members.len() > cap {
                continue;
            }
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                    pairs.push((lo as usize, hi as usize));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.minhash.candidates", pairs.len() as u64);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;

    fn rec(id: u64, entity: u64, title: &str) -> Record {
        Record::new(id, entity, vec![AttrValue::Text(title.into())])
    }

    fn blocker() -> MinHashLsh {
        MinHashLsh::new(MinHashLshConfig::default())
    }

    #[test]
    fn identical_records_always_collide() {
        let a = vec![rec(0, 1, "transfer learning for entity resolution")];
        let b = vec![rec(0, 1, "transfer learning for entity resolution")];
        assert_eq!(blocker().candidate_pairs(&a, &b), vec![(0, 0)]);
    }

    #[test]
    fn near_duplicates_collide_disjoint_do_not() {
        let left = vec![
            rec(0, 1, "a fast algorithm for record linkage"),
            rec(1, 2, "completely unrelated text about music"),
        ];
        let right = vec![
            rec(0, 1, "a fast algorithm for record linkage systems"),
            rec(1, 3, "quantum chromodynamics on the lattice"),
        ];
        let pairs = blocker().candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0)), "near-duplicate pair missed: {pairs:?}");
        assert!(!pairs.contains(&(1, 1)), "disjoint pair not pruned: {pairs:?}");
    }

    #[test]
    fn dedup_within_one_database() {
        let recs = vec![
            rec(0, 1, "the beatles abbey road remastered"),
            rec(1, 1, "the beatles abbey road"),
            rec(2, 2, "pink floyd the dark side of the moon"),
        ];
        let pairs = blocker().candidate_pairs_dedup(&recs);
        assert!(pairs.contains(&(0, 1)));
        for &(i, j) in &pairs {
            assert!(i < j);
        }
    }

    #[test]
    fn empty_records_never_block() {
        let left = vec![Record::new(0, 1, vec![AttrValue::Missing])];
        let right = vec![Record::new(0, 1, vec![AttrValue::Missing])];
        assert!(blocker().candidate_pairs(&left, &right).is_empty());
    }

    #[test]
    fn signature_is_deterministic() {
        let b = blocker();
        let h = vec![1u64, 5, 99];
        assert_eq!(b.signature(&h), b.signature(&h));
        assert_eq!(b.signature(&h).len(), 32);
    }

    #[test]
    fn signature_similarity_tracks_jaccard() {
        let b = MinHashLsh::new(MinHashLshConfig {
            num_hashes: 256,
            bands: 32,
            seed: 7,
            ..Default::default()
        });
        let s1: Vec<u64> = (0..100).collect();
        let s2: Vec<u64> = (20..120).collect(); // Jaccard = 80/120 ≈ 0.667
        let sig1 = b.signature(&s1);
        let sig2 = b.signature(&s2);
        let agree = sig1.iter().zip(&sig2).filter(|(a, b)| a == b).count();
        let est = agree as f64 / sig1.len() as f64;
        assert!((est - 2.0 / 3.0).abs() < 0.15, "estimate {est}");
    }

    #[test]
    #[should_panic(expected = "bands must divide")]
    fn invalid_banding_panics() {
        MinHashLsh::new(MinHashLshConfig {
            num_hashes: 10,
            bands: 3,
            seed: 0,
            ..Default::default()
        });
    }

    #[test]
    fn parallel_blocking_is_deterministic() {
        let titles = [
            "a fast algorithm for record linkage",
            "record linkage at scale",
            "the beatles abbey road",
            "entity resolution with transfer learning",
            "transfer learning for entity resolution",
        ];
        let left: Vec<Record> = (0..200)
            .map(|i| rec(i, i % 7, &format!("{} volume {}", titles[i as usize % 5], i % 13)))
            .collect();
        let right: Vec<Record> = (0..200)
            .map(|i| rec(i, i % 7, &format!("{} volume {}", titles[i as usize % 5], i % 11)))
            .collect();
        let b = blocker();
        let seq = b.candidate_pairs_masked_with_pool(
            &left,
            &right,
            None,
            &transer_parallel::Pool::new(1),
        );
        let par = b.candidate_pairs_masked_with_pool(
            &left,
            &right,
            None,
            &transer_parallel::Pool::new(4),
        );
        assert!(!seq.is_empty());
        assert_eq!(seq, par);
    }
}

//! MinHash signatures with LSH banding — the blocking technique of the
//! paper's experimental setup (Section 5.1.1).
//!
//! Each record's token set is summarised by `num_hashes` min-wise hashes;
//! the signature is cut into `bands` bands of `rows = num_hashes / bands`
//! values, each band is hashed into a bucket, and two records become a
//! candidate pair when they share at least one bucket. The probability that
//! records with token Jaccard `s` collide is `1 − (1 − s^rows)^bands`, the
//! classic S-curve.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_common::{Error, Record, Result};
use transer_parallel::{CostClass, CostHint, Pool};

use crate::tokenize::token_hashes_masked;
use crate::CandidatePair;

/// Configuration of the MinHash LSH blocker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinHashLshConfig {
    /// Total number of min-wise hash functions (signature length).
    pub num_hashes: usize,
    /// Number of LSH bands; must divide `num_hashes`.
    pub bands: usize,
    /// Seed for the random hash coefficients.
    pub seed: u64,
    /// Skip buckets holding more than this many records (0 = unlimited).
    /// High-frequency buckets (`john macdonald` in a Skye parish) generate
    /// quadratically many uninformative candidates; capping them is the
    /// standard block-size filter of Papadakis et al. (2020).
    pub max_bucket: usize,
}

impl Default for MinHashLshConfig {
    fn default() -> Self {
        // 8 bands x 4 rows: collision probability 0.5 at Jaccard ~0.54,
        // catching typo-corrupted matches while pruning most non-matches.
        MinHashLshConfig { num_hashes: 32, bands: 8, seed: 0xB10C, max_bucket: 0 }
    }
}

impl MinHashLshConfig {
    /// Validate the banding layout.
    ///
    /// Rejects `bands == 0` (the rows-per-band division would be undefined)
    /// and `num_hashes == 0` (no signature), and rejects `bands` that do not
    /// divide `num_hashes`: `chunks_exact` would silently drop the trailing
    /// `num_hashes % bands` hash functions, paying for hashes that never
    /// block.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if self.num_hashes == 0 {
            return Err(Error::InvalidParameter {
                name: "num_hashes",
                message: "must be positive".into(),
            });
        }
        if self.bands == 0 {
            return Err(Error::InvalidParameter {
                name: "bands",
                message: "must be positive (rows per band is num_hashes / bands)".into(),
            });
        }
        if !self.num_hashes.is_multiple_of(self.bands) {
            return Err(Error::InvalidParameter {
                name: "bands",
                message: format!(
                    "must divide num_hashes: {} % {} == {} trailing hashes would never block",
                    self.num_hashes,
                    self.bands,
                    self.num_hashes % self.bands
                ),
            });
        }
        Ok(())
    }
}

/// MinHash LSH blocker over record token sets.
#[derive(Debug, Clone)]
pub struct MinHashLsh {
    config: MinHashLshConfig,
    /// Per-hash-function odd multipliers and offsets for the
    /// multiply-shift universal hash family.
    coeffs: Vec<(u64, u64)>,
}

impl MinHashLsh {
    /// Create a blocker.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when the banding layout is invalid — see
    /// [`MinHashLshConfig::validate`].
    pub fn new(config: MinHashLshConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let coeffs = (0..config.num_hashes)
            .map(|_| (rng.random::<u64>() | 1, rng.random::<u64>()))
            .collect();
        Ok(MinHashLsh { config, coeffs })
    }

    /// The validated configuration this blocker was built from.
    pub fn config(&self) -> &MinHashLshConfig {
        &self.config
    }

    /// Rows per band (`bands > 0` is guaranteed by construction).
    pub fn rows_per_band(&self) -> usize {
        self.config.num_hashes / self.config.bands
    }

    /// MinHash signature of a token-hash set; all-`u64::MAX` for an empty
    /// set (such records never collide).
    pub fn signature(&self, token_hashes: &[u64]) -> Vec<u64> {
        self.coeffs
            .iter()
            .map(|&(a, b)| {
                token_hashes
                    .iter()
                    .map(|&t| a.wrapping_mul(t).wrapping_add(b))
                    .min()
                    .unwrap_or(u64::MAX)
            })
            .collect()
    }

    /// Band bucket keys of a signature.
    fn band_keys(&self, signature: &[u64]) -> Vec<u64> {
        let rows = self.rows_per_band();
        signature
            .chunks_exact(rows)
            .enumerate()
            .map(|(band, chunk)| {
                let mut h = DefaultHasher::new();
                band.hash(&mut h);
                chunk.hash(&mut h);
                h.finish()
            })
            .collect()
    }

    /// Band bucket keys of one record under an attribute mask; `None` when
    /// the record's token set is empty (such records never block). This is
    /// the per-record unit of work behind both the batch blocking paths and
    /// the incremental [`crate::LshIndex`].
    pub fn record_band_keys(&self, record: &Record, attrs: Option<&[usize]>) -> Option<Vec<u64>> {
        let hashes = token_hashes_masked(record, attrs);
        if hashes.is_empty() {
            None
        } else {
            Some(self.band_keys(&self.signature(&hashes)))
        }
    }

    /// Tokenise, sign and band every record in parallel; `None` marks
    /// records with empty token sets (which never block). Output is in
    /// record order, so downstream bucket insertion stays deterministic.
    fn all_band_keys(
        &self,
        records: &[Record],
        attrs: Option<&[usize]>,
        pool: &Pool,
    ) -> Vec<Option<Vec<u64>>> {
        // Tokenise + sign + band is per-record tokenising/hashing work.
        let hint = CostHint::new(records.len(), CostClass::Medium);
        pool.par_map_costed(records, hint, |rec| self.record_band_keys(rec, attrs))
    }

    /// Candidate pairs for linking two databases: indices `(i, j)` with `i`
    /// into `left` and `j` into `right`, deduplicated and sorted.
    pub fn candidate_pairs(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        self.candidate_pairs_masked(left, right, None)
    }

    /// Like [`MinHashLsh::candidate_pairs`] but blocking only on the given
    /// attribute indices (`None` = all attributes) — see
    /// [`crate::record_tokens_masked`]. Signature computation and bucket
    /// probing run on the global [`Pool`] (`TRANSER_THREADS`); the sorted,
    /// deduplicated output is identical for every worker count.
    pub fn candidate_pairs_masked(
        &self,
        left: &[Record],
        right: &[Record],
        attrs: Option<&[usize]>,
    ) -> Vec<CandidatePair> {
        self.candidate_pairs_masked_with_pool(left, right, attrs, &Pool::global())
    }

    /// [`MinHashLsh::candidate_pairs_masked`] on an explicit [`Pool`].
    pub fn candidate_pairs_masked_with_pool(
        &self,
        left: &[Record],
        right: &[Record],
        attrs: Option<&[usize]>,
        pool: &Pool,
    ) -> Vec<CandidatePair> {
        let _span = transer_trace::span("blocking.candidates");
        // Bucket the left records per band, then probe with the right.
        // Members are stored as `usize`: record indices cover the full
        // address-space range with no truncation (a `u32` here silently
        // aliased indices above 2^32 into wrong pairs).
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, keys) in self.all_band_keys(left, attrs, pool).iter().enumerate() {
            for &key in keys.iter().flatten() {
                buckets.entry(key).or_default().push(i);
            }
        }
        let cap = if self.config.max_bucket == 0 { usize::MAX } else { self.config.max_bucket };
        let right_keys = self.all_band_keys(right, attrs, pool);
        // Per right record: a handful of bucket probes and pair pushes.
        let probe_hint = CostHint::new(right_keys.len(), CostClass::Light);
        let mut pairs: Vec<CandidatePair> =
            pool.par_chunks_costed(&right_keys, None, probe_hint, |start, chunk| {
                let mut local = Vec::new();
                for (k, keys) in chunk.iter().enumerate() {
                    let j = start + k;
                    for &key in keys.iter().flatten() {
                        if let Some(lefts) = buckets.get(&key) {
                            if lefts.len() > cap {
                                continue;
                            }
                            local.extend(lefts.iter().map(|&i| (i, j)));
                        }
                    }
                }
                local
            });
        pairs.sort_unstable();
        pairs.dedup();
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.minhash.candidates", pairs.len() as u64);
        pairs
    }

    /// Candidate pairs for deduplication within one database: `(i, j)` with
    /// `i < j`, deduplicated and sorted. Signature computation and the
    /// bucket-member sweep run on the global [`Pool`].
    pub fn candidate_pairs_dedup(&self, records: &[Record]) -> Vec<CandidatePair> {
        self.candidate_pairs_dedup_masked_with_pool(records, None, &Pool::global())
    }

    /// Like [`MinHashLsh::candidate_pairs_dedup`] but blocking only on the
    /// given attribute indices (`None` = all attributes), mirroring the
    /// linking path.
    pub fn candidate_pairs_dedup_masked(
        &self,
        records: &[Record],
        attrs: Option<&[usize]>,
    ) -> Vec<CandidatePair> {
        self.candidate_pairs_dedup_masked_with_pool(records, attrs, &Pool::global())
    }

    /// [`MinHashLsh::candidate_pairs_dedup_masked`] on an explicit [`Pool`].
    ///
    /// The quadratic per-bucket member loop is sharded through the grain
    /// model: buckets are costed by their actual pair counts (not bucket
    /// count), so one giant bucket does not serialise the sweep. Indices are
    /// `usize` throughout — no truncation at any dataset size — and the
    /// sorted, deduplicated output is identical for every worker count.
    pub fn candidate_pairs_dedup_masked_with_pool(
        &self,
        records: &[Record],
        attrs: Option<&[usize]>,
        pool: &Pool,
    ) -> Vec<CandidatePair> {
        let _span = transer_trace::span("blocking.candidates");
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, keys) in self.all_band_keys(records, attrs, pool).iter().enumerate() {
            for &key in keys.iter().flatten() {
                buckets.entry(key).or_default().push(i);
            }
        }
        let cap = if self.config.max_bucket == 0 { usize::MAX } else { self.config.max_bucket };
        // Only buckets that emit pairs: at least two members, under the cap.
        let groups: Vec<&Vec<usize>> =
            buckets.values().filter(|m| m.len() >= 2 && m.len() <= cap).collect();
        // Cost one "item" (bucket) by the mean pairs-per-bucket so the grain
        // model sees the quadratic work, not the bucket count.
        let total_pairs: usize = groups.iter().map(|m| m.len() * (m.len() - 1) / 2).sum();
        const DEDUP_PAIR_NANOS: u64 = 25;
        let per_group = ((total_pairs as u64).saturating_mul(DEDUP_PAIR_NANOS)
            / groups.len().max(1) as u64)
            .max(1);
        let hint = CostHint::with_per_item_nanos(groups.len(), per_group);
        let mut pairs: Vec<CandidatePair> =
            pool.par_chunks_costed(&groups, None, hint, |_start, chunk| {
                let mut local = Vec::new();
                for members in chunk {
                    for (a, &i) in members.iter().enumerate() {
                        for &j in &members[a + 1..] {
                            let (lo, hi) = if i < j { (i, j) } else { (j, i) };
                            local.push((lo, hi));
                        }
                    }
                }
                local
            });
        pairs.sort_unstable();
        pairs.dedup();
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.minhash.candidates", pairs.len() as u64);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;

    fn rec(id: u64, entity: u64, title: &str) -> Record {
        Record::new(id, entity, vec![AttrValue::Text(title.into())])
    }

    fn blocker() -> MinHashLsh {
        MinHashLsh::new(MinHashLshConfig::default()).expect("default config is valid")
    }

    #[test]
    fn identical_records_always_collide() {
        let a = vec![rec(0, 1, "transfer learning for entity resolution")];
        let b = vec![rec(0, 1, "transfer learning for entity resolution")];
        assert_eq!(blocker().candidate_pairs(&a, &b), vec![(0, 0)]);
    }

    #[test]
    fn near_duplicates_collide_disjoint_do_not() {
        let left = vec![
            rec(0, 1, "a fast algorithm for record linkage"),
            rec(1, 2, "completely unrelated text about music"),
        ];
        let right = vec![
            rec(0, 1, "a fast algorithm for record linkage systems"),
            rec(1, 3, "quantum chromodynamics on the lattice"),
        ];
        let pairs = blocker().candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0)), "near-duplicate pair missed: {pairs:?}");
        assert!(!pairs.contains(&(1, 1)), "disjoint pair not pruned: {pairs:?}");
    }

    #[test]
    fn dedup_within_one_database() {
        let recs = vec![
            rec(0, 1, "the beatles abbey road remastered"),
            rec(1, 1, "the beatles abbey road"),
            rec(2, 2, "pink floyd the dark side of the moon"),
        ];
        let pairs = blocker().candidate_pairs_dedup(&recs);
        assert!(pairs.contains(&(0, 1)));
        for &(i, j) in &pairs {
            assert!(i < j);
        }
    }

    #[test]
    fn empty_records_never_block() {
        let left = vec![Record::new(0, 1, vec![AttrValue::Missing])];
        let right = vec![Record::new(0, 1, vec![AttrValue::Missing])];
        assert!(blocker().candidate_pairs(&left, &right).is_empty());
    }

    #[test]
    fn signature_is_deterministic() {
        let b = blocker();
        let h = vec![1u64, 5, 99];
        assert_eq!(b.signature(&h), b.signature(&h));
        assert_eq!(b.signature(&h).len(), 32);
    }

    #[test]
    fn signature_similarity_tracks_jaccard() {
        let b = MinHashLsh::new(MinHashLshConfig {
            num_hashes: 256,
            bands: 32,
            seed: 7,
            ..Default::default()
        })
        .expect("256 hashes / 32 bands is valid");
        let s1: Vec<u64> = (0..100).collect();
        let s2: Vec<u64> = (20..120).collect(); // Jaccard = 80/120 ≈ 0.667
        let sig1 = b.signature(&s1);
        let sig2 = b.signature(&s2);
        let agree = sig1.iter().zip(&sig2).filter(|(a, b)| a == b).count();
        let est = agree as f64 / sig1.len() as f64;
        assert!((est - 2.0 / 3.0).abs() < 0.15, "estimate {est}");
    }

    #[test]
    fn zero_bands_is_a_typed_error_not_a_panic() {
        let err = MinHashLsh::new(MinHashLshConfig { bands: 0, ..Default::default() })
            .expect_err("bands == 0 must be rejected");
        assert!(
            matches!(err, Error::InvalidParameter { name: "bands", .. }),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn zero_hashes_is_a_typed_error() {
        let err = MinHashLsh::new(MinHashLshConfig { num_hashes: 0, ..Default::default() })
            .expect_err("num_hashes == 0 must be rejected");
        assert!(matches!(err, Error::InvalidParameter { name: "num_hashes", .. }));
    }

    #[test]
    fn non_divisible_banding_is_rejected_not_truncated() {
        // 10 hashes over 3 bands would silently drop one hash function via
        // chunks_exact; the config must refuse it up front.
        let err =
            MinHashLsh::new(MinHashLshConfig { num_hashes: 10, bands: 3, ..Default::default() })
                .expect_err("non-divisible banding must be rejected");
        assert!(matches!(err, Error::InvalidParameter { name: "bands", .. }));
        assert!(err.to_string().contains("divide"), "message should explain: {err}");
    }

    #[test]
    fn parallel_blocking_is_deterministic() {
        let titles = [
            "a fast algorithm for record linkage",
            "record linkage at scale",
            "the beatles abbey road",
            "entity resolution with transfer learning",
            "transfer learning for entity resolution",
        ];
        let left: Vec<Record> = (0..200)
            .map(|i| rec(i, i % 7, &format!("{} volume {}", titles[i as usize % 5], i % 13)))
            .collect();
        let right: Vec<Record> = (0..200)
            .map(|i| rec(i, i % 7, &format!("{} volume {}", titles[i as usize % 5], i % 11)))
            .collect();
        let b = blocker();
        let seq = b.candidate_pairs_masked_with_pool(
            &left,
            &right,
            None,
            &transer_parallel::Pool::new(1),
        );
        let par = b.candidate_pairs_masked_with_pool(
            &left,
            &right,
            None,
            &transer_parallel::Pool::new(4),
        );
        assert!(!seq.is_empty());
        assert_eq!(seq, par);
    }

    #[test]
    fn dedup_is_deterministic_across_pools_and_honours_attrs() {
        let titles = [
            "a fast algorithm for record linkage",
            "record linkage at scale",
            "the beatles abbey road",
            "entity resolution with transfer learning",
            "transfer learning for entity resolution",
        ];
        let recs: Vec<Record> = (0..300)
            .map(|i| {
                Record::new(
                    i,
                    i % 9,
                    vec![
                        AttrValue::Text(format!("{} part {}", titles[i as usize % 5], i % 13)),
                        AttrValue::Text(format!("noise {}", i)),
                    ],
                )
            })
            .collect();
        let b = blocker();
        let seq =
            b.candidate_pairs_dedup_masked_with_pool(&recs, None, &transer_parallel::Pool::new(1));
        let par =
            b.candidate_pairs_dedup_masked_with_pool(&recs, None, &transer_parallel::Pool::new(4));
        assert!(!seq.is_empty());
        assert_eq!(seq, par, "dedup pairs must be bit-identical across worker counts");
        assert_eq!(seq, b.candidate_pairs_dedup(&recs), "default entry point must agree");
        // Masking to the title attribute must differ from masking to the
        // noise attribute (attrs are actually plumbed through).
        let on_title = b.candidate_pairs_dedup_masked(&recs, Some(&[0]));
        let on_noise = b.candidate_pairs_dedup_masked(&recs, Some(&[1]));
        assert_ne!(on_title, on_noise);
    }
}

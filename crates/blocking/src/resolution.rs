//! Turning pairwise match decisions into entity clusters — the step after
//! classification in the ER process of Fig. 1 (Draisbach et al., 2019).
//!
//! Two strategies:
//!
//! * [`transitive_clusters`] — the classic transitive closure: connected
//!   components over the predicted match pairs. Simple, but one false
//!   match chains whole groups together.
//! * [`one_to_one_matching`] — greedy score-descending one-to-one
//!   assignment for two-database linkage, where each record may match at
//!   most one record of the other database (births link to one death).

use transer_common::Label;

use crate::CandidatePair;

/// Union-find over `0..n`.
struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), rank: vec![0; n] }
    }

    fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
    }
}

/// Transitive closure over predicted matches for a two-database task:
/// records are `0..n_left` (left) and `n_left..n_left+n_right` (right);
/// returns the clusters (sorted record ids), singletons omitted.
pub fn transitive_clusters(
    n_left: usize,
    n_right: usize,
    pairs: &[CandidatePair],
    labels: &[Label],
) -> Vec<Vec<usize>> {
    assert_eq!(pairs.len(), labels.len(), "pairs/labels length mismatch");
    let n = n_left + n_right;
    let mut uf = UnionFind::new(n);
    for (&(i, j), &label) in pairs.iter().zip(labels) {
        if label.is_match() {
            uf.union(i as u32, (n_left + j) as u32);
        }
    }
    let mut by_root: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
    for x in 0..n as u32 {
        by_root.entry(uf.find(x)).or_default().push(x as usize);
    }
    let mut clusters: Vec<Vec<usize>> = by_root.into_values().filter(|c| c.len() > 1).collect();
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort();
    clusters
}

/// Greedy one-to-one matching: process predicted matches in descending
/// score order and keep a pair only when both records are still unmatched.
/// Returns the kept pairs, sorted.
///
/// # Panics
/// Panics when the three slices disagree in length.
pub fn one_to_one_matching(
    pairs: &[CandidatePair],
    labels: &[Label],
    scores: &[f64],
) -> Vec<CandidatePair> {
    assert_eq!(pairs.len(), labels.len(), "pairs/labels length mismatch");
    assert_eq!(pairs.len(), scores.len(), "pairs/scores length mismatch");
    let mut order: Vec<usize> = (0..pairs.len()).filter(|&k| labels[k].is_match()).collect();
    // total_cmp gives NaN scores a fixed, input-order-independent position
    // (the index tiebreak pins exact ties), where partial_cmp's Equal
    // fallback made the order depend on where the NaN sat.
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    let mut left_used = std::collections::HashSet::new();
    let mut right_used = std::collections::HashSet::new();
    let mut kept = Vec::new();
    for k in order {
        let (i, j) = pairs[k];
        if left_used.contains(&i) || right_used.contains(&j) {
            continue;
        }
        left_used.insert(i);
        right_used.insert(j);
        kept.push((i, j));
    }
    kept.sort_unstable();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Label {
        Label::Match
    }
    fn n() -> Label {
        Label::NonMatch
    }

    #[test]
    fn transitive_closure_chains_matches() {
        // left 0 ~ right 0, left 1 ~ right 0 => {L0, L1, R0} one cluster.
        let pairs = vec![(0, 0), (1, 0), (2, 1)];
        let labels = vec![m(), m(), n()];
        let clusters = transitive_clusters(3, 2, &pairs, &labels);
        assert_eq!(clusters, vec![vec![0, 1, 3]]);
    }

    #[test]
    fn no_matches_no_clusters() {
        let pairs = vec![(0, 0), (1, 1)];
        let labels = vec![n(), n()];
        assert!(transitive_clusters(2, 2, &pairs, &labels).is_empty());
    }

    #[test]
    fn disjoint_matches_form_separate_clusters() {
        let pairs = vec![(0, 0), (1, 1)];
        let labels = vec![m(), m()];
        let clusters = transitive_clusters(2, 2, &pairs, &labels);
        assert_eq!(clusters, vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    fn one_to_one_prefers_higher_scores() {
        // Left 0 matches right 0 (0.9) and right 1 (0.8); left 1 matches
        // right 0 (0.7). Greedy keeps (0,0) then (1,?) - right 0 taken, so
        // left 1 goes unmatched; right 1 falls to nobody since left 0 used.
        let pairs = vec![(0, 0), (0, 1), (1, 0)];
        let labels = vec![m(), m(), m()];
        let scores = vec![0.9, 0.8, 0.7];
        let kept = one_to_one_matching(&pairs, &labels, &scores);
        assert_eq!(kept, vec![(0, 0)]);
    }

    #[test]
    fn one_to_one_assigns_the_stable_alternative() {
        let pairs = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
        let labels = vec![m(), m(), m(), m()];
        let scores = vec![0.95, 0.6, 0.7, 0.9];
        let kept = one_to_one_matching(&pairs, &labels, &scores);
        assert_eq!(kept, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn non_matches_never_kept() {
        let pairs = vec![(0, 0)];
        let labels = vec![n()];
        assert!(one_to_one_matching(&pairs, &labels, &[0.99]).is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let pairs = vec![(0, 0), (1, 0)];
        let labels = vec![m(), m()];
        let kept = one_to_one_matching(&pairs, &labels, &[0.8, 0.8]);
        assert_eq!(kept, vec![(0, 0)], "earlier pair wins equal scores");
    }

    #[test]
    fn nan_scores_order_deterministically() {
        // Regression for the total_cmp switch: total_cmp ranks positive
        // NaN above +Inf, so a NaN-scored pair greedily matches first and
        // the result is well-defined (partial_cmp's Equal fallback left
        // the order to sort-algorithm internals).
        let pairs = vec![(0, 0), (1, 0), (1, 1)];
        let labels = vec![m(), m(), m()];
        let kept = one_to_one_matching(&pairs, &labels, &[f64::NAN, 0.9, 0.8]);
        assert_eq!(kept, vec![(0, 0), (1, 1)], "NaN pair (0,0) taken first");
        let kept = one_to_one_matching(&pairs, &labels, &[0.9, f64::NAN, 0.8]);
        assert_eq!(kept, vec![(1, 0)], "NaN pair (1,0) taken first, blocking the rest");
    }
}

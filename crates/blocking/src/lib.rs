//! The blocking and record-pair comparison steps of the ER pipeline
//! (Fig. 1 of the paper).
//!
//! Blocking reduces the quadratic comparison space `R × R` to a candidate
//! set `B ⊂ R × R`. The paper's experiments use a locality-sensitive-
//! hashing technique that maps records with similar attribute values to the
//! same MinHash bucket (Papadakis et al., 2020); [`MinHashLsh`] implements
//! that scheme, and [`StandardBlocking`] / [`SortedNeighbourhood`] provide
//! the classic alternatives.
//!
//! The comparison step then turns each candidate pair into a feature vector
//! of attribute similarities; [`Comparison`] declares which
//! [`Measure`](transer_similarity::Measure) applies to which attribute and
//! produces the [`FeatureMatrix`](transer_common::FeatureMatrix) plus
//! ground-truth labels consumed by the transfer-learning layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compare;
mod lsh_index;
mod minhash;
mod resolution;
mod sorted;
mod standard;
mod tokenize;

pub use compare::Comparison;
pub use lsh_index::{LshIndex, COMPACT_MIN_TOMBSTONES, INDEX_SCHEMA_VERSION};
pub use minhash::{MinHashLsh, MinHashLshConfig};
pub use resolution::{one_to_one_matching, transitive_clusters};
pub use sorted::SortedNeighbourhood;
pub use standard::StandardBlocking;
pub use tokenize::{record_tokens, record_tokens_masked, token_hashes, token_hashes_masked};

/// A candidate record pair: indices into the two record slices handed to
/// the blocker (for deduplication within one database both indices refer to
/// the same slice and `left < right`).
pub type CandidatePair = (usize, usize);

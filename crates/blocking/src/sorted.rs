//! Sorted-neighbourhood blocking: sort all records by a sorting key and
//! slide a fixed-size window over the sorted sequence; records co-occurring
//! in a window become candidates.

use transer_common::Record;

use crate::CandidatePair;

/// Sorted-neighbourhood blocker with window size `w`.
pub struct SortedNeighbourhood<F>
where
    F: Fn(&Record) -> String,
{
    key_fn: F,
    window: usize,
}

impl<F> SortedNeighbourhood<F>
where
    F: Fn(&Record) -> String,
{
    /// Create a blocker with the given sorting-key function and window.
    ///
    /// # Panics
    /// Panics when `window < 2`.
    pub fn new(key_fn: F, window: usize) -> Self {
        assert!(window >= 2, "window must cover at least two records");
        SortedNeighbourhood { key_fn, window }
    }

    /// Candidate pairs for linking two databases: both sides are merged
    /// into one sorted sequence and only cross-database pairs inside the
    /// window are emitted. Sorted and deduplicated.
    pub fn candidate_pairs(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        // (key, side, index); side 0 = left, 1 = right.
        let mut keyed: Vec<(String, u8, usize)> = left
            .iter()
            .enumerate()
            .map(|(i, r)| ((self.key_fn)(r), 0, i))
            .chain(right.iter().enumerate().map(|(j, r)| ((self.key_fn)(r), 1, j)))
            .collect();
        keyed.sort();
        let mut pairs = Vec::new();
        for (pos, &(_, side_a, idx_a)) in keyed.iter().enumerate() {
            for &(_, side_b, idx_b) in keyed.iter().skip(pos + 1).take(self.window - 1) {
                match (side_a, side_b) {
                    (0, 1) => pairs.push((idx_a, idx_b)),
                    (1, 0) => pairs.push((idx_b, idx_a)),
                    _ => {}
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.sorted.candidates", pairs.len() as u64);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;

    fn rec(id: u64, name: &str) -> Record {
        Record::new(id, id, vec![AttrValue::Text(name.into())])
    }

    fn key(r: &Record) -> String {
        r.values[0].as_text().unwrap_or("").to_string()
    }

    #[test]
    fn window_pairs_adjacent_keys() {
        let left = vec![rec(0, "aaa"), rec(1, "mmm"), rec(2, "zzz")];
        let right = vec![rec(0, "aab"), rec(1, "mmn")];
        let b = SortedNeighbourhood::new(key, 2);
        let pairs = b.candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0)), "{pairs:?}"); // aaa ~ aab adjacent
        assert!(pairs.contains(&(1, 1)), "{pairs:?}"); // mmm ~ mmn adjacent
        assert!(!pairs.contains(&(2, 0)), "{pairs:?}"); // zzz far from aab
    }

    #[test]
    fn larger_window_superset_of_smaller() {
        let left: Vec<Record> = (0..6).map(|i| rec(i, &format!("k{i}"))).collect();
        let right: Vec<Record> = (0..6).map(|i| rec(i, &format!("k{i}x"))).collect();
        let small = SortedNeighbourhood::new(key, 2).candidate_pairs(&left, &right);
        let large = SortedNeighbourhood::new(key, 4).candidate_pairs(&left, &right);
        for p in &small {
            assert!(large.contains(p));
        }
        assert!(large.len() >= small.len());
    }

    #[test]
    fn only_cross_database_pairs() {
        let left = vec![rec(0, "a"), rec(1, "b")];
        let right = vec![rec(0, "c")];
        let b = SortedNeighbourhood::new(key, 3);
        for (i, j) in b.candidate_pairs(&left, &right) {
            assert!(i < left.len() && j < right.len());
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn tiny_window_panics() {
        SortedNeighbourhood::new(key, 1);
    }
}

//! Turning records into the token sets that blocking operates on.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use transer_common::{AttrValue, Record};
use transer_similarity::{qgrams, tokens};

/// All blocking tokens of a record: whitespace tokens plus character
/// 3-grams of every textual attribute, and the decimal rendering of every
/// numeric attribute. The redundancy (words *and* grams) makes the MinHash
/// signature robust to the typographical errors the paper's data sets are
/// full of.
pub fn record_tokens(record: &Record) -> Vec<String> {
    record_tokens_masked(record, None)
}

/// Like [`record_tokens`] but restricted to the attributes in `attrs`
/// (`None` = all). Blocking on a *subset* of attributes — titles for
/// publications, person names for civil registers — is standard ER
/// practice: it targets the identifying attributes and keeps shared
/// low-information attributes (venues, occupations) from flooding blocks.
pub fn record_tokens_masked(record: &Record, attrs: Option<&[usize]>) -> Vec<String> {
    let mut out = Vec::new();
    let selected: Box<dyn Iterator<Item = &AttrValue>> = match attrs {
        Some(idx) => Box::new(idx.iter().filter_map(|&q| record.values.get(q))),
        None => Box::new(record.values.iter()),
    };
    for value in selected {
        match value {
            AttrValue::Text(s) if !s.is_empty() => {
                out.extend(tokens(s));
                out.extend(qgrams(s, 3));
            }
            AttrValue::Number(x) => out.push(format!("num:{x}")),
            _ => {}
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Hash each token to a `u64` (stable within one process run) — MinHash
/// operates on these integers rather than the strings.
pub fn token_hashes(record: &Record) -> Vec<u64> {
    token_hashes_masked(record, None)
}

/// Masked variant of [`token_hashes`]; see [`record_tokens_masked`].
pub fn token_hashes_masked(record: &Record, attrs: Option<&[usize]>) -> Vec<u64> {
    let mut hashes: Vec<u64> = record_tokens_masked(record, attrs)
        .into_iter()
        .map(|t| {
            let mut h = DefaultHasher::new();
            t.hash(&mut h);
            h.finish()
        })
        .collect();
    hashes.sort_unstable();
    hashes.dedup();
    hashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;

    fn rec(title: &str, year: f64) -> Record {
        Record::new(0, 0, vec![AttrValue::Text(title.into()), AttrValue::Number(year)])
    }

    #[test]
    fn tokens_cover_words_grams_and_numbers() {
        let t = record_tokens(&rec("deep learning", 2018.0));
        assert!(t.contains(&"deep".to_string()));
        assert!(t.contains(&"learning".to_string()));
        assert!(t.contains(&"##d".to_string()));
        assert!(t.contains(&"num:2018".to_string()));
    }

    #[test]
    fn missing_values_ignored() {
        let r = Record::new(0, 0, vec![AttrValue::Missing, AttrValue::Text(String::new())]);
        assert!(record_tokens(&r).is_empty());
        assert!(token_hashes(&r).is_empty());
    }

    #[test]
    fn similar_records_share_most_tokens() {
        let a = token_hashes(&rec("the quick brown fox", 1999.0));
        let b = token_hashes(&rec("the quick browne fox", 1999.0));
        let inter = a.iter().filter(|h| b.contains(h)).count();
        let union = a.len() + b.len() - inter;
        assert!(inter as f64 / union as f64 > 0.6);
    }

    #[test]
    fn hashes_deduplicated_and_sorted() {
        let h = token_hashes(&rec("a a a b", 1.0));
        assert!(h.windows(2).all(|w| w[0] < w[1]));
    }
}

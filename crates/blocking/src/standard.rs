//! Standard (key-based) blocking: records agreeing on a blocking-key value
//! form a block, and all cross pairs within a block become candidates.

use std::collections::HashMap;

use transer_common::Record;

use crate::CandidatePair;

/// Key-based blocker; the key function typically concatenates encoded
/// attribute prefixes (e.g. Soundex of the surname + birth year).
pub struct StandardBlocking<F>
where
    F: Fn(&Record) -> Vec<String>,
{
    key_fn: F,
}

impl<F> StandardBlocking<F>
where
    F: Fn(&Record) -> Vec<String>,
{
    /// Create a blocker from a key function. A record may emit several keys
    /// (multi-pass blocking); records emitting no keys are never paired.
    pub fn new(key_fn: F) -> Self {
        StandardBlocking { key_fn }
    }

    /// Candidate pairs for linking two databases, sorted and deduplicated.
    pub fn candidate_pairs(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        let mut blocks: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, rec) in left.iter().enumerate() {
            for key in (self.key_fn)(rec) {
                blocks.entry(key).or_default().push(i as u32);
            }
        }
        let mut pairs = Vec::new();
        for (j, rec) in right.iter().enumerate() {
            for key in (self.key_fn)(rec) {
                if let Some(lefts) = blocks.get(&key) {
                    pairs.extend(lefts.iter().map(|&i| (i as usize, j)));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        apply_blocking_fault(&mut pairs);
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.standard.candidates", pairs.len() as u64);
        pairs
    }

    /// Candidate pairs within one database (`i < j`), sorted, deduplicated.
    pub fn candidate_pairs_dedup(&self, records: &[Record]) -> Vec<CandidatePair> {
        let mut blocks: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, rec) in records.iter().enumerate() {
            for key in (self.key_fn)(rec) {
                blocks.entry(key).or_default().push(i as u32);
            }
        }
        let mut pairs = Vec::new();
        for members in blocks.values() {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    pairs.push((i.min(j) as usize, i.max(j) as usize));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        apply_blocking_fault(&mut pairs);
        transer_trace::counter("blocking.passes", 1);
        transer_trace::counter("blocking.standard.candidates", pairs.len() as u64);
        pairs
    }
}

/// The `blocking` fault site: an armed `empty` or `task_fail` plan drops
/// every candidate pair (blocking has no float or label payload to poison,
/// so the other kinds are no-ops here). Downstream phases must then cope
/// with an empty comparison set.
fn apply_blocking_fault(pairs: &mut Vec<CandidatePair>) {
    use transer_robust::FaultKind;
    if let Some(FaultKind::Empty | FaultKind::TaskFail) =
        transer_robust::fired(transer_robust::site::BLOCKING)
    {
        pairs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;
    use transer_similarity::soundex;

    fn rec(id: u64, name: &str) -> Record {
        Record::new(id, id, vec![AttrValue::Text(name.into())])
    }

    fn surname_soundex(r: &Record) -> Vec<String> {
        r.values[0].as_text().map(|s| vec![soundex(s)]).unwrap_or_default()
    }

    #[test]
    fn groups_phonetically_equal_names() {
        let left = vec![rec(0, "smith"), rec(1, "jones")];
        let right = vec![rec(0, "smyth"), rec(1, "johnson")];
        let b = StandardBlocking::new(surname_soundex);
        let pairs = b.candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0)));
        assert!(!pairs.contains(&(1, 1))); // jones J520 vs johnson J525
    }

    #[test]
    fn multi_key_blocking_unions_blocks() {
        let key = |r: &Record| {
            let s = r.values[0].as_text().unwrap_or("");
            vec![s[..1.min(s.len())].to_string(), format!("len{}", s.len())]
        };
        let left = vec![rec(0, "abc")];
        let right = vec![rec(0, "axe"), rec(1, "zzz")];
        let b = StandardBlocking::new(key);
        let pairs = b.candidate_pairs(&left, &right);
        assert!(pairs.contains(&(0, 0))); // shares prefix "a"
        assert!(pairs.contains(&(0, 1))); // shares "len3"
    }

    #[test]
    fn dedup_pairs_ordered() {
        let recs = vec![rec(0, "smith"), rec(1, "smyth"), rec(2, "smith")];
        let b = StandardBlocking::new(surname_soundex);
        let pairs = b.candidate_pairs_dedup(&recs);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn keyless_records_never_pair() {
        let b = StandardBlocking::new(|_r: &Record| Vec::new());
        assert!(b.candidate_pairs(&[rec(0, "a")], &[rec(0, "a")]).is_empty());
    }

    #[test]
    fn blocking_fault_drops_candidates() {
        let _guard = transer_robust::test_lock();
        let left = vec![rec(0, "smith")];
        let right = vec![rec(0, "smyth")];
        let b = StandardBlocking::new(surname_soundex);
        transer_robust::set_plan(Some("blocking:empty"));
        assert!(b.candidate_pairs(&left, &right).is_empty());
        transer_robust::set_plan(Some("blocking:nan"));
        assert_eq!(b.candidate_pairs(&left, &right), vec![(0, 0)]);
        transer_robust::set_plan(None);
        assert_eq!(b.candidate_pairs(&left, &right), vec![(0, 0)]);
    }
}

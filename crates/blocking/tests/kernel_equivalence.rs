//! The comparison step must be bit-identical across similarity kernel
//! engines, worker counts and execution strategies: `fast` and
//! `reference` kernels, {1, 4} workers, the global-prepare path and the
//! block-sharded column-major path (with its shard-local interners) all
//! produce exactly the same feature matrix.

use proptest::prelude::*;
use transer_blocking::{CandidatePair, Comparison};
use transer_common::{AttrValue, Record};
use transer_parallel::Pool;
use transer_similarity::{Measure, SimKernel};

fn comparison() -> Comparison {
    Comparison::new(vec![
        (0, Measure::JaroWinkler),
        (0, Measure::TokenJaccard),
        (0, Measure::QgramJaccard(2)),
        (0, Measure::QgramDice(4)),
        (0, Measure::Levenshtein),
        (0, Measure::Lcs),
        (0, Measure::MongeElkanJw),
        (0, Measure::TokenOverlap),
        (1, Measure::Year),
        (1, Measure::Numeric(5.0)),
        (1, Measure::TokenDice),
        (0, Measure::Soundex),
        (0, Measure::Exact),
        (0, Measure::Jaro),
    ])
    .unwrap()
}

/// Deterministic xorshift (proptest drives only the seed).
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

const WORDS: [&str; 12] = [
    "deep",
    "entity",
    "matching",
    "наука",
    "récord",
    "a\u{0301}lbum",
    "1999",
    "o'brien",
    "smith-jones",
    "x",
    "",
    "transfer",
];

fn build_records(n: usize, seed: u64) -> Vec<Record> {
    let mut next = xorshift(seed);
    (0..n)
        .map(|i| {
            let title = match next() % 5 {
                0 => AttrValue::Missing,
                1 => AttrValue::Text(String::new()),
                2 => AttrValue::Number(1900.0 + (next() % 120) as f64),
                _ => {
                    let words = 1 + (next() % 5) as usize;
                    let mut s = String::new();
                    for w in 0..words {
                        if w > 0 {
                            s.push(' ');
                        }
                        s.push_str(WORDS[(next() % WORDS.len() as u64) as usize]);
                    }
                    // Occasionally exceed the 64-char bit-parallel block.
                    if next().is_multiple_of(7) {
                        s.push_str(&"long tail ".repeat(8));
                    }
                    AttrValue::Text(s)
                }
            };
            let year = match next() % 4 {
                0 => AttrValue::Missing,
                1 => AttrValue::Text(format!("{}", 1900 + (next() % 120))),
                _ => AttrValue::Number(1900.0 + (next() % 120) as f64),
            };
            Record::new(i as u64, next() % 13, vec![title, year])
        })
        .collect()
}

/// A ragged, left-sorted pair list like the blocker emits.
fn build_pairs(n: usize, seed: u64) -> Vec<CandidatePair> {
    let mut next = xorshift(seed);
    (0..n)
        .flat_map(|i| {
            let fanout = 1 + (next() % 6) as usize;
            let base = next() as usize;
            (0..fanout).map(move |k| (i, (base + k * 3) % n)).collect::<Vec<_>>()
        })
        .collect()
}

fn assert_bitwise_eq(
    a: &transer_common::FeatureMatrix,
    b: &transer_common::FeatureMatrix,
    what: &str,
) {
    assert_eq!(a.rows(), b.rows(), "{what}: rows");
    for r in 0..a.rows() {
        for (f, (x, y)) in a.row(r).iter().zip(b.row(r)).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: row {r} feature {f}: {x} vs {y}");
        }
    }
}

fn check_case(records: &[Record], pairs: &[CandidatePair]) {
    let reference = comparison().with_kernel(SimKernel::Reference);
    let fast = comparison().with_kernel(SimKernel::Fast);
    let (want, labels_want) =
        reference.compare_pairs_with_pool(records, records, pairs, &Pool::new(1)).unwrap();
    for workers in [1usize, 4] {
        let pool = Pool::new(workers);
        let (got, labels) = fast.compare_pairs_with_pool(records, records, pairs, &pool).unwrap();
        assert_eq!(labels, labels_want, "labels, workers={workers}");
        assert_bitwise_eq(&want, &got, &format!("global path, workers={workers}"));
        // The block-sharded column-major path exercises the shard-local
        // interners regardless of the pair-count dispatch threshold.
        for c in [&fast, &reference] {
            let (cm, labels) =
                c.compare_pairs_colmajor_with_pool(records, records, pairs, &pool).unwrap();
            assert_eq!(labels, labels_want);
            let x = cm.to_feature_matrix().unwrap();
            assert_bitwise_eq(&want, &x, &format!("colmajor path, workers={workers}"));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn kernels_workers_and_strategies_are_bitwise_equal(
        n in 8usize..40,
        seed in 0u64..1_000_000,
    ) {
        let records = build_records(n, seed);
        let pairs = build_pairs(n, seed.wrapping_add(1));
        check_case(&records, &pairs);
    }
}

/// Duplicated right records across shard boundaries: the same record is
/// prepared by different shard interners (different id assignments) and
/// must still score identically.
#[test]
fn shard_local_interners_are_invisible_in_scores() {
    let records = build_records(64, 7);
    // Every left record pairs with the same few right records, so those
    // right records appear in every shard's cache.
    let pairs: Vec<CandidatePair> = (0..64).flat_map(|i| [(i, 0), (i, 1), (i, 63 - i)]).collect();
    check_case(&records, &pairs);
}

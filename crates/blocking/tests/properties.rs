//! Property tests on blocking and comparison: candidate-pair invariants,
//! MinHash behaviour, feature-matrix bounds.

use proptest::prelude::*;
use transer_blocking::{Comparison, MinHashLsh, MinHashLshConfig};
use transer_common::{AttrValue, Label, Record};
use transer_similarity::Measure;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{2,8}( [a-z]{2,8}){0,3}"
}

fn records(max: usize) -> impl Strategy<Value = Vec<Record>> {
    prop::collection::vec((word(), 1900f64..2020.0), 1..max).prop_map(|rows| {
        rows.into_iter()
            .enumerate()
            .map(|(i, (title, year))| {
                Record::new(
                    i as u64,
                    i as u64 / 2, // every two records share an entity
                    vec![AttrValue::Text(title), AttrValue::Number(year)],
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn candidate_pairs_are_valid_sorted_and_unique(
        left in records(30),
        right in records(30),
    ) {
        let blocker = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
        let pairs = blocker.candidate_pairs(&left, &right);
        for w in pairs.windows(2) {
            prop_assert!(w[0] < w[1], "not sorted/unique: {:?}", w);
        }
        for &(i, j) in &pairs {
            prop_assert!(i < left.len() && j < right.len());
        }
    }

    #[test]
    fn identical_record_always_becomes_a_candidate(title in "[a-z]{4,12}( [a-z]{4,12}){1,3}") {
        let rec = Record::new(0, 0, vec![AttrValue::Text(title)]);
        let blocker = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
        let pairs = blocker.candidate_pairs(std::slice::from_ref(&rec), std::slice::from_ref(&rec));
        prop_assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn dedup_pairs_are_strictly_ordered(recs in records(40)) {
        let blocker = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
        for (i, j) in blocker.candidate_pairs_dedup(&recs) {
            prop_assert!(i < j);
            prop_assert!(j < recs.len());
        }
    }

    #[test]
    fn bucket_cap_only_removes_pairs(recs in records(40)) {
        let base = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
        let capped = MinHashLsh::new(MinHashLshConfig { max_bucket: 2, ..Default::default() }).expect("valid LSH config");
        let all = base.candidate_pairs_dedup(&recs);
        let few = capped.candidate_pairs_dedup(&recs);
        prop_assert!(few.len() <= all.len());
        for p in &few {
            prop_assert!(all.contains(p), "capped produced a new pair {p:?}");
        }
    }

    #[test]
    fn comparison_output_is_aligned_and_bounded(
        left in records(20),
        right in records(20),
    ) {
        let comparison = Comparison::new(vec![
            (0, Measure::TokenJaccard),
            (1, Measure::Year),
        ]).unwrap();
        let blocker = MinHashLsh::new(MinHashLshConfig::default()).expect("valid LSH config");
        let pairs = blocker.candidate_pairs(&left, &right);
        let (x, y) = comparison.compare_pairs(&left, &right, &pairs).unwrap();
        prop_assert_eq!(x.rows(), pairs.len());
        prop_assert_eq!(y.len(), pairs.len());
        for (k, row) in x.iter_rows().enumerate() {
            for &v in row {
                prop_assert!((0.0..=1.0).contains(&v));
            }
            let (i, j) = pairs[k];
            prop_assert_eq!(y[k], Label::from_bool(left[i].entity == right[j].entity));
        }
    }

    #[test]
    fn signature_length_matches_config(hashes in prop::collection::vec(any::<u64>(), 0..50)) {
        let blocker = MinHashLsh::new(MinHashLshConfig { num_hashes: 48, bands: 8, ..Default::default() }).expect("valid LSH config");
        prop_assert_eq!(blocker.signature(&hashes).len(), 48);
    }
}

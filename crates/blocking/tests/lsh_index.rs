//! Property tests on the updatable LSH index: any interleaving of
//! inserts, removes and compactions must answer queries exactly like an
//! index built from scratch over the surviving records, and batch queries
//! must be bit-identical across worker counts.

use std::collections::BTreeMap;

use proptest::prelude::*;
use transer_blocking::{LshIndex, MinHashLshConfig};
use transer_common::{AttrValue, Record};
use transer_parallel::Pool;

fn record(id: usize, title: &str) -> Record {
    Record::new(id as u64, id as u64, vec![AttrValue::Text(title.to_string())])
}

fn titles(max: usize) -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec("[a-z]{3,8}( [a-z]{3,8}){1,4}", 2..max)
}

/// Replay an op tape against an incrementally maintained index and a
/// shadow map of the live records; returns both.
fn replay(titles: &[String], ops: &[u8]) -> (LshIndex, BTreeMap<usize, Record>) {
    let config = MinHashLshConfig::default();
    let mut index = LshIndex::new(config, None).expect("valid LSH config");
    let mut live: BTreeMap<usize, Record> = BTreeMap::new();
    for (step, &op) in ops.iter().enumerate() {
        let id = step % titles.len();
        match op % 4 {
            // Insert (re-insert after removal is legal and must purge the
            // tombstoned entry).
            0 | 1 => {
                if let std::collections::btree_map::Entry::Vacant(slot) = live.entry(id) {
                    let rec = record(id, &titles[id]);
                    index.insert(id, &rec).expect("fresh id");
                    slot.insert(rec);
                }
            }
            // Remove a live id, chosen by the op tape.
            2 => {
                if !live.is_empty() {
                    let victim = *live.keys().nth(step % live.len()).expect("non-empty live set");
                    index.remove(victim).expect("live id");
                    live.remove(&victim);
                }
            }
            // Force a compaction mid-tape (the automatic trigger needs
            // more tombstones than these small tapes accumulate).
            _ => index.compact(),
        }
    }
    (index, live)
}

/// Build the same index from scratch: fresh inserts of the survivors only.
fn rebuild(live: &BTreeMap<usize, Record>) -> LshIndex {
    let mut index = LshIndex::new(MinHashLshConfig::default(), None).expect("valid LSH config");
    for (&id, rec) in live {
        index.insert(id, rec).expect("fresh id");
    }
    index
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_maintenance_equals_from_scratch_rebuild(
        titles in titles(16),
        ops in prop::collection::vec(0u8..=255, 1..60),
    ) {
        let (index, live) = replay(&titles, &ops);
        prop_assert_eq!(index.len(), live.len());
        let fresh = rebuild(&live);
        for (id, title) in titles.iter().enumerate() {
            let probe = record(id, title);
            prop_assert_eq!(
                index.query(&probe),
                fresh.query(&probe),
                "id {} diverges after {} ops ({} tombstones)",
                id, ops.len(), index.tombstones()
            );
        }
    }

    #[test]
    fn query_batch_is_bit_identical_across_worker_counts(
        titles in titles(24),
        ops in prop::collection::vec(0u8..=255, 1..40),
    ) {
        let (index, _live) = replay(&titles, &ops);
        let batch: Vec<Record> =
            titles.iter().enumerate().map(|(id, t)| record(id, t)).collect();
        let seq = index.query_batch(&batch, &Pool::new(1));
        let par = index.query_batch(&batch, &Pool::new(4));
        prop_assert_eq!(seq, par);
    }

    #[test]
    fn persistence_round_trip_preserves_every_query(
        titles in titles(12),
        ops in prop::collection::vec(0u8..=255, 1..40),
    ) {
        let (index, _live) = replay(&titles, &ops);
        let reloaded = LshIndex::from_json(&index.to_json()).expect("round trip");
        prop_assert_eq!(reloaded.len(), index.len());
        for (id, title) in titles.iter().enumerate() {
            let probe = record(id, title);
            prop_assert_eq!(index.query(&probe), reloaded.query(&probe));
        }
    }
}

//! Raw database records and their schemas.
//!
//! A [`Record`] is a row of attribute values drawn from one database. The
//! paper's examples are publications (title, venue, authors, year), songs
//! (title, album, artist, year) and Scottish civil certificates (names,
//! occupations, addresses, dates). Records carry an opaque [`RecordId`] plus
//! the identifier of the real-world entity they describe; the entity id is
//! only ever used to derive ground-truth labels, never by the algorithms.

use std::fmt;
use std::sync::Arc;

/// Identifier of a record within one database.
pub type RecordId = u64;

/// Type of an attribute, which determines the default similarity function
/// used in the record-pair comparison step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// Short personal-name-like string; compared with Jaro-Winkler in the
    /// paper's setup.
    Name,
    /// Longer free text (titles, venues); compared with token Jaccard.
    Text,
    /// Numeric value (e.g. age); compared with a bounded absolute difference.
    Number,
    /// Calendar year; compared with a bounded absolute difference.
    Year,
}

/// Schema shared by all records of one database: ordered attribute names and
/// their types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Arc<[(String, AttrType)]>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    pub fn new<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = (S, AttrType)>,
        S: Into<String>,
    {
        let attributes: Vec<(String, AttrType)> =
            attrs.into_iter().map(|(n, t)| (n.into(), t)).collect();
        Schema { attributes: attributes.into() }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Name of attribute `q`.
    pub fn name(&self, q: usize) -> &str {
        &self.attributes[q].0
    }

    /// Type of attribute `q`.
    pub fn attr_type(&self, q: usize) -> AttrType {
        self.attributes[q].1
    }

    /// Index of the attribute called `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|(n, _)| n == name)
    }

    /// Iterate over `(name, type)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AttrType)> + '_ {
        self.attributes.iter().map(|(n, t)| (n.as_str(), *t))
    }
}

/// One attribute value of a record.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A textual value (already pre-processed / lower-cased by the loader).
    Text(String),
    /// A numeric value.
    Number(f64),
    /// The value is missing — common in the demographic certificates.
    Missing,
}

impl AttrValue {
    /// Borrow the text content, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttrValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric content, if any.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttrValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// True when the value is [`AttrValue::Missing`] or empty text.
    pub fn is_missing(&self) -> bool {
        match self {
            AttrValue::Missing => true,
            AttrValue::Text(s) => s.is_empty(),
            AttrValue::Number(_) => false,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Text(s) => write!(f, "{s}"),
            AttrValue::Number(x) => write!(f, "{x}"),
            AttrValue::Missing => write!(f, "?"),
        }
    }
}

/// One database row: an id, the id of the underlying real-world entity
/// (ground truth only), and the attribute values in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Identifier of this record within its database.
    pub id: RecordId,
    /// Identifier of the real-world entity the record describes. Two records
    /// (from the same or different databases) match iff their entity ids are
    /// equal. Algorithms must not read this; evaluation does.
    pub entity: u64,
    /// Attribute values, aligned with the database [`Schema`].
    pub values: Vec<AttrValue>,
}

impl Record {
    /// Create a record.
    pub fn new(id: RecordId, entity: u64, values: Vec<AttrValue>) -> Self {
        Record { id, entity, values }
    }

    /// Value of attribute `q`.
    pub fn value(&self, q: usize) -> &AttrValue {
        &self.values[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([
            ("title", AttrType::Text),
            ("author", AttrType::Name),
            ("year", AttrType::Year),
        ])
    }

    #[test]
    fn schema_lookup() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.name(0), "title");
        assert_eq!(s.attr_type(1), AttrType::Name);
        assert_eq!(s.index_of("year"), Some(2));
        assert_eq!(s.index_of("venue"), None);
        let names: Vec<&str> = s.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["title", "author", "year"]);
    }

    #[test]
    fn attr_value_accessors() {
        assert_eq!(AttrValue::Text("abc".into()).as_text(), Some("abc"));
        assert_eq!(AttrValue::Number(1.5).as_number(), Some(1.5));
        assert!(AttrValue::Missing.is_missing());
        assert!(AttrValue::Text(String::new()).is_missing());
        assert!(!AttrValue::Number(0.0).is_missing());
        assert_eq!(AttrValue::Missing.to_string(), "?");
    }

    #[test]
    fn record_value_access() {
        let r = Record::new(
            7,
            42,
            vec![
                AttrValue::Text("a study of things".into()),
                AttrValue::Text("smith, j".into()),
                AttrValue::Number(1999.0),
            ],
        );
        assert_eq!(r.id, 7);
        assert_eq!(r.entity, 42);
        assert_eq!(r.value(2).as_number(), Some(1999.0));
    }
}

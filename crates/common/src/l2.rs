//! The shared L2 distance kernel: one home for every squared-distance,
//! squared-norm and dot-product loop in the workspace.
//!
//! Pairwise distance work dominates the SEL phase (and, through it, a
//! large share of total ER cost), so every k-NN backend — KD-tree leaf
//! scans, the blocked brute-force screen and recompute bands, and the
//! ball-tree bound checks — routes through these functions instead of
//! carrying its own per-pair loop.
//!
//! Two engines exist behind the `TRANSER_L2_KERNEL` switch, mirroring
//! `TRANSER_TREE_ENGINE` / `TRANSER_SIM_KERNEL`:
//!
//! * [`L2Kernel::Lanes`] (default) — fixed-width lane accumulators:
//!   [`LANES`] independent partial sums walk the vectors in `LANES`-wide
//!   chunks, then reduce in a fixed pairwise order. Independent
//!   accumulators break the single sequential dependency chain, so LLVM
//!   turns the inner loop into SIMD adds/multiplies (and FMA where the
//!   target has it) without needing float reassociation.
//! * [`L2Kernel::Reference`] — the original exact-order scalar loops,
//!   kept verbatim as the pinned reference.
//!
//! Each engine is fully deterministic: the summation order is fixed, so
//! results are bit-identical across runs, worker counts and k-NN
//! backends. The two engines associate the additions differently, so
//! *between* engines the low bits of a distance may differ — which is
//! exactly why the switch exists: `TRANSER_L2_KERNEL=reference`
//! reproduces the historical sequential-sum bits.

use std::sync::OnceLock;

use crate::env;

/// Lane width of the fast kernel: four independent accumulators cover
/// one AVX register (or two SSE2 registers) of `f64`s and keep the
/// 9–24-dimensional ER feature vectors in 2–6 chunks.
pub const LANES: usize = 4;

/// Which L2 kernel engine to use, process-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2Kernel {
    /// Fixed-width lane accumulators, vectorizable (default).
    Lanes,
    /// The pinned exact-order scalar loops.
    Reference,
}

impl L2Kernel {
    /// Parse a recognised `TRANSER_L2_KERNEL` value; `None` otherwise.
    fn parse_known(s: &str) -> Option<L2Kernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "lanes" | "fast" | "simd" => Some(L2Kernel::Lanes),
            "reference" | "ref" | "scalar" => Some(L2Kernel::Reference),
            _ => None,
        }
    }

    /// The process-wide engine from `TRANSER_L2_KERNEL`, read once (like
    /// `TRANSER_TREE_ENGINE`); unset or unrecognised means
    /// [`L2Kernel::Lanes`], unrecognised values warn through the trace
    /// layer.
    pub fn from_env() -> L2Kernel {
        static KERNEL: OnceLock<L2Kernel> = OnceLock::new();
        *KERNEL.get_or_init(|| {
            env::parsed_with(
                env::L2_KERNEL,
                L2Kernel::parse_known,
                "one of lanes/reference",
                "lanes",
            )
            .unwrap_or(L2Kernel::Lanes)
        })
    }
}

/// Squared Euclidean distance between two feature vectors, on the active
/// engine.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    match L2Kernel::from_env() {
        L2Kernel::Lanes => sq_dist_lanes(a, b),
        L2Kernel::Reference => sq_dist_reference(a, b),
    }
}

/// Squared Euclidean norm of a feature vector, on the active engine.
#[inline]
pub fn sq_norm(v: &[f64]) -> f64 {
    match L2Kernel::from_env() {
        L2Kernel::Lanes => sq_norm_lanes(v),
        L2Kernel::Reference => sq_norm_reference(v),
    }
}

/// Dot product of two feature vectors, on the active engine.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    match L2Kernel::from_env() {
        L2Kernel::Lanes => dot_lanes(a, b),
        L2Kernel::Reference => dot_reference(a, b),
    }
}

/// The pinned reference: the exact-order sequential sum `Σ (aᵢ − bᵢ)²`.
#[inline]
pub fn sq_dist_reference(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// The pinned reference norm: the sequential sum `Σ vᵢ²`.
#[inline]
pub fn sq_norm_reference(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum()
}

/// The pinned reference dot product: the sequential sum `Σ aᵢ·bᵢ`.
#[inline]
pub fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fixed reduction of the lane accumulators plus the scalar tail sum:
/// `((acc₀ + acc₁) + (acc₂ + acc₃)) + tail`, always in this order.
#[inline]
fn reduce(acc: [f64; LANES], tail: f64) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Lane-accumulator squared distance: `LANES` independent partial sums
/// over `LANES`-wide chunks, remainder accumulated sequentially, reduced
/// in the fixed order of [`reduce`]. Deterministic, SIMD-friendly.
#[inline]
pub fn sq_dist_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        let d = x - y;
        tail += d * d;
    }
    reduce(acc, tail)
}

/// Lane-accumulator squared norm; same order conventions as
/// [`sq_dist_lanes`].
#[inline]
pub fn sq_norm_lanes(v: &[f64]) -> f64 {
    let split = v.len() - v.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for c in v[..split].chunks_exact(LANES) {
        for j in 0..LANES {
            acc[j] += c[j] * c[j];
        }
    }
    let mut tail = 0.0;
    for x in &v[split..] {
        tail += x * x;
    }
    reduce(acc, tail)
}

/// Lane-accumulator dot product; same order conventions as
/// [`sq_dist_lanes`].
#[inline]
pub fn dot_lanes(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let split = a.len() - a.len() % LANES;
    let mut acc = [0.0f64; LANES];
    for (ca, cb) in a[..split].chunks_exact(LANES).zip(b[..split].chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[split..].iter().zip(&b[split..]) {
        tail += x * y;
    }
    reduce(acc, tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_engines() {
        assert_eq!(L2Kernel::parse_known("lanes"), Some(L2Kernel::Lanes));
        assert_eq!(L2Kernel::parse_known(" Fast "), Some(L2Kernel::Lanes));
        assert_eq!(L2Kernel::parse_known("simd"), Some(L2Kernel::Lanes));
        assert_eq!(L2Kernel::parse_known("reference"), Some(L2Kernel::Reference));
        assert_eq!(L2Kernel::parse_known("REF"), Some(L2Kernel::Reference));
        assert_eq!(L2Kernel::parse_known("scalar"), Some(L2Kernel::Reference));
        assert_eq!(L2Kernel::parse_known("nonsense"), None);
        assert_eq!(L2Kernel::parse_known(""), None);
    }

    #[test]
    fn engines_agree_on_exactly_representable_inputs() {
        // Powers of two and small integers: every partial sum is exact,
        // so association order cannot matter and the engines must agree
        // bitwise.
        let a: Vec<f64> = (0..24).map(|i| (i % 5) as f64).collect();
        let b: Vec<f64> = (0..24).map(|i| ((i + 2) % 7) as f64).collect();
        assert_eq!(sq_dist_lanes(&a, &b).to_bits(), sq_dist_reference(&a, &b).to_bits());
        assert_eq!(sq_norm_lanes(&a).to_bits(), sq_norm_reference(&a).to_bits());
        assert_eq!(dot_lanes(&a, &b).to_bits(), dot_reference(&a, &b).to_bits());
    }

    #[test]
    fn engines_agree_within_ulp_tolerance() {
        // Irrational-ish values: the engines differ only in association
        // order, so they agree to within a few units in the last place.
        let a: Vec<f64> = (0..24).map(|i| ((i * 37 + 11) as f64 * 0.017).sin().abs()).collect();
        let b: Vec<f64> = (0..24).map(|i| ((i * 53 + 5) as f64 * 0.013).cos().abs()).collect();
        for dim in [0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 16, 21, 24] {
            let fast = sq_dist_lanes(&a[..dim], &b[..dim]);
            let slow = sq_dist_reference(&a[..dim], &b[..dim]);
            let tol = 8.0 * f64::EPSILON * slow.max(1.0);
            assert!((fast - slow).abs() <= tol, "dim {dim}: {fast} vs {slow}");
            let fast = dot_lanes(&a[..dim], &b[..dim]);
            let slow = dot_reference(&a[..dim], &b[..dim]);
            assert!((fast - slow).abs() <= tol, "dot dim {dim}: {fast} vs {slow}");
        }
    }

    #[test]
    fn equal_inputs_give_exact_zero_on_both_engines() {
        let v: Vec<f64> = (0..17).map(|i| (i as f64) * 0.37 - 2.0).collect();
        assert_eq!(sq_dist_lanes(&v, &v).to_bits(), 0.0f64.to_bits());
        assert_eq!(sq_dist_reference(&v, &v).to_bits(), 0.0f64.to_bits());
        // Signed zeros: (-0.0 - 0.0)² is +0.0, so mixed zero signs still
        // give exact +0.0.
        let a = [0.0, -0.0, 0.0, -0.0, 0.0];
        let b = [-0.0, 0.0, -0.0, 0.0, -0.0];
        assert_eq!(sq_dist_lanes(&a, &b).to_bits(), 0.0f64.to_bits());
        assert_eq!(sq_dist_reference(&a, &b).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn nan_and_infinity_propagate() {
        let a = [0.0, f64::NAN, 1.0];
        let b = [0.0, 0.0, 1.0];
        assert!(sq_dist_lanes(&a, &b).is_nan());
        assert!(sq_dist_reference(&a, &b).is_nan());
        let a = [f64::INFINITY, 0.0];
        let b = [0.0, 0.0];
        assert_eq!(sq_dist_lanes(&a, &b), f64::INFINITY);
        assert_eq!(sq_dist_reference(&a, &b), f64::INFINITY);
    }

    #[test]
    fn empty_and_short_vectors() {
        assert_eq!(sq_dist_lanes(&[], &[]), 0.0);
        assert_eq!(sq_dist_lanes(&[3.0], &[0.0]), 9.0);
        assert_eq!(sq_norm_lanes(&[]), 0.0);
        assert_eq!(dot_lanes(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
    }

    #[test]
    fn dispatching_wrappers_match_an_engine() {
        // Whatever the process-wide engine is, the wrappers must agree
        // with exactly one of the two pinned implementations.
        let a: Vec<f64> = (0..9).map(|i| (i as f64) * 0.31).collect();
        let b: Vec<f64> = (0..9).map(|i| (i as f64) * 0.27 + 0.1).collect();
        let got = sq_dist(&a, &b).to_bits();
        assert!(
            got == sq_dist_lanes(&a, &b).to_bits() || got == sq_dist_reference(&a, &b).to_bits()
        );
        let got = sq_norm(&a).to_bits();
        assert!(got == sq_norm_lanes(&a).to_bits() || got == sq_norm_reference(&a).to_bits());
        let got = dot(&a, &b).to_bits();
        assert!(got == dot_lanes(&a, &b).to_bits() || got == dot_reference(&a, &b).to_bits());
    }
}

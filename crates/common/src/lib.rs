//! Shared entity-resolution (ER) types used across the TransER workspace.
//!
//! This crate defines the vocabulary the rest of the system speaks:
//!
//! * [`Record`], [`Schema`] and [`AttrValue`] describe raw database rows
//!   (publications, songs, civil certificates, ...).
//! * [`FeatureMatrix`] holds the similarity feature vectors produced by the
//!   record-pair comparison step; each row is one candidate record pair and
//!   each column one attribute similarity in `[0, 1]`.
//! * [`RowInterning`] deduplicates the rows of a [`FeatureMatrix`] — the
//!   substrate of the duplicate-aware k-NN engine in `transer-knn`.
//! * [`ColMajorMatrix`] is the column-major training view of a
//!   [`FeatureMatrix`] — the substrate of the presorted tree engine in
//!   `transer-ml` — built by a cache-blocked transpose
//!   ([`transpose_blocked`]) shared with `transer-linalg`.
//! * [`Label`] is the binary match / non-match class label.
//! * [`LabeledDataset`] and [`DomainPair`] bundle feature matrices with
//!   (ground-truth) labels for the source and target domains of a transfer
//!   learning task.
//!
//! The types are deliberately plain — row-major `Vec<f64>` storage, no
//! lifetimes in public signatures — so that the algorithm crates stay easy
//! to read and the hot loops easy for the compiler to optimise.

// `deny` rather than `forbid`: the counting global allocator (`alloc`
// module) carries the workspace's single audited `unsafe impl` behind a
// targeted `#[allow]`; everything else still refuses unsafe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod colmajor;
mod dataset;
pub mod env;
mod error;
mod features;
mod intern;
pub mod l2;
mod label;
mod record;

pub use alloc::CountingAllocator;
pub use colmajor::{transpose_blocked, ColMajorMatrix};

/// The registered global allocator for every binary that *references*
/// this crate (see [`alloc`] — the workspace sits entirely above
/// `transer-common`, so every pipeline bin gets allocation profiling
/// without opting in). Caveat: rustc only loads — and therefore only
/// discovers the `#[global_allocator]` of — crates that are actually
/// referenced in code; a test binary that uses nothing from the
/// workspace below `transer-trace` must link this crate explicitly with
/// `use transer_common as _;` or it silently keeps the default allocator.
#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;
pub use dataset::{DomainPair, LabeledDataset};
pub use error::{Error, Result};
pub use features::FeatureMatrix;
pub use intern::{RowInterning, StrInterner};
pub use l2::{sq_dist, L2Kernel};
pub use label::{count_matches, Label};
pub use record::{AttrType, AttrValue, Record, RecordId, Schema};

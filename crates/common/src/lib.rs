//! Shared entity-resolution (ER) types used across the TransER workspace.
//!
//! This crate defines the vocabulary the rest of the system speaks:
//!
//! * [`Record`], [`Schema`] and [`AttrValue`] describe raw database rows
//!   (publications, songs, civil certificates, ...).
//! * [`FeatureMatrix`] holds the similarity feature vectors produced by the
//!   record-pair comparison step; each row is one candidate record pair and
//!   each column one attribute similarity in `[0, 1]`.
//! * [`RowInterning`] deduplicates the rows of a [`FeatureMatrix`] — the
//!   substrate of the duplicate-aware k-NN engine in `transer-knn`.
//! * [`ColMajorMatrix`] is the column-major training view of a
//!   [`FeatureMatrix`] — the substrate of the presorted tree engine in
//!   `transer-ml` — built by a cache-blocked transpose
//!   ([`transpose_blocked`]) shared with `transer-linalg`.
//! * [`Label`] is the binary match / non-match class label.
//! * [`LabeledDataset`] and [`DomainPair`] bundle feature matrices with
//!   (ground-truth) labels for the source and target domains of a transfer
//!   learning task.
//!
//! The types are deliberately plain — row-major `Vec<f64>` storage, no
//! lifetimes in public signatures — so that the algorithm crates stay easy
//! to read and the hot loops easy for the compiler to optimise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod colmajor;
mod dataset;
pub mod env;
mod error;
mod features;
mod intern;
pub mod l2;
mod label;
mod record;

pub use colmajor::{transpose_blocked, ColMajorMatrix};
pub use dataset::{DomainPair, LabeledDataset};
pub use error::{Error, Result};
pub use features::FeatureMatrix;
pub use intern::{RowInterning, StrInterner};
pub use l2::{sq_dist, L2Kernel};
pub use label::{count_matches, Label};
pub use record::{AttrType, AttrValue, Record, RecordId, Schema};

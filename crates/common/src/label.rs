//! The binary match / non-match class label.

/// Class label of a compared record pair.
///
/// In the paper's notation `y ∈ {1, 0}` where `1` is a match (the two
/// records refer to the same entity) and `0` a non-match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// The record pair refers to different entities (`y = 0`).
    NonMatch,
    /// The record pair refers to the same entity (`y = 1`).
    Match,
}

impl Label {
    /// Numeric encoding used by the classifiers: match = 1.0, non-match = 0.0.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Label::Match => 1.0,
            Label::NonMatch => 0.0,
        }
    }

    /// True when this is [`Label::Match`].
    #[inline]
    pub fn is_match(self) -> bool {
        matches!(self, Label::Match)
    }

    /// Decode from the classifier's numeric output using a 0.5 threshold.
    #[inline]
    pub fn from_score(score: f64) -> Self {
        if score >= 0.5 {
            Label::Match
        } else {
            Label::NonMatch
        }
    }

    /// Decode from a boolean match flag.
    #[inline]
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::NonMatch
        }
    }

    /// The opposite label.
    #[inline]
    pub fn flipped(self) -> Self {
        match self {
            Label::Match => Label::NonMatch,
            Label::NonMatch => Label::Match,
        }
    }
}

impl std::fmt::Display for Label {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Label::Match => write!(f, "M"),
            Label::NonMatch => write!(f, "N"),
        }
    }
}

/// Count the matches in a label slice.
pub fn count_matches(labels: &[Label]) -> usize {
    labels.iter().filter(|l| l.is_match()).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        assert_eq!(Label::from_score(Label::Match.as_f64()), Label::Match);
        assert_eq!(Label::from_score(Label::NonMatch.as_f64()), Label::NonMatch);
        assert_eq!(Label::from_score(0.5), Label::Match);
        assert_eq!(Label::from_score(0.4999), Label::NonMatch);
    }

    #[test]
    fn flip_is_involution() {
        for l in [Label::Match, Label::NonMatch] {
            assert_eq!(l.flipped().flipped(), l);
            assert_ne!(l.flipped(), l);
        }
    }

    #[test]
    fn counting() {
        let ls = [Label::Match, Label::NonMatch, Label::Match];
        assert_eq!(count_matches(&ls), 2);
        assert_eq!(count_matches(&[]), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Label::Match.to_string(), "M");
        assert_eq!(Label::NonMatch.to_string(), "N");
    }
}

//! Error type shared by the TransER crates.

use std::fmt;

/// Convenience alias for results produced by the TransER crates.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the ER pipeline and the transfer-learning methods.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Two inputs that must agree on a dimension (rows, columns, lengths)
    /// did not.
    DimensionMismatch {
        /// What the dimensions describe, e.g. `"feature columns"`.
        what: &'static str,
        /// Dimension of the first operand.
        left: usize,
        /// Dimension of the second operand.
        right: usize,
    },
    /// An operation needed data (rows, labels, classes, ...) that was empty.
    EmptyInput(&'static str),
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Parameter name, e.g. `"k"`.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A method's estimated memory footprint exceeded its budget.
    ///
    /// Used to reproduce the paper's `ME` table entries: TCA's `O(n^2)`
    /// kernel blows the memory budget on mid-sized data sets.
    MemoryExceeded {
        /// Estimated requirement in bytes.
        required: u64,
        /// Configured budget in bytes.
        budget: u64,
    },
    /// A method's wall-clock time exceeded its budget.
    ///
    /// Used to reproduce the paper's `TE` table entries.
    TimeExceeded {
        /// Elapsed seconds when the method was cut off.
        elapsed_secs: f64,
        /// Configured budget in seconds.
        budget_secs: f64,
    },
    /// Training a model failed to converge or produced degenerate output.
    TrainingFailed(String),
    /// A fault was injected by the `transer-robust` harness
    /// (`TRANSER_FAULT=<site>:task_fail`). Never produced in normal
    /// operation; used to exercise the graceful-degradation ladder.
    FaultInjected(&'static str),
    /// Saving or loading a persisted artefact (model, index) failed: I/O,
    /// malformed JSON, schema-version mismatch or an unknown key under the
    /// strict parser.
    Persist(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { what, left, right } => {
                write!(f, "dimension mismatch on {what}: {left} vs {right}")
            }
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::InvalidParameter { name, message } => {
                write!(f, "invalid parameter {name}: {message}")
            }
            Error::MemoryExceeded { required, budget } => {
                write!(f, "memory exceeded: needs {required} B, budget {budget} B (ME)")
            }
            Error::TimeExceeded { elapsed_secs, budget_secs } => {
                write!(
                    f,
                    "time exceeded: {elapsed_secs:.1}s elapsed, budget {budget_secs:.1}s (TE)"
                )
            }
            Error::TrainingFailed(msg) => write!(f, "training failed: {msg}"),
            Error::FaultInjected(site) => write!(f, "fault injected at {site}"),
            Error::Persist(msg) => write!(f, "persistence: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl Error {
    /// True when the error is one of the resource-guard outcomes the
    /// evaluation reports as `ME`/`TE` rather than a programming error.
    pub fn is_resource_exceeded(&self) -> bool {
        matches!(self, Error::MemoryExceeded { .. } | Error::TimeExceeded { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = Error::DimensionMismatch { what: "rows", left: 3, right: 4 };
        assert_eq!(e.to_string(), "dimension mismatch on rows: 3 vs 4");
        assert_eq!(Error::EmptyInput("labels").to_string(), "empty input: labels");
        let e = Error::InvalidParameter { name: "k", message: "must be > 0".into() };
        assert_eq!(e.to_string(), "invalid parameter k: must be > 0");
        assert_eq!(Error::FaultInjected("tcl.fit").to_string(), "fault injected at tcl.fit");
        assert_eq!(Error::Persist("bad key".into()).to_string(), "persistence: bad key");
    }

    #[test]
    fn resource_exceeded_classification() {
        assert!(Error::MemoryExceeded { required: 10, budget: 5 }.is_resource_exceeded());
        assert!(Error::TimeExceeded { elapsed_secs: 10.0, budget_secs: 5.0 }.is_resource_exceeded());
        assert!(!Error::EmptyInput("x").is_resource_exceeded());
        assert!(!Error::FaultInjected("compare").is_resource_exceeded());
    }
}

//! The process-wide counting allocator behind `TRANSER_ALLOC_TRACE`.
//!
//! [`CountingAllocator`] wraps [`System`] and reports every successful
//! allocation to `transer_trace::alloc`, which attributes it to the
//! calling thread (and from there to the enclosing trace span). It is
//! registered as the `#[global_allocator]` here — `transer-common` sits at
//! the bottom of the workspace dependency graph, so every bin that links
//! any TransER crate gets the instrumented allocator automatically.
//!
//! This is the one `unsafe impl` in the workspace (`GlobalAlloc` cannot be
//! implemented safely); each method delegates verbatim to [`System`] under
//! the caller's own contract and adds only counter bookkeeping, which
//! never allocates (see the reentrancy notes on `transer_trace::alloc`).
//! When `TRANSER_ALLOC_TRACE` is off, the added cost per allocation is one
//! relaxed atomic load and a compare.

use std::alloc::{GlobalAlloc, Layout, System};

use transer_trace::alloc as counters;

/// [`System`] plus per-thread allocation accounting for the trace layer.
pub struct CountingAllocator;

#[allow(unsafe_code)]
// SAFETY: every method forwards the caller's arguments unchanged to
// `System`, which upholds the `GlobalAlloc` contract; the counter hooks
// run strictly after a *successful* call, never allocate and never touch
// the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            counters::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            counters::on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            counters::on_realloc(layout.size(), new_size);
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

// The `#[global_allocator]` registration itself lives at the crate root
// (lib.rs), next to the note about explicit linkage: the registration
// only takes effect in binaries that actually reference this crate.

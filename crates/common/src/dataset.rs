//! Labelled feature data sets and source/target domain pairs.

use crate::{count_matches, Error, FeatureMatrix, Label, Result};

/// A feature matrix together with one ground-truth label per row.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// Human-readable name, e.g. `"DBLP-ACM"`.
    pub name: String,
    /// Feature matrix `X` with one row per candidate record pair.
    pub x: FeatureMatrix,
    /// Ground-truth labels `Y`, aligned with the rows of `x`.
    pub y: Vec<Label>,
}

impl LabeledDataset {
    /// Bundle a feature matrix and labels.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when `x.rows() != y.len()`.
    pub fn new(name: impl Into<String>, x: FeatureMatrix, y: Vec<Label>) -> Result<Self> {
        if x.rows() != y.len() {
            return Err(Error::DimensionMismatch {
                what: "rows vs labels",
                left: x.rows(),
                right: y.len(),
            });
        }
        Ok(LabeledDataset { name: name.into(), x, y })
    }

    /// Number of record pairs.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the data set holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of true matches.
    pub fn num_matches(&self) -> usize {
        count_matches(&self.y)
    }

    /// Fraction of true matches; 0 for an empty data set.
    pub fn match_rate(&self) -> f64 {
        if self.y.is_empty() {
            0.0
        } else {
            self.num_matches() as f64 / self.y.len() as f64
        }
    }

    /// Keep only the rows at `indices` (in order).
    pub fn select(&self, indices: &[usize]) -> LabeledDataset {
        LabeledDataset {
            name: self.name.clone(),
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// A transfer-learning task: a fully labelled source domain and a target
/// domain whose labels exist only as evaluation ground truth.
///
/// Both domains share the feature space (`source.x.cols() ==
/// target.x.cols()`), matching the homogeneous TL setting of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainPair {
    /// Labelled source domain `(X^S, Y^S)`.
    pub source: LabeledDataset,
    /// Target domain `(X^T, Y^T)`; `target.y` is ground truth used **only**
    /// for evaluation, never shown to the transfer methods.
    pub target: LabeledDataset,
}

impl DomainPair {
    /// Bundle a source and target domain.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when the feature spaces differ —
    /// heterogeneous transfer is out of scope for TransER.
    pub fn new(source: LabeledDataset, target: LabeledDataset) -> Result<Self> {
        if source.x.cols() != target.x.cols() {
            return Err(Error::DimensionMismatch {
                what: "source vs target feature columns",
                left: source.x.cols(),
                right: target.x.cols(),
            });
        }
        Ok(DomainPair { source, target })
    }

    /// `"source -> target"`, the notation used throughout the paper.
    pub fn label(&self) -> String {
        format!("{} -> {}", self.source.name, self.target.name)
    }

    /// Number of shared feature columns `m`.
    pub fn num_features(&self) -> usize {
        self.source.x.cols()
    }

    /// Swap source and target, producing the reverse transfer scenario
    /// (e.g. `DBLP-ACM -> DBLP-Scholar` becomes `DBLP-Scholar -> DBLP-ACM`).
    pub fn reversed(&self) -> DomainPair {
        DomainPair { source: self.target.clone(), target: self.source.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(name: &str, rows: &[(f64, Label)]) -> LabeledDataset {
        let x = FeatureMatrix::from_vecs(
            &rows.iter().map(|(v, _)| vec![*v, 1.0 - *v]).collect::<Vec<_>>(),
        )
        .unwrap();
        let y = rows.iter().map(|(_, l)| *l).collect();
        LabeledDataset::new(name, x, y).unwrap()
    }

    #[test]
    fn labeled_dataset_basics() {
        let d = ds("A", &[(0.9, Label::Match), (0.1, Label::NonMatch), (0.8, Label::Match)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.num_matches(), 2);
        assert!((d.match_rate() - 2.0 / 3.0).abs() < 1e-12);
        let s = d.select(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.y, vec![Label::NonMatch]);
    }

    #[test]
    fn mismatched_labels_rejected() {
        let x = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(LabeledDataset::new("A", x, vec![]).is_err());
    }

    #[test]
    fn domain_pair_checks_feature_space() {
        let a = ds("A", &[(0.9, Label::Match)]);
        let b = ds("B", &[(0.2, Label::NonMatch)]);
        let p = DomainPair::new(a.clone(), b).unwrap();
        assert_eq!(p.label(), "A -> B");
        assert_eq!(p.num_features(), 2);
        let r = p.reversed();
        assert_eq!(r.label(), "B -> A");

        let narrow = LabeledDataset::new(
            "C",
            FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap(),
            vec![Label::Match],
        )
        .unwrap();
        assert!(DomainPair::new(a, narrow).is_err());
    }
}

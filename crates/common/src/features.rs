//! The feature matrix produced by the record-pair comparison step.
//!
//! Each row is the `m`-dimensional feature vector `x_ij` of one candidate
//! record pair `(r_i, r_j)`; feature `q` is the similarity
//! `sim_a(r_i.v_q, r_j.v_q)` of attribute `q`, always in `[0, 1]`.

use crate::{Error, Result};

/// Row-major dense matrix of per-pair similarity features.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureMatrix {
    /// Create a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when `data.len() != rows * cols`.
    pub fn from_rows(data: Vec<f64>, rows: usize, cols: usize) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(Error::DimensionMismatch {
                what: "feature matrix buffer",
                left: data.len(),
                right: rows * cols,
            });
        }
        Ok(FeatureMatrix { data, rows, cols })
    }

    /// Create an empty matrix with `cols` columns and zero rows.
    pub fn empty(cols: usize) -> Self {
        FeatureMatrix { data: Vec::new(), rows: 0, cols }
    }

    /// Create a matrix from a slice of equal-length row vectors.
    ///
    /// # Errors
    /// Returns [`Error::EmptyInput`] for an empty slice and
    /// [`Error::DimensionMismatch`] for ragged rows.
    pub fn from_vecs(rows: &[Vec<f64>]) -> Result<Self> {
        let first = rows.first().ok_or(Error::EmptyInput("feature rows"))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(Error::DimensionMismatch {
                    what: "feature row length",
                    left: row.len(),
                    right: cols,
                });
            }
            data.extend_from_slice(row);
        }
        Ok(FeatureMatrix { data, rows: rows.len(), cols })
    }

    /// Number of rows (record pairs), `n = |B|`.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns, `m`.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The feature vector of pair `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Iterate over all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics when `row.len() != self.cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols, "row length must equal column count");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw row-major buffer. Values may be overwritten but the
    /// shape is fixed; used by the `transer-robust` fault-injection
    /// harness to corrupt matrices in place.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Drop all rows past `rows`, keeping the column count. A no-op when
    /// the matrix already has `rows` rows or fewer.
    pub fn truncate_rows(&mut self, rows: usize) {
        if rows < self.rows {
            self.data.truncate(rows * self.cols);
            self.rows = rows;
        }
    }

    /// Build a new matrix keeping only the rows at `indices` (in order).
    pub fn select_rows(&self, indices: &[usize]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        FeatureMatrix { data, rows: indices.len(), cols: self.cols }
    }

    /// Mean of each column; `None` when the matrix is empty.
    pub fn column_means(&self) -> Option<Vec<f64>> {
        if self.rows == 0 {
            return None;
        }
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows as f64;
        for m in &mut means {
            *m /= n;
        }
        Some(means)
    }

    /// Mean feature value of each row (used for the Fig. 2 distributions).
    pub fn row_means(&self) -> Vec<f64> {
        if self.cols == 0 {
            return vec![0.0; self.rows];
        }
        self.iter_rows().map(|r| r.iter().sum::<f64>() / self.cols as f64).collect()
    }

    /// Round every value to `decimals` decimal places; the paper rounds
    /// feature vectors to two decimals when computing Table 1 statistics.
    pub fn rounded(&self, decimals: u32) -> FeatureMatrix {
        let scale = 10f64.powi(decimals as i32);
        let data = self.data.iter().map(|v| (v * scale).round() / scale).collect();
        FeatureMatrix { data, rows: self.rows, cols: self.cols }
    }

    /// A stable, hashable key for row `i` after rounding to `decimals`
    /// decimal places. Two rows with equal keys are "the same feature
    /// vector" in the sense of Table 1.
    pub fn row_key(&self, i: usize, decimals: u32) -> Vec<i64> {
        let scale = 10f64.powi(decimals as i32);
        self.row(i).iter().map(|v| (v * scale).round() as i64).collect()
    }

    /// Vertically stack two matrices with equal column counts.
    ///
    /// # Errors
    /// Returns [`Error::DimensionMismatch`] when the column counts differ.
    pub fn vstack(&self, other: &FeatureMatrix) -> Result<FeatureMatrix> {
        if self.cols != other.cols {
            return Err(Error::DimensionMismatch {
                what: "feature columns",
                left: self.cols,
                right: other.cols,
            });
        }
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(FeatureMatrix { data, rows: self.rows + other.rows, cols: self.cols })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> FeatureMatrix {
        FeatureMatrix::from_vecs(&[vec![1.0, 0.0], vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = m();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[0.5, 0.5]);
        assert_eq!(m.iter_rows().count(), 3);
    }

    #[test]
    fn bad_buffer_rejected() {
        assert!(FeatureMatrix::from_rows(vec![1.0; 5], 2, 3).is_err());
        assert!(FeatureMatrix::from_vecs(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(FeatureMatrix::from_vecs(&[]).is_err());
    }

    #[test]
    fn push_and_select() {
        let mut m = FeatureMatrix::empty(2);
        assert!(m.is_empty());
        m.push_row(&[0.1, 0.2]);
        m.push_row(&[0.3, 0.4]);
        m.push_row(&[0.5, 0.6]);
        let s = m.select_rows(&[2, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), &[0.5, 0.6]);
        assert_eq!(s.row(1), &[0.1, 0.2]);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn push_wrong_width_panics() {
        let mut m = FeatureMatrix::empty(2);
        m.push_row(&[0.1]);
    }

    #[test]
    fn truncate_and_mutate() {
        let mut m = m();
        m.truncate_rows(5); // no-op past the end
        assert_eq!(m.rows(), 3);
        m.as_mut_slice()[0] = f64::NAN;
        assert!(m.row(0)[0].is_nan());
        m.truncate_rows(1);
        assert_eq!(m.rows(), 1);
        assert_eq!(m.cols(), 2);
        m.truncate_rows(0);
        assert!(m.is_empty());
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn means() {
        let m = m();
        assert_eq!(m.column_means().unwrap(), vec![0.5, 0.5]);
        assert_eq!(m.row_means(), vec![0.5, 0.5, 0.5]);
        assert!(FeatureMatrix::empty(3).column_means().is_none());
    }

    #[test]
    fn rounding_and_keys() {
        let m = FeatureMatrix::from_vecs(&[vec![0.123, 0.987], vec![0.12, 0.99]]).unwrap();
        let r = m.rounded(2);
        assert_eq!(r.row(0), &[0.12, 0.99]);
        assert_eq!(m.row_key(0, 2), m.row_key(1, 2));
        assert_ne!(m.row_key(0, 3), m.row_key(1, 3));
    }

    #[test]
    fn vstack_checks_columns() {
        let a = m();
        let b = m();
        let c = a.vstack(&b).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.row(4), &[0.5, 0.5]);
        let bad = FeatureMatrix::empty(3);
        assert!(a.vstack(&bad).is_err());
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(crate::sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(crate::sq_dist(&[1.0], &[1.0]), 0.0);
    }
}

//! The single home for `TRANSER_*` environment-variable reads.
//!
//! Every knob the workspace honours is declared here, and every read goes
//! through [`raw`] / [`parsed`] / [`parsed_with`], which emit a structured
//! warning through `transer-trace` when a variable is *set but unusable*
//! instead of silently falling back. The call sites keep their own
//! fallback semantics (and their own read-once caching where they need
//! it); this module standardises reading and diagnostics.
//!
//! | Variable | Meaning |
//! |---|---|
//! | `TRANSER_THREADS` | worker count for the parallel pool |
//! | `TRANSER_TRACE` | enable structured tracing |
//! | `TRANSER_ALLOC_TRACE` | enable allocation profiling (per-span alloc counts/bytes) |
//! | `TRANSER_KNN_INDEX` | k-NN backend: `auto` / `kdtree` / `blocked` |
//! | `TRANSER_TREE_ENGINE` | tree trainer: `presorted` / `reference` |
//! | `TRANSER_FAULT` | fault injection: `<site>:<kind>[:<rate>:<seed>]` |
//! | `TRANSER_GRAIN` | dispatch grain threshold in ns; `0` = always pool, `inf` = always inline |
//! | `TRANSER_SIM_KERNEL` | similarity kernels: `fast` (bit-parallel, allocation-free) / `reference` |
//! | `TRANSER_L2_KERNEL` | L2 distance kernel: `lanes` (vectorizable lane accumulators) / `reference` |
//! | `TRANSER_SERVE_MODEL` | serving: path of the persisted model artefact |
//! | `TRANSER_SERVE_INDEX` | serving: path of the persisted LSH index artefact |
//! | `TRANSER_SERVE_BATCH` | serving: records per query batch (default 256) |

/// Worker count for the parallel pool (unset/`0`/unparsable → all cores).
pub const THREADS: &str = "TRANSER_THREADS";
/// Enables structured tracing (`transer_trace::TRACE_ENV`).
pub const TRACE: &str = "TRANSER_TRACE";
/// Enables allocation profiling (`transer_trace::alloc::ALLOC_ENV`): the
/// counting global allocator attributes events/bytes to the enclosing span.
pub const ALLOC_TRACE: &str = "TRANSER_ALLOC_TRACE";
/// k-NN index backend override (`transer-knn`).
pub const KNN_INDEX: &str = "TRANSER_KNN_INDEX";
/// Decision-tree training engine override (`transer-ml`).
pub const TREE_ENGINE: &str = "TRANSER_TREE_ENGINE";
/// Fault-injection plan (`transer-robust`): `<site>:<kind>[:<rate>:<seed>]`.
pub const FAULT: &str = "TRANSER_FAULT";
/// Grain-dispatch override (`transer-parallel`): an inline threshold in
/// nanoseconds, `0` = always pool, `inf` = always inline.
pub const GRAIN: &str = "TRANSER_GRAIN";
/// Similarity kernel engine override (`transer-similarity`):
/// `fast` (default) or `reference` (the pinned original kernels).
pub const SIM_KERNEL: &str = "TRANSER_SIM_KERNEL";
/// L2 distance kernel engine override (`transer_common::l2`):
/// `lanes` (default) or `reference` (the pinned exact-order scalar loops).
pub const L2_KERNEL: &str = "TRANSER_L2_KERNEL";
/// Serving: path of the persisted model artefact (`transer-serve` /
/// `bench_serve`).
pub const SERVE_MODEL: &str = "TRANSER_SERVE_MODEL";
/// Serving: path of the persisted LSH index artefact.
pub const SERVE_INDEX: &str = "TRANSER_SERVE_INDEX";
/// Serving: records per query batch (default 256).
pub const SERVE_BATCH: &str = "TRANSER_SERVE_BATCH";

/// The trimmed value of `var`, or `None` when unset, empty or not UTF-8.
pub fn raw(var: &str) -> Option<String> {
    let value = std::env::var(var).ok()?;
    let trimmed = value.trim();
    (!trimmed.is_empty()).then(|| trimmed.to_string())
}

/// Parse `var` with `FromStr`. `None` when unset or empty; when set but
/// unparsable, warns through the trace layer and returns `None` (the call
/// site applies its fallback).
pub fn parsed<T: std::str::FromStr>(var: &str, expected: &str, fallback: &str) -> Option<T> {
    parsed_with(var, |s| s.parse().ok(), expected, fallback)
}

/// Parse `var` with a custom parser. Same unset/invalid semantics as
/// [`parsed`].
pub fn parsed_with<T>(
    var: &str,
    parse: impl FnOnce(&str) -> Option<T>,
    expected: &str,
    fallback: &str,
) -> Option<T> {
    let value = raw(var)?;
    let result = parse(&value);
    if result.is_none() {
        transer_trace::warn_invalid_env(var, &value, expected, fallback);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    // Process-global environment: each test uses its own variable name.
    #[test]
    fn raw_trims_and_treats_empty_as_unset() {
        std::env::set_var("TRANSER_TEST_RAW", "  hello ");
        assert_eq!(raw("TRANSER_TEST_RAW").as_deref(), Some("hello"));
        std::env::set_var("TRANSER_TEST_RAW", "   ");
        assert_eq!(raw("TRANSER_TEST_RAW"), None);
        std::env::remove_var("TRANSER_TEST_RAW");
        assert_eq!(raw("TRANSER_TEST_RAW"), None);
    }

    #[test]
    fn parsed_returns_value_or_warns_and_falls_back() {
        std::env::set_var("TRANSER_TEST_PARSED", "17");
        assert_eq!(parsed::<usize>("TRANSER_TEST_PARSED", "an integer", "default"), Some(17));
        std::env::set_var("TRANSER_TEST_PARSED", "seventeen");
        assert_eq!(parsed::<usize>("TRANSER_TEST_PARSED", "an integer", "default"), None);
        std::env::remove_var("TRANSER_TEST_PARSED");
        assert_eq!(parsed::<usize>("TRANSER_TEST_PARSED", "an integer", "default"), None);
    }

    #[test]
    fn invalid_value_is_recorded_in_the_trace_report() {
        transer_trace::set_enabled(true);
        std::env::set_var("TRANSER_TEST_WARNED", "nonsense");
        let got = parsed_with("TRANSER_TEST_WARNED", |s| s.parse::<u32>().ok(), "an integer", "42");
        assert_eq!(got, None);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        std::env::remove_var("TRANSER_TEST_WARNED");
        assert!(report
            .warnings
            .iter()
            .any(|w| w.context == "env" && w.message.contains("TRANSER_TEST_WARNED")));
    }
}

//! Column-major training view of a [`FeatureMatrix`].
//!
//! The decision-tree trainer scans one feature column at a time: a
//! row-major layout makes every column read stride by `cols` elements, so
//! a scan over a large candidate set touches one cache line per value.
//! [`ColMajorMatrix`] transposes the matrix once (cache-blocked, so both
//! the read and the write side move mostly along cache lines) and then
//! hands out each feature column as a contiguous slice.

use crate::{FeatureMatrix, Result};

/// Tile edge of the blocked transpose: 32×32 `f64` tiles (8 KiB read +
/// 8 KiB written) stay resident in L1 while both sides of the copy move
/// along full cache lines.
const TILE: usize = 32;

/// Cache-blocked out-of-place transpose of a row-major `rows × cols`
/// buffer: `dst[j * rows + i] = src[i * cols + j]`.
///
/// # Panics
/// Panics when either buffer's length is not `rows * cols`.
pub fn transpose_blocked(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols, "source buffer shape mismatch");
    assert_eq!(dst.len(), rows * cols, "destination buffer shape mismatch");
    for i0 in (0..rows).step_by(TILE) {
        let i1 = (i0 + TILE).min(rows);
        for j0 in (0..cols).step_by(TILE) {
            let j1 = (j0 + TILE).min(cols);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

/// Column-major copy of a [`FeatureMatrix`]: [`ColMajorMatrix::col`] is a
/// contiguous slice, which is what per-feature split scans want.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajorMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl ColMajorMatrix {
    /// Transpose `m` into column-major order.
    pub fn from_matrix(m: &FeatureMatrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = vec![0.0; rows * cols];
        transpose_blocked(m.as_slice(), rows, cols, &mut data);
        ColMajorMatrix { data, rows, cols }
    }

    /// A preallocated all-zero `rows × cols` matrix — the merge target
    /// producers scatter row blocks into (see
    /// [`ColMajorMatrix::copy_rows_from_block`]).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ColMajorMatrix { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Copy a column-major block of `block_rows` rows (laid out
    /// `block[c * block_rows + r]`) into rows `row0..row0 + block_rows` of
    /// `self` — one contiguous `copy_from_slice` per column. This is how
    /// parallel producers that each emit a column-major row block merge
    /// into one preallocated matrix without per-element scatter.
    ///
    /// # Panics
    /// Panics when the block shape does not fit at `row0`.
    pub fn copy_rows_from_block(&mut self, row0: usize, block: &[f64], block_rows: usize) {
        assert_eq!(block.len(), block_rows * self.cols, "block buffer shape mismatch");
        assert!(row0 + block_rows <= self.rows, "block rows exceed matrix");
        for c in 0..self.cols {
            let src = &block[c * block_rows..(c + 1) * block_rows];
            let dst_start = c * self.rows + row0;
            self.data[dst_start..dst_start + block_rows].copy_from_slice(src);
        }
    }

    /// Transpose back into a row-major [`FeatureMatrix`] (cache-blocked,
    /// like the forward direction).
    ///
    /// # Errors
    /// Propagates [`FeatureMatrix::from_rows`] validation (cannot fail for
    /// a well-formed `ColMajorMatrix`).
    pub fn to_feature_matrix(&self) -> Result<FeatureMatrix> {
        let mut out = vec![0.0; self.rows * self.cols];
        // `data` is a row-major `cols × rows` buffer; transposing it yields
        // the row-major `rows × cols` layout.
        transpose_blocked(&self.data, self.cols, self.rows, &mut out);
        FeatureMatrix::from_rows(out, self.rows, self.cols)
    }

    /// Number of rows of the original matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Feature column `j` as a contiguous slice of length [`Self::rows`].
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// The value at `(row, col)` — same as `FeatureMatrix::row(i)[j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }
}

impl From<&FeatureMatrix> for ColMajorMatrix {
    fn from(m: &FeatureMatrix) -> Self {
        ColMajorMatrix::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_small_matrix() {
        let m = FeatureMatrix::from_vecs(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = ColMajorMatrix::from_matrix(&m);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.col(0), &[1.0, 4.0]);
        assert_eq!(c.col(1), &[2.0, 5.0]);
        assert_eq!(c.col(2), &[3.0, 6.0]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), m.row(i)[j]);
            }
        }
    }

    #[test]
    fn blocked_transpose_matches_naive_beyond_one_tile() {
        // Shapes straddling tile boundaries: exact multiples, remainders,
        // and degenerate single-row/column cases.
        for (rows, cols) in [(1, 1), (1, 7), (7, 1), (32, 32), (33, 31), (70, 5), (5, 70)] {
            let src: Vec<f64> = (0..rows * cols).map(|k| k as f64 * 0.5 - 3.0).collect();
            let mut dst = vec![0.0; rows * cols];
            transpose_blocked(&src, rows, cols, &mut dst);
            for i in 0..rows {
                for j in 0..cols {
                    assert_eq!(dst[j * rows + i], src[i * cols + j], "({rows}x{cols}) at {i},{j}");
                }
            }
        }
    }

    #[test]
    fn round_trip_through_feature_matrix() {
        for (rows, cols) in [(1, 1), (3, 5), (40, 3), (33, 34)] {
            let data: Vec<f64> = (0..rows * cols).map(|k| k as f64 * 0.25 - 2.0).collect();
            let m = FeatureMatrix::from_rows(data, rows, cols).unwrap();
            let back = ColMajorMatrix::from_matrix(&m).to_feature_matrix().unwrap();
            assert_eq!(back, m, "{rows}x{cols}");
        }
    }

    #[test]
    fn block_scatter_assembles_the_full_matrix() {
        // Three producers each emit a column-major block of rows; the
        // scatter-merge must reproduce the directly-transposed matrix.
        let rows = 7;
        let cols = 3;
        let m = FeatureMatrix::from_rows((0..21).map(f64::from).collect(), rows, cols).unwrap();
        let expect = ColMajorMatrix::from_matrix(&m);
        let mut got = ColMajorMatrix::zeros(rows, cols);
        for (row0, len) in [(0usize, 3usize), (3, 1), (4, 3)] {
            let mut block = vec![0.0; len * cols];
            for r in 0..len {
                for c in 0..cols {
                    block[c * len + r] = m.row(row0 + r)[c];
                }
            }
            got.copy_rows_from_block(row0, &block, len);
        }
        assert_eq!(got, expect);
    }

    #[test]
    #[should_panic(expected = "block buffer shape mismatch")]
    fn block_scatter_rejects_bad_shapes() {
        ColMajorMatrix::zeros(4, 2).copy_rows_from_block(0, &[1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn from_ref_conversion() {
        let m = FeatureMatrix::from_vecs(&[vec![0.25, 0.75]]).unwrap();
        let c: ColMajorMatrix = (&m).into();
        assert_eq!(c.col(1), &[0.75]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn transpose_rejects_bad_buffers() {
        let mut dst = vec![0.0; 5];
        transpose_blocked(&[1.0, 2.0], 1, 2, &mut dst);
    }
}

//! Column-major training view of a [`FeatureMatrix`].
//!
//! The decision-tree trainer scans one feature column at a time: a
//! row-major layout makes every column read stride by `cols` elements, so
//! a scan over a large candidate set touches one cache line per value.
//! [`ColMajorMatrix`] transposes the matrix once (cache-blocked, so both
//! the read and the write side move mostly along cache lines) and then
//! hands out each feature column as a contiguous slice.

use crate::FeatureMatrix;

/// Tile edge of the blocked transpose: 32×32 `f64` tiles (8 KiB read +
/// 8 KiB written) stay resident in L1 while both sides of the copy move
/// along full cache lines.
const TILE: usize = 32;

/// Cache-blocked out-of-place transpose of a row-major `rows × cols`
/// buffer: `dst[j * rows + i] = src[i * cols + j]`.
///
/// # Panics
/// Panics when either buffer's length is not `rows * cols`.
pub fn transpose_blocked(src: &[f64], rows: usize, cols: usize, dst: &mut [f64]) {
    assert_eq!(src.len(), rows * cols, "source buffer shape mismatch");
    assert_eq!(dst.len(), rows * cols, "destination buffer shape mismatch");
    for i0 in (0..rows).step_by(TILE) {
        let i1 = (i0 + TILE).min(rows);
        for j0 in (0..cols).step_by(TILE) {
            let j1 = (j0 + TILE).min(cols);
            for i in i0..i1 {
                for j in j0..j1 {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

/// Column-major copy of a [`FeatureMatrix`]: [`ColMajorMatrix::col`] is a
/// contiguous slice, which is what per-feature split scans want.
#[derive(Debug, Clone, PartialEq)]
pub struct ColMajorMatrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl ColMajorMatrix {
    /// Transpose `m` into column-major order.
    pub fn from_matrix(m: &FeatureMatrix) -> Self {
        let (rows, cols) = (m.rows(), m.cols());
        let mut data = vec![0.0; rows * cols];
        transpose_blocked(m.as_slice(), rows, cols, &mut data);
        ColMajorMatrix { data, rows, cols }
    }

    /// Number of rows of the original matrix.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Feature column `j` as a contiguous slice of length [`Self::rows`].
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// The value at `(row, col)` — same as `FeatureMatrix::row(i)[j]`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[j * self.rows + i]
    }
}

impl From<&FeatureMatrix> for ColMajorMatrix {
    fn from(m: &FeatureMatrix) -> Self {
        ColMajorMatrix::from_matrix(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_small_matrix() {
        let m = FeatureMatrix::from_vecs(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let c = ColMajorMatrix::from_matrix(&m);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.col(0), &[1.0, 4.0]);
        assert_eq!(c.col(1), &[2.0, 5.0]);
        assert_eq!(c.col(2), &[3.0, 6.0]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(c.get(i, j), m.row(i)[j]);
            }
        }
    }

    #[test]
    fn blocked_transpose_matches_naive_beyond_one_tile() {
        // Shapes straddling tile boundaries: exact multiples, remainders,
        // and degenerate single-row/column cases.
        for (rows, cols) in [(1, 1), (1, 7), (7, 1), (32, 32), (33, 31), (70, 5), (5, 70)] {
            let src: Vec<f64> = (0..rows * cols).map(|k| k as f64 * 0.5 - 3.0).collect();
            let mut dst = vec![0.0; rows * cols];
            transpose_blocked(&src, rows, cols, &mut dst);
            for i in 0..rows {
                for j in 0..cols {
                    assert_eq!(dst[j * rows + i], src[i * cols + j], "({rows}x{cols}) at {i},{j}");
                }
            }
        }
    }

    #[test]
    fn from_ref_conversion() {
        let m = FeatureMatrix::from_vecs(&[vec![0.25, 0.75]]).unwrap();
        let c: ColMajorMatrix = (&m).into();
        assert_eq!(c.col(1), &[0.75]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn transpose_rejects_bad_buffers() {
        let mut dst = vec![0.0; 5];
        transpose_blocked(&[1.0, 2.0], 1, 2, &mut dst);
    }
}

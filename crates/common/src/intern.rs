//! Deterministic interning: rows of duplicated feature matrices
//! ([`RowInterning`]) and short strings ([`StrInterner`]).
//!
//! ER feature matrices are massively duplicated: many candidate record
//! pairs round to the same similarity vector, so the same point is indexed
//! and queried thousands of times by the SEL phase. [`RowInterning`]
//! collapses a [`FeatureMatrix`] to its distinct rows once, recording for
//! every original row which unique row it maps to and, for every unique
//! row, the ascending list of original rows that share it. Downstream
//! consumers (the duplicate-aware k-NN engine in `transer-knn`) do their
//! O(n·m) work per *unique* row and broadcast results back.
//!
//! Rows are compared by their exact f64 bit patterns, so the unique matrix
//! rows are bitwise copies of their first occurrences and every member of a
//! group is bitwise equal to its unique representative. (`0.0` and `-0.0`
//! therefore land in *different* groups despite comparing numerically
//! equal; consumers that care about numeric ties handle them through
//! distance classes, not through the interning.)

use std::collections::HashMap;

use crate::FeatureMatrix;

/// The result of deduplicating the rows of a [`FeatureMatrix`].
///
/// Invariants, relied upon by the k-NN engine:
///
/// * `unique.row(to_unique[i])` is bitwise equal to the original row `i`;
/// * unique rows are numbered in order of first occurrence (deterministic);
/// * `members(u)` lists the original rows of group `u` in ascending order
///   and the groups partition `0..original_rows()`.
#[derive(Debug, Clone, PartialEq)]
pub struct RowInterning {
    unique: FeatureMatrix,
    to_unique: Vec<u32>,
    /// CSR offsets into `members`, length `unique.rows() + 1`.
    offsets: Vec<u32>,
    /// Original row indices grouped by unique row, ascending within group.
    members: Vec<u32>,
}

impl RowInterning {
    /// Intern the rows of `matrix`.
    ///
    /// # Panics
    /// Panics when the matrix has more than `u32::MAX` rows (the engine
    /// stores row indices as `u32`, like the KD-tree).
    pub fn of(matrix: &FeatureMatrix) -> Self {
        let n = matrix.rows();
        assert!(n <= u32::MAX as usize, "row interning supports at most u32::MAX rows");
        let mut map: HashMap<Vec<u64>, u32> = HashMap::with_capacity(n);
        let mut to_unique = Vec::with_capacity(n);
        let mut unique = FeatureMatrix::empty(matrix.cols());
        for i in 0..n {
            let row = matrix.row(i);
            let key: Vec<u64> = row.iter().map(|v| v.to_bits()).collect();
            let id = match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    let id = unique.rows() as u32;
                    unique.push_row(row);
                    e.insert(id);
                    id
                }
            };
            to_unique.push(id);
        }
        // Counting sort: members of each group in ascending original order.
        let nu = unique.rows();
        let mut offsets = vec![0u32; nu + 1];
        for &u in &to_unique {
            offsets[u as usize + 1] += 1;
        }
        for u in 0..nu {
            offsets[u + 1] += offsets[u];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0u32; n];
        for (i, &u) in to_unique.iter().enumerate() {
            members[cursor[u as usize] as usize] = i as u32;
            cursor[u as usize] += 1;
        }
        RowInterning { unique, to_unique, offsets, members }
    }

    /// The matrix of distinct rows, in order of first occurrence.
    #[inline]
    pub fn unique(&self) -> &FeatureMatrix {
        &self.unique
    }

    /// Number of original rows.
    #[inline]
    pub fn original_rows(&self) -> usize {
        self.to_unique.len()
    }

    /// Number of distinct rows.
    #[inline]
    pub fn unique_rows(&self) -> usize {
        self.unique.rows()
    }

    /// For every original row, the unique row it maps to.
    #[inline]
    pub fn to_unique(&self) -> &[u32] {
        &self.to_unique
    }

    /// The original rows sharing unique row `u`, ascending.
    #[inline]
    pub fn members(&self, u: usize) -> &[u32] {
        &self.members[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// How many original rows share unique row `u`.
    #[inline]
    pub fn multiplicity(&self, u: usize) -> usize {
        (self.offsets[u + 1] - self.offsets[u]) as usize
    }

    /// Per-unique-row multiplicities as a dense vector (the weight input of
    /// the weighted k-NN queries).
    pub fn multiplicities(&self) -> Vec<u32> {
        (0..self.unique_rows()).map(|u| self.multiplicity(u) as u32).collect()
    }

    /// `original_rows / unique_rows` — 1.0 means no duplication; ER
    /// matrices commonly reach 5–100×. Defined as 1.0 for empty matrices.
    pub fn dedup_ratio(&self) -> f64 {
        if self.unique_rows() == 0 {
            1.0
        } else {
            self.original_rows() as f64 / self.unique_rows() as f64
        }
    }
}

/// Deterministic short-string interner: maps each distinct string to a
/// dense `u32` id in order of first appearance.
///
/// The similarity fast kernel uses one interner per compare-run shard to
/// turn token and q-gram profiles into sorted `u32` id slices, so the
/// per-pair set similarities become `O(n + m)` integer merges with no
/// hashing or `String` allocation. Ids are only meaningful *within* one
/// interner: two values may be compared by id iff both were interned by
/// the same instance. Scores derived from ids are id-assignment-agnostic
/// (only equality of ids is ever used), so different interning orders on
/// different shards still yield bit-identical similarities.
#[derive(Debug, Default, Clone)]
pub struct StrInterner {
    map: std::collections::HashMap<Box<str>, u32>,
}

impl StrInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `s`, assigning the next dense id on first sight.
    ///
    /// # Panics
    /// Panics after `u32::MAX` distinct strings (far beyond any realistic
    /// token vocabulary of one compare shard).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let len = self.map.len();
        assert!(len < u32::MAX as usize, "interner overflow: u32::MAX distinct strings");
        let id = len as u32;
        self.map.insert(Box::from(s), id);
        id
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duplicated() -> FeatureMatrix {
        FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5],
            vec![0.1, 0.9],
            vec![0.5, 0.5],
            vec![0.1, 0.9],
            vec![0.5, 0.5],
            vec![0.7, 0.2],
        ])
        .unwrap()
    }

    #[test]
    fn groups_by_first_occurrence() {
        let it = RowInterning::of(&duplicated());
        assert_eq!(it.original_rows(), 6);
        assert_eq!(it.unique_rows(), 3);
        assert_eq!(it.unique().row(0), &[0.5, 0.5]);
        assert_eq!(it.unique().row(1), &[0.1, 0.9]);
        assert_eq!(it.unique().row(2), &[0.7, 0.2]);
        assert_eq!(it.to_unique(), &[0, 1, 0, 1, 0, 2]);
        assert_eq!(it.members(0), &[0, 2, 4]);
        assert_eq!(it.members(1), &[1, 3]);
        assert_eq!(it.members(2), &[5]);
        assert_eq!(it.multiplicities(), vec![3, 2, 1]);
        assert!((it.dedup_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn members_partition_rows_and_match_mapping() {
        let it = RowInterning::of(&duplicated());
        let mut seen = vec![false; it.original_rows()];
        for u in 0..it.unique_rows() {
            for &i in it.members(u) {
                assert!(!seen[i as usize], "row {i} in two groups");
                seen[i as usize] = true;
                assert_eq!(it.to_unique()[i as usize] as usize, u);
            }
            assert!(it.members(u).windows(2).all(|w| w[0] < w[1]), "members not ascending");
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn rows_bitwise_equal_to_representatives() {
        let it = RowInterning::of(&duplicated());
        let m = duplicated();
        for i in 0..m.rows() {
            let u = it.to_unique()[i] as usize;
            let a: Vec<u64> = m.row(i).iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = it.unique().row(u).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_distinct_is_identity() {
        let m = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2], vec![0.3]]).unwrap();
        let it = RowInterning::of(&m);
        assert_eq!(it.unique_rows(), 3);
        assert_eq!(it.to_unique(), &[0, 1, 2]);
        assert_eq!(it.dedup_ratio(), 1.0);
    }

    #[test]
    fn empty_matrix() {
        let it = RowInterning::of(&FeatureMatrix::empty(4));
        assert_eq!(it.original_rows(), 0);
        assert_eq!(it.unique_rows(), 0);
        assert_eq!(it.dedup_ratio(), 1.0);
        assert!(it.multiplicities().is_empty());
    }

    #[test]
    fn str_interner_assigns_dense_first_seen_ids() {
        let mut it = StrInterner::new();
        assert!(it.is_empty());
        assert_eq!(it.intern("deep"), 0);
        assert_eq!(it.intern("entity"), 1);
        assert_eq!(it.intern("deep"), 0);
        assert_eq!(it.intern(""), 2);
        assert_eq!(it.intern("entity"), 1);
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn signed_zero_rows_are_distinct_groups() {
        let m = FeatureMatrix::from_vecs(&[vec![0.0], vec![-0.0], vec![0.0]]).unwrap();
        let it = RowInterning::of(&m);
        assert_eq!(it.unique_rows(), 2);
        assert_eq!(it.to_unique(), &[0, 1, 0]);
    }
}

//! End-to-end tests of the counting global allocator: this binary links
//! `transer-common`, so `CountingAllocator` is the registered
//! `#[global_allocator]` and real heap traffic drives the counters in
//! `transer_trace::alloc`.

use std::sync::Mutex;

use transer_trace::alloc;

// An unused `--extern` crate is never loaded, and an unloaded crate's
// `#[global_allocator]` is never registered — so the linkage below is
// load-bearing: it is what swaps this test binary's allocator from the
// default shim to `CountingAllocator`.
use transer_common as _;

// The profiling switch is process-global; tests that flip it serialise
// here and restore "disabled" before returning.
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn real_allocations_are_counted_when_enabled() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    alloc::set_enabled(true);
    let (c0, b0) = alloc::thread_counters();
    let v: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&v);
    let (c1, b1) = alloc::thread_counters();
    alloc::set_enabled(false);
    assert!(c1 > c0, "a fresh Vec allocation must count at least one event");
    assert!(b1 - b0 >= 4096, "at least the requested capacity in bytes, got {}", b1 - b0);
}

#[test]
fn disabled_profiling_counts_nothing() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    alloc::set_enabled(false);
    let before = alloc::thread_counters();
    let v: Vec<u64> = (0..10_000).collect();
    std::hint::black_box(&v);
    drop(v);
    assert_eq!(alloc::thread_counters(), before);
}

#[test]
fn realloc_growth_is_charged_incrementally() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    alloc::set_enabled(true);
    let mut v: Vec<u8> = Vec::with_capacity(64);
    let (_, b0) = alloc::thread_counters();
    v.reserve_exact(128); // grow 64 → 128: realloc charges the growth
    std::hint::black_box(&v);
    let (_, b1) = alloc::thread_counters();
    alloc::set_enabled(false);
    let grown = b1 - b0;
    // Whether the allocator realloc'd in place (64 fresh bytes) or moved
    // (a 128-byte alloc), the charge stays below a full double-count.
    assert!((64..=128).contains(&grown), "growth charged {grown} bytes");
}

#[test]
fn spans_capture_real_allocation_deltas() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = transer_trace::take_global_report();
    transer_trace::set_enabled(true);
    alloc::set_enabled(true);
    {
        let _span = transer_trace::span("test.alloc_span");
        let v: Vec<u8> = Vec::with_capacity(1 << 16);
        std::hint::black_box(&v);
    }
    let report = transer_trace::drain_report();
    alloc::set_enabled(false);
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();
    let span = report.find_span("test.alloc_span").expect("span recorded");
    assert!(span.alloc_count >= 1);
    assert!(span.alloc_bytes >= 1 << 16, "span saw {} bytes", span.alloc_bytes);
}

#[test]
fn alloc_counted_measures_a_real_closure() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = transer_trace::take_global_report();
    transer_trace::set_enabled(true);
    alloc::set_enabled(true);
    let len = transer_trace::alloc_counted("test.alloc.count", "test.alloc.bytes", || {
        let v: Vec<u8> = Vec::with_capacity(8192);
        std::hint::black_box(&v);
        v.capacity()
    });
    let report = transer_trace::drain_report();
    alloc::set_enabled(false);
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();
    assert_eq!(len, 8192);
    assert!(report.counter("test.alloc.count") >= 1);
    assert!(report.counter("test.alloc.bytes") >= 8192);
}

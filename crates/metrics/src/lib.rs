//! Linkage-quality evaluation measures.
//!
//! Following the paper (Section 5.1.4) quality is reported as precision,
//! recall, F1 and the interpretable `F* = TP / (TP + FP + FN)` measure of
//! Hand, Christen & Kirielle (2021), which the authors prefer over F1 for
//! ER. This crate also provides mean±std aggregation (Table 2 averages over
//! four classifiers) and fixed-width histograms (Fig. 2 similarity
//! distributions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod confusion;
mod histogram;

pub use agg::MeanStd;
pub use confusion::{evaluate, ConfusionMatrix};
pub use histogram::Histogram;

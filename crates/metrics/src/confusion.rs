//! Confusion matrices and the derived linkage-quality measures.

use transer_common::Label;

/// Binary confusion matrix for an ER classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// True matches classified as matches.
    pub tp: usize,
    /// True non-matches classified as matches (false matches).
    pub fp: usize,
    /// True matches classified as non-matches (false non-matches).
    pub fn_: usize,
    /// True non-matches classified as non-matches.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Tally a confusion matrix from aligned prediction / truth slices.
    ///
    /// # Panics
    /// Panics when the slices have different lengths.
    pub fn from_labels(predicted: &[Label], truth: &[Label]) -> Self {
        assert_eq!(predicted.len(), truth.len(), "prediction/truth length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p, t) {
                (Label::Match, Label::Match) => cm.tp += 1,
                (Label::Match, Label::NonMatch) => cm.fp += 1,
                (Label::NonMatch, Label::Match) => cm.fn_ += 1,
                (Label::NonMatch, Label::NonMatch) => cm.tn += 1,
            }
        }
        cm
    }

    /// Total number of classified pairs.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `TP / (TP + FP)`; 0 when no pair was classified a match.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `TP / (TP + FN)`; 0 when the ground truth has no matches.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 measure, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        ratio(2 * self.tp, 2 * self.tp + self.fp + self.fn_)
    }

    /// The interpretable `F* = TP / (TP + FP + FN)` measure
    /// (Hand, Christen & Kirielle, 2021). Related to F1 by
    /// `F* = F1 / (2 − F1)`.
    pub fn f_star(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp + self.fn_)
    }

    /// Accuracy over all four cells. Rarely meaningful for ER (class
    /// imbalance) but useful in tests.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

#[inline]
fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Convenience: evaluate predictions against ground truth in one call.
pub fn evaluate(predicted: &[Label], truth: &[Label]) -> ConfusionMatrix {
    ConfusionMatrix::from_labels(predicted, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(bits: &[u8]) -> Vec<Label> {
        bits.iter().map(|&b| Label::from_bool(b == 1)).collect()
    }

    #[test]
    fn tally() {
        let pred = labels(&[1, 1, 0, 0, 1]);
        let truth = labels(&[1, 0, 1, 0, 1]);
        let cm = evaluate(&pred, &truth);
        assert_eq!(cm, ConfusionMatrix { tp: 2, fp: 1, fn_: 1, tn: 1 });
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn perfect_classifier() {
        let t = labels(&[1, 0, 1, 0]);
        let cm = evaluate(&t, &t);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.f_star(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn empty_slices_tally_to_zero_without_panicking() {
        // An empty prediction set (e.g. a pipeline that degraded to an
        // empty candidate list) must evaluate to all-zero counts and
        // defined (0.0) quality measures, not a division panic.
        let cm = ConfusionMatrix::from_labels(&[], &[]);
        assert_eq!(cm, ConfusionMatrix::default());
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.f_star(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn degenerate_denominators() {
        // Never predicts match, truth has no matches.
        let cm = evaluate(&labels(&[0, 0]), &labels(&[0, 0]));
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1(), 0.0);
        assert_eq!(cm.f_star(), 0.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        let cm = ConfusionMatrix { tp: 6, fp: 2, fn_: 2, tn: 10 };
        assert!((cm.precision() - 0.75).abs() < 1e-12);
        assert!((cm.recall() - 0.75).abs() < 1e-12);
        assert!((cm.f1() - 0.75).abs() < 1e-12);
        assert!((cm.f_star() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fstar_f1_relation() {
        for cm in [
            ConfusionMatrix { tp: 5, fp: 3, fn_: 2, tn: 7 },
            ConfusionMatrix { tp: 1, fp: 9, fn_: 4, tn: 0 },
            ConfusionMatrix { tp: 100, fp: 1, fn_: 1, tn: 1000 },
        ] {
            let f1 = cm.f1();
            assert!((cm.f_star() - f1 / (2.0 - f1)).abs() < 1e-12);
            // F* never exceeds F1.
            assert!(cm.f_star() <= f1 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        evaluate(&labels(&[1]), &labels(&[1, 0]));
    }
}

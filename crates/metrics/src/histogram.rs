//! Fixed-width histograms over `[0, 1]` used to reproduce the Fig. 2
//! similarity distributions.

/// Histogram with equal-width bins over the unit interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<usize>,
}

impl Histogram {
    /// Create a histogram with `bins` equal-width bins over `[0, 1]`.
    ///
    /// # Panics
    /// Panics when `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        Histogram { counts: vec![0; bins] }
    }

    /// Build directly from an iterator of values.
    pub fn from_values(bins: usize, values: impl IntoIterator<Item = f64>) -> Self {
        let mut h = Histogram::new(bins);
        for v in values {
            h.add(v);
        }
        h
    }

    /// Add one value; values are clamped into `[0, 1]`, so `1.0` lands in
    /// the last bin.
    pub fn add(&mut self, v: f64) {
        let v = v.clamp(0.0, 1.0);
        let bins = self.counts.len();
        let idx = ((v * bins as f64) as usize).min(bins - 1);
        self.counts[idx] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Per-bin relative frequencies; all zeros when empty.
    pub fn frequencies(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Indices of local maxima (bins strictly larger than both neighbours,
    /// with boundary bins compared against their single neighbour). Used to
    /// verify the *bi-modal* shape of ER similarity distributions.
    pub fn peaks(&self) -> Vec<usize> {
        let c = &self.counts;
        let n = c.len();
        let mut peaks = Vec::new();
        for i in 0..n {
            let left = if i == 0 { 0 } else { c[i - 1] };
            let right = if i + 1 == n { 0 } else { c[i + 1] };
            if c[i] > 0 && c[i] >= left && c[i] >= right && (c[i] > left || c[i] > right) {
                peaks.push(i);
            }
        }
        peaks
    }

    /// Midpoint of bin `i` on the value axis.
    pub fn bin_center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) / self.counts.len() as f64
    }

    /// Render an ASCII bar chart, one bin per line — used by the figure
    /// binaries for terminal output.
    pub fn ascii(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat(c * width / max);
            out.push_str(&format!("{:>5.2} |{bar:<width$}| {c}\n", self.bin_center(i)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning() {
        let h = Histogram::from_values(4, [0.0, 0.1, 0.3, 0.6, 0.9, 1.0]);
        assert_eq!(h.counts(), &[2, 1, 1, 2]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn clamping_out_of_range() {
        let h = Histogram::from_values(2, [-1.0, 2.0]);
        assert_eq!(h.counts(), &[1, 1]);
    }

    #[test]
    fn frequencies_sum_to_one() {
        let h = Histogram::from_values(5, (0..100).map(|i| i as f64 / 100.0));
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(3).frequencies(), vec![0.0; 3]);
    }

    #[test]
    fn bimodal_peaks_detected() {
        // Two clear modes, as in Fig. 2.
        let mut h = Histogram::new(10);
        for _ in 0..50 {
            h.add(0.15);
        }
        for _ in 0..5 {
            h.add(0.25);
        }
        for _ in 0..30 {
            h.add(0.85);
        }
        let peaks = h.peaks();
        assert_eq!(peaks, vec![1, 8]);
    }

    #[test]
    fn bin_centers() {
        let h = Histogram::new(4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_contains_bars() {
        let h = Histogram::from_values(2, [0.1, 0.1, 0.9]);
        let art = h.ascii(10);
        assert!(art.contains("##########"));
        assert!(art.lines().count() == 2);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        Histogram::new(0);
    }
}

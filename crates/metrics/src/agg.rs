//! Mean ± standard-deviation aggregation, matching how Table 2 averages
//! linkage quality over the classifier set {SVM, RF, LR, DT}.

/// Online mean and (population) standard deviation accumulator
/// (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanStd {
    n: usize,
    mean: f64,
    m2: f64,
}

impl MeanStd {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate all values from an iterator.
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let mut s = Self::new();
        for v in values {
            s.push(v);
        }
        s
    }

    /// Add one observation.
    pub fn push(&mut self, v: f64) {
        self.n += 1;
        let delta = v - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (v - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation; 0 with fewer than two observations.
    pub fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }

    /// Format as the paper's `mean ± std` percentage cells, e.g. `92.78 ± 5.13`
    /// (inputs are fractions in `[0, 1]`).
    pub fn cell_pct(&self) -> String {
        format!("{:.2} \u{00b1} {:.2}", self.mean() * 100.0, self.std() * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        let s = MeanStd::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std(), 0.0);
        let s = MeanStd::from_values([3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = MeanStd::from_values([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        let s = MeanStd::from_values([0.9, 0.95]);
        assert_eq!(s.cell_pct(), "92.50 \u{00b1} 2.50");
    }

    #[test]
    fn numerically_stable_for_shifted_data() {
        let base = 1e9;
        let s = MeanStd::from_values([base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.mean() - (base + 2.0)).abs() < 1e-3);
        assert!((s.std() - (2.0f64 / 3.0).sqrt()).abs() < 1e-6);
    }
}

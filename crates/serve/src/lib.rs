//! Online serving mode: the long-lived half of the pipeline.
//!
//! Every other binary in this workspace is one-shot batch: fit, predict,
//! exit. A production matcher amortises the expensive artefacts across
//! requests instead — the trained model is loaded once
//! ([`transer_ml::PersistedModel`]), the blocking index is kept warm and
//! *updated* as the reference database churns
//! ([`transer_blocking::LshIndex`]), and queries arrive in batches that run
//! block → compare → predict without ever refitting.
//!
//! [`MatchService`] owns those three pieces. Per batch it:
//!
//! 1. probes the LSH index with every query record (`serve.block` span);
//! 2. compares each (reference, query) candidate pair into similarity
//!    features via the configured [`Comparison`];
//! 3. scores the pairs with the warm model (`serve.predict` span) and
//!    returns per-pair match decisions.
//!
//! Requests are observable through `serve.*` spans/counters and faultable
//! through the `TRANSER_FAULT=serve.query:*` seam, like every other phase
//! boundary in the system.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use transer_blocking::{Comparison, LshIndex, MinHashLshConfig};
use transer_common::{env, Error, Label, Record, Result};
use transer_ml::PersistedModel;
use transer_parallel::Pool;
use transer_robust::{site, FaultKind};

/// Default records per query batch when `TRANSER_SERVE_BATCH` is unset.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// Records per query batch: `TRANSER_SERVE_BATCH`, falling back to
/// [`DEFAULT_BATCH_SIZE`] when unset, unparsable or zero.
pub fn batch_size_from_env() -> usize {
    match env::parsed::<usize>(env::SERVE_BATCH, "a positive integer", "256") {
        Some(n) if n > 0 => n,
        _ => DEFAULT_BATCH_SIZE,
    }
}

/// One match decision: a candidate reference record scored against one
/// query record of the batch.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryDecision {
    /// Index of the query record within the batch.
    pub query: usize,
    /// Id of the candidate reference record.
    pub reference: usize,
    /// Match probability from the warm model.
    pub proba: f64,
    /// Hard decision at the 0.5 threshold.
    pub label: Label,
}

/// The result of one [`MatchService::query_batch`] call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BatchResponse {
    /// Match decisions, grouped by query index, candidates in ascending
    /// reference-id order. Deterministic for every worker count.
    pub decisions: Vec<QueryDecision>,
    /// Total candidate pairs the index produced for this batch.
    pub candidates: usize,
    /// Decisions labelled as matches.
    pub matches: usize,
}

/// A warm matching service: comparison schema + trained model + updatable
/// blocking index + reference records, loaded once and reused per batch.
///
/// Removed reference records keep their slot in the backing store (the
/// index never returns a dead id, so the slot is unreachable); ids are
/// therefore stable for the lifetime of the service.
pub struct MatchService {
    comparison: Comparison,
    model: PersistedModel,
    index: LshIndex,
    records: Vec<Record>,
}

impl MatchService {
    /// Build a service over a reference database, constructing the index
    /// from scratch (ids `0..reference.len()`).
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when the LSH config is invalid.
    pub fn new(
        comparison: Comparison,
        model: PersistedModel,
        config: MinHashLshConfig,
        attrs: Option<&[usize]>,
        reference: Vec<Record>,
    ) -> Result<Self> {
        let index = LshIndex::from_records(config, attrs, &reference)?;
        Ok(MatchService { comparison, model, index, records: reference })
    }

    /// Build a service from a pre-built (typically loaded) index and its
    /// reference records. Every live id must address a record slot.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when the index references an id outside
    /// `records`.
    pub fn with_index(
        comparison: Comparison,
        model: PersistedModel,
        index: LshIndex,
        records: Vec<Record>,
    ) -> Result<Self> {
        if let Some(bad) = index.ids().find(|&id| id >= records.len()) {
            return Err(Error::InvalidParameter {
                name: "index",
                message: format!("live id {bad} has no record slot ({} records)", records.len()),
            });
        }
        Ok(MatchService { comparison, model, index, records })
    }

    /// Load the persisted artefacts (model + index) and wrap them around a
    /// reference database — the cold-start path of a serving process.
    ///
    /// # Errors
    /// [`Error::Persist`] on unreadable/malformed artefacts;
    /// [`Error::InvalidParameter`] when the index does not fit `records`.
    pub fn load(
        comparison: Comparison,
        model_path: &str,
        index_path: &str,
        records: Vec<Record>,
    ) -> Result<Self> {
        let model = PersistedModel::load(model_path)?;
        let index = LshIndex::load(index_path)?;
        MatchService::with_index(comparison, model, index, records)
    }

    /// Number of live reference records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the reference database is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The warm model.
    pub fn model(&self) -> &PersistedModel {
        &self.model
    }

    /// The live blocking index.
    pub fn index(&self) -> &LshIndex {
        &self.index
    }

    /// Add a reference record; returns its assigned id.
    ///
    /// # Errors
    /// Propagates index insertion errors (cannot occur for fresh ids).
    pub fn insert(&mut self, record: Record) -> Result<usize> {
        let id = self.records.len();
        self.index.insert(id, &record)?;
        self.records.push(record);
        Ok(id)
    }

    /// Remove a reference record by id.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `id` is not live.
    pub fn remove(&mut self, id: usize) -> Result<()> {
        self.index.remove(id)
    }

    /// Score a batch of query records against the reference database on
    /// the global [`Pool`].
    ///
    /// # Errors
    /// See [`MatchService::query_batch_with_pool`].
    pub fn query_batch(&self, batch: &[Record]) -> Result<BatchResponse> {
        self.query_batch_with_pool(batch, &Pool::global())
    }

    /// [`MatchService::query_batch`] on an explicit [`Pool`]. Decisions are
    /// bit-identical for every worker count.
    ///
    /// Hosts the `serve.query` fault site: `task_fail` aborts the batch
    /// with [`Error::FaultInjected`]; `empty` drops every candidate;
    /// `nan`/`inf` corrupt the feature matrix before prediction;
    /// `single_class` collapses the decisions — all observable through the
    /// `robust.fault.serve.query` counter.
    ///
    /// # Errors
    /// Propagates comparison errors and injected faults.
    pub fn query_batch_with_pool(&self, batch: &[Record], pool: &Pool) -> Result<BatchResponse> {
        let _span = transer_trace::span("serve.batch");
        transer_trace::counter("serve.batches", 1);
        transer_trace::counter("serve.queries", batch.len() as u64);

        let fault = transer_robust::fired(site::SERVE_QUERY);
        if fault == Some(FaultKind::TaskFail) {
            return Err(Error::FaultInjected(site::SERVE_QUERY));
        }

        // Block: probe the warm index with every query record.
        let candidates = {
            let _block = transer_trace::span("serve.block");
            self.index.query_batch(batch, pool)
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (q, ids) in candidates.iter().enumerate() {
            pairs.extend(ids.iter().map(|&id| (id, q)));
        }
        if fault == Some(FaultKind::Empty) {
            pairs.clear();
        }
        transer_trace::counter("serve.candidates", pairs.len() as u64);
        if pairs.is_empty() {
            return Ok(BatchResponse::default());
        }

        // Compare: candidate pairs into similarity features. The labels
        // derived from entity ids are ground truth the serving path must
        // not see; only the features flow onward.
        let (mut x, _y) =
            self.comparison.compare_pairs_with_pool(&self.records, batch, &pairs, pool)?;
        if let Some(kind @ (FaultKind::Nan | FaultKind::Inf)) = fault {
            transer_robust::corrupt_matrix(&mut x, kind);
        }

        // Predict with the warm model.
        let probs = {
            let _predict = transer_trace::span("serve.predict");
            self.model.classifier().predict_proba(&x)
        };
        let mut labels: Vec<Label> = probs.iter().map(|&p| Label::from_score(p)).collect();
        if fault == Some(FaultKind::SingleClass) {
            transer_robust::corrupt_labels(&mut labels, FaultKind::SingleClass);
        }

        let decisions: Vec<QueryDecision> = pairs
            .iter()
            .zip(probs.iter().zip(&labels))
            .map(|(&(reference, query), (&proba, &label))| QueryDecision {
                query,
                reference,
                proba,
                label,
            })
            .collect();
        let matches = decisions.iter().filter(|d| d.label.is_match()).count();
        transer_trace::counter("serve.matches", matches as u64);
        Ok(BatchResponse { candidates: pairs.len(), matches, decisions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::AttrValue;
    use transer_ml::{ClassifierKind, PersistedModel};
    use transer_similarity::Measure;

    fn rec(id: u64, entity: u64, title: &str) -> Record {
        Record::new(id, entity, vec![AttrValue::Text(title.into())])
    }

    fn corpus() -> Vec<Record> {
        let titles = [
            "a fast algorithm for record linkage",
            "record linkage at scale",
            "the beatles abbey road",
            "entity resolution with transfer learning",
            "transfer learning for entity resolution",
        ];
        (0..30).map(|i| rec(i, i, &format!("{} part {}", titles[i as usize % 5], i % 3))).collect()
    }

    fn trained_model() -> PersistedModel {
        use transer_common::FeatureMatrix;
        let x = FeatureMatrix::from_vecs(&[
            vec![0.95],
            vec![0.9],
            vec![0.85],
            vec![0.2],
            vec![0.1],
            vec![0.05],
        ])
        .expect("rectangular");
        let y = vec![
            Label::Match,
            Label::Match,
            Label::Match,
            Label::NonMatch,
            Label::NonMatch,
            Label::NonMatch,
        ];
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        clf.fit(&x, &y).expect("separable");
        PersistedModel::from_classifier(clf.as_ref()).expect("persistable kind")
    }

    fn service() -> MatchService {
        let comparison =
            Comparison::new(vec![(0, Measure::TokenJaccard)]).expect("non-empty schema");
        MatchService::new(comparison, trained_model(), MinHashLshConfig::default(), None, corpus())
            .expect("valid config")
    }

    #[test]
    fn self_queries_match_themselves() {
        let svc = service();
        let batch = corpus();
        let resp = svc.query_batch(&batch).expect("batch");
        assert!(resp.candidates > 0);
        for (q, record) in batch.iter().enumerate() {
            let own = resp
                .decisions
                .iter()
                .find(|d| d.query == q && d.reference == record.id as usize)
                .unwrap_or_else(|| panic!("query {q} should surface its own record"));
            assert!(own.label.is_match(), "identical record must score as a match");
        }
    }

    #[test]
    fn batch_is_deterministic_across_worker_counts() {
        let svc = service();
        let batch = corpus();
        let seq = svc.query_batch_with_pool(&batch, &Pool::new(1)).expect("batch");
        let par = svc.query_batch_with_pool(&batch, &Pool::new(4)).expect("batch");
        assert_eq!(seq, par);
    }

    #[test]
    fn removed_records_stop_matching_and_ids_stay_stable() {
        let mut svc = service();
        let batch = vec![corpus()[4].clone()];
        let before = svc.query_batch(&batch).expect("batch");
        assert!(before.decisions.iter().any(|d| d.reference == 4));
        svc.remove(4).expect("live id");
        let after = svc.query_batch(&batch).expect("batch");
        assert!(after.decisions.iter().all(|d| d.reference != 4));
        // A new insert gets a fresh id; the removed slot is never reused.
        let id = svc.insert(rec(99, 99, "a brand new reference title")).expect("insert");
        assert_eq!(id, 30);
    }

    #[test]
    fn fault_seam_task_fail_and_empty() {
        let _guard = transer_robust::test_lock();
        let svc = service();
        let batch = vec![corpus()[0].clone()];
        transer_robust::set_plan(Some("serve.query:task_fail"));
        let err = svc.query_batch(&batch);
        transer_robust::set_plan(None);
        assert!(matches!(err, Err(Error::FaultInjected(s)) if s == site::SERVE_QUERY));

        transer_robust::set_plan(Some("serve.query:empty"));
        let resp = svc.query_batch(&batch);
        transer_robust::set_plan(None);
        let resp = resp.expect("empty fault degrades, not errors");
        assert_eq!(resp.decisions.len(), 0);
    }

    #[test]
    fn fault_seam_nan_degrades_gracefully() {
        let _guard = transer_robust::test_lock();
        let svc = service();
        let batch = vec![corpus()[0].clone()];
        transer_robust::set_plan(Some("serve.query:nan"));
        let resp = svc.query_batch(&batch);
        transer_robust::set_plan(None);
        let resp = resp.expect("nan fault must not panic the batch");
        assert!(!resp.decisions.is_empty());
    }

    #[test]
    fn with_index_rejects_out_of_range_ids() {
        let comparison = Comparison::new(vec![(0, Measure::TokenJaccard)]).expect("schema");
        let records = corpus();
        let index =
            LshIndex::from_records(MinHashLshConfig::default(), None, &records).expect("valid");
        let err =
            MatchService::with_index(comparison, trained_model(), index, records[..10].to_vec());
        assert!(matches!(err, Err(Error::InvalidParameter { name: "index", .. })));
    }
}

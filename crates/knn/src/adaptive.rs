//! Backend selection: KD-tree vs ball tree vs blocked brute force.
//!
//! KD-trees win when axis-aligned pruning works — many rows, very low
//! dimensionality. Ball trees keep pruning at the moderate
//! dimensionalities real ER feature matrices have (9–24 features), where
//! KD-tree splits stop cutting the search space, and scan their leaves
//! as contiguous rows through the shared vectorizable L2 kernel. For
//! small matrices any build cost dominates, and in high dimensions
//! neither tree prunes — the blocked kernel's streaming dot products win
//! both regimes. [`AdaptiveIndex`] picks per-matrix from `(n_unique,
//! dim)` using crossovers measured by the `bench_sel` regime sweep (see
//! `EXPERIMENTS.md`); the choice can be forced per-process with the
//! `TRANSER_KNN_INDEX` environment variable (`kdtree`, `balltree`,
//! `blocked`, or `auto`), mirroring the `TRANSER_THREADS` convention in
//! `transer-parallel`.
//!
//! All backends produce bit-identical results (same neighbours, same
//! squared distances, same tie-break order), so the choice affects wall
//! time only — determinism does not depend on it.

use std::sync::OnceLock;

use transer_common::FeatureMatrix;

use crate::balltree::BallTree;
use crate::blocked::BlockedBruteForce;
use crate::heap::Neighbor;
use crate::kdtree::KdTree;

/// Which k-NN backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Always the KD-tree.
    KdTree,
    /// Always the ball tree.
    BallTree,
    /// Always the blocked brute-force kernel.
    Blocked,
    /// Pick per matrix from `(rows, dim)`.
    Auto,
}

impl IndexKind {
    /// Parse a recognised `TRANSER_KNN_INDEX` value; `None` otherwise.
    fn parse_known(s: &str) -> Option<IndexKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "kdtree" | "kd-tree" | "kd" => Some(IndexKind::KdTree),
            "balltree" | "ball-tree" | "ball" => Some(IndexKind::BallTree),
            "blocked" | "brute" | "bruteforce" => Some(IndexKind::Blocked),
            "auto" | "" => Some(IndexKind::Auto),
            _ => None,
        }
    }

    /// Parse a `TRANSER_KNN_INDEX`-style value. Unrecognised values warn
    /// through the trace layer and fall back to [`IndexKind::Auto`]
    /// (empty input is `Auto` silently).
    pub fn parse(s: &str) -> IndexKind {
        match IndexKind::parse_known(s) {
            Some(kind) => kind,
            None => {
                transer_trace::warn_invalid_env(
                    transer_common::env::KNN_INDEX,
                    s,
                    "one of auto/kdtree/balltree/blocked",
                    "auto",
                );
                IndexKind::Auto
            }
        }
    }

    /// The process-wide kind from the `TRANSER_KNN_INDEX` environment
    /// variable, read once (like `TRANSER_THREADS`); unset means
    /// [`IndexKind::Auto`], unrecognised warns through the trace layer and
    /// falls back to [`IndexKind::Auto`].
    pub fn from_env() -> IndexKind {
        static KIND: OnceLock<IndexKind> = OnceLock::new();
        *KIND.get_or_init(|| {
            transer_common::env::parsed_with(
                transer_common::env::KNN_INDEX,
                IndexKind::parse_known,
                "one of auto/kdtree/balltree/blocked",
                "auto",
            )
            .unwrap_or(IndexKind::Auto)
        })
    }

    /// Resolve `Auto` for a concrete matrix shape.
    ///
    /// The thresholds are the measured crossovers of the `bench_sel`
    /// per-(rows, dims) regime sweep (build + one self-query per row, the
    /// SEL access pattern; see `results/BENCH_sel.json` and the
    /// EXPERIMENTS index-regime table):
    ///
    /// * tiny matrices (≤ 64 rows) — build cost dominates every tree,
    ///   brute force wins outright;
    /// * low dimensionality (≤ 6) — KD-tree axis pruning is unbeatable
    ///   at every measured row count (1.4–29× over both alternatives);
    /// * the dim 7–12 band (the 9-feature ER matrices) — the ball
    ///   tree's metric pruning keeps working where KD splits decay: it
    ///   wins at every measured row count (1.3× over the KD-tree at
    ///   256–1024 rows, 1.4× over blocked at 16384×9) or ties blocked
    ///   within 0.2% (4096×9);
    /// * higher dims at small-to-mid row counts (≤ 2048 rows) — still
    ///   the ball tree (1.2–1.4× over both alternatives at 256 rows;
    ///   within measurement noise of blocked at the 1024-row boundary);
    /// * everything else — on large worst-case (uniform) matrices at
    ///   high dimensionality neither tree prunes reliably and the
    ///   blocked kernel's norm-expansion screen edges out the ball tree
    ///   (1.1–1.2× at 4096+ rows, dims ≥ 16) while beating the KD-tree
    ///   by up to 3.3×.
    fn resolve(self, rows: usize, dim: usize) -> IndexKind {
        match self {
            IndexKind::Auto => {
                if rows <= 64 {
                    IndexKind::Blocked
                } else if dim <= 6 {
                    IndexKind::KdTree
                } else if dim <= 12 || rows <= 2048 {
                    IndexKind::BallTree
                } else {
                    IndexKind::Blocked
                }
            }
            other => other,
        }
    }
}

/// A k-NN index whose backend was chosen per matrix by [`IndexKind`].
///
/// Exposes the common query surface of [`KdTree`], [`BallTree`] and
/// [`BlockedBruteForce`]; results are bit-identical across backends.
#[derive(Debug, Clone)]
pub enum AdaptiveIndex {
    /// KD-tree backend.
    KdTree(KdTree),
    /// Ball-tree backend.
    BallTree(BallTree),
    /// Blocked brute-force backend.
    Blocked(BlockedBruteForce),
}

impl AdaptiveIndex {
    /// Build an index over `matrix` with the backend chosen by `kind`
    /// (resolving [`IndexKind::Auto`] from the matrix shape).
    pub fn build(matrix: &FeatureMatrix, kind: IndexKind) -> Self {
        match kind.resolve(matrix.rows(), matrix.cols()) {
            IndexKind::KdTree => AdaptiveIndex::KdTree(KdTree::build(matrix)),
            IndexKind::BallTree => AdaptiveIndex::BallTree(BallTree::build(matrix)),
            _ => AdaptiveIndex::Blocked(BlockedBruteForce::build(matrix)),
        }
    }

    /// Build with the process-wide kind from `TRANSER_KNN_INDEX`.
    pub fn build_from_env(matrix: &FeatureMatrix) -> Self {
        Self::build(matrix, IndexKind::from_env())
    }

    /// Which backend was chosen.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AdaptiveIndex::KdTree(_) => "kdtree",
            AdaptiveIndex::BallTree(_) => "balltree",
            AdaptiveIndex::Blocked(_) => "blocked",
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        match self {
            AdaptiveIndex::KdTree(t) => t.len(),
            AdaptiveIndex::BallTree(t) => t.len(),
            AdaptiveIndex::Blocked(b) => b.len(),
        }
    }

    /// True when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`KdTree::k_nearest`].
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest(query, k),
            AdaptiveIndex::BallTree(t) => t.k_nearest(query, k),
            AdaptiveIndex::Blocked(b) => b.k_nearest(query, k),
        }
    }

    /// See [`KdTree::k_nearest_excluding`].
    pub fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest_excluding(query, k, exclude),
            AdaptiveIndex::BallTree(t) => t.k_nearest_excluding(query, k, exclude),
            AdaptiveIndex::Blocked(b) => b.k_nearest_excluding(query, k, exclude),
        }
    }

    /// See [`KdTree::k_nearest_weighted`].
    pub fn k_nearest_weighted(&self, query: &[f64], weights: &[u32], k: usize) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest_weighted(query, weights, k),
            AdaptiveIndex::BallTree(t) => t.k_nearest_weighted(query, weights, k),
            AdaptiveIndex::Blocked(b) => b.k_nearest_weighted(query, weights, k),
        }
    }

    /// A panel of weighted queries. On the blocked backend the whole panel
    /// shares each point block
    /// ([`BlockedBruteForce::k_nearest_weighted_panel`]); on the trees
    /// the queries simply run one by one. Results are identical to mapping
    /// [`AdaptiveIndex::k_nearest_weighted`] over the panel.
    pub fn k_nearest_weighted_panel(
        &self,
        queries: &[&[f64]],
        weights: &[u32],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        match self {
            AdaptiveIndex::KdTree(t) => {
                queries.iter().map(|q| t.k_nearest_weighted(q, weights, k)).collect()
            }
            AdaptiveIndex::BallTree(t) => {
                queries.iter().map(|q| t.k_nearest_weighted(q, weights, k)).collect()
            }
            AdaptiveIndex::Blocked(b) => b.k_nearest_weighted_panel(queries, weights, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_backends() {
        assert_eq!(IndexKind::parse("kdtree"), IndexKind::KdTree);
        assert_eq!(IndexKind::parse(" KD-Tree "), IndexKind::KdTree);
        assert_eq!(IndexKind::parse("balltree"), IndexKind::BallTree);
        assert_eq!(IndexKind::parse("Ball-Tree"), IndexKind::BallTree);
        assert_eq!(IndexKind::parse("ball"), IndexKind::BallTree);
        assert_eq!(IndexKind::parse("blocked"), IndexKind::Blocked);
        assert_eq!(IndexKind::parse("brute"), IndexKind::Blocked);
        assert_eq!(IndexKind::parse("auto"), IndexKind::Auto);
        assert_eq!(IndexKind::parse("nonsense"), IndexKind::Auto);
        assert_eq!(IndexKind::parse(""), IndexKind::Auto);
    }

    #[test]
    fn unrecognised_parse_warns_through_trace() {
        transer_trace::set_enabled(true);
        assert_eq!(IndexKind::parse("quadtree"), IndexKind::Auto);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        assert!(report
            .warnings
            .iter()
            .any(|w| w.context == "env" && w.message.contains("quadtree")));
    }

    #[test]
    fn auto_resolution_heuristic() {
        // Tiny n → blocked regardless of dim.
        assert_eq!(IndexKind::Auto.resolve(50, 4), IndexKind::Blocked);
        assert_eq!(IndexKind::Auto.resolve(64, 16), IndexKind::Blocked);
        // Low dim → KD-tree at every row count.
        assert_eq!(IndexKind::Auto.resolve(300, 4), IndexKind::KdTree);
        assert_eq!(IndexKind::Auto.resolve(10_000, 6), IndexKind::KdTree);
        // The dim 7–12 ER band → ball tree at every row count.
        assert_eq!(IndexKind::Auto.resolve(300, 9), IndexKind::BallTree);
        assert_eq!(IndexKind::Auto.resolve(100_000, 9), IndexKind::BallTree);
        // Higher dims at small-to-mid row counts → ball tree.
        assert_eq!(IndexKind::Auto.resolve(2_048, 16), IndexKind::BallTree);
        assert_eq!(IndexKind::Auto.resolve(1_000, 24), IndexKind::BallTree);
        // Large high-dim matrices → blocked.
        assert_eq!(IndexKind::Auto.resolve(10_000, 16), IndexKind::Blocked);
        assert_eq!(IndexKind::Auto.resolve(10_000, 32), IndexKind::Blocked);
        // Forced kinds resolve to themselves.
        assert_eq!(IndexKind::KdTree.resolve(10, 100), IndexKind::KdTree);
        assert_eq!(IndexKind::BallTree.resolve(10, 100), IndexKind::BallTree);
        assert_eq!(IndexKind::Blocked.resolve(1_000_000, 2), IndexKind::Blocked);
    }

    #[test]
    fn backends_agree_on_queries() {
        let rows: Vec<Vec<f64>> =
            (0..50).map(|i| vec![(i % 7) as f64 / 7.0, (i % 11) as f64 / 11.0]).collect();
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let kd = AdaptiveIndex::build(&m, IndexKind::KdTree);
        let ball = AdaptiveIndex::build(&m, IndexKind::BallTree);
        let bl = AdaptiveIndex::build(&m, IndexKind::Blocked);
        assert_eq!(kd.backend_name(), "kdtree");
        assert_eq!(ball.backend_name(), "balltree");
        assert_eq!(bl.backend_name(), "blocked");
        assert_eq!(kd.len(), bl.len());
        assert_eq!(ball.len(), bl.len());
        let weights = vec![1u32; m.rows()];
        for q in [[0.3, 0.3], [0.0, 1.0]] {
            assert_eq!(kd.k_nearest(&q, 5), bl.k_nearest(&q, 5));
            assert_eq!(ball.k_nearest(&q, 5), bl.k_nearest(&q, 5));
            assert_eq!(
                kd.k_nearest_excluding(&q, 5, Some(3)),
                bl.k_nearest_excluding(&q, 5, Some(3))
            );
            assert_eq!(
                ball.k_nearest_excluding(&q, 5, Some(3)),
                bl.k_nearest_excluding(&q, 5, Some(3))
            );
            assert_eq!(
                kd.k_nearest_weighted(&q, &weights, 5),
                bl.k_nearest_weighted(&q, &weights, 5)
            );
            assert_eq!(
                ball.k_nearest_weighted(&q, &weights, 5),
                bl.k_nearest_weighted(&q, &weights, 5)
            );
        }
        let qs: Vec<&[f64]> = (0..8).map(|i| m.row(i)).collect();
        let want = bl.k_nearest_weighted_panel(&qs, &weights, 5);
        assert_eq!(kd.k_nearest_weighted_panel(&qs, &weights, 5), want);
        assert_eq!(ball.k_nearest_weighted_panel(&qs, &weights, 5), want);
    }
}

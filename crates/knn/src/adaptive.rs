//! Backend selection: KD-tree vs blocked brute force.
//!
//! KD-trees win when the tree can actually prune — many rows, low
//! dimensionality. For small matrices the build cost dominates, and in
//! high dimensions the curse of dimensionality makes the search visit
//! nearly every leaf while paying pointer-chasing overhead the blocked
//! kernel doesn't have. [`AdaptiveIndex`] picks per-matrix from
//! `(n_unique, dim)`; the choice can be forced per-process with the
//! `TRANSER_KNN_INDEX` environment variable (`kdtree`, `blocked`, or
//! `auto`), mirroring the `TRANSER_THREADS` convention in
//! `transer-parallel`.
//!
//! Both backends produce bit-identical results (same neighbours, same
//! squared distances, same tie-break order), so the choice affects wall
//! time only — determinism does not depend on it.

use std::sync::OnceLock;

use transer_common::FeatureMatrix;

use crate::blocked::BlockedBruteForce;
use crate::heap::Neighbor;
use crate::kdtree::KdTree;

/// Which k-NN backend to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Always the KD-tree.
    KdTree,
    /// Always the blocked brute-force kernel.
    Blocked,
    /// Pick per matrix from `(rows, dim)`.
    Auto,
}

impl IndexKind {
    /// Parse a recognised `TRANSER_KNN_INDEX` value; `None` otherwise.
    fn parse_known(s: &str) -> Option<IndexKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "kdtree" | "kd-tree" | "kd" => Some(IndexKind::KdTree),
            "blocked" | "brute" | "bruteforce" => Some(IndexKind::Blocked),
            "auto" | "" => Some(IndexKind::Auto),
            _ => None,
        }
    }

    /// Parse a `TRANSER_KNN_INDEX`-style value. Unrecognised or empty
    /// values fall back to [`IndexKind::Auto`].
    pub fn parse(s: &str) -> IndexKind {
        IndexKind::parse_known(s).unwrap_or(IndexKind::Auto)
    }

    /// The process-wide kind from the `TRANSER_KNN_INDEX` environment
    /// variable, read once (like `TRANSER_THREADS`); unset means
    /// [`IndexKind::Auto`], unrecognised warns through the trace layer and
    /// falls back to [`IndexKind::Auto`].
    pub fn from_env() -> IndexKind {
        static KIND: OnceLock<IndexKind> = OnceLock::new();
        *KIND.get_or_init(|| {
            transer_common::env::parsed_with(
                transer_common::env::KNN_INDEX,
                IndexKind::parse_known,
                "one of auto/kdtree/blocked",
                "auto",
            )
            .unwrap_or(IndexKind::Auto)
        })
    }

    /// Resolve `Auto` for a concrete matrix shape.
    fn resolve(self, rows: usize, dim: usize) -> IndexKind {
        match self {
            IndexKind::Auto => {
                // Measured on the SEL workloads (`bench_sel`): for the
                // low-dimensional ER feature matrices the KD-tree wins
                // from a few hundred rows down to well under 100, so the
                // blocked kernel is only the default for tiny matrices
                // (where nothing matters) and for high dimensions, where
                // pruning stops working and its streaming dot products
                // win.
                if rows <= 64 || dim > 16 {
                    IndexKind::Blocked
                } else {
                    IndexKind::KdTree
                }
            }
            other => other,
        }
    }
}

/// A k-NN index whose backend was chosen per matrix by [`IndexKind`].
///
/// Exposes the common query surface of [`KdTree`] and
/// [`BlockedBruteForce`]; results are bit-identical across backends.
#[derive(Debug, Clone)]
pub enum AdaptiveIndex {
    /// KD-tree backend.
    KdTree(KdTree),
    /// Blocked brute-force backend.
    Blocked(BlockedBruteForce),
}

impl AdaptiveIndex {
    /// Build an index over `matrix` with the backend chosen by `kind`
    /// (resolving [`IndexKind::Auto`] from the matrix shape).
    pub fn build(matrix: &FeatureMatrix, kind: IndexKind) -> Self {
        match kind.resolve(matrix.rows(), matrix.cols()) {
            IndexKind::KdTree => AdaptiveIndex::KdTree(KdTree::build(matrix)),
            _ => AdaptiveIndex::Blocked(BlockedBruteForce::build(matrix)),
        }
    }

    /// Build with the process-wide kind from `TRANSER_KNN_INDEX`.
    pub fn build_from_env(matrix: &FeatureMatrix) -> Self {
        Self::build(matrix, IndexKind::from_env())
    }

    /// Which backend was chosen.
    pub fn backend_name(&self) -> &'static str {
        match self {
            AdaptiveIndex::KdTree(_) => "kdtree",
            AdaptiveIndex::Blocked(_) => "blocked",
        }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        match self {
            AdaptiveIndex::KdTree(t) => t.len(),
            AdaptiveIndex::Blocked(b) => b.len(),
        }
    }

    /// True when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`KdTree::k_nearest`].
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest(query, k),
            AdaptiveIndex::Blocked(b) => b.k_nearest(query, k),
        }
    }

    /// See [`KdTree::k_nearest_excluding`].
    pub fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest_excluding(query, k, exclude),
            AdaptiveIndex::Blocked(b) => b.k_nearest_excluding(query, k, exclude),
        }
    }

    /// See [`KdTree::k_nearest_weighted`].
    pub fn k_nearest_weighted(&self, query: &[f64], weights: &[u32], k: usize) -> Vec<Neighbor> {
        match self {
            AdaptiveIndex::KdTree(t) => t.k_nearest_weighted(query, weights, k),
            AdaptiveIndex::Blocked(b) => b.k_nearest_weighted(query, weights, k),
        }
    }

    /// A panel of weighted queries. On the blocked backend the whole panel
    /// shares each point block
    /// ([`BlockedBruteForce::k_nearest_weighted_panel`]); on the KD-tree
    /// the queries simply run one by one. Results are identical to mapping
    /// [`AdaptiveIndex::k_nearest_weighted`] over the panel.
    pub fn k_nearest_weighted_panel(
        &self,
        queries: &[&[f64]],
        weights: &[u32],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        match self {
            AdaptiveIndex::KdTree(t) => {
                queries.iter().map(|q| t.k_nearest_weighted(q, weights, k)).collect()
            }
            AdaptiveIndex::Blocked(b) => b.k_nearest_weighted_panel(queries, weights, k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_recognises_backends() {
        assert_eq!(IndexKind::parse("kdtree"), IndexKind::KdTree);
        assert_eq!(IndexKind::parse(" KD-Tree "), IndexKind::KdTree);
        assert_eq!(IndexKind::parse("blocked"), IndexKind::Blocked);
        assert_eq!(IndexKind::parse("brute"), IndexKind::Blocked);
        assert_eq!(IndexKind::parse("auto"), IndexKind::Auto);
        assert_eq!(IndexKind::parse("nonsense"), IndexKind::Auto);
        assert_eq!(IndexKind::parse(""), IndexKind::Auto);
    }

    #[test]
    fn auto_resolution_heuristic() {
        // Tiny n → blocked regardless of dim.
        assert_eq!(IndexKind::Auto.resolve(50, 4), IndexKind::Blocked);
        // Moderate-to-large n, low dim → KD-tree.
        assert_eq!(IndexKind::Auto.resolve(300, 4), IndexKind::KdTree);
        assert_eq!(IndexKind::Auto.resolve(10_000, 4), IndexKind::KdTree);
        // Large n, high dim → blocked.
        assert_eq!(IndexKind::Auto.resolve(10_000, 32), IndexKind::Blocked);
        // Forced kinds resolve to themselves.
        assert_eq!(IndexKind::KdTree.resolve(10, 100), IndexKind::KdTree);
        assert_eq!(IndexKind::Blocked.resolve(1_000_000, 2), IndexKind::Blocked);
    }

    #[test]
    fn backends_agree_on_queries() {
        let rows: Vec<Vec<f64>> =
            (0..50).map(|i| vec![(i % 7) as f64 / 7.0, (i % 11) as f64 / 11.0]).collect();
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let kd = AdaptiveIndex::build(&m, IndexKind::KdTree);
        let bl = AdaptiveIndex::build(&m, IndexKind::Blocked);
        assert_eq!(kd.backend_name(), "kdtree");
        assert_eq!(bl.backend_name(), "blocked");
        assert_eq!(kd.len(), bl.len());
        let weights = vec![1u32; m.rows()];
        for q in [[0.3, 0.3], [0.0, 1.0]] {
            assert_eq!(kd.k_nearest(&q, 5), bl.k_nearest(&q, 5));
            assert_eq!(
                kd.k_nearest_excluding(&q, 5, Some(3)),
                bl.k_nearest_excluding(&q, 5, Some(3))
            );
            assert_eq!(
                kd.k_nearest_weighted(&q, &weights, 5),
                bl.k_nearest_weighted(&q, &weights, 5)
            );
        }
        let qs: Vec<&[f64]> = (0..8).map(|i| m.row(i)).collect();
        assert_eq!(
            kd.k_nearest_weighted_panel(&qs, &weights, 5),
            bl.k_nearest_weighted_panel(&qs, &weights, 5)
        );
    }
}

//! Bounded neighbour-candidate containers, ordered by squared distance:
//! the classic max-heap retaining the `k` best, and a weighted variant for
//! duplicate-aware queries where a candidate counts as `weight` hits.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// One nearest-neighbour candidate: the index of the point in its matrix
/// and its squared Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index of the neighbouring point.
    pub index: usize,
    /// Squared Euclidean distance to the query point (finite, ≥ 0).
    pub sq_dist: f64,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp keeps this a lawful Ord even for NaN distances (a
        // partial_cmp fallback violates transitivity, which std's sorts
        // may detect and panic on); ties broken by index for a
        // deterministic ordering.
        self.sq_dist.total_cmp(&other.sq_dist).then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A max-heap that keeps only the `k` smallest-distance neighbours seen.
#[derive(Debug)]
pub struct BoundedMaxHeap {
    heap: BinaryHeap<Neighbor>,
    capacity: usize,
}

impl BoundedMaxHeap {
    /// Create a heap that retains at most `capacity` neighbours.
    pub fn new(capacity: usize) -> Self {
        BoundedMaxHeap { heap: BinaryHeap::with_capacity(capacity + 1), capacity }
    }

    /// Offer a candidate; it is kept iff the heap is not full or the
    /// candidate beats the current worst retained neighbour.
    #[inline]
    pub fn push(&mut self, n: Neighbor) {
        if self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
            }
        }
    }

    /// Number of retained neighbours.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `capacity` neighbours are retained.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.capacity
    }

    /// Squared distance of the current worst retained neighbour, or
    /// `f64::INFINITY` while the heap is not yet full (pruning bound).
    #[inline]
    pub fn prune_bound(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map_or(f64::INFINITY, |n| n.sq_dist)
        } else {
            f64::INFINITY
        }
    }

    /// Drain into a vector sorted by ascending distance (ties by index).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

/// The weighted analogue of [`BoundedMaxHeap`] used by the duplicate-aware
/// queries: each candidate row carries a multiplicity `weight` and counts
/// as that many hits towards the budget `k`.
///
/// The structure retains the shortest prefix of *distance classes* (groups
/// of candidates with bitwise-equal squared distance) whose cumulative
/// weight reaches the budget — **including every candidate of the boundary
/// class**, so callers can resolve original-row tie-breaks exactly as a
/// query against the duplicated matrix would. The retained weight may
/// therefore exceed the budget; truncation happens during expansion.
///
/// Distances are non-negative (squared Euclidean), which makes their
/// IEEE-754 bit patterns order-isomorphic to their values — the classes
/// live in a [`BTreeMap`] keyed by those bits. The isomorphism extends to
/// `+Inf` and NaN (they rank beyond every finite distance, as under
/// `total_cmp`), so hostile inputs degrade gracefully instead of
/// corrupting the order.
#[derive(Debug)]
pub struct WeightedHeap {
    classes: BTreeMap<u64, WeightClass>,
    total: usize,
    budget: usize,
}

#[derive(Debug)]
struct WeightClass {
    weight: usize,
    items: Vec<u32>,
}

impl WeightedHeap {
    /// A heap that retains distance classes until their cumulative weight
    /// covers `budget`.
    pub fn new(budget: usize) -> Self {
        WeightedHeap { classes: BTreeMap::new(), total: 0, budget }
    }

    /// Offer candidate row `index` at `sq_dist` with multiplicity `weight`.
    ///
    /// Rows must be offered at most once per query; `weight == 0` and
    /// `budget == 0` candidates are ignored.
    #[inline]
    pub fn push(&mut self, index: usize, sq_dist: f64, weight: usize) {
        // Squared distances are sums of squares, so they are never
        // negative — but hostile inputs (NaN/±Inf features) make them
        // +Inf or NaN. Both are fine here: for non-negative floats the
        // IEEE-754 bit pattern is order-isomorphic to total_cmp, so +Inf
        // and NaN classes simply rank beyond every finite distance.
        debug_assert!(sq_dist >= 0.0 || sq_dist.is_nan(), "negative distance {sq_dist}");
        if self.budget == 0 || weight == 0 {
            return;
        }
        let bits = sq_dist.to_bits();
        if self.total >= self.budget {
            // Full: a candidate strictly beyond the boundary class cannot
            // contribute (the prefix without it already covers the budget).
            if let Some((&last, _)) = self.classes.last_key_value() {
                if bits > last {
                    return;
                }
            }
        }
        let class =
            self.classes.entry(bits).or_insert(WeightClass { weight: 0, items: Vec::new() });
        class.weight += weight;
        class.items.push(index as u32);
        self.total += weight;
        // Trim classes that are no longer needed to cover the budget. The
        // boundary class itself is always kept whole.
        while let Some(entry) = self.classes.last_entry() {
            let w = entry.get().weight;
            if self.total - w >= self.budget {
                entry.remove();
                self.total -= w;
            } else {
                break;
            }
        }
    }

    /// Cumulative weight of the retained candidates.
    #[inline]
    pub fn total_weight(&self) -> usize {
        self.total
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Squared distance of the farthest retained class once the budget is
    /// covered, `f64::INFINITY` before — the KD-tree pruning bound. The
    /// bound is meant for *inclusive* pruning (`<=`) so boundary ties are
    /// never cut away.
    #[inline]
    pub fn prune_bound(&self) -> f64 {
        if self.total >= self.budget {
            self.classes.last_key_value().map_or(f64::INFINITY, |(&bits, _)| f64::from_bits(bits))
        } else {
            f64::INFINITY
        }
    }

    /// Drain into a vector sorted by ascending distance, ties by row index
    /// — the same order as [`BoundedMaxHeap::into_sorted`], but covering
    /// the full boundary class instead of stopping at `k` rows.
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut out = Vec::new();
        for (bits, mut class) in self.classes {
            class.items.sort_unstable();
            let sq_dist = f64::from_bits(bits);
            out.extend(class.items.into_iter().map(|i| Neighbor { index: i as usize, sq_dist }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(index: usize, d: f64) -> Neighbor {
        Neighbor { index, sq_dist: d }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = BoundedMaxHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.push(n(i, *d));
        }
        let out = h.into_sorted();
        let dists: Vec<f64> = out.iter().map(|x| x.sq_dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn prune_bound_progression() {
        let mut h = BoundedMaxHeap::new(2);
        assert_eq!(h.prune_bound(), f64::INFINITY);
        h.push(n(0, 9.0));
        assert_eq!(h.prune_bound(), f64::INFINITY);
        h.push(n(1, 4.0));
        assert_eq!(h.prune_bound(), 9.0);
        h.push(n(2, 1.0));
        assert_eq!(h.prune_bound(), 4.0);
        assert!(h.is_full());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut h = BoundedMaxHeap::new(0);
        h.push(n(0, 1.0));
        assert!(h.is_empty());
        assert!(h.into_sorted().is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut h = BoundedMaxHeap::new(2);
        h.push(n(7, 1.0));
        h.push(n(3, 1.0));
        h.push(n(5, 1.0));
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    fn is_empty_transitions_and_zero_capacity_guards() {
        let mut h = BoundedMaxHeap::new(2);
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        h.push(n(1, 0.5));
        assert!(!h.is_empty());

        // Capacity 0 stays inert through every accessor.
        let mut z = BoundedMaxHeap::new(0);
        assert!(z.is_empty());
        assert!(z.is_full());
        assert_eq!(z.prune_bound(), f64::INFINITY);
        z.push(n(0, 0.0));
        z.push(n(1, 1.0));
        assert!(z.is_empty());
        assert_eq!(z.len(), 0);
        assert!(z.into_sorted().is_empty());
    }

    #[test]
    fn equal_distance_neighbours_pop_in_row_order() {
        // All candidates at the same distance: the retained set and its
        // output order must be the smallest row indices, ascending.
        let mut h = BoundedMaxHeap::new(3);
        for idx in [9, 2, 14, 0, 7, 5] {
            h.push(n(idx, 2.25));
        }
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![0, 2, 5]);
        assert!(out.iter().all(|x| x.sq_dist == 2.25));
    }

    #[test]
    fn weighted_heap_counts_multiplicity_towards_budget() {
        let mut h = WeightedHeap::new(5);
        assert!(h.is_empty());
        assert_eq!(h.prune_bound(), f64::INFINITY);
        h.push(0, 1.0, 3);
        assert_eq!(h.prune_bound(), f64::INFINITY); // 3 < 5
        h.push(1, 2.0, 4);
        assert_eq!(h.prune_bound(), 2.0); // 7 >= 5

        // Farther candidate is rejected outright.
        h.push(2, 3.0, 10);
        assert_eq!(h.total_weight(), 7);
        // A closer candidate makes the 2.0 class unnecessary.
        h.push(3, 0.5, 2);
        assert_eq!(h.prune_bound(), 1.0);
        assert_eq!(h.total_weight(), 5);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![3, 0]);
    }

    #[test]
    fn weighted_heap_keeps_boundary_class_whole() {
        let mut h = WeightedHeap::new(2);
        h.push(4, 1.0, 1);
        h.push(1, 1.0, 1);
        h.push(9, 1.0, 5);
        // All three share the boundary distance: none may be trimmed, and
        // the output resolves ties by row index.
        assert_eq!(h.total_weight(), 7);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![1, 4, 9]);
        // A strictly closer class covering the budget evicts the whole
        // boundary class at once.
        let mut h = WeightedHeap::new(2);
        h.push(4, 1.0, 1);
        h.push(9, 1.0, 1);
        h.push(0, 0.25, 2);
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn weighted_heap_zero_budget_and_zero_weight_are_inert() {
        let mut h = WeightedHeap::new(0);
        h.push(0, 1.0, 3);
        assert!(h.is_empty());
        assert!(h.into_sorted().is_empty());
        let mut h = WeightedHeap::new(3);
        h.push(0, 1.0, 0);
        assert!(h.is_empty());
        assert_eq!(h.total_weight(), 0);
    }
}

//! A bounded max-heap of candidate neighbours, ordered by squared distance.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One nearest-neighbour candidate: the index of the point in its matrix
/// and its squared Euclidean distance to the query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index of the neighbouring point.
    pub index: usize,
    /// Squared Euclidean distance to the query point (finite, ≥ 0).
    pub sq_dist: f64,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        // Feature values are bounded, so distances are finite; ties broken
        // by index for a deterministic ordering.
        self.sq_dist
            .partial_cmp(&other.sq_dist)
            .unwrap_or(Ordering::Equal)
            .then(self.index.cmp(&other.index))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A max-heap that keeps only the `k` smallest-distance neighbours seen.
#[derive(Debug)]
pub struct BoundedMaxHeap {
    heap: BinaryHeap<Neighbor>,
    capacity: usize,
}

impl BoundedMaxHeap {
    /// Create a heap that retains at most `capacity` neighbours.
    pub fn new(capacity: usize) -> Self {
        BoundedMaxHeap { heap: BinaryHeap::with_capacity(capacity + 1), capacity }
    }

    /// Offer a candidate; it is kept iff the heap is not full or the
    /// candidate beats the current worst retained neighbour.
    #[inline]
    pub fn push(&mut self, n: Neighbor) {
        if self.capacity == 0 {
            return;
        }
        if self.heap.len() < self.capacity {
            self.heap.push(n);
        } else if let Some(worst) = self.heap.peek() {
            if n < *worst {
                self.heap.pop();
                self.heap.push(n);
            }
        }
    }

    /// Number of retained neighbours.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True when `capacity` neighbours are retained.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.heap.len() >= self.capacity
    }

    /// Squared distance of the current worst retained neighbour, or
    /// `f64::INFINITY` while the heap is not yet full (pruning bound).
    #[inline]
    pub fn prune_bound(&self) -> f64 {
        if self.is_full() {
            self.heap.peek().map_or(f64::INFINITY, |n| n.sq_dist)
        } else {
            f64::INFINITY
        }
    }

    /// Drain into a vector sorted by ascending distance (ties by index).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_vec();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(index: usize, d: f64) -> Neighbor {
        Neighbor { index, sq_dist: d }
    }

    #[test]
    fn keeps_k_smallest() {
        let mut h = BoundedMaxHeap::new(3);
        for (i, d) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.push(n(i, *d));
        }
        let out = h.into_sorted();
        let dists: Vec<f64> = out.iter().map(|x| x.sq_dist).collect();
        assert_eq!(dists, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn prune_bound_progression() {
        let mut h = BoundedMaxHeap::new(2);
        assert_eq!(h.prune_bound(), f64::INFINITY);
        h.push(n(0, 9.0));
        assert_eq!(h.prune_bound(), f64::INFINITY);
        h.push(n(1, 4.0));
        assert_eq!(h.prune_bound(), 9.0);
        h.push(n(2, 1.0));
        assert_eq!(h.prune_bound(), 4.0);
        assert!(h.is_full());
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut h = BoundedMaxHeap::new(0);
        h.push(n(0, 1.0));
        assert!(h.is_empty());
        assert!(h.into_sorted().is_empty());
    }

    #[test]
    fn deterministic_tie_break() {
        let mut h = BoundedMaxHeap::new(2);
        h.push(n(7, 1.0));
        h.push(n(3, 1.0));
        h.push(n(5, 1.0));
        let out = h.into_sorted();
        assert_eq!(out.iter().map(|x| x.index).collect::<Vec<_>>(), vec![3, 5]);
    }
}

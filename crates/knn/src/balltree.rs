//! A ball tree (Omohundro, 1989) over the rows of a feature matrix.
//!
//! Each node covers a contiguous range of the (reordered) rows and stores
//! the centroid and radius of the ball enclosing them; queries prune a
//! subtree when the triangle inequality proves every point in its ball is
//! farther than the current k-th best distance. At the moderate
//! dimensionalities of ER feature matrices (9–24 features) this prunes
//! where a KD-tree's axis-aligned splits no longer can, and the leaves
//! are scanned as contiguous rows through the shared vectorizable L2
//! kernel (`transer_common::l2`).
//!
//! # Determinism and exactness
//!
//! Construction is deterministic: farthest-point splits with `total_cmp`
//! and original-row-index tie-breaks, and a fixed mid-point partition, so
//! the tree is a pure function of the matrix. Queries are *exact*: the
//! pruning bound deflates the triangle-inequality lower bound by a
//! rigorous floating-point slack (the same style as the blocked kernel's
//! screening band), so a subtree is only pruned when every point in it is
//! provably farther than the current selection boundary — boundary ties
//! included. Results — indices, squared distances, tie-break order — are
//! therefore bit-identical to [`brute_force_knn`](crate::brute_force_knn)
//! and the other backends, which the `index_equivalence` proptests pin
//! down.
//!
//! Points are stored row-reordered so that every leaf's rows are
//! contiguous in memory: a leaf scan is a linear sweep, not a gather.

use std::cmp::Ordering;

use transer_common::{l2, FeatureMatrix};

use crate::heap::{BoundedMaxHeap, Neighbor, WeightedHeap};

/// Sentinel for "no child" (leaves have both children `NONE`).
const NONE: u32 = u32::MAX;

/// Maximum rows per leaf. Leaves are scanned through the shared L2
/// kernel, so a moderately wide leaf amortises the per-node bound check
/// over a contiguous, vectorizable sweep.
const LEAF_SIZE: usize = 32;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Range of reordered row positions covered by this node.
    start: u32,
    end: u32,
    /// Euclidean (not squared) radius of the ball around the centroid.
    radius: f64,
    left: u32,
    right: u32,
}

/// Ball-tree index over the rows of a [`FeatureMatrix`].
///
/// Borrows nothing: the rows are copied (reordered, leaf-contiguous) at
/// build time. Row indices reported by queries refer to the original
/// matrix rows.
#[derive(Debug, Clone)]
pub struct BallTree {
    /// Reordered flat copy of the points; a node's rows are contiguous.
    points: Vec<f64>,
    /// Reordered position → original row index.
    orig: Vec<u32>,
    dim: usize,
    /// Per-node centroid, `node_id * dim`.
    centroids: Vec<f64>,
    nodes: Vec<Node>,
    root: u32,
    /// Floating-point slack scale of the prune bound (see [`prunable`]).
    slack_scale: f64,
}

/// Per-query traversal statistics, flushed to the trace layer afterwards.
#[derive(Default)]
struct Stats {
    queries: u64,
    visits: u64,
    prunes: u64,
    leaf_scans: u64,
}

impl Stats {
    fn emit(&self) {
        transer_trace::counter("knn.balltree.queries", self.queries);
        transer_trace::counter("knn.balltree.node_visits", self.visits);
        transer_trace::counter("knn.balltree.bound_prunes", self.prunes);
        transer_trace::counter("knn.balltree.leaf_scans", self.leaf_scans);
    }
}

impl BallTree {
    /// Build a tree from the rows of `matrix`.
    ///
    /// An empty matrix yields an empty tree whose queries return nothing.
    pub fn build(matrix: &FeatureMatrix) -> Self {
        let _span = transer_trace::span("knn.balltree.build");
        let dim = matrix.cols();
        let n = matrix.rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut nodes = Vec::new();
        let mut centroids = Vec::new();
        // Scratch reused across the whole recursion: the centroid under
        // construction and the per-member projection scores of a split.
        let mut centroid = vec![0.0; dim];
        let mut scores: Vec<(f64, u32)> = Vec::new();
        let root = if n == 0 {
            NONE
        } else {
            build_recursive(
                matrix,
                &mut order,
                0,
                &mut nodes,
                &mut centroids,
                &mut centroid,
                &mut scores,
            )
        };
        let mut points = Vec::with_capacity(n * dim);
        for &i in &order {
            points.extend_from_slice(matrix.row(i as usize));
        }
        // The prune bound's error slack: both the bound and the candidate
        // distances are dim-term accumulations plus a square root, so
        // their mutual error is O(dim·ε) relative to the magnitudes
        // involved. Generous on purpose — extra visits are cheap, a wrong
        // prune would break bit-identity.
        let slack_scale = 16.0 * (dim as f64 + 4.0) * f64::EPSILON;
        BallTree { points, orig: order, dim, centroids, nodes, root, slack_scale }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn point(&self, pos: usize) -> &[f64] {
        &self.points[pos * self.dim..(pos + 1) * self.dim]
    }

    #[inline]
    fn centroid(&self, id: u32) -> &[f64] {
        let c = id as usize * self.dim;
        &self.centroids[c..c + self.dim]
    }

    /// True when every point in the ball `(centroid distance² = d_sq,
    /// radius)` is provably farther than `bound`, floating-point error
    /// included. `false` on any NaN, so hostile inputs degrade to a full
    /// visit instead of a wrong prune.
    #[inline]
    fn prunable(&self, d_sq: f64, radius: f64, bound: f64) -> bool {
        if bound == f64::INFINITY {
            return false; // selection not full yet — nothing may be pruned
        }
        let d = d_sq.sqrt();
        let gap = d - radius;
        if gap.partial_cmp(&0.0) != Some(Ordering::Greater) {
            return false; // query inside the ball (or NaN geometry)
        }
        let slack = self.slack_scale * (d_sq + radius * radius + 1.0);
        gap * gap - slack > bound
    }

    /// The `k` nearest neighbours of `query`, ascending `(sq_dist, row)`
    /// — the same contract as [`KdTree::k_nearest`](crate::KdTree::k_nearest).
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()`.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.k_nearest_excluding(query, k, None)
    }

    /// Like [`BallTree::k_nearest`] but ignoring the point at row
    /// `exclude` — used to query an instance's neighbourhood within its
    /// own matrix.
    pub fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut heap = BoundedMaxHeap::new(k);
        let mut stats = Stats::default();
        if self.root != NONE && k > 0 {
            stats.queries = 1;
            self.search(self.root, query, exclude, &mut heap, &mut stats);
        }
        stats.emit();
        heap.into_sorted()
    }

    fn search(
        &self,
        id: u32,
        query: &[f64],
        exclude: Option<usize>,
        heap: &mut BoundedMaxHeap,
        stats: &mut Stats,
    ) {
        stats.visits += 1;
        let node = self.nodes[id as usize];
        if node.left == NONE {
            stats.leaf_scans += 1;
            for pos in node.start..node.end {
                let orig = self.orig[pos as usize] as usize;
                if exclude == Some(orig) {
                    continue;
                }
                heap.push(Neighbor {
                    index: orig,
                    sq_dist: l2::sq_dist(query, self.point(pos as usize)),
                });
            }
            return;
        }
        let dl = l2::sq_dist(query, self.centroid(node.left));
        let dr = l2::sq_dist(query, self.centroid(node.right));
        // Nearer child first so the selection boundary tightens before
        // the far child's bound check; ties (and NaN) keep left first.
        let ordered = if dr.total_cmp(&dl) == Ordering::Less {
            [(node.right, dr), (node.left, dl)]
        } else {
            [(node.left, dl), (node.right, dr)]
        };
        for (child, d_sq) in ordered {
            if self.prunable(d_sq, self.nodes[child as usize].radius, heap.prune_bound()) {
                stats.prunes += 1;
            } else {
                self.search(child, query, exclude, heap, stats);
            }
        }
    }

    /// Duplicate-aware query over unique rows with multiplicity
    /// `weights`; the same contract as
    /// [`KdTree::k_nearest_weighted`](crate::KdTree::k_nearest_weighted).
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()` or
    /// `weights.len() != self.len()`.
    pub fn k_nearest_weighted(&self, query: &[f64], weights: &[u32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        assert_eq!(weights.len(), self.len(), "one weight per indexed row");
        let mut heap = WeightedHeap::new(k);
        let mut stats = Stats::default();
        if self.root != NONE && k > 0 {
            stats.queries = 1;
            self.search_weighted(self.root, query, weights, &mut heap, &mut stats);
        }
        stats.emit();
        heap.into_sorted()
    }

    fn search_weighted(
        &self,
        id: u32,
        query: &[f64],
        weights: &[u32],
        heap: &mut WeightedHeap,
        stats: &mut Stats,
    ) {
        stats.visits += 1;
        let node = self.nodes[id as usize];
        if node.left == NONE {
            stats.leaf_scans += 1;
            for pos in node.start..node.end {
                let orig = self.orig[pos as usize] as usize;
                heap.push(
                    orig,
                    l2::sq_dist(query, self.point(pos as usize)),
                    weights[orig] as usize,
                );
            }
            return;
        }
        let dl = l2::sq_dist(query, self.centroid(node.left));
        let dr = l2::sq_dist(query, self.centroid(node.right));
        let ordered = if dr.total_cmp(&dl) == Ordering::Less {
            [(node.right, dr), (node.left, dl)]
        } else {
            [(node.left, dl), (node.right, dr)]
        };
        for (child, d_sq) in ordered {
            if self.prunable(d_sq, self.nodes[child as usize].radius, heap.prune_bound()) {
                stats.prunes += 1;
            } else {
                self.search_weighted(child, query, weights, heap, stats);
            }
        }
    }
}

/// Build the subtree over `order[..]` (positions `base..base + order.len()`
/// of the final reordered storage), returning its node id.
#[allow(clippy::too_many_arguments)]
fn build_recursive(
    matrix: &FeatureMatrix,
    order: &mut [u32],
    base: usize,
    nodes: &mut Vec<Node>,
    centroids: &mut Vec<f64>,
    centroid: &mut [f64],
    scores: &mut Vec<(f64, u32)>,
) -> u32 {
    debug_assert!(!order.is_empty());
    let len = order.len();

    // Centroid: the mean of the member rows, accumulated in the (current,
    // deterministic) member order.
    centroid.fill(0.0);
    for &i in order.iter() {
        for (c, &v) in centroid.iter_mut().zip(matrix.row(i as usize)) {
            *c += v;
        }
    }
    let inv = 1.0 / len as f64;
    for c in centroid.iter_mut() {
        *c *= inv;
    }

    // Radius: the farthest member distance. NaN members poison the
    // radius so the node can never be pruned away from under them.
    let mut radius: f64 = 0.0;
    for &i in order.iter() {
        let d = l2::sq_dist(matrix.row(i as usize), centroid).sqrt();
        if d.is_nan() {
            radius = f64::NAN;
            break;
        }
        radius = radius.max(d);
    }

    let id = nodes.len() as u32;
    nodes.push(Node {
        start: base as u32,
        end: (base + len) as u32,
        radius,
        left: NONE,
        right: NONE,
    });
    centroids.extend_from_slice(centroid);

    if len <= LEAF_SIZE {
        // Leaf rows scan in ascending original-row order; not required
        // for correctness (the heaps tie-break), but keeps the layout
        // deterministic and cache-friendly for duplicate groups.
        order.sort_unstable();
        return id;
    }

    // Farthest-point split: p1 = farthest member from the centroid,
    // p2 = farthest member from p1, partition at the projection median
    // onto the p1→p2 direction. Ties break on the original row index, so
    // the split is a pure function of the matrix.
    let farthest_from = |target: &[f64], order: &[u32]| -> u32 {
        let mut best = order[0];
        let mut best_d = l2::sq_dist(matrix.row(best as usize), target);
        for &i in &order[1..] {
            let d = l2::sq_dist(matrix.row(i as usize), target);
            match d.total_cmp(&best_d) {
                Ordering::Greater => {
                    best = i;
                    best_d = d;
                }
                Ordering::Equal if i < best => best = i,
                _ => {}
            }
        }
        best
    };
    let p1 = farthest_from(centroid, order);
    let p2 = farthest_from(matrix.row(p1 as usize), order);

    // Projection score of each member onto the split direction. The
    // direction lives in `centroid` (its node value is already copied
    // out), avoiding a fresh allocation per node.
    for (c, (a, b)) in
        centroid.iter_mut().zip(matrix.row(p2 as usize).iter().zip(matrix.row(p1 as usize)))
    {
        *c = a - b;
    }
    scores.clear();
    scores.extend(order.iter().map(|&i| (l2::dot(matrix.row(i as usize), centroid), i)));
    let mid = len / 2;
    scores.select_nth_unstable_by(mid, |a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    for (slot, &(_, i)) in order.iter_mut().zip(scores.iter()) {
        *slot = i;
    }

    let (left_slice, right_slice) = order.split_at_mut(mid);
    let left = build_recursive(matrix, left_slice, base, nodes, centroids, centroid, scores);
    let right =
        build_recursive(matrix, right_slice, base + mid, nodes, centroids, centroid, scores);
    nodes[id as usize].left = left;
    nodes[id as usize].right = right;
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;

    fn grid() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                rows.push(vec![i as f64 / 12.0, j as f64 / 12.0]);
            }
        }
        FeatureMatrix::from_vecs(&rows).unwrap()
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let m = grid();
        let tree = BallTree::build(&m);
        assert_eq!(tree.len(), 144);
        assert_eq!(tree.dim(), 2);
        for q in [[0.0, 0.0], [0.55, 0.55], [1.0, 0.0], [0.31, 0.87]] {
            for k in [1, 7, 40, 200] {
                let a = tree.k_nearest(&q, k);
                let b = brute_force_knn(&m, &q, k, None);
                assert_eq!(a, b, "query {q:?} k {k}");
            }
        }
    }

    #[test]
    fn exclusion_matches_brute_force() {
        let m = grid();
        let tree = BallTree::build(&m);
        for e in [0, 42, 143] {
            let a = tree.k_nearest_excluding(m.row(e), 5, Some(e));
            let b = brute_force_knn(&m, m.row(e), 5, Some(e));
            assert_eq!(a, b);
            assert!(!a.iter().any(|n| n.index == e));
        }
    }

    #[test]
    fn duplicates_are_all_found() {
        let m = FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let tree = BallTree::build(&m);
        let nn = tree.k_nearest(&[0.5, 0.5], 3);
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(nn.iter().all(|n| n.sq_dist == 0.0));
    }

    #[test]
    fn all_equidistant_cloud_keeps_index_tie_break() {
        // 100 identical points: every query distance ties, so the result
        // must be the smallest row indices, ascending — on a tree deep
        // enough to exercise the splitter's degenerate (zero-direction)
        // path.
        let m = FeatureMatrix::from_vecs(&vec![vec![0.25, 0.75, 0.5]; 100]).unwrap();
        let tree = BallTree::build(&m);
        let nn = tree.k_nearest(&[0.1, 0.2, 0.3], 7);
        assert_eq!(nn, brute_force_knn(&m, &[0.1, 0.2, 0.3], 7, None));
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_query_counts_multiplicities() {
        let m =
            FeatureMatrix::from_vecs(&[vec![0.5, 0.5], vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        let tree = BallTree::build(&m);
        let nn = tree.k_nearest_weighted(&[0.5, 0.5], &[3, 1, 1], 3);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].index, 0);
        let nn = tree.k_nearest_weighted(&[0.5, 0.5], &[3, 1, 1], 4);
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn empty_tree_and_k_zero() {
        let tree = BallTree::build(&FeatureMatrix::empty(3));
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&[0.0, 0.0, 0.0], 5).is_empty());
        let tree = BallTree::build(&grid());
        assert!(tree.k_nearest(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn single_point() {
        let m = FeatureMatrix::from_vecs(&[vec![0.3, 0.7]]).unwrap();
        let tree = BallTree::build(&m);
        let nn = tree.k_nearest(&[0.0, 0.0], 2);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].index, 0);
        assert!(tree.k_nearest_excluding(&[0.0, 0.0], 2, Some(0)).is_empty());
    }

    #[test]
    fn moderate_dim_random_cloud_matches_brute_force() {
        // Deterministic splitmix-style cloud at the dimensionality the
        // tree targets (dim 16), large enough for several tree levels.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        };
        let rows: Vec<Vec<f64>> =
            (0..500).map(|_| (0..16).map(|_| (next() * 100.0).round() / 100.0).collect()).collect();
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = BallTree::build(&m);
        for qi in [0, 123, 250, 499] {
            let q = m.row(qi);
            assert_eq!(tree.k_nearest(q, 9), brute_force_knn(&m, q, 9, None), "query row {qi}");
            assert_eq!(
                tree.k_nearest_excluding(q, 9, Some(qi)),
                brute_force_knn(&m, q, 9, Some(qi))
            );
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_query_dim_panics() {
        let tree = BallTree::build(&grid());
        tree.k_nearest(&[0.0], 1);
    }
}

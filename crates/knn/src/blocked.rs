//! Cache-blocked brute-force k-NN with precomputed squared norms.
//!
//! The kernel evaluates panels of queries against blocks of indexed rows
//! using the expansion `‖a − b‖² = ‖a‖² − 2·a·b + ‖b‖²`: the row norms are
//! computed once at build time, so the inner loop is a plain dot product
//! over a point block that stays hot in cache across the whole query
//! panel. Norms, dots and the exact recomputations all route through the
//! shared vectorizable L2 kernel (`transer_common::l2`) — this module
//! carries no per-pair distance loop of its own.
//!
//! The expansion is not bitwise equal to the forward sum `Σ (aᵢ − bᵢ)²`,
//! so using it naively would break the workspace-wide determinism
//! contract. The kernel therefore treats the expanded value as a *screen*:
//! it tracks every row whose screened distance lands within a rigorous
//! floating-point error band of the current selection boundary, recomputes
//! the **exact** forward distance for those candidates only, and performs
//! the final (weighted) selection on exact distances. The result — indices,
//! squared distances and tie-break order — is bit-identical to
//! [`brute_force_knn`](crate::brute_force_knn) / [`KdTree`](crate::KdTree),
//! which the `index_equivalence` proptests pin down.

use transer_common::l2::{dot, sq_dist, sq_norm};
use transer_common::FeatureMatrix;

use crate::heap::{Neighbor, WeightedHeap};

/// Rows per point block: 256 rows × 8 dims × 8 bytes = 16 KiB, safely
/// inside L1/L2 while a query panel iterates over it.
const POINT_BLOCK: usize = 256;

/// Brute-force index over the rows of a [`FeatureMatrix`]: a flat copy of
/// the points plus their precomputed squared norms.
#[derive(Debug, Clone)]
pub struct BlockedBruteForce {
    points: Vec<f64>,
    dim: usize,
    rows: usize,
    sq_norms: Vec<f64>,
}

/// Per-query selection state while streaming over point blocks.
struct QueryState {
    /// Weighted selection over *screened* distances — only its boundary
    /// (`prune_bound`) is used.
    screen: WeightedHeap,
    /// Rows whose screened distance was within the error band of the
    /// boundary when they were seen: `(row, screened distance)`.
    candidates: Vec<(u32, f64)>,
    /// Compaction threshold for `candidates`, doubled when ties genuinely
    /// accumulate.
    cap: usize,
    /// Squared norm of the query.
    nq: f64,
}

impl BlockedBruteForce {
    /// Build the index by copying the rows and computing their norms.
    pub fn build(matrix: &FeatureMatrix) -> Self {
        let rows = matrix.rows();
        let dim = matrix.cols();
        let points = matrix.as_slice().to_vec();
        let sq_norms = (0..rows).map(|i| sq_norm(matrix.row(i))).collect();
        BlockedBruteForce { points, dim, rows, sq_norms }
    }

    /// Number of indexed rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when the index holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Dimensionality of the indexed rows.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn row(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// The `k` nearest rows to `query`, ascending `(sq_dist, index)` — the
    /// same contract as [`KdTree::k_nearest`](crate::KdTree::k_nearest).
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()`.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.k_nearest_excluding(query, k, None)
    }

    /// Like [`BlockedBruteForce::k_nearest`] but ignoring row `exclude`.
    pub fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        let mut nn = self.panel(&[query], None, k, exclude).pop().unwrap_or_default();
        nn.truncate(k);
        nn
    }

    /// Duplicate-aware single query; same contract as
    /// [`KdTree::k_nearest_weighted`](crate::KdTree::k_nearest_weighted).
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()` or
    /// `weights.len() != self.len()`.
    pub fn k_nearest_weighted(&self, query: &[f64], weights: &[u32], k: usize) -> Vec<Neighbor> {
        self.panel(&[query], Some(weights), k, None).pop().unwrap_or_default()
    }

    /// Duplicate-aware panel query: all of `queries` against the whole
    /// index in one blocked sweep. Equivalent to mapping
    /// [`BlockedBruteForce::k_nearest_weighted`] over the panel, but each
    /// point block is loaded once for the entire panel.
    pub fn k_nearest_weighted_panel(
        &self,
        queries: &[&[f64]],
        weights: &[u32],
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        self.panel(queries, Some(weights), k, None)
    }

    /// Shared blocked kernel. `weights` of `None` means unit weights;
    /// `exclude` skips one indexed row (used by self-neighbourhood
    /// queries).
    fn panel(
        &self,
        queries: &[&[f64]],
        weights: Option<&[u32]>,
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Vec<Neighbor>> {
        for q in queries {
            assert_eq!(q.len(), self.dim, "query dimensionality mismatch");
        }
        if let Some(w) = weights {
            assert_eq!(w.len(), self.rows, "one weight per indexed row");
        }
        if k == 0 || self.rows == 0 {
            return vec![Vec::new(); queries.len()];
        }
        // Screening error bound: `‖a‖² − 2a·b + ‖b‖²` and the forward sum
        // are each dim-term accumulations, so their difference is bounded
        // by ~(dim + 3)·ε times the magnitudes involved. The constant is
        // deliberately generous — the band only admits a few extra exact
        // recomputations, never a wrong result.
        let band_scale = 8.0 * (self.dim as f64 + 4.0) * f64::EPSILON;
        let mut states: Vec<QueryState> = queries
            .iter()
            .map(|q| QueryState {
                screen: WeightedHeap::new(k),
                candidates: Vec::new(),
                cap: (4 * k).max(64),
                nq: sq_norm(q),
            })
            .collect();

        let mut block_start = 0;
        while block_start < self.rows {
            let block_end = (block_start + POINT_BLOCK).min(self.rows);
            for (q, state) in queries.iter().zip(&mut states) {
                let bound = |s: &QueryState| s.screen.prune_bound();
                for i in block_start..block_end {
                    if exclude == Some(i) {
                        continue;
                    }
                    let np = self.sq_norms[i];
                    let dot = dot(q, self.row(i));
                    let screened = (state.nq - 2.0 * dot + np).max(0.0);
                    let band = band_scale * (state.nq + np + 1.0);
                    // Keep every row that could still beat (or tie) the
                    // boundary once distances are exact: screened and exact
                    // k-th boundaries differ by at most one band each.
                    if screened <= bound(state) + 2.0 * band {
                        let w = weights.map_or(1, |w| w[i] as usize);
                        state.screen.push(i, screened, w);
                        state.candidates.push((i as u32, screened));
                        if state.candidates.len() >= state.cap {
                            self.compact(state, band_scale);
                        }
                    }
                }
            }
            block_start = block_end;
        }

        transer_trace::counter("knn.blocked.queries", queries.len() as u64);
        states
            .iter_mut()
            .zip(queries)
            .map(|(state, q)| {
                let bound = state.screen.prune_bound();
                let mut exact = WeightedHeap::new(k);
                let mut recomputed = 0u64;
                for &(i, screened) in &state.candidates {
                    let i = i as usize;
                    let band = band_scale * (state.nq + self.sq_norms[i] + 1.0);
                    if screened <= bound + 2.0 * band {
                        let w = weights.map_or(1, |w| w[i] as usize);
                        exact.push(i, sq_dist(q, self.row(i)), w);
                        recomputed += 1;
                    }
                }
                transer_trace::counter("knn.blocked.screened", state.candidates.len() as u64);
                transer_trace::counter("knn.blocked.recomputed", recomputed);
                transer_trace::observe("knn.blocked.band", recomputed as f64);
                exact.into_sorted()
            })
            .collect()
    }

    /// Drop candidates that have fallen strictly outside the (banded)
    /// boundary; if nearly everything survives — genuine ties — grow the
    /// threshold instead of compacting on every push.
    fn compact(&self, state: &mut QueryState, band_scale: f64) {
        let bound = state.screen.prune_bound();
        let nq = state.nq;
        let norms = &self.sq_norms;
        state.candidates.retain(|&(i, screened)| {
            screened <= bound + 2.0 * band_scale * (nq + norms[i as usize] + 1.0)
        });
        if state.candidates.len() * 2 > state.cap {
            state.cap *= 2;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;

    fn points() -> FeatureMatrix {
        FeatureMatrix::from_vecs(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ])
        .unwrap()
    }

    #[test]
    fn matches_reference_brute_force() {
        let m = points();
        let idx = BlockedBruteForce::build(&m);
        assert_eq!(idx.len(), 5);
        assert_eq!(idx.dim(), 2);
        for q in [[0.1, 0.1], [0.55, 0.5], [1.0, 1.0]] {
            for k in [1, 3, 10] {
                assert_eq!(idx.k_nearest(&q, k), brute_force_knn(&m, &q, k, None), "q={q:?} k={k}");
            }
        }
    }

    #[test]
    fn exclusion_skips_row() {
        let m = points();
        let idx = BlockedBruteForce::build(&m);
        let nn = idx.k_nearest_excluding(m.row(0), 2, Some(0));
        assert_eq!(nn, brute_force_knn(&m, m.row(0), 2, Some(0)));
        assert!(!nn.iter().any(|n| n.index == 0));
    }

    #[test]
    fn k_zero_and_empty_index() {
        let m = points();
        let idx = BlockedBruteForce::build(&m);
        assert!(idx.k_nearest(&[0.0, 0.0], 0).is_empty());
        let empty = BlockedBruteForce::build(&FeatureMatrix::empty(3));
        assert!(empty.is_empty());
        assert!(empty.k_nearest(&[0.0, 0.0, 0.0], 4).is_empty());
    }

    #[test]
    fn weighted_query_counts_multiplicities() {
        // Unique rows with weights [3, 1, 1]: a budget of 3 is covered by
        // the nearest row alone.
        let m =
            FeatureMatrix::from_vecs(&[vec![0.5, 0.5], vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        let idx = BlockedBruteForce::build(&m);
        let nn = idx.k_nearest_weighted(&[0.5, 0.5], &[3, 1, 1], 3);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].index, 0);
        assert_eq!(nn[0].sq_dist, 0.0);
        // Budget 4 needs the next distance class too — rows 1 and 2 are
        // equidistant from the query, so the boundary class keeps both.
        let nn = idx.k_nearest_weighted(&[0.5, 0.5], &[3, 1, 1], 4);
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn panel_equals_single_queries() {
        let m = points();
        let idx = BlockedBruteForce::build(&m);
        let weights = vec![1u32; m.rows()];
        let q0 = [0.2, 0.3];
        let q1 = [0.9, 0.1];
        let panel = idx.k_nearest_weighted_panel(&[&q0, &q1], &weights, 3);
        assert_eq!(panel[0], idx.k_nearest_weighted(&q0, &weights, 3));
        assert_eq!(panel[1], idx.k_nearest_weighted(&q1, &weights, 3));
    }

    #[test]
    fn heavy_ties_compact_without_losing_candidates() {
        // 1000 rows, all at one of two distances from the query: the
        // candidate buffer must keep every boundary tie.
        let rows: Vec<Vec<f64>> =
            (0..1000).map(|i| if i % 2 == 0 { vec![0.0, 1.0] } else { vec![1.0, 0.0] }).collect();
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let idx = BlockedBruteForce::build(&m);
        let nn = idx.k_nearest(&[0.0, 0.0], 7);
        assert_eq!(nn, brute_force_knn(&m, &[0.0, 0.0], 7, None));
        assert_eq!(nn.len(), 7);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_query_dim_panics() {
        let idx = BlockedBruteForce::build(&points());
        idx.k_nearest(&[0.0], 1);
    }
}

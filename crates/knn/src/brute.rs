//! Brute-force k-NN reference: exact, `O(n)` per query. Distances come
//! from the shared L2 kernel (`transer_common::l2`), the same code path
//! every index backend uses — this module has no distance loop of its
//! own.

use transer_common::{sq_dist, FeatureMatrix};

use crate::heap::{BoundedMaxHeap, Neighbor};

/// Exact k nearest neighbours of `query` among the rows of `points`,
/// sorted by ascending squared distance (ties by row index).
///
/// `exclude` removes one row from consideration — used to exclude an
/// instance itself when computing its own neighbourhood.
pub fn brute_force_knn(
    points: &FeatureMatrix,
    query: &[f64],
    k: usize,
    exclude: Option<usize>,
) -> Vec<Neighbor> {
    let mut heap = BoundedMaxHeap::new(k);
    for (i, row) in points.iter_rows().enumerate() {
        if exclude == Some(i) {
            continue;
        }
        heap.push(Neighbor { index: i, sq_dist: sq_dist(query, row) });
    }
    heap.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> FeatureMatrix {
        FeatureMatrix::from_vecs(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.5, 0.5],
        ])
        .unwrap()
    }

    #[test]
    fn finds_nearest_in_order() {
        let nn = brute_force_knn(&points(), &[0.1, 0.1], 3, None);
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 4, 1]);
        assert!(nn[0].sq_dist <= nn[1].sq_dist && nn[1].sq_dist <= nn[2].sq_dist);
    }

    #[test]
    fn exclusion_skips_self() {
        let p = points();
        let nn = brute_force_knn(&p, p.row(0), 2, Some(0));
        assert!(!nn.iter().any(|n| n.index == 0));
        assert_eq!(nn.len(), 2);
    }

    #[test]
    fn k_larger_than_points() {
        let nn = brute_force_knn(&points(), &[0.0, 0.0], 10, None);
        assert_eq!(nn.len(), 5);
    }

    #[test]
    fn k_zero() {
        assert!(brute_force_knn(&points(), &[0.0, 0.0], 0, None).is_empty());
    }
}

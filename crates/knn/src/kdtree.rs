//! A KD-tree (Bentley, 1975) over the rows of a feature matrix.
//!
//! Built by recursive median splits on the axis of largest spread, queried
//! with best-first pruning against a bounded max-heap. Duplicated points —
//! ubiquitous in ER feature matrices, where many record pairs share a
//! rounded feature vector — are handled exactly.

use transer_common::{sq_dist, FeatureMatrix};

use crate::heap::{BoundedMaxHeap, Neighbor, WeightedHeap};

/// Sentinel for "no child".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Row index of the point stored at this node.
    point: u32,
    /// Split axis.
    axis: u8,
    left: u32,
    right: u32,
}

/// KD-tree index over the rows of a [`FeatureMatrix`].
///
/// The tree borrows nothing: it copies the coordinates once at build time,
/// so it can outlive the matrix it was built from. Row indices reported by
/// queries refer to the original matrix rows.
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Flat copy of the points, row-major.
    points: Vec<f64>,
    dim: usize,
    nodes: Vec<Node>,
    root: u32,
}

impl KdTree {
    /// Build a tree from the rows of `matrix`.
    ///
    /// An empty matrix yields an empty tree whose queries return nothing.
    pub fn build(matrix: &FeatureMatrix) -> Self {
        let _span = transer_trace::span("knn.kdtree.build");
        let dim = matrix.cols();
        let n = matrix.rows();
        let points = matrix.as_slice().to_vec();
        let mut nodes = Vec::with_capacity(n);
        let mut order: Vec<u32> = (0..n as u32).collect();
        // Scratch for the per-node spread computation, reused down the
        // whole recursion instead of being recomputed axis-by-axis.
        let mut bounds = vec![0.0; 2 * dim];
        let root = if n == 0 {
            NONE
        } else {
            build_recursive(&points, dim, &mut order, &mut nodes, &mut bounds)
        };
        KdTree { points, dim, nodes, root }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree indexes no points.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn coords(&self, point: u32) -> &[f64] {
        let p = point as usize * self.dim;
        &self.points[p..p + self.dim]
    }

    /// The `k` nearest neighbours of `query`, sorted by ascending squared
    /// distance (ties broken by row index). Fewer than `k` results are
    /// returned when the tree holds fewer points.
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()`.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.k_nearest_excluding(query, k, None)
    }

    /// Like [`KdTree::k_nearest`] but ignoring the point at row `exclude` —
    /// used to query an instance's neighbourhood within its own matrix.
    pub fn k_nearest_excluding(
        &self,
        query: &[f64],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let mut heap = BoundedMaxHeap::new(k);
        let mut visits = 0u64;
        if self.root != NONE && k > 0 {
            self.search(self.root, query, exclude, &mut heap, &mut visits);
        }
        transer_trace::counter("knn.kdtree.queries", 1);
        transer_trace::counter("knn.kdtree.nodes", visits);
        heap.into_sorted()
    }

    fn search(
        &self,
        node_id: u32,
        query: &[f64],
        exclude: Option<usize>,
        heap: &mut BoundedMaxHeap,
        visits: &mut u64,
    ) {
        *visits += 1;
        let node = self.nodes[node_id as usize];
        let point = node.point as usize;
        if exclude != Some(point) {
            heap.push(Neighbor { index: point, sq_dist: sq_dist(query, self.coords(node.point)) });
        }
        let axis = node.axis as usize;
        let delta = query[axis] - self.coords(node.point)[axis];
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.search(near, query, exclude, heap, visits);
        }
        // Visit the far side only if the splitting plane is not farther than
        // the current k-th best distance. The bound is inclusive so that
        // equal-distance neighbours with smaller row indices (which win the
        // deterministic tie-break) are never pruned away.
        if far != NONE && delta * delta <= heap.prune_bound() {
            self.search(far, query, exclude, heap, visits);
        }
    }

    /// Duplicate-aware query: the indexed rows are *unique* feature rows
    /// and `weights[i]` is the multiplicity of row `i` in the original
    /// (duplicated) matrix; a neighbour counts as `weights[i]` hits toward
    /// the budget `k`.
    ///
    /// Returns the shortest prefix of distance classes whose cumulative
    /// weight covers `k`, with the boundary class complete, sorted by
    /// `(sq_dist, row index)` — see [`WeightedHeap`]. Expanding every row
    /// `i` of the result into `weights[i]` duplicates and truncating at
    /// `k` reproduces exactly what [`KdTree::k_nearest`] over the
    /// duplicated matrix would return.
    ///
    /// # Panics
    /// Panics when `query.len() != self.dim()` or
    /// `weights.len() != self.len()`.
    pub fn k_nearest_weighted(&self, query: &[f64], weights: &[u32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        assert_eq!(weights.len(), self.len(), "one weight per indexed row");
        let mut heap = WeightedHeap::new(k);
        let mut visits = 0u64;
        if self.root != NONE && k > 0 {
            self.search_weighted(self.root, query, weights, &mut heap, &mut visits);
        }
        transer_trace::counter("knn.kdtree.queries", 1);
        transer_trace::counter("knn.kdtree.nodes", visits);
        heap.into_sorted()
    }

    fn search_weighted(
        &self,
        node_id: u32,
        query: &[f64],
        weights: &[u32],
        heap: &mut WeightedHeap,
        visits: &mut u64,
    ) {
        *visits += 1;
        let node = self.nodes[node_id as usize];
        let point = node.point as usize;
        heap.push(point, sq_dist(query, self.coords(node.point)), weights[point] as usize);
        let axis = node.axis as usize;
        let delta = query[axis] - self.coords(node.point)[axis];
        let (near, far) =
            if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        if near != NONE {
            self.search_weighted(near, query, weights, heap, visits);
        }
        // Inclusive bound, as in `search`: the weighted heap keeps whole
        // distance classes, so boundary ties must never be pruned.
        if far != NONE && delta * delta <= heap.prune_bound() {
            self.search_weighted(far, query, weights, heap, visits);
        }
    }
}

/// Build the subtree for the point indices in `order`, returning its root.
/// `bounds` is shared scratch (`2 * dim` values) for the spread pass.
fn build_recursive(
    points: &[f64],
    dim: usize,
    order: &mut [u32],
    nodes: &mut Vec<Node>,
    bounds: &mut [f64],
) -> u32 {
    debug_assert!(!order.is_empty());
    let axis = widest_axis(points, dim, order, bounds);
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        let xa = points[a as usize * dim + axis];
        let xb = points[b as usize * dim + axis];
        // total_cmp keeps the comparator a lawful total order under NaN
        // coordinates — select_nth_unstable_by may panic on Ord
        // violations. Search results are unchanged for finite data (exact
        // search; ties broken by index either way).
        xa.total_cmp(&xb).then(a.cmp(&b))
    });
    let point = order[mid];
    let id = nodes.len() as u32;
    nodes.push(Node { point, axis: axis as u8, left: NONE, right: NONE });
    // Children are built after the node is pushed so ids stay valid.
    let (left_slice, rest) = order.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = if left_slice.is_empty() {
        NONE
    } else {
        build_recursive(points, dim, left_slice, nodes, bounds)
    };
    let right = if right_slice.is_empty() {
        NONE
    } else {
        build_recursive(points, dim, right_slice, nodes, bounds)
    };
    nodes[id as usize].left = left;
    nodes[id as usize].right = right;
    id
}

/// Axis with the largest value spread among the given points; splitting on
/// it keeps the tree balanced for the skewed bi-modal ER distributions.
///
/// All axes are accumulated in a single contiguous pass over the node's
/// rows (scratch `bounds` holds `dim` minima followed by `dim` maxima)
/// rather than one strided pass per axis — same min/max sequence per axis,
/// so the chosen axis is bit-identical, but the build no longer rescans
/// each point `dim` times per tree level.
fn widest_axis(points: &[f64], dim: usize, order: &[u32], bounds: &mut [f64]) -> usize {
    let (lo, hi) = bounds.split_at_mut(dim);
    lo.fill(f64::INFINITY);
    hi.fill(f64::NEG_INFINITY);
    for &i in order {
        let row = &points[i as usize * dim..(i as usize + 1) * dim];
        for (axis, &v) in row.iter().enumerate() {
            lo[axis] = lo[axis].min(v);
            hi[axis] = hi[axis].max(v);
        }
    }
    let mut best_axis = 0;
    let mut best_spread = -1.0;
    for axis in 0..dim {
        let spread = hi[axis] - lo[axis];
        if spread > best_spread {
            best_spread = spread;
            best_axis = axis;
        }
    }
    best_axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;

    fn grid() -> FeatureMatrix {
        let mut rows = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push(vec![i as f64 / 10.0, j as f64 / 10.0]);
            }
        }
        FeatureMatrix::from_vecs(&rows).unwrap()
    }

    #[test]
    fn matches_brute_force_on_grid() {
        let m = grid();
        let tree = KdTree::build(&m);
        assert_eq!(tree.len(), 100);
        for q in [[0.0, 0.0], [0.55, 0.55], [1.0, 0.0], [0.31, 0.87]] {
            let a = tree.k_nearest(&q, 7);
            let b = brute_force_knn(&m, &q, 7, None);
            assert_eq!(a, b, "query {q:?}");
        }
    }

    #[test]
    fn exclusion_matches_brute_force() {
        let m = grid();
        let tree = KdTree::build(&m);
        let a = tree.k_nearest_excluding(m.row(42), 5, Some(42));
        let b = brute_force_knn(&m, m.row(42), 5, Some(42));
        assert_eq!(a, b);
        assert!(!a.iter().any(|n| n.index == 42));
    }

    #[test]
    fn duplicates_are_all_found() {
        let m = FeatureMatrix::from_vecs(&[
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.5, 0.5],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let tree = KdTree::build(&m);
        let nn = tree.k_nearest(&[0.5, 0.5], 3);
        assert_eq!(nn.iter().map(|n| n.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(nn.iter().all(|n| n.sq_dist == 0.0));
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(&FeatureMatrix::empty(3));
        assert!(tree.is_empty());
        assert!(tree.k_nearest(&[0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn single_point() {
        let m = FeatureMatrix::from_vecs(&[vec![0.3, 0.7]]).unwrap();
        let tree = KdTree::build(&m);
        let nn = tree.k_nearest(&[0.0, 0.0], 2);
        assert_eq!(nn.len(), 1);
        assert_eq!(nn[0].index, 0);
        assert!(tree.k_nearest_excluding(&[0.0, 0.0], 2, Some(0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn wrong_query_dim_panics() {
        let tree = KdTree::build(&grid());
        tree.k_nearest(&[0.0], 1);
    }
}

//! k-nearest-neighbour search for the SEL phase of TransER.
//!
//! The instance selector needs, for every source instance, its `k` nearest
//! neighbours in the source feature matrix and in the target feature matrix.
//! The paper assumes a KD-tree (Bentley, 1975) for this, giving
//! `O(m · n · log n)` construction and `O(log n)` expected query time; this
//! crate provides that [`KdTree`] plus a [`brute_force_knn`] reference
//! implementation used for testing and tiny inputs.
//!
//! Distances are squared Euclidean throughout — monotone in the Euclidean
//! distance, so neighbour *ranking* is identical and we skip the square
//! roots in the hot path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod heap;
mod kdtree;

pub use brute::brute_force_knn;
pub use heap::{BoundedMaxHeap, Neighbor};
pub use kdtree::KdTree;

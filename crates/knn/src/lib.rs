//! k-nearest-neighbour search for the SEL phase of TransER.
//!
//! The instance selector needs, for every source instance, its `k` nearest
//! neighbours in the source feature matrix and in the target feature matrix.
//! The paper assumes a KD-tree (Bentley, 1975) for this, giving
//! `O(m · n · log n)` construction and `O(log n)` expected query time; this
//! crate provides that [`KdTree`] plus a [`brute_force_knn`] reference
//! implementation used for testing and tiny inputs.
//!
//! On top of the plain indexes sits the duplicate-aware engine:
//!
//! * [`BlockedBruteForce`] — a cache-blocked kernel using precomputed
//!   squared norms and the `‖a−b‖² = ‖a‖² − 2a·b + ‖b‖²` expansion as a
//!   screen, with exact recomputation on the boundary band so results stay
//!   bit-identical to [`KdTree`];
//! * [`BallTree`] — triangle-inequality bound pruning over leaf-contiguous
//!   reordered rows; the strongest index at the moderate dimensionalities
//!   (9–24 features) of real ER matrices, where KD-tree pruning decays;
//! * [`AdaptiveIndex`] / [`IndexKind`] — per-matrix backend choice from
//!   `(rows, dim)`, overridable with `TRANSER_KNN_INDEX`;
//! * [`DedupKnn`] — interns duplicated rows (`RowInterning` from
//!   `transer-common`), queries unique rows with multiplicity weights, and
//!   expands results back to original row indices.
//!
//! Distances are squared Euclidean throughout — monotone in the Euclidean
//! distance, so neighbour *ranking* is identical and we skip the square
//! roots in the hot path. Every distance, norm and dot product routes
//! through the shared vectorizable L2 kernel (`transer_common::l2`), so
//! the `TRANSER_L2_KERNEL` engine switch governs all backends at once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod balltree;
mod blocked;
mod brute;
mod engine;
mod heap;
mod kdtree;

pub use adaptive::{AdaptiveIndex, IndexKind};
pub use balltree::BallTree;
pub use blocked::BlockedBruteForce;
pub use brute::brute_force_knn;
pub use engine::DedupKnn;
pub use heap::{BoundedMaxHeap, Neighbor, WeightedHeap};
pub use kdtree::KdTree;

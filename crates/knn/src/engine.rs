//! Duplicate-aware k-NN over an original (duplicated) feature matrix.
//!
//! [`DedupKnn`] interns the matrix rows once ([`RowInterning`]), builds
//! one index over the *unique* rows, and answers queries about the
//! *original* rows by running a weighted query (each unique row counts
//! with its multiplicity) and expanding the result back to original row
//! indices. On ER feature matrices with dedup ratios of 5–100× this turns
//! `n` index insertions and `n` query targets into `n_unique` of each.
//!
//! # Exactness
//!
//! The expansion reproduces, bit for bit, what a plain query against the
//! original matrix returns. Unique rows are bitwise copies of their
//! originals, so every original row of a group has the *same* squared
//! distance to any query as its representative. A plain query orders
//! candidates by `(sq_dist, original row)`; within one distance class the
//! winners are simply the smallest original row indices across all unique
//! rows of that class — which [`expand_to_original`](DedupKnn::expand_to_original)
//! obtains by merging the groups' ascending member lists. The weighted
//! heap keeps each boundary class whole, so the merge always has every
//! candidate it needs before truncating at `k`.

use transer_common::{FeatureMatrix, RowInterning};

use crate::adaptive::{AdaptiveIndex, IndexKind};
use crate::heap::Neighbor;

/// A k-NN engine over a duplicated matrix: interning + one index over the
/// unique rows + the multiplicity weights.
#[derive(Debug, Clone)]
pub struct DedupKnn {
    interning: RowInterning,
    index: AdaptiveIndex,
    weights: Vec<u32>,
}

impl DedupKnn {
    /// Intern `matrix` and index its unique rows with the backend chosen
    /// by `kind`.
    pub fn build(matrix: &FeatureMatrix, kind: IndexKind) -> Self {
        let interning = RowInterning::of(matrix);
        let index = AdaptiveIndex::build(interning.unique(), kind);
        let weights = interning.multiplicities();
        transer_trace::counter("knn.dedup.builds", 1);
        if interning.unique_rows() > 0 {
            // Dedup expansion factor: original rows per unique row.
            transer_trace::observe(
                "knn.dedup.expansion",
                interning.original_rows() as f64 / interning.unique_rows() as f64,
            );
        }
        DedupKnn { interning, index, weights }
    }

    /// The interning underlying this engine.
    #[inline]
    pub fn interning(&self) -> &RowInterning {
        &self.interning
    }

    /// Which backend the adaptive index picked.
    pub fn backend_name(&self) -> &'static str {
        self.index.backend_name()
    }

    /// Number of original rows.
    pub fn len(&self) -> usize {
        self.interning.original_rows()
    }

    /// True when the engine indexes no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Weighted query against the unique rows: the raw
    /// [`k_nearest_weighted`](AdaptiveIndex::k_nearest_weighted) result,
    /// whose indices are *unique*-row indices. SEL memoization consumes
    /// this directly; use [`DedupKnn::k_nearest`] for original-row
    /// results.
    pub fn k_nearest_unique(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        self.index.k_nearest_weighted(query, &self.weights, k)
    }

    /// Panel version of [`DedupKnn::k_nearest_unique`]: on the blocked
    /// backend the queries share each point block.
    pub fn k_nearest_unique_panel(&self, queries: &[&[f64]], k: usize) -> Vec<Vec<Neighbor>> {
        self.index.k_nearest_weighted_panel(queries, &self.weights, k)
    }

    /// The `k` nearest *original* rows to `query`, bit-identical to
    /// [`brute_force_knn`](crate::brute_force_knn) over the original
    /// matrix.
    pub fn k_nearest(&self, query: &[f64], k: usize) -> Vec<Neighbor> {
        let weighted = self.k_nearest_unique(query, k);
        self.expand_to_original(&weighted, k, None)
    }

    /// Like [`DedupKnn::k_nearest`] but excluding one original row — the
    /// self-neighbourhood query. Runs the weighted query at budget `k + 1`
    /// so the order still covers `k` rows after the exclusion.
    pub fn k_nearest_excluding(&self, query: &[f64], k: usize, exclude: usize) -> Vec<Neighbor> {
        if k == 0 {
            return Vec::new();
        }
        let weighted = self.k_nearest_unique(query, k + 1);
        self.expand_to_original(&weighted, k, Some(exclude))
    }

    /// Expand a weighted (unique-row) result into original-row neighbours:
    /// within each distance class, merge the member lists of its unique
    /// rows by ascending original index; truncate the whole sequence at
    /// `k`, skipping `exclude` if present.
    ///
    /// `weighted` must be sorted ascending by distance (as produced by the
    /// weighted queries) and must cover at least `k` original rows beyond
    /// the excluded one (callers ensure this by querying at budget `k` or
    /// `k + 1`).
    pub fn expand_to_original(
        &self,
        weighted: &[Neighbor],
        k: usize,
        exclude: Option<usize>,
    ) -> Vec<Neighbor> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        let mut class: Vec<u32> = Vec::new();
        let mut i = 0;
        while i < weighted.len() && out.len() < k {
            // One distance class: identical sq_dist bit patterns.
            let sq_dist = weighted[i].sq_dist;
            let bits = sq_dist.to_bits();
            class.clear();
            while i < weighted.len() && weighted[i].sq_dist.to_bits() == bits {
                class.extend_from_slice(self.interning.members(weighted[i].index));
                i += 1;
            }
            // Members of a single group are ascending already; across
            // groups a sort restores the global original-row order.
            class.sort_unstable();
            for &orig in class.iter() {
                if exclude == Some(orig as usize) {
                    continue;
                }
                if out.len() >= k {
                    break;
                }
                out.push(Neighbor { index: orig as usize, sq_dist });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_knn;

    fn duplicated() -> FeatureMatrix {
        // 12 rows, 4 unique, multiplicities [4, 3, 3, 2].
        let protos = [vec![0.5, 0.5], vec![0.1, 0.9], vec![0.9, 0.1], vec![0.3, 0.3]];
        let pattern = [0usize, 1, 0, 2, 1, 3, 0, 2, 1, 3, 0, 2];
        FeatureMatrix::from_vecs(&pattern.iter().map(|&p| protos[p].clone()).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn matches_brute_force_over_original_matrix() {
        let m = duplicated();
        for kind in [IndexKind::KdTree, IndexKind::BallTree, IndexKind::Blocked] {
            let engine = DedupKnn::build(&m, kind);
            assert_eq!(engine.len(), 12);
            assert_eq!(engine.interning().unique_rows(), 4);
            for q in [[0.5, 0.5], [0.2, 0.6], [0.0, 0.0]] {
                for k in [1, 3, 5, 20] {
                    assert_eq!(
                        engine.k_nearest(&q, k),
                        brute_force_knn(&m, &q, k, None),
                        "kind={kind:?} q={q:?} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn exclusion_matches_brute_force() {
        let m = duplicated();
        let engine = DedupKnn::build(&m, IndexKind::Blocked);
        for e in 0..m.rows() {
            for k in [1, 4, 11] {
                assert_eq!(
                    engine.k_nearest_excluding(m.row(e), k, e),
                    brute_force_knn(&m, m.row(e), k, Some(e)),
                    "exclude={e} k={k}"
                );
            }
        }
    }

    #[test]
    fn empty_and_k_zero() {
        let engine = DedupKnn::build(&FeatureMatrix::empty(2), IndexKind::Auto);
        assert!(engine.is_empty());
        assert!(engine.k_nearest(&[0.0, 0.0], 3).is_empty());
        let engine = DedupKnn::build(&duplicated(), IndexKind::Auto);
        assert!(engine.k_nearest(&[0.0, 0.0], 0).is_empty());
        assert!(engine.k_nearest_excluding(&[0.0, 0.0], 0, 0).is_empty());
    }
}

//! Property test: the KD-tree returns exactly the brute-force k-NN answer
//! on random point clouds, including clouds with heavy duplication like ER
//! feature matrices.

use proptest::prelude::*;
use transer_common::FeatureMatrix;
use transer_knn::{brute_force_knn, KdTree};

fn cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, dim..=dim), 1..=max_points)
}

/// Quantised cloud: coordinates snap to a 0.1 grid, forcing duplicates and
/// distance ties.
fn quantised_cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u8..=10, dim..=dim), 1..=max_points).prop_map(
        |rows| rows.into_iter().map(|r| r.into_iter().map(|v| v as f64 / 10.0).collect()).collect(),
    )
}

proptest! {
    #[test]
    fn tree_equals_brute_force(
        rows in cloud(4, 120),
        query in prop::collection::vec(0.0..1.0f64, 4..=4),
        k in 1usize..12,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        prop_assert_eq!(tree.k_nearest(&query, k), brute_force_knn(&m, &query, k, None));
    }

    #[test]
    fn tree_equals_brute_force_with_duplicates(
        rows in quantised_cloud(3, 150),
        k in 1usize..10,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        // Query from every indexed point, excluding itself, as SEL does.
        for i in 0..m.rows().min(20) {
            prop_assert_eq!(
                tree.k_nearest_excluding(m.row(i), k, Some(i)),
                brute_force_knn(&m, m.row(i), k, Some(i))
            );
        }
    }

    #[test]
    fn neighbours_sorted_and_within_bounds(
        rows in cloud(2, 80),
        query in prop::collection::vec(0.0..1.0f64, 2..=2),
        k in 1usize..20,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        let nn = tree.k_nearest(&query, k);
        prop_assert_eq!(nn.len(), k.min(m.rows()));
        for w in nn.windows(2) {
            prop_assert!(w[0].sq_dist <= w[1].sq_dist);
        }
        for n in &nn {
            prop_assert!(n.index < m.rows());
            prop_assert!(n.sq_dist >= 0.0 && n.sq_dist.is_finite());
        }
    }
}

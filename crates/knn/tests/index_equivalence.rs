//! Property tests pinning the bit-identity contract of the k-NN backends:
//! [`KdTree`], [`BallTree`], the blocked brute-force kernel and the
//! reference [`brute_force_knn`] must return the *same* neighbours,
//! squared distances and tie-break order on any input — including the
//! heavy-duplicate quantised clouds typical of ER feature matrices and
//! fully degenerate all-equidistant matrices — and the duplicate-aware
//! [`DedupKnn`] engine must reproduce plain queries over the original
//! (duplicated) matrix exactly, for every backend.

use proptest::prelude::*;
use transer_common::{FeatureMatrix, RowInterning};
use transer_knn::{brute_force_knn, BallTree, BlockedBruteForce, DedupKnn, IndexKind, KdTree};

fn cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, dim..=dim), 1..=max_points)
}

/// Quantised cloud: coordinates snap to a 0.1 grid, forcing duplicates and
/// distance ties.
fn quantised_cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0u8..=10, dim..=dim), 1..=max_points).prop_map(
        |rows| rows.into_iter().map(|r| r.into_iter().map(|v| v as f64 / 10.0).collect()).collect(),
    )
}

/// Fully degenerate cloud: every row is the same point, so every query
/// distance ties and the entire result order rests on the index
/// tie-break.
fn equidistant_cloud(dim: usize, max_points: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    (prop::collection::vec(0.0..1.0f64, dim..=dim), 1..=max_points)
        .prop_map(|(row, n)| vec![row; n])
}

/// Expand a weighted (unique-row) neighbour list into original-row
/// neighbours by brute force, mirroring what a plain query over the
/// duplicated matrix returns — the reference for the weighted-query
/// contract.
fn reference_weighted(m: &FeatureMatrix, query: &[f64], k: usize) -> Vec<(usize, u64)> {
    let it = RowInterning::of(m);
    // Plain brute force over the *original* matrix, then collapse each
    // entry to its unique row, keeping whole distance classes.
    let full = brute_force_knn(m, query, m.rows(), None);
    let mut out: Vec<(usize, u64)> = Vec::new();
    let mut weight = 0usize;
    let mut i = 0;
    while i < full.len() && weight < k {
        let bits = full[i].sq_dist.to_bits();
        let mut class: Vec<usize> = Vec::new();
        while i < full.len() && full[i].sq_dist.to_bits() == bits {
            let u = it.to_unique()[full[i].index] as usize;
            if !class.contains(&u) {
                class.push(u);
            }
            weight += 1;
            i += 1;
        }
        class.sort_unstable();
        out.extend(class.into_iter().map(|u| (u, bits)));
    }
    out
}

proptest! {
    /// KdTree ≡ BallTree ≡ BlockedBruteForce ≡ brute force: same
    /// neighbour sets, same squared-distance bits, same tie-break order.
    #[test]
    fn all_backends_bitwise_agree(
        rows in cloud(4, 120),
        query in prop::collection::vec(0.0..1.0f64, 4..=4),
        k in 1usize..12,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        let ball = BallTree::build(&m);
        let blocked = BlockedBruteForce::build(&m);
        let reference = brute_force_knn(&m, &query, k, None);
        for got in [tree.k_nearest(&query, k), ball.k_nearest(&query, k),
                    blocked.k_nearest(&query, k)] {
            prop_assert_eq!(got.len(), reference.len());
            for (got, want) in got.iter().zip(reference.iter()) {
                prop_assert_eq!(got.index, want.index);
                prop_assert_eq!(got.sq_dist.to_bits(), want.sq_dist.to_bits());
            }
        }
    }

    /// The same agreement on heavy-duplicate matrices, excluding the query
    /// row itself as SEL does.
    #[test]
    fn backends_agree_on_duplicates_with_exclusion(
        rows in quantised_cloud(3, 150),
        k in 1usize..10,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        let ball = BallTree::build(&m);
        let blocked = BlockedBruteForce::build(&m);
        for i in 0..m.rows().min(15) {
            let reference = brute_force_knn(&m, m.row(i), k, Some(i));
            prop_assert_eq!(&tree.k_nearest_excluding(m.row(i), k, Some(i)), &reference);
            prop_assert_eq!(&ball.k_nearest_excluding(m.row(i), k, Some(i)), &reference);
            prop_assert_eq!(&blocked.k_nearest_excluding(m.row(i), k, Some(i)), &reference);
        }
    }

    /// All-equidistant matrices: with every distance tied, the backends
    /// must reproduce the pure index-order result — the hardest tie-break
    /// case for tree pruning bounds.
    #[test]
    fn backends_agree_on_all_equidistant_matrices(
        rows in equidistant_cloud(3, 120),
        query in prop::collection::vec(0.0..1.0f64, 3..=3),
        k in 1usize..10,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let tree = KdTree::build(&m);
        let ball = BallTree::build(&m);
        let blocked = BlockedBruteForce::build(&m);
        let reference = brute_force_knn(&m, &query, k, None);
        // The reference is the k smallest row indices at one tied
        // distance (or the query row's own distance class layout).
        prop_assert_eq!(&tree.k_nearest(&query, k), &reference);
        prop_assert_eq!(&ball.k_nearest(&query, k), &reference);
        prop_assert_eq!(&blocked.k_nearest(&query, k), &reference);
    }

    /// Weighted queries over the interned rows return exactly the distance
    /// classes a plain query over the duplicated matrix covers, on every
    /// backend.
    #[test]
    fn weighted_queries_match_expanded_reference(
        rows in quantised_cloud(3, 120),
        k in 1usize..10,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let it = RowInterning::of(&m);
        let weights = it.multiplicities();
        let tree = KdTree::build(it.unique());
        let ball = BallTree::build(it.unique());
        let blocked = BlockedBruteForce::build(it.unique());
        for i in 0..m.rows().min(10) {
            let query = m.row(i);
            let want = reference_weighted(&m, query, k);
            for nn in [tree.k_nearest_weighted(query, &weights, k),
                       ball.k_nearest_weighted(query, &weights, k),
                       blocked.k_nearest_weighted(query, &weights, k)] {
                let got: Vec<(usize, u64)> =
                    nn.iter().map(|n| (n.index, n.sq_dist.to_bits())).collect();
                prop_assert_eq!(&got, &want);
            }
        }
    }

    /// The full engine: DedupKnn over the duplicated matrix reproduces the
    /// plain brute-force answer — with and without self-exclusion — for
    /// every backend.
    #[test]
    fn dedup_engine_equals_brute_force_over_original(
        rows in quantised_cloud(2, 140),
        k in 1usize..8,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        for kind in [IndexKind::KdTree, IndexKind::BallTree, IndexKind::Blocked, IndexKind::Auto] {
            let engine = DedupKnn::build(&m, kind);
            for i in 0..m.rows().min(10) {
                let query = m.row(i);
                prop_assert_eq!(
                    &engine.k_nearest(query, k),
                    &brute_force_knn(&m, query, k, None)
                );
                prop_assert_eq!(
                    &engine.k_nearest_excluding(query, k, i),
                    &brute_force_knn(&m, query, k, Some(i))
                );
            }
        }
    }

    /// Panel queries are elementwise identical to single queries.
    #[test]
    fn panel_queries_match_single_queries(
        rows in quantised_cloud(3, 100),
        k in 1usize..8,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let it = RowInterning::of(&m);
        let weights = it.multiplicities();
        let blocked = BlockedBruteForce::build(it.unique());
        let queries: Vec<&[f64]> = (0..m.rows().min(12)).map(|i| m.row(i)).collect();
        let panel = blocked.k_nearest_weighted_panel(&queries, &weights, k);
        for (q, got) in queries.iter().zip(&panel) {
            prop_assert_eq!(got, &blocked.k_nearest_weighted(q, &weights, k));
        }
    }

    /// The ball tree at its native regime: moderate dimensionality (dim 9,
    /// multi-level trees) against the brute-force reference.
    #[test]
    fn balltree_agrees_at_moderate_dimensionality(
        rows in cloud(9, 200),
        k in 1usize..10,
    ) {
        let m = FeatureMatrix::from_vecs(&rows).unwrap();
        let ball = BallTree::build(&m);
        for i in 0..m.rows().min(8) {
            let reference = brute_force_knn(&m, m.row(i), k, None);
            prop_assert_eq!(&ball.k_nearest(m.row(i), k), &reference);
        }
    }
}

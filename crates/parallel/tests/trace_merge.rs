//! Trace integration: counters and histograms recorded inside pool
//! workers merge to the same report at any worker count, and the disabled
//! path records nothing while leaving results bit-identical.

use std::sync::Mutex;

use transer_parallel::Pool;
use transer_trace::TraceReport;

/// Tracing state is process-global; tests that flip it serialise here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn workload(workers: usize) -> (Vec<u64>, Vec<u64>, Vec<(usize, u64)>) {
    let items: Vec<u64> = (0..997).collect();
    let pool = Pool::new(workers);
    let mapped = pool.par_map(&items, |&x| {
        transer_trace::counter("test.items", 1);
        if x % 3 == 0 {
            transer_trace::counter("test.fizz", 1);
        }
        transer_trace::observe("test.value", (x % 17) as f64);
        x.wrapping_mul(0x9e37_79b9) >> 7
    });
    let chunked = pool.par_chunks(&items, 13, |_, c| {
        transer_trace::counter("test.chunks", 1);
        transer_trace::observe("test.chunk_len", c.len() as f64);
        c.iter().map(|x| x + 1).collect()
    });
    let initd = pool.par_map_init(
        &items,
        || 0u64,
        |scratch, i, &x| {
            *scratch += 1;
            transer_trace::counter("test.init_items", 1);
            (i, x ^ *scratch)
        },
    );
    (mapped, chunked, initd)
}

type WorkloadOutput = (Vec<u64>, Vec<u64>, Vec<(usize, u64)>);

fn traced_run(workers: usize) -> (WorkloadOutput, TraceReport) {
    let out = workload(workers);
    (out, transer_trace::drain_report())
}

#[test]
fn merged_counters_and_histograms_are_worker_count_invariant() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    transer_trace::set_enabled(true);
    let (out1, report1) = traced_run(1);
    let results: Vec<_> = [2, 3, 8, 64].iter().map(|&w| traced_run(w)).collect();
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();

    assert_eq!(report1.counter("test.items"), 997);
    assert_eq!(report1.counter("test.fizz"), 333);
    assert_eq!(report1.counter("test.chunks"), 997u64.div_ceil(13));
    assert_eq!(report1.counter("test.init_items"), 997);
    assert_eq!(report1.hists["test.value"].count, 997);
    for ((out, report), workers) in results.iter().zip([2, 3, 8, 64]) {
        assert_eq!(*out, out1, "results differ at workers={workers}");
        assert_eq!(report.counters, report1.counters, "counters differ at workers={workers}");
        assert_eq!(report.hists, report1.hists, "histograms differ at workers={workers}");
    }
}

#[test]
fn disabled_path_records_nothing_and_results_match() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    transer_trace::set_enabled(false);
    let (plain, empty_report) = traced_run(4);
    assert!(empty_report.is_empty(), "disabled run must record nothing");
    assert!(transer_trace::thread_buffer_is_clear());

    transer_trace::set_enabled(true);
    let (traced, report) = traced_run(4);
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();

    assert!(!report.is_empty());
    assert_eq!(plain, traced, "tracing must not perturb results");
}

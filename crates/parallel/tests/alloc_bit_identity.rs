//! Allocation counters through the deterministic worker harvest: work
//! measured with `alloc_counted` inside pool workers must merge to
//! *bit-identical* counter totals at any worker count. The workload
//! allocates a deterministic amount per item, so the per-item deltas —
//! and therefore the merged sums — cannot depend on how items were
//! sharded across threads.

use std::sync::Mutex;

use transer_parallel::Pool;
use transer_trace::TraceReport;

// An unused `--extern` crate is never loaded, and an unloaded crate's
// `#[global_allocator]` is never registered — this linkage is what swaps
// the test binary's allocator to the counting one.
use transer_common as _;

/// Tracing state is process-global; tests that flip it serialise here.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Per item: exactly one boxed slice of `64 + (x % 7) * 8` bytes, measured
/// by `alloc_counted` — fully deterministic in the item, not the thread.
fn traced_run(workers: usize) -> (u64, TraceReport) {
    let items: Vec<u64> = (0..499).collect();
    let pool = Pool::new(workers);
    let out = pool.par_map(&items, |&x| {
        transer_trace::alloc_counted("test.alloc.count", "test.alloc.bytes", || {
            let v: Vec<u8> = Vec::with_capacity(64 + (x as usize % 7) * 8);
            std::hint::black_box(&v);
            v.capacity() as u64
        })
    });
    (out.iter().sum(), transer_trace::drain_report())
}

#[test]
fn alloc_counters_are_bit_identical_across_worker_counts() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    transer_trace::set_enabled(true);
    transer_trace::alloc::set_enabled(true);
    let (sum1, report1) = traced_run(1);
    let others: Vec<_> = [2, 8, 64].iter().map(|&w| traced_run(w)).collect();
    transer_trace::alloc::set_enabled(false);
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();

    let count = report1.counter("test.alloc.count");
    let bytes = report1.counter("test.alloc.bytes");
    assert!(count >= 499, "every item allocates at least once, saw {count}");
    assert!(bytes >= 499 * 64, "at least the requested capacities, saw {bytes}");
    for (w, (sum, report)) in [2usize, 8, 64].iter().zip(&others) {
        assert_eq!(*sum, sum1, "mapped output must be worker-count invariant");
        assert_eq!(
            report.counter("test.alloc.count"),
            count,
            "allocation event count diverged at {w} workers"
        );
        assert_eq!(
            report.counter("test.alloc.bytes"),
            bytes,
            "allocation byte count diverged at {w} workers"
        );
    }
}

#[test]
fn disabled_alloc_tracing_records_no_counters() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    transer_trace::set_enabled(true);
    transer_trace::alloc::set_enabled(false);
    let (_, report) = traced_run(4);
    transer_trace::set_enabled(false);
    let _ = transer_trace::take_global_report();
    assert_eq!(report.counter("test.alloc.count"), 0);
    assert_eq!(report.counter("test.alloc.bytes"), 0);
}

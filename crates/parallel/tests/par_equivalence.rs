//! Property: every parallel primitive is exactly equivalent to its
//! sequential counterpart — same values, same order — for arbitrary
//! inputs (including empty and single-element) and worker counts.

use proptest::prelude::*;
use transer_parallel::Pool;

proptest! {
    #[test]
    fn par_map_equals_map(v in prop::collection::vec(any::<i64>(), 0..60), workers in 1usize..9) {
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let seq: Vec<i64> = v.iter().map(f).collect();
        prop_assert_eq!(Pool::new(workers).par_map(&v, f), seq);
    }

    #[test]
    fn par_map_init_equals_indexed_map(
        v in prop::collection::vec(any::<u32>(), 0..60),
        workers in 1usize..9,
    ) {
        // Scratch buffer reuse must not leak between items.
        let got = Pool::new(workers).par_map_init(
            &v,
            || Vec::<u8>::with_capacity(8),
            |buf, i, x| {
                buf.clear();
                buf.extend(x.to_le_bytes());
                (i as u64) ^ u64::from(buf.iter().map(|&b| u32::from(b)).sum::<u32>())
            },
        );
        let seq: Vec<u64> = v
            .iter()
            .enumerate()
            .map(|(i, x)| (i as u64) ^ u64::from(x.to_le_bytes().iter().map(|&b| u32::from(b)).sum::<u32>()))
            .collect();
        prop_assert_eq!(got, seq);
    }

    #[test]
    fn par_chunks_equals_chunked_flat_map(
        v in prop::collection::vec(any::<i64>(), 0..60),
        workers in 1usize..9,
        chunk in 1usize..12,
    ) {
        let f = |start: usize, c: &[i64]| -> Vec<i64> {
            c.iter().enumerate().map(|(k, x)| x.wrapping_add((start + k) as i64)).collect()
        };
        let mut seq = Vec::new();
        for start in (0..v.len()).step_by(chunk) {
            let end = (start + chunk).min(v.len());
            seq.extend(f(start, &v[start..end]));
        }
        prop_assert_eq!(Pool::new(workers).par_chunks(&v, chunk, f), seq);
    }
}

//! Property: every parallel primitive is exactly equivalent to its
//! sequential counterpart — same values, same order — for arbitrary
//! inputs (including empty and single-element) and worker counts.

use proptest::prelude::*;
use transer_parallel::{CostClass, CostHint, GrainMode, Pool};

/// The four grain modes every costed primitive must be invariant under.
const MODES: [GrainMode; 4] =
    [GrainMode::Auto, GrainMode::AlwaysInline, GrainMode::AlwaysPool, GrainMode::Threshold(1)];

proptest! {
    #[test]
    fn par_map_equals_map(v in prop::collection::vec(any::<i64>(), 0..60), workers in 1usize..9) {
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let seq: Vec<i64> = v.iter().map(f).collect();
        prop_assert_eq!(Pool::new(workers).par_map(&v, f), seq);
    }

    #[test]
    fn par_map_init_equals_indexed_map(
        v in prop::collection::vec(any::<u32>(), 0..60),
        workers in 1usize..9,
    ) {
        // Scratch buffer reuse must not leak between items.
        let got = Pool::new(workers).par_map_init(
            &v,
            || Vec::<u8>::with_capacity(8),
            |buf, i, x| {
                buf.clear();
                buf.extend(x.to_le_bytes());
                (i as u64) ^ u64::from(buf.iter().map(|&b| u32::from(b)).sum::<u32>())
            },
        );
        let seq: Vec<u64> = v
            .iter()
            .enumerate()
            .map(|(i, x)| (i as u64) ^ u64::from(x.to_le_bytes().iter().map(|&b| u32::from(b)).sum::<u32>()))
            .collect();
        prop_assert_eq!(got, seq);
    }

    #[test]
    fn par_chunks_equals_chunked_flat_map(
        v in prop::collection::vec(any::<i64>(), 0..60),
        workers in 1usize..9,
        chunk in 1usize..12,
    ) {
        let f = |start: usize, c: &[i64]| -> Vec<i64> {
            c.iter().enumerate().map(|(k, x)| x.wrapping_add((start + k) as i64)).collect()
        };
        let mut seq = Vec::new();
        for start in (0..v.len()).step_by(chunk) {
            let end = (start + chunk).min(v.len());
            seq.extend(f(start, &v[start..end]));
        }
        prop_assert_eq!(Pool::new(workers).par_chunks(&v, chunk, f), seq);
    }

    #[test]
    fn par_map_costed_equals_map_for_every_grain_mode(
        v in prop::collection::vec(any::<i64>(), 0..60),
        workers in 1usize..9,
        class in 0usize..4,
    ) {
        let class = [CostClass::Trivial, CostClass::Light, CostClass::Medium, CostClass::Heavy][class];
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        let seq: Vec<i64> = v.iter().map(f).collect();
        let hint = CostHint::new(v.len(), class);
        for mode in MODES {
            let got = Pool::new(workers).with_grain(mode).par_map_costed(&v, hint, f);
            prop_assert_eq!(&got, &seq, "mode {:?}", mode);
        }
    }

    #[test]
    fn par_map_init_costed_equals_indexed_map_for_every_grain_mode(
        v in prop::collection::vec(any::<u32>(), 0..60),
        workers in 1usize..9,
    ) {
        let seq: Vec<u64> = v
            .iter()
            .enumerate()
            .map(|(i, x)| (i as u64) ^ u64::from(x.to_le_bytes().iter().map(|&b| u32::from(b)).sum::<u32>()))
            .collect();
        let hint = CostHint::new(v.len(), CostClass::Medium);
        for mode in MODES {
            let got = Pool::new(workers).with_grain(mode).par_map_init_costed(
                &v,
                hint,
                || Vec::<u8>::with_capacity(8),
                |buf, i, x| {
                    buf.clear();
                    buf.extend(x.to_le_bytes());
                    (i as u64) ^ u64::from(buf.iter().map(|&b| u32::from(b)).sum::<u32>())
                },
            );
            prop_assert_eq!(&got, &seq, "mode {:?}", mode);
        }
    }

    #[test]
    fn par_chunks_costed_pinned_equals_chunked_flat_map_for_every_grain_mode(
        v in prop::collection::vec(any::<i64>(), 0..60),
        workers in 1usize..9,
        chunk in 1usize..12,
    ) {
        // The closure output depends on chunk boundaries; pinning the
        // chunk must make every mode reproduce the sequential chunking.
        let f = |start: usize, c: &[i64]| -> Vec<i64> {
            c.iter().enumerate().map(|(k, x)| x.wrapping_add((start + k) as i64)).collect()
        };
        let mut seq = Vec::new();
        for start in (0..v.len()).step_by(chunk) {
            let end = (start + chunk).min(v.len());
            seq.extend(f(start, &v[start..end]));
        }
        let hint = CostHint::new(v.len(), CostClass::Light);
        for mode in MODES {
            let got = Pool::new(workers).with_grain(mode).par_chunks_costed(&v, Some(chunk), hint, f);
            prop_assert_eq!(&got, &seq, "mode {:?}", mode);
        }
    }

    #[test]
    fn par_chunks_costed_derived_equals_sequential_for_pure_items(
        v in prop::collection::vec(any::<i64>(), 0..60),
        workers in 1usize..9,
        class in 0usize..4,
    ) {
        let class = [CostClass::Trivial, CostClass::Light, CostClass::Medium, CostClass::Heavy][class];
        let seq: Vec<i64> = v.iter().map(|x| x.wrapping_mul(13)).collect();
        let hint = CostHint::new(v.len(), class);
        for mode in MODES {
            let got = Pool::new(workers).with_grain(mode).par_chunks_costed(
                &v,
                None,
                hint,
                |_, c| c.iter().map(|x| x.wrapping_mul(13)).collect(),
            );
            prop_assert_eq!(&got, &seq, "mode {:?}", mode);
        }
    }
}

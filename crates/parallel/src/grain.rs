//! Grain-size-aware dispatch: decide, per parallel call, whether spawning
//! workers can possibly pay for itself — and if it can, how big the work
//! chunks should be.
//!
//! The pool's scoped workers cost real time to spawn, join and merge.
//! `results/BENCH_parallel.json` showed that at small scales that fixed
//! cost *loses* against sequential execution (minhash 0.80×, forest_fit
//! 0.73× vs sequential at bench scale). The fix is not "more threads" but
//! a dispatch policy: every hot call site declares a [`CostHint`] — how
//! many items it has and roughly what one item costs — and the pool runs
//! the closure inline on the caller thread whenever the estimated total
//! work is below a measured threshold. Above the threshold, the chunk size
//! is derived from the hint (each chunk carries at least
//! [`CHUNK_TARGET_NANOS`] of estimated work) instead of the blind
//! `items / (workers * 4)` split.
//!
//! # Calibration
//!
//! All constants live in the one table below and were calibrated with the
//! `bench_grain` bin (see `results/BENCH_grain.json` and EXPERIMENTS.md):
//! per-class per-item estimates only need to be right to within an order
//! of magnitude, because the inline threshold sits two orders of magnitude
//! above the measured spawn/merge overhead.
//!
//! # Overrides
//!
//! `TRANSER_GRAIN` overrides the policy at runtime: `0` forces every call
//! through the pooled path, `inf` forces every call inline, and any other
//! positive number replaces [`INLINE_THRESHOLD_NANOS`]. Tests override
//! per-pool via [`Pool::with_grain`](crate::Pool::with_grain) instead, so
//! they never race on process-global state.

use std::sync::OnceLock;

/// Environment variable overriding the dispatch policy (see module docs).
pub const GRAIN_ENV: &str = transer_common::env::GRAIN;

// ---------------------------------------------------------------------
// The calibration table. Sources: `bench_grain` on the development
// container (results/BENCH_grain.json); methodology in EXPERIMENTS.md.
// ---------------------------------------------------------------------

/// Estimated per-item cost of a [`CostClass::Trivial`] item (integer or
/// float arithmetic on in-cache data).
pub const TRIVIAL_NANOS: u64 = 40;
/// Estimated per-item cost of a [`CostClass::Light`] item (a handful of
/// hash-map probes, a short similarity on prepared data, one k-NN
/// candidate scan row).
pub const LIGHT_NANOS: u64 = 2_000;
/// Estimated per-item cost of a [`CostClass::Medium`] item (tokenise and
/// hash a record, prepare its attribute values, one pairwise record
/// comparison over prepared values).
pub const MEDIUM_NANOS: u64 = 30_000;
/// Estimated per-item cost of a [`CostClass::Heavy`] item (fit a whole
/// decision tree, sort a feature column of a large matrix).
pub const HEAVY_NANOS: u64 = 1_000_000;

/// Below this much estimated total work, dispatching to the pool cannot
/// recoup its spawn/join/merge overhead and the call runs inline.
pub const INLINE_THRESHOLD_NANOS: u64 = 1_000_000;

/// Pooled chunks are sized to carry at least this much estimated work, so
/// per-chunk dispatch overhead (an atomic claim plus a segment push) stays
/// far below the work itself.
pub const CHUNK_TARGET_NANOS: u64 = 200_000;

/// Coarse per-item cost classes for call sites that don't want to estimate
/// nanoseconds themselves. The mapping to nanoseconds is the calibration
/// table above.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Tens of nanoseconds: plain arithmetic per item.
    Trivial,
    /// Around a microsecond: probes, short prepared comparisons.
    Light,
    /// Tens of microseconds: per-record tokenising/hashing/preparing.
    Medium,
    /// A millisecond or more: per-tree training, large column sorts.
    Heavy,
}

impl CostClass {
    /// The calibrated per-item estimate for this class, in nanoseconds.
    pub fn nanos_per_item(self) -> u64 {
        match self {
            CostClass::Trivial => TRIVIAL_NANOS,
            CostClass::Light => LIGHT_NANOS,
            CostClass::Medium => MEDIUM_NANOS,
            CostClass::Heavy => HEAVY_NANOS,
        }
    }
}

/// A call site's declaration of how much work a parallel call carries:
/// item count × estimated per-item cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostHint {
    items: usize,
    nanos_per_item: u64,
}

impl CostHint {
    /// Hint from an item count and a coarse [`CostClass`].
    pub fn new(items: usize, class: CostClass) -> Self {
        CostHint { items, nanos_per_item: class.nanos_per_item() }
    }

    /// Hint with an explicit per-item estimate, for call sites whose item
    /// cost scales with a runtime quantity (e.g. tree training cost scales
    /// with the row count). Clamped to at least 1 ns.
    pub fn with_per_item_nanos(items: usize, nanos: u64) -> Self {
        CostHint { items, nanos_per_item: nanos.max(1) }
    }

    /// Number of items this call processes.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Estimated total work in nanoseconds (saturating).
    pub fn estimated_nanos(&self) -> u64 {
        (self.items as u64).saturating_mul(self.nanos_per_item)
    }

    /// The pooled chunk size: each chunk carries at least
    /// [`CHUNK_TARGET_NANOS`] of estimated work, unless that would leave
    /// workers idle (never larger than `ceil(items / workers)`).
    pub fn chunk_size(&self, workers: usize) -> usize {
        let target = (CHUNK_TARGET_NANOS / self.nanos_per_item.max(1)).max(1) as usize;
        let fair = self.items.div_ceil(workers.max(1)).max(1);
        target.min(fair)
    }
}

/// The dispatch policy in force for a pool: the automatic threshold rule,
/// or one of the `TRANSER_GRAIN` overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrainMode {
    /// Inline below the calibrated threshold, pool above it.
    Auto,
    /// `TRANSER_GRAIN=0`: every multi-item call takes the pooled path.
    AlwaysPool,
    /// `TRANSER_GRAIN=inf`: every call runs inline on the caller thread.
    AlwaysInline,
    /// `TRANSER_GRAIN=<nanos>`: [`GrainMode::Auto`] with a custom inline
    /// threshold.
    Threshold(u64),
}

impl GrainMode {
    /// Parse a `TRANSER_GRAIN` value: `0` = always pool, `inf` = always
    /// inline, any other positive number = a threshold in nanoseconds.
    pub fn parse(value: &str) -> Option<GrainMode> {
        let v: f64 = value.trim().parse().ok()?;
        if v == 0.0 {
            Some(GrainMode::AlwaysPool)
        } else if v.is_infinite() && v > 0.0 {
            Some(GrainMode::AlwaysInline)
        } else if v.is_finite() && v > 0.0 {
            Some(GrainMode::Threshold(v as u64))
        } else {
            None
        }
    }

    /// Read `TRANSER_GRAIN` through `transer_common::env` *right now* (no
    /// caching): unset or invalid (with a structured warning) → `Auto`.
    /// The dispatch path uses the once-per-process [`GrainMode::from_env`];
    /// this uncached form exists so tests can exercise the round-trip.
    pub fn from_env_now() -> GrainMode {
        transer_common::env::parsed_with(
            GRAIN_ENV,
            GrainMode::parse,
            "a threshold in ns, `0` (always pool) or `inf` (always inline)",
            "auto",
        )
        .unwrap_or(GrainMode::Auto)
    }

    /// The process-wide mode from `TRANSER_GRAIN`, read once.
    pub fn from_env() -> GrainMode {
        static MODE: OnceLock<GrainMode> = OnceLock::new();
        *MODE.get_or_init(GrainMode::from_env_now)
    }
}

/// The machine's available parallelism, read once. When the host has a
/// single core, pooling can never win and the auto policy always inlines.
fn hardware_parallelism() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Should this call take the pooled path? `workers` is the pool's
/// effective worker count. Single-item calls always inline; mode overrides
/// win; the auto rule inlines when either the pool or the hardware is
/// effectively sequential, or when the estimated work is under threshold.
pub fn should_pool(hint: &CostHint, workers: usize, mode: GrainMode) -> bool {
    if hint.items() <= 1 {
        return false;
    }
    match mode {
        GrainMode::AlwaysInline => false,
        GrainMode::AlwaysPool => true,
        GrainMode::Auto | GrainMode::Threshold(_) => {
            if workers == 1 || hardware_parallelism() == 1 {
                return false;
            }
            let threshold = match mode {
                GrainMode::Threshold(t) => t,
                _ => INLINE_THRESHOLD_NANOS,
            };
            hint.estimated_nanos() >= threshold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_table_is_monotone() {
        let ns: Vec<u64> =
            [CostClass::Trivial, CostClass::Light, CostClass::Medium, CostClass::Heavy]
                .iter()
                .map(|c| c.nanos_per_item())
                .collect();
        assert!(ns.windows(2).all(|w| w[0] < w[1]), "{ns:?}");
    }

    #[test]
    fn estimate_and_chunking() {
        let h = CostHint::new(1000, CostClass::Light);
        assert_eq!(h.items(), 1000);
        assert_eq!(h.estimated_nanos(), 1000 * LIGHT_NANOS);
        // Chunks carry >= CHUNK_TARGET_NANOS of work...
        let chunk = h.chunk_size(2);
        assert!(chunk as u64 * LIGHT_NANOS >= CHUNK_TARGET_NANOS.min(h.estimated_nanos() / 2));
        // ...but heavy items always split down to singles,
        assert_eq!(CostHint::new(24, CostClass::Heavy).chunk_size(4), 1);
        // and no chunk starves the other workers.
        assert_eq!(CostHint::new(8, CostClass::Trivial).chunk_size(4), 2);
        assert_eq!(CostHint::with_per_item_nanos(10, 0).chunk_size(0), 10);
    }

    #[test]
    fn estimate_saturates() {
        let h = CostHint::with_per_item_nanos(usize::MAX, u64::MAX);
        assert_eq!(h.estimated_nanos(), u64::MAX);
    }

    #[test]
    fn parse_accepts_the_documented_forms() {
        assert_eq!(GrainMode::parse("0"), Some(GrainMode::AlwaysPool));
        assert_eq!(GrainMode::parse("0.0"), Some(GrainMode::AlwaysPool));
        assert_eq!(GrainMode::parse("inf"), Some(GrainMode::AlwaysInline));
        assert_eq!(GrainMode::parse("INF"), Some(GrainMode::AlwaysInline));
        assert_eq!(GrainMode::parse("infinity"), Some(GrainMode::AlwaysInline));
        assert_eq!(GrainMode::parse("250000"), Some(GrainMode::Threshold(250_000)));
        assert_eq!(GrainMode::parse("1e6"), Some(GrainMode::Threshold(1_000_000)));
        assert_eq!(GrainMode::parse(" 42 "), Some(GrainMode::Threshold(42)));
        for bad in ["-1", "-inf", "nan", "many", ""] {
            assert_eq!(GrainMode::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn overrides_beat_the_threshold_rule() {
        let tiny = CostHint::new(10, CostClass::Trivial);
        let huge = CostHint::new(1_000_000, CostClass::Medium);
        assert!(!should_pool(&tiny, 8, GrainMode::AlwaysInline));
        assert!(!should_pool(&huge, 8, GrainMode::AlwaysInline));
        assert!(should_pool(&tiny, 8, GrainMode::AlwaysPool));
        assert!(should_pool(&huge, 8, GrainMode::AlwaysPool));
        // Single-item calls inline no matter what.
        assert!(!should_pool(&CostHint::new(1, CostClass::Heavy), 8, GrainMode::AlwaysPool));
        assert!(!should_pool(&CostHint::new(0, CostClass::Heavy), 8, GrainMode::AlwaysPool));
    }

    #[test]
    fn transer_grain_round_trips_through_common_env() {
        // Reads the real variable uncached and restores it at the end.
        // Only this test reads `TRANSER_GRAIN` uncached; a racy cached
        // initialisation elsewhere cannot change observable results
        // because every dispatch mode is bit-identical.
        std::env::set_var(GRAIN_ENV, "0");
        assert_eq!(GrainMode::from_env_now(), GrainMode::AlwaysPool);
        std::env::set_var(GRAIN_ENV, "inf");
        assert_eq!(GrainMode::from_env_now(), GrainMode::AlwaysInline);
        std::env::set_var(GRAIN_ENV, "750000");
        assert_eq!(GrainMode::from_env_now(), GrainMode::Threshold(750_000));
        std::env::set_var(GRAIN_ENV, "gravel");
        assert_eq!(GrainMode::from_env_now(), GrainMode::Auto); // warns, falls back
        std::env::remove_var(GRAIN_ENV);
        assert_eq!(GrainMode::from_env_now(), GrainMode::Auto);
    }

    #[test]
    fn auto_rule_respects_workers_and_threshold() {
        let big = CostHint::new(1_000_000, CostClass::Medium);
        assert!(!should_pool(&big, 1, GrainMode::Auto), "one worker is sequential");
        let small = CostHint::new(4, CostClass::Trivial);
        assert!(!should_pool(&small, 8, GrainMode::Auto), "under threshold inlines");
        // A custom threshold moves the boundary: 10 trivial items pool when
        // the threshold sits below their estimate.
        let ten = CostHint::new(10, CostClass::Trivial);
        let verdict = should_pool(&ten, 8, GrainMode::Threshold(ten.estimated_nanos()));
        // On a single-core host the auto rule still inlines; elsewhere it
        // must pool once the estimate reaches the threshold.
        let multi_core = std::thread::available_parallelism().map_or(1, |n| n.get()) > 1;
        assert_eq!(verdict, multi_core);
        assert!(!should_pool(&ten, 8, GrainMode::Threshold(ten.estimated_nanos() + 1)));
    }
}

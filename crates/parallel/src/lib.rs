//! A from-scratch, deterministic, std-only parallel executor for the
//! workspace's hot paths (pair comparison, SEL k-NN scoring, forest
//! training, MinHash signatures).
//!
//! # Design
//!
//! A [`Pool`] is a *worker-count policy*, not a set of persistent threads:
//! every parallel call spawns scoped workers via [`std::thread::scope`] and
//! joins them before returning, so borrowed inputs need no `'static`
//! lifetimes, no `unsafe`, and no shutdown protocol. Workers claim batches
//! of contiguous indices from an atomic cursor (dynamic load balancing for
//! ragged workloads like tree training) and each batch's results carry
//! their starting index, so the final merge reassembles the output **in
//! input order regardless of scheduling**. Combined with pure per-item
//! closures this makes every primitive bit-identical to its sequential
//! counterpart — the property the determinism tests across the workspace
//! pin down.
//!
//! # Worker count
//!
//! [`Pool::global`] reads the `TRANSER_THREADS` environment variable once
//! per process: unset, `0` or unparseable values mean
//! [`std::thread::available_parallelism`]. `TRANSER_THREADS=1` disables
//! threading entirely (the sequential fast path runs on the calling
//! thread), which is how the experiment harness reproduces the paper's
//! single-threaded runtimes.
//!
//! # Grain-size-aware dispatch
//!
//! The `*_costed` primitives take a [`CostHint`] and only spawn workers
//! when the estimated work can recoup the spawn/merge overhead; below the
//! threshold the closure runs inline on the caller thread, and above it
//! the chunk size is derived from the hint. Because every primitive is
//! bit-identical to its sequential form, the dispatch decision never
//! changes results — only where and in what grouping the work runs. See
//! the [`grain`] module for the policy, the calibration table and the
//! `TRANSER_GRAIN` override.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grain;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

pub use grain::{CostClass, CostHint, GrainMode};

/// Environment variable selecting the global worker count.
pub const THREADS_ENV: &str = transer_common::env::THREADS;
/// Environment variable overriding the grain-dispatch policy.
pub const GRAIN_ENV: &str = transer_common::env::GRAIN;

/// A deterministic parallel executor with a fixed worker count.
///
/// Cheap to create and copy; threads only exist for the duration of a
/// single `par_*` call. All primitives return results in input order and
/// are bit-identical to their sequential equivalents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    workers: usize,
    /// Per-pool grain-policy override; `None` = `TRANSER_GRAIN` / auto.
    grain: Option<GrainMode>,
}

fn global_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        match transer_common::env::parsed::<usize>(THREADS_ENV, "a worker count", "all cores") {
            Some(n) if n > 0 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

impl Default for Pool {
    fn default() -> Self {
        Pool::global()
    }
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        Pool { workers: workers.max(1), grain: None }
    }

    /// The process-wide pool: worker count from `TRANSER_THREADS`, or
    /// [`std::thread::available_parallelism`] when unset. The variable is
    /// read once; later changes do not affect the global pool.
    pub fn global() -> Self {
        Pool { workers: global_workers(), grain: None }
    }

    /// A single-worker pool: every primitive runs sequentially on the
    /// calling thread.
    pub fn sequential() -> Self {
        Pool { workers: 1, grain: None }
    }

    /// Pin the grain-dispatch policy for this pool, overriding
    /// `TRANSER_GRAIN`. How the bit-identity tests force the inline and
    /// pooled paths without touching process-global state.
    pub fn with_grain(mut self, mode: GrainMode) -> Self {
        self.grain = Some(mode);
        self
    }

    /// Number of workers this pool uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The grain policy in force: the pool's override, else the
    /// process-wide `TRANSER_GRAIN` mode.
    pub fn grain_mode(&self) -> GrainMode {
        self.grain.unwrap_or_else(GrainMode::from_env)
    }

    /// The worker count a primitive should actually use: the pool's count,
    /// or 1 when the `pool.dispatch` fault fires (simulated dispatch
    /// failure degrades to the sequential path, which is bit-identical by
    /// construction). A single relaxed load when `TRANSER_FAULT` is unset.
    fn effective_workers(&self) -> usize {
        if transer_robust::fired(transer_robust::site::POOL_DISPATCH).is_some() {
            transer_trace::counter("robust.fallback.pool", 1);
            1
        } else {
            self.workers
        }
    }

    /// Map `f` over `items`, in parallel, preserving input order.
    ///
    /// Equivalent to `items.iter().map(f).collect()` — including the exact
    /// output order — for any pure `f`.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.dispatch(items.len(), |start, end, out| {
            out.extend(items[start..end].iter().map(&f));
        })
    }

    /// Indexed map with per-worker scratch state: `init` runs once per
    /// worker (per batch on the sequential path it runs once in total) and
    /// `f` receives the scratch, the item's index and the item.
    ///
    /// The scratch must not influence results across items (use it for
    /// reusable buffers, not accumulators) — determinism requires
    /// `f(&mut fresh_state, i, item)` to equal `f(&mut reused_state, i,
    /// item)`.
    pub fn par_map_init<T, R, S, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let workers = self.effective_workers();
        if workers == 1 || items.len() <= 1 {
            let mut state = init();
            return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
        }
        self.run_init(items, batch_size(items.len(), workers), workers, &init, &f)
    }

    /// [`Pool::par_map`] with grain-aware dispatch: runs inline on the
    /// caller thread when the hint's estimated work is under threshold,
    /// otherwise on the pool with a hint-derived chunk size. Bit-identical
    /// to `par_map` either way.
    pub fn par_map_costed<T, R, F>(&self, items: &[T], hint: CostHint, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        debug_assert_eq!(hint.items(), items.len(), "cost hint item count");
        let workers = self.effective_workers();
        let batch = hint.chunk_size(workers);
        let fill = |start: usize, end: usize, out: &mut Vec<R>| {
            out.extend(items[start..end].iter().map(&f));
        };
        if self.pool_for(&hint, workers, batch) {
            self.run_batched(items.len(), batch, workers, fill)
        } else {
            let mut out = Vec::with_capacity(items.len());
            fill(0, items.len(), &mut out);
            out
        }
    }

    /// [`Pool::par_map_init`] with grain-aware dispatch (see
    /// [`Pool::par_map_costed`]).
    pub fn par_map_init_costed<T, R, S, I, F>(
        &self,
        items: &[T],
        hint: CostHint,
        init: I,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        debug_assert_eq!(hint.items(), items.len(), "cost hint item count");
        let workers = self.effective_workers();
        let batch = hint.chunk_size(workers);
        if self.pool_for(&hint, workers, batch) {
            self.run_init(items, batch, workers, &init, &f)
        } else {
            let mut state = init();
            items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect()
        }
    }

    /// [`Pool::par_chunks`] with grain-aware dispatch. The chunk size is
    /// derived from the hint unless `pinned` fixes it — call sites whose
    /// floating-point results depend on chunk boundaries pin the chunk so
    /// results never depend on the dispatch decision. The inline path
    /// iterates the same chunk boundaries the pooled path would use, so
    /// the two are bit-identical for *any* `f`, not just per-item-pure
    /// ones.
    pub fn par_chunks_costed<T, R, F>(
        &self,
        items: &[T],
        pinned: Option<usize>,
        hint: CostHint,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        debug_assert_eq!(hint.items(), items.len(), "cost hint item count");
        if let Some(chunk) = pinned {
            assert!(chunk > 0, "chunk size must be positive");
        }
        let workers = self.effective_workers();
        let chunk = pinned.unwrap_or_else(|| hint.chunk_size(workers));
        if self.pool_for(&hint, workers, chunk) {
            self.run_chunks(items, chunk, workers, f)
        } else {
            let mut out = Vec::new();
            for start in (0..items.len()).step_by(chunk) {
                let end = (start + chunk).min(items.len());
                out.extend(f(start, &items[start..end]));
            }
            out
        }
    }

    /// Apply the grain policy for one call and record the decision: `true`
    /// means take the pooled path with the given chunk size.
    fn pool_for(&self, hint: &CostHint, workers: usize, chunk: usize) -> bool {
        if grain::should_pool(hint, workers, self.grain_mode()) {
            transer_trace::counter("parallel.dispatch.pooled", 1);
            transer_trace::observe("parallel.chunk_size", chunk as f64);
            true
        } else {
            transer_trace::counter("parallel.dispatch.inline", 1);
            false
        }
    }

    /// The pooled engine behind the indexed-map-with-scratch primitives:
    /// workers claim `batch`-sized index ranges from an atomic cursor.
    fn run_init<T, R, S, I, F>(
        &self,
        items: &[T],
        batch: usize,
        workers: usize,
        init: &I,
        f: &F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let cursor = AtomicUsize::new(0);
        let spawn = workers.min(items.len().div_ceil(batch));
        let mut segments: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(batch, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + batch).min(items.len());
                            let out: Vec<R> = items[start..end]
                                .iter()
                                .enumerate()
                                .map(|(k, t)| f(&mut state, start + k, t))
                                .collect();
                            local.push((start, out));
                        }
                        (local, transer_trace::worker_harvest())
                    })
                })
                .collect();
            join_absorbing(handles)
        });
        merge_segments(&mut segments, items.len())
    }

    /// Process `items` in contiguous chunks of (at most) `chunk` elements,
    /// in parallel. `f` receives each chunk's starting index and slice and
    /// returns that chunk's output; the chunk outputs are concatenated in
    /// chunk order.
    ///
    /// Equivalent to `items.chunks(chunk).flat_map(..)` sequentially.
    ///
    /// # Panics
    /// Panics when `chunk` is 0.
    pub fn par_chunks<T, R, F>(&self, items: &[T], chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        assert!(chunk > 0, "chunk size must be positive");
        let workers = self.effective_workers();
        if workers == 1 || items.len() <= chunk {
            let mut out = Vec::new();
            for start in (0..items.len()).step_by(chunk) {
                let end = (start + chunk).min(items.len());
                out.extend(f(start, &items[start..end]));
            }
            return out;
        }
        self.run_chunks(items, chunk, workers, f)
    }

    /// The pooled engine behind the chunked primitives: workers claim
    /// whole chunks from an atomic cursor; chunk outputs concatenate in
    /// ascending start order.
    fn run_chunks<T, R, F>(&self, items: &[T], chunk: usize, workers: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        let cursor = AtomicUsize::new(0);
        let n_chunks = items.len().div_ceil(chunk);
        let spawn = workers.min(n_chunks);
        let mut segments: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= items.len() {
                                break;
                            }
                            let end = (start + chunk).min(items.len());
                            local.push((start, f(start, &items[start..end])));
                        }
                        (local, transer_trace::worker_harvest())
                    })
                })
                .collect();
            join_absorbing(handles)
        });
        // Chunk outputs may have arbitrary lengths, so concatenate by
        // ascending start index rather than through `merge_segments` (which
        // checks the one-output-per-item invariant).
        segments.sort_unstable_by_key(|&(start, _)| start);
        segments.into_iter().flat_map(|(_, v)| v).collect()
    }

    /// Shared batched driver for [`Pool::par_map`]: `fill(start, end,
    /// &mut out)` appends the results for `items[start..end]`.
    fn dispatch<R, F>(&self, n: usize, fill: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize, &mut Vec<R>) + Sync,
    {
        let workers = self.effective_workers();
        if workers == 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            fill(0, n, &mut out);
            return out;
        }
        self.run_batched(n, batch_size(n, workers), workers, fill)
    }

    /// The pooled engine behind the map primitives: workers claim
    /// `batch`-sized index ranges from an atomic cursor and the segments
    /// merge back in input order.
    fn run_batched<R, F>(&self, n: usize, batch: usize, workers: usize, fill: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize, &mut Vec<R>) + Sync,
    {
        let cursor = AtomicUsize::new(0);
        let spawn = workers.min(n.div_ceil(batch));
        let mut segments: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..spawn)
                .map(|_| {
                    scope.spawn(|| {
                        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(batch, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + batch).min(n);
                            let mut out = Vec::with_capacity(end - start);
                            fill(start, end, &mut out);
                            local.push((start, out));
                        }
                        (local, transer_trace::worker_harvest())
                    })
                })
                .collect();
            join_absorbing(handles)
        });
        merge_segments(&mut segments, n)
    }
}

/// What each worker thread returns: its ordered `(start, results)`
/// segments plus its harvested trace buffer.
type WorkerHandle<'scope, R> =
    std::thread::ScopedJoinHandle<'scope, (Vec<(usize, Vec<R>)>, transer_trace::WorkerTrace)>;

/// Join workers in spawn order, absorbing each worker's trace buffer into
/// the owning thread as it lands, and concatenate their segment lists.
///
/// Joining (and therefore absorbing) in spawn order — not completion
/// order — is what makes merged trace counters and histograms
/// deterministic for any worker count; segment order does not matter
/// because [`merge_segments`] sorts by start index.
fn join_absorbing<R: Send>(handles: Vec<WorkerHandle<'_, R>>) -> Vec<(usize, Vec<R>)> {
    let mut segments = Vec::new();
    for handle in handles {
        let (local, harvest) = handle.join().expect("worker panicked");
        transer_trace::absorb(harvest);
        segments.extend(local);
    }
    segments
}

/// Batch size targeting ~4 batches per worker, so stragglers rebalance
/// without paying per-item dispatch overhead.
fn batch_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * 4).max(1)
}

/// Reassemble per-batch outputs into input order.
fn merge_segments<R>(segments: &mut Vec<(usize, Vec<R>)>, n: usize) -> Vec<R> {
    segments.sort_unstable_by_key(|&(start, _)| start);
    let mut out = Vec::with_capacity(n);
    for (start, seg) in segments.drain(..) {
        debug_assert_eq!(start, out.len(), "batch merge out of order");
        out.extend(seg);
    }
    assert_eq!(out.len(), n, "parallel map lost or duplicated items");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Pool::new(workers).par_map(&items, |x| x * x + 1);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = Pool::new(4);
        assert!(pool.par_map(&[] as &[u8], |x| *x).is_empty());
        assert_eq!(pool.par_map(&[5u8], |x| *x * 2), vec![10]);
        assert!(pool.par_chunks(&[] as &[u8], 3, |_, c| c.to_vec()).is_empty());
        let none: Vec<u8> = pool.par_map_init(&[], Vec::<u8>::new, |_, _, x: &u8| *x);
        assert!(none.is_empty());
    }

    #[test]
    fn par_map_init_sees_correct_indices() {
        let items: Vec<i32> = (0..503).map(|i| i * 3).collect();
        for workers in [1, 4] {
            let got = Pool::new(workers).par_map_init(
                &items,
                || 0usize, // scratch: counts items this worker handled
                |seen, i, x| {
                    *seen += 1;
                    (i, *x)
                },
            );
            let expect: Vec<(usize, i32)> = items.iter().copied().enumerate().collect();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<u32> = (0..257).collect();
        let expect: Vec<u32> = items.iter().map(|x| x + 7).collect();
        for (workers, chunk) in [(1, 10), (4, 1), (4, 10), (4, 300), (7, 13)] {
            let got = Pool::new(workers)
                .par_chunks(&items, chunk, |_, c| c.iter().map(|x| x + 7).collect());
            assert_eq!(got, expect, "workers={workers} chunk={chunk}");
        }
    }

    #[test]
    fn par_chunks_passes_chunk_starts() {
        let items = [0u8; 95];
        let starts = Pool::new(3).par_chunks(&items, 20, |start, c| vec![(start, c.len())]);
        assert_eq!(starts, vec![(0, 20), (20, 20), (40, 20), (60, 20), (80, 15)]);
    }

    #[test]
    fn variable_length_chunk_outputs() {
        // Chunks may expand or filter; concatenation must stay in order.
        let items: Vec<usize> = (0..100).collect();
        let got = Pool::new(4)
            .par_chunks(&items, 7, |_, c| c.iter().filter(|&&x| x % 2 == 0).copied().collect());
        let expect: Vec<usize> = (0..100).filter(|x| x % 2 == 0).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn workers_clamped_and_queried() {
        assert_eq!(Pool::new(0).workers(), 1);
        assert_eq!(Pool::new(5).workers(), 5);
        assert_eq!(Pool::sequential().workers(), 1);
        assert!(Pool::global().workers() >= 1);
        assert_eq!(Pool::default(), Pool::global());
    }

    #[test]
    fn ragged_workloads_balance() {
        // Item cost varies by orders of magnitude; results must still be
        // exact and ordered.
        let items: Vec<u64> = (0..64).map(|i| if i % 8 == 0 { 200_000 } else { 10 }).collect();
        let busy = |n: &u64| (0..*n).fold(0u64, |a, x| a.wrapping_add(x * x));
        let seq: Vec<u64> = items.iter().map(busy).collect();
        assert_eq!(Pool::new(4).par_map(&items, busy), seq);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        Pool::new(2).par_chunks(&[1u8], 0, |_, c| c.to_vec());
    }

    #[test]
    fn costed_primitives_match_uncosted_under_every_mode() {
        let items: Vec<u64> = (0..777).collect();
        let map_expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        let init_expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| x + i as u64).collect();
        let modes = [
            GrainMode::Auto,
            GrainMode::AlwaysInline,
            GrainMode::AlwaysPool,
            GrainMode::Threshold(1),
            GrainMode::Threshold(u64::MAX),
        ];
        for mode in modes {
            for workers in [1, 4] {
                let pool = Pool::new(workers).with_grain(mode);
                let hint = CostHint::new(items.len(), CostClass::Trivial);
                assert_eq!(
                    pool.par_map_costed(&items, hint, |x| x * 3 + 1),
                    map_expect,
                    "{mode:?} workers={workers}"
                );
                assert_eq!(
                    pool.par_map_init_costed(&items, hint, || 0u64, |_, i, x| x + i as u64),
                    init_expect,
                    "{mode:?} workers={workers}"
                );
                // Per-item-pure chunk closure: any chunking is equivalent.
                assert_eq!(
                    pool.par_chunks_costed(&items, None, hint, |_, c| {
                        c.iter().map(|x| x * 3 + 1).collect()
                    }),
                    map_expect,
                    "{mode:?} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn pinned_chunks_see_identical_boundaries_inline_and_pooled() {
        // The closure's output depends on the chunk start, so this only
        // passes when the inline path iterates the same boundaries the
        // pooled path claims.
        let items: Vec<u32> = (0..301).collect();
        let hint = CostHint::new(items.len(), CostClass::Heavy);
        let f = |start: usize, c: &[u32]| -> Vec<u64> {
            c.iter().map(|x| u64::from(*x) * 1000 + start as u64).collect()
        };
        let inline = Pool::new(4).with_grain(GrainMode::AlwaysInline);
        let pooled = Pool::new(4).with_grain(GrainMode::AlwaysPool);
        assert_eq!(
            inline.par_chunks_costed(&items, Some(32), hint, f),
            pooled.par_chunks_costed(&items, Some(32), hint, f),
        );
    }

    #[test]
    fn dispatch_decisions_are_counted() {
        let items: Vec<u64> = (0..64).collect();
        let hint = CostHint::new(items.len(), CostClass::Medium);
        transer_trace::set_enabled(true);
        let pooled = Pool::new(4).with_grain(GrainMode::AlwaysPool);
        let inline = Pool::new(4).with_grain(GrainMode::AlwaysInline);
        let a = pooled.par_map_costed(&items, hint, |x| x + 1);
        let b = inline.par_map_costed(&items, hint, |x| x + 1);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        assert_eq!(a, b);
        assert!(report.counter("parallel.dispatch.pooled") >= 1);
        assert!(report.counter("parallel.dispatch.inline") >= 1);
        assert!(report.hists["parallel.chunk_size"].count >= 1);
    }

    #[test]
    fn dispatch_fault_degrades_to_sequential_with_identical_results() {
        let _guard = transer_robust::test_lock();
        let items: Vec<u64> = (0..500).collect();
        let clean = Pool::new(4).par_map(&items, |x| x * 7 + 1);
        transer_robust::set_plan(Some("pool.dispatch:task_fail"));
        let faulted = Pool::new(4).par_map(&items, |x| x * 7 + 1);
        let chunked =
            Pool::new(4).par_chunks(&items, 13, |_, c| c.iter().map(|x| x * 7 + 1).collect());
        let with_init = Pool::new(4).par_map_init(&items, || (), |_, _, x| x * 7 + 1);
        transer_robust::set_plan(None);
        assert_eq!(faulted, clean);
        assert_eq!(chunked, clean);
        assert_eq!(with_init, clean);
    }
}

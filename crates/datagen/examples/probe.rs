//! Workload statistics probe: prints, for every scenario at the given
//! scale, the candidate-pair count, match percentage and the share of
//! ambiguous feature vectors — the quantities Table 1 is calibrated
//! against. Usage: `cargo run --release -p transer-datagen --example
//! probe [scale]`.

use std::collections::HashMap;
use transer_datagen::Scenario;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.05);
    for s in Scenario::ALL {
        let d = s.generate(scale, 42).unwrap();
        let n = d.len();
        let m = d.num_matches();
        // ambiguity: rounded vectors with both labels
        let mut keys: HashMap<Vec<i64>, (usize, usize)> = HashMap::new();
        for i in 0..n {
            let e = keys.entry(d.x.row_key(i, 2)).or_default();
            if d.y[i].is_match() {
                e.0 += 1
            } else {
                e.1 += 1
            }
        }
        let amb: usize = keys.values().filter(|(a, b)| *a > 0 && *b > 0).map(|(a, b)| a + b).sum();
        println!(
            "{:<14} pairs={:<8} M%={:.1} amb%={:.1}",
            s.name(),
            n,
            100.0 * m as f64 / n as f64,
            100.0 * amb as f64 / n as f64
        );
    }
}

//! Headline-shape probe: TransER vs Naive on all eight directed transfer
//! tasks, averaged over the paper's four classifiers. The quick way to
//! check the Table 2 shape after touching the generators or the pipeline.
//! Usage: `cargo run --release -p transer-datagen --example headline [scale]`.
use transer_core::{TransEr, TransErConfig};
use transer_datagen::ScenarioPair;
use transer_metrics::{evaluate, MeanStd};
use transer_ml::ClassifierKind;

fn main() {
    let scale: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.1);
    for pair in ScenarioPair::ALL {
        for dp in pair.both_directions(scale, 42).unwrap() {
            let mut tf = MeanStd::new();
            let mut tr = MeanStd::new();
            let mut tp = MeanStd::new();
            let mut nf = MeanStd::new();
            let mut nr = MeanStd::new();
            let mut np = MeanStd::new();
            for kind in ClassifierKind::PAPER_SET {
                let t = TransEr::new(TransErConfig::default(), kind, 7).unwrap();
                let out = t.fit_predict(&dp.source.x, &dp.source.y, &dp.target.x).unwrap();
                let cm = evaluate(&out.labels, &dp.target.y);
                tf.push(cm.f_star());
                tr.push(cm.recall());
                tp.push(cm.precision());
                let mut clf = kind.build(7);
                clf.fit(&dp.source.x, &dp.source.y).unwrap();
                let cm = evaluate(&clf.predict(&dp.target.x), &dp.target.y);
                nf.push(cm.f_star());
                nr.push(cm.recall());
                np.push(cm.precision());
            }
            println!(
                "{:<26} TransER F*={:.1} P={:.1} R={:.1} | Naive F*={:.1} P={:.1} R={:.1}",
                dp.label(),
                tf.mean() * 100.0,
                tp.mean() * 100.0,
                tr.mean() * 100.0,
                nf.mean() * 100.0,
                np.mean() * 100.0,
                nr.mean() * 100.0
            );
        }
    }
}

//! Property tests on the workload generators: corruption invariants,
//! scenario structure, CSV round-trips.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use transer_common::AttrValue;
use transer_datagen::corrupt::{corrupt_number, corrupt_text, typo};
use transer_datagen::export::{read_csv, write_csv};
use transer_datagen::vectors::{generate, VectorDomainConfig};
use transer_datagen::CorruptionProfile;

fn value_text() -> impl Strategy<Value = String> {
    "[a-z]{2,10}( [a-z]{2,10}){0,3}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn typo_never_empties_or_explodes(s in value_text(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = typo(&s, &mut rng);
        let before = s.chars().count();
        let after = out.chars().count();
        prop_assert!(!out.is_empty());
        prop_assert!(after.abs_diff(before) <= 1, "{s:?} -> {out:?}");
    }

    #[test]
    fn none_profile_is_identity(s in value_text(), x in -1.0e4..1.0e4f64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = CorruptionProfile::none();
        prop_assert_eq!(corrupt_text(&s, &p, &mut rng), AttrValue::Text(s.clone()));
        prop_assert_eq!(corrupt_number(x, &p, &mut rng), AttrValue::Number(x));
    }

    #[test]
    fn corruption_output_is_well_formed(s in value_text(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for profile in [CorruptionProfile::clean(), CorruptionProfile::noisy(), CorruptionProfile::heavy()] {
            match corrupt_text(&s, &profile, &mut rng) {
                AttrValue::Text(t) => {
                    prop_assert!(!t.is_empty());
                    prop_assert!(t.chars().count() <= s.chars().count() + profile.max_typos + 2);
                }
                AttrValue::Missing => {}
                AttrValue::Number(_) => prop_assert!(false, "text never becomes a number"),
            }
        }
    }

    #[test]
    fn numeric_corruption_bounded(x in 1800.0..2000.0f64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = CorruptionProfile::heavy();
        match corrupt_number(x, &p, &mut rng) {
            AttrValue::Number(y) => prop_assert!((y - x).abs() <= p.max_jitter),
            AttrValue::Missing => {}
            AttrValue::Text(_) => prop_assert!(false, "number never becomes text"),
        }
    }

    #[test]
    fn vector_generator_respects_config(
        n in 50usize..400,
        m in 2usize..8,
        match_rate in 0.05..0.5f64,
        seed in any::<u64>(),
    ) {
        let cfg = VectorDomainConfig { n, m, match_rate, seed, ..Default::default() };
        let ds = generate("p", &cfg).unwrap();
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.x.cols(), m);
        for row in ds.x.iter_rows() {
            for &v in row {
                prop_assert!((0.0..=1.0).contains(&v));
            }
        }
        // Deterministic per seed.
        prop_assert_eq!(generate("p", &cfg).unwrap(), ds);
    }

    #[test]
    fn csv_roundtrip_is_lossless(
        n in 1usize..60,
        m in 1usize..6,
        seed in any::<u64>(),
    ) {
        let cfg = VectorDomainConfig { n, m, seed, ..Default::default() };
        let ds = generate("rt", &cfg).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv("rt", buf.as_slice()).unwrap();
        prop_assert_eq!(back.y, ds.y.clone());
        prop_assert_eq!(back.x.rows(), ds.x.rows());
        for (a, b) in back.x.as_slice().iter().zip(ds.x.as_slice()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}

//! Word pools for the synthetic generators.
//!
//! The pools are deliberately *small*: ER ambiguity comes from value reuse
//! (every 19th-century Scottish parish had dozens of `john macdonald`s),
//! and Table 1's ambiguous-vector percentages can only be reproduced when
//! distinct entities regularly collide on attribute values.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;

/// Male and female given names common in 19th-century Scottish registers.
pub const FIRST_NAMES: &[&str] = &[
    "john",
    "james",
    "william",
    "alexander",
    "donald",
    "robert",
    "angus",
    "duncan",
    "hugh",
    "neil",
    "archibald",
    "malcolm",
    "kenneth",
    "norman",
    "murdo",
    "mary",
    "margaret",
    "ann",
    "catherine",
    "janet",
    "christina",
    "isabella",
    "flora",
    "marion",
    "effie",
    "jessie",
    "agnes",
    "elizabeth",
    "jane",
    "helen",
];

/// Surnames; clan names dominate on the isle, town names are more varied.
pub const SURNAMES: &[&str] = &[
    "macdonald",
    "macleod",
    "mackinnon",
    "mackenzie",
    "macinnes",
    "maclean",
    "campbell",
    "stewart",
    "robertson",
    "nicolson",
    "matheson",
    "ross",
    "fraser",
    "grant",
    "murray",
    "ferguson",
    "beaton",
    "gillies",
    "lamont",
    "shaw",
    "smith",
    "brown",
    "wilson",
    "thomson",
    "walker",
    "young",
    "paterson",
    "watson",
    "morrison",
    "kerr",
];

/// Occupations recorded on civil certificates.
pub const OCCUPATIONS: &[&str] = &[
    "crofter",
    "fisherman",
    "farmer",
    "weaver",
    "labourer",
    "shepherd",
    "blacksmith",
    "mason",
    "carpenter",
    "tailor",
    "shoemaker",
    "merchant",
    "miner",
    "carter",
    "domestic servant",
    "seaman",
    "gardener",
    "baker",
    "cooper",
    "slater",
];

/// Parishes / localities.
pub const PLACES: &[&str] = &[
    "portree",
    "snizort",
    "duirinish",
    "bracadale",
    "strath",
    "sleat",
    "kilmuir",
    "uig",
    "dunvegan",
    "broadford",
    "kilmarnock",
    "riccarton",
    "fenwick",
    "dreghorn",
    "irvine",
    "galston",
    "hurlford",
    "crosshouse",
    "darvel",
    "stewarton",
];

/// Street fragments for town addresses.
pub const STREETS: &[&str] = &[
    "high street",
    "king street",
    "queen street",
    "mill road",
    "church lane",
    "harbour road",
    "main street",
    "green street",
    "bank street",
    "wellington street",
    "portland road",
    "union street",
    "north road",
    "south vennel",
    "west shaw street",
];

/// Research-paper title vocabulary (database/data-mining flavoured).
pub const TITLE_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "adaptive",
    "incremental",
    "distributed",
    "parallel",
    "approximate",
    "probabilistic",
    "learning",
    "mining",
    "indexing",
    "matching",
    "clustering",
    "query",
    "processing",
    "optimization",
    "databases",
    "streams",
    "graphs",
    "records",
    "entities",
    "resolution",
    "integration",
    "schema",
    "similarity",
    "joins",
    "views",
    "transactions",
    "caching",
    "retrieval",
    "semantic",
    "knowledge",
    "web",
    "data",
    "large",
    "deep",
];

/// Publication venues, in both full and abbreviated renditions (index-
/// aligned: `VENUES_FULL[i]` abbreviates to `VENUES_ABBREV[i]`).
pub const VENUES_FULL: &[&str] = &[
    "international conference on management of data",
    "international conference on very large data bases",
    "international conference on data engineering",
    "international conference on extending database technology",
    "international conference on knowledge discovery and data mining",
    "conference on information and knowledge management",
    "transactions on database systems",
    "transactions on knowledge and data engineering",
];

/// Abbreviated venue names.
pub const VENUES_ABBREV: &[&str] =
    &["sigmod", "vldb", "icde", "edbt", "kdd", "cikm", "tods", "tkde"];

/// Song-title vocabulary.
pub const SONG_WORDS: &[&str] = &[
    "love", "night", "heart", "blue", "fire", "rain", "summer", "dancing", "dreams", "road",
    "home", "light", "shadow", "river", "golden", "broken", "wild", "silent", "midnight",
    "forever", "lonely", "crazy", "sweet", "little", "last", "first", "lost", "running",
];

/// Band / artist name fragments.
pub const ARTIST_WORDS: &[&str] = &[
    "the", "black", "electric", "velvet", "crystal", "neon", "silver", "royal", "phantom", "echo",
    "stone", "iron", "paper", "arctic", "cosmic", "sonic", "lunar", "scarlet", "wolves", "pilots",
    "queens", "kings", "riders", "ghosts", "tigers", "sparrows",
];

/// Album qualifier words used for re-releases — the engine of Musicbrainz
/// ambiguity.
pub const ALBUM_QUALIFIERS: &[&str] =
    &["remastered", "deluxe edition", "live", "acoustic", "single", "ep", "anthology"];

/// Common nickname pairs `(formal, informal)` for person-name variation.
pub const NICKNAMES: &[(&str, &str)] = &[
    ("john", "jock"),
    ("james", "jamie"),
    ("william", "willie"),
    ("alexander", "sandy"),
    ("robert", "rab"),
    ("margaret", "maggie"),
    ("catherine", "kate"),
    ("christina", "kirsty"),
    ("isabella", "bella"),
    ("elizabeth", "betsy"),
];

/// Pick one entry from a pool.
pub fn pick<'a>(pool: &[&'a str], rng: &mut StdRng) -> &'a str {
    pool.choose(rng).expect("non-empty pool")
}

/// Compose a phrase of `n` distinct words from a pool, space separated.
pub fn phrase(pool: &[&str], n: usize, rng: &mut StdRng) -> String {
    let mut words: Vec<&str> = Vec::with_capacity(n);
    // Rejection-sample distinct words; pools are far larger than n.
    while words.len() < n.min(pool.len()) {
        let w = pick(pool, rng);
        if !words.contains(&w) {
            words.push(w);
        }
    }
    words.join(" ")
}

/// The informal variant of a name, if one exists.
pub fn nickname_of(name: &str) -> Option<&'static str> {
    NICKNAMES.iter().find(|(formal, _)| *formal == name).map(|(_, nick)| *nick)
}

/// A deterministic pseudo-word for community `k`, built by compounding two
/// pool words (`"datagraphs"`, `"bluefire"`).
///
/// Real collections do not keep a fixed vocabulary as they grow — larger
/// corpora have proportionally larger vocabularies, which is what keeps
/// blocking output linear in the collection size. The generators therefore
/// partition entities into fixed-size *communities* (sub-fields, scenes,
/// parish districts) and stamp each with a community word; this function
/// supplies arbitrarily many distinct such words from a finite base pool.
pub fn compound_word(pool: &[&str], k: usize) -> String {
    let n = pool.len();
    let first = pool[k % n];
    let second = pool[(k / n + 3 * k + 1) % n];
    let mut w = String::with_capacity(first.len() + second.len());
    w.push_str(first);
    w.push_str(second);
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pools_are_nonempty_and_lowercase() {
        for pool in [
            FIRST_NAMES,
            SURNAMES,
            OCCUPATIONS,
            PLACES,
            STREETS,
            TITLE_WORDS,
            VENUES_FULL,
            VENUES_ABBREV,
            SONG_WORDS,
            ARTIST_WORDS,
            ALBUM_QUALIFIERS,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert_eq!(*w, w.to_lowercase(), "{w} not lowercase");
            }
        }
    }

    #[test]
    fn venues_are_aligned() {
        assert_eq!(VENUES_FULL.len(), VENUES_ABBREV.len());
    }

    #[test]
    fn phrase_has_distinct_words() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let p = phrase(TITLE_WORDS, 5, &mut rng);
            let words: Vec<&str> = p.split(' ').collect();
            assert_eq!(words.len(), 5);
            let mut dedup = words.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 5, "duplicate word in {p:?}");
        }
    }

    #[test]
    fn nicknames_resolve() {
        assert_eq!(nickname_of("john"), Some("jock"));
        assert_eq!(nickname_of("zebedee"), None);
    }

    #[test]
    fn pick_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(pick(SURNAMES, &mut a), pick(SURNAMES, &mut b));
        }
    }
}

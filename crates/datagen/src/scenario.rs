//! Named scenarios reproducing the paper's seven data sets and the eight
//! directed source → target transfer tasks of Table 2.

use transer_blocking::{Comparison, MinHashLsh, MinHashLshConfig};
use transer_common::{DomainPair, LabeledDataset, Record, Result};

use crate::biblio::{self, BiblioConfig};
use crate::demographic::{self, DemographicConfig, LinkKind};
use crate::music::{self, MusicConfig};

/// One of the paper's linkage data sets (Table 1 rows).
///
/// Each scenario is the *linkage of two databases*: e.g. `DblpAcm` links a
/// DBLP-like database to an ACM-like one and yields the feature matrix the
/// paper calls "DBLP-ACM".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// DBLP ↔ ACM (bibliographic, clean, 4 features).
    DblpAcm,
    /// DBLP ↔ Google Scholar (bibliographic, noisy, 4 features).
    DblpScholar,
    /// Million Songs self-linkage (music, 5 features).
    Msd,
    /// Musicbrainz (music, heavy re-release ambiguity, 5 features).
    Musicbrainz,
    /// Isle of Skye birth-parents ↔ death-parents (8 features).
    IosBpDp,
    /// Kilmarnock birth-parents ↔ death-parents (8 features).
    KilBpDp,
    /// Isle of Skye birth-parents ↔ birth-parents (11 features).
    IosBpBp,
    /// Kilmarnock birth-parents ↔ birth-parents (11 features).
    KilBpBp,
}

impl Scenario {
    /// All seven data sets (eight scenario instances).
    pub const ALL: [Scenario; 8] = [
        Scenario::DblpAcm,
        Scenario::DblpScholar,
        Scenario::Msd,
        Scenario::Musicbrainz,
        Scenario::IosBpDp,
        Scenario::KilBpDp,
        Scenario::IosBpBp,
        Scenario::KilBpBp,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::DblpAcm => "DBLP-ACM",
            Scenario::DblpScholar => "DBLP-Scholar",
            Scenario::Msd => "MSD",
            Scenario::Musicbrainz => "MB",
            Scenario::IosBpDp => "IOS Bp-Dp",
            Scenario::KilBpDp => "KIL Bp-Dp",
            Scenario::IosBpBp => "IOS Bp-Bp",
            Scenario::KilBpBp => "KIL Bp-Bp",
        }
    }

    /// Number of similarity features (the paper's "Num. attributes").
    pub fn num_features(self) -> usize {
        match self {
            Scenario::DblpAcm | Scenario::DblpScholar => 4,
            Scenario::Msd | Scenario::Musicbrainz => 5,
            Scenario::IosBpDp | Scenario::KilBpDp => 8,
            Scenario::IosBpBp | Scenario::KilBpBp => 11,
        }
    }

    /// Entity count at `scale = 1.0`, calibrated so the generated feature
    /// matrices approximate the relative sizes of Table 1 (DBLP-ACM
    /// smallest, KIL Bp-Bp ~60× larger).
    pub fn base_entities(self) -> usize {
        match self {
            Scenario::DblpAcm => 2_800,
            Scenario::DblpScholar => 6_000,
            Scenario::Msd => 8_500,
            Scenario::Musicbrainz => 19_000,
            Scenario::IosBpDp => 50_000,
            Scenario::KilBpDp => 95_000,
            Scenario::IosBpBp => 95_000,
            Scenario::KilBpBp => 155_000,
        }
    }

    /// The shared comparison configuration of the scenario's family.
    pub fn comparison(self) -> Comparison {
        match self {
            Scenario::DblpAcm | Scenario::DblpScholar => biblio::comparison(),
            Scenario::Msd | Scenario::Musicbrainz => music::comparison(),
            Scenario::IosBpDp | Scenario::KilBpDp => demographic::comparison(LinkKind::BpDp),
            Scenario::IosBpBp | Scenario::KilBpBp => demographic::comparison(LinkKind::BpBp),
        }
    }

    /// The blocking configuration of the scenario's family: the
    /// bibliographic and music workloads use loose banding (titles rarely
    /// collide wholesale), the demographic registers use strict banding
    /// plus a block-size cap (otherwise every `john macdonald` bucket
    /// explodes quadratically).
    pub fn lsh_config(self) -> MinHashLshConfig {
        match self {
            Scenario::DblpAcm | Scenario::DblpScholar | Scenario::Msd | Scenario::Musicbrainz => {
                MinHashLshConfig { num_hashes: 32, bands: 8, max_bucket: 60, ..Default::default() }
            }
            _ => {
                MinHashLshConfig { num_hashes: 32, bands: 4, max_bucket: 40, ..Default::default() }
            }
        }
    }

    /// The attributes blocking operates on: the identifying attributes of
    /// each family (titles/authors for publications, title/artist for
    /// songs, the five person names for the registers).
    pub fn blocking_attrs(self) -> &'static [usize] {
        match self {
            Scenario::DblpAcm | Scenario::DblpScholar => &[0, 1],
            Scenario::Msd | Scenario::Musicbrainz => &[0, 2],
            _ => &[0, 1, 2, 3, 4, 5],
        }
    }

    /// Generate the scenario at the given scale: records → MinHash-LSH
    /// blocking → record-pair comparison → labelled feature matrix, the
    /// exact pipeline of Fig. 1.
    ///
    /// `scale` multiplies the entity count (`1.0` ≈ Table 1 sizes; use
    /// `0.02`–`0.1` for tests). At least 40 entities are always generated.
    ///
    /// # Errors
    /// Propagates dataset-construction errors (never expected in practice).
    pub fn generate(self, scale: f64, seed: u64) -> Result<LabeledDataset> {
        Ok(self.generate_with_text(scale, seed)?.0)
    }

    /// Like [`Scenario::generate`] but also returning, per candidate pair,
    /// the raw attribute text of the two records — the input the deep
    /// baselines (DTAL*, DR) embed instead of similarity features.
    ///
    /// # Errors
    /// Propagates dataset-construction errors.
    pub fn generate_with_text(
        self,
        scale: f64,
        seed: u64,
    ) -> Result<(LabeledDataset, Vec<(String, String)>)> {
        let entities = ((self.base_entities() as f64 * scale) as usize).max(40);
        let seed = seed ^ (self as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
        let (left, right) = match self {
            Scenario::DblpAcm => biblio::generate(&BiblioConfig::dblp_acm(entities, seed)),
            Scenario::DblpScholar => biblio::generate(&BiblioConfig::dblp_scholar(entities, seed)),
            Scenario::Msd => music::generate(&MusicConfig::msd(entities, seed)),
            Scenario::Musicbrainz => music::generate(&MusicConfig::musicbrainz(entities, seed)),
            Scenario::IosBpDp => {
                demographic::generate(&DemographicConfig::ios(LinkKind::BpDp, entities, seed))
            }
            Scenario::KilBpDp => {
                demographic::generate(&DemographicConfig::kil(LinkKind::BpDp, entities, seed))
            }
            Scenario::IosBpBp => {
                demographic::generate(&DemographicConfig::ios(LinkKind::BpBp, entities, seed))
            }
            Scenario::KilBpBp => {
                demographic::generate(&DemographicConfig::kil(LinkKind::BpBp, entities, seed))
            }
        };
        let blocker = MinHashLsh::new(self.lsh_config())?;
        let pairs = blocker.candidate_pairs_masked(&left, &right, Some(self.blocking_attrs()));
        let dataset = self.comparison().compare_to_dataset(self.name(), &left, &right, &pairs)?;
        let render =
            |r: &Record| r.values.iter().map(ToString::to_string).collect::<Vec<_>>().join(" ");
        let texts = pairs.iter().map(|&(i, j)| (render(&left[i]), render(&right[j]))).collect();
        Ok((dataset, texts))
    }
}

/// The four scenario pairs of Table 1, each yielding two directed transfer
/// tasks (source → target and the reverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioPair {
    /// DBLP-ACM ↔ DBLP-Scholar.
    Bibliographic,
    /// MSD ↔ Musicbrainz.
    Music,
    /// IOS Bp-Dp ↔ KIL Bp-Dp.
    BpDp,
    /// IOS Bp-Bp ↔ KIL Bp-Bp.
    BpBp,
}

impl ScenarioPair {
    /// All four pairs.
    pub const ALL: [ScenarioPair; 4] =
        [ScenarioPair::Bibliographic, ScenarioPair::Music, ScenarioPair::BpDp, ScenarioPair::BpBp];

    /// The pair's two scenarios in the paper's (first listed → second)
    /// order.
    pub fn scenarios(self) -> (Scenario, Scenario) {
        match self {
            ScenarioPair::Bibliographic => (Scenario::DblpAcm, Scenario::DblpScholar),
            ScenarioPair::Music => (Scenario::Msd, Scenario::Musicbrainz),
            ScenarioPair::BpDp => (Scenario::IosBpDp, Scenario::KilBpDp),
            ScenarioPair::BpBp => (Scenario::IosBpBp, Scenario::KilBpBp),
        }
    }

    /// Generate the forward transfer task (first scenario as source).
    ///
    /// # Errors
    /// Propagates generation errors.
    pub fn domain_pair(self, scale: f64, seed: u64) -> Result<DomainPair> {
        let (s, t) = self.scenarios();
        DomainPair::new(s.generate(scale, seed)?, t.generate(scale, seed)?)
    }

    /// Generate both directed tasks `[forward, reverse]`.
    ///
    /// # Errors
    /// Propagates generation errors.
    pub fn both_directions(self, scale: f64, seed: u64) -> Result<[DomainPair; 2]> {
        let forward = self.domain_pair(scale, seed)?;
        let reverse = forward.reversed();
        Ok([forward, reverse])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_generate_at_tiny_scale() {
        for s in Scenario::ALL {
            let d = s.generate(0.02, 7).unwrap_or_else(|e| panic!("{}: {e}", s.name()));
            assert!(!d.is_empty(), "{} empty", s.name());
            assert_eq!(d.x.cols(), s.num_features(), "{}", s.name());
            // ER candidate sets are imbalanced towards non-matches but must
            // contain some matches.
            let rate = d.match_rate();
            assert!(rate > 0.02 && rate < 0.7, "{}: match rate {rate}", s.name());
        }
    }

    #[test]
    fn pairs_share_feature_spaces() {
        for p in ScenarioPair::ALL {
            let (s, t) = p.scenarios();
            assert_eq!(s.num_features(), t.num_features());
        }
    }

    #[test]
    fn domain_pair_construction() {
        let pair = ScenarioPair::Bibliographic.domain_pair(0.02, 3).unwrap();
        assert_eq!(pair.label(), "DBLP-ACM -> DBLP-Scholar");
        assert_eq!(pair.num_features(), 4);
        let [fwd, rev] = ScenarioPair::Bibliographic.both_directions(0.02, 3).unwrap();
        assert_eq!(rev.label(), "DBLP-Scholar -> DBLP-ACM");
        assert_eq!(fwd.source, rev.target);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::Msd.generate(0.02, 5).unwrap();
        let b = Scenario::Msd.generate(0.02, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Scenario::DblpAcm.generate(0.02, 1).unwrap();
        let b = Scenario::DblpAcm.generate(0.02, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn scale_grows_the_dataset() {
        let small = Scenario::DblpAcm.generate(0.02, 9).unwrap();
        let larger = Scenario::DblpAcm.generate(0.08, 9).unwrap();
        assert!(larger.len() > small.len());
    }

    #[test]
    fn relative_sizes_roughly_ordered() {
        // The demographic scenarios must dwarf the bibliographic ones, as
        // in Table 1.
        assert!(Scenario::KilBpBp.base_entities() > 20 * Scenario::DblpAcm.base_entities());
    }
}

//! Demographic generator: the Isle of Skye (IOS) / Kilmarnock (KIL) civil
//! register family.
//!
//! Entities are *parent couples*. Two linkage tasks mirror the curated
//! relationships of Reid et al. (2002) the paper uses:
//!
//! * **Bp-Bp** — the parents named on two different birth certificates
//!   (siblings): 11 features. Matched records differ in the event year
//!   (children born years apart) and often in address or occupation —
//!   which is why even true matches are hard.
//! * **Bp-Dp** — birth-certificate parents linked to death-certificate
//!   parents: 8 features (death records carry fewer attributes).
//!
//! The Isle of Skye is a small closed community: its name pool is tiny, so
//! distinct couples constantly collide on `john macdonald & mary macleod`,
//! reproducing the 80%+ ambiguous common vectors of Table 1. Kilmarnock is
//! a larger town with more varied names and messier records.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_blocking::Comparison;
use transer_common::Record;
use transer_similarity::Measure;

use crate::corrupt::{corrupt_number, corrupt_text, CorruptionProfile};
use crate::lexicon::{pick, FIRST_NAMES, OCCUPATIONS, PLACES, STREETS, SURNAMES};

/// Which certificate relationship is being linked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Birth parents across two birth certificates (11 features).
    BpBp,
    /// Birth parents to death parents (8 features).
    BpDp,
}

/// A clean parent-couple entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Couple {
    /// Father's given name.
    pub father_first: String,
    /// Family surname.
    pub father_last: String,
    /// Mother's given name.
    pub mother_first: String,
    /// Mother's married surname (= family surname).
    pub mother_last: String,
    /// Mother's maiden surname.
    pub mother_maiden: String,
    /// Parish of residence.
    pub parish: String,
    /// Street address.
    pub street: String,
    /// Father's occupation.
    pub father_occupation: String,
    /// Mother's occupation.
    pub mother_occupation: String,
    /// Year of marriage.
    pub marriage_year: f64,
    /// Year of the first recorded event (first child's birth).
    pub first_event_year: f64,
}

/// Configuration of a demographic linkage scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemographicConfig {
    /// Number of distinct couples.
    pub entities: usize,
    /// Fraction of couples appearing in both certificate sets.
    pub overlap: f64,
    /// Size of the given-name pool (small pool ⇒ massive ambiguity).
    pub first_name_pool: usize,
    /// Size of the surname pool.
    pub surname_pool: usize,
    /// Number of *clan templates*. A clan fixes the surname, parish, a
    /// small occupation repertoire and a couple of streets; couples inherit
    /// from their clan. Few clans ⇒ distinct couples collide on whole
    /// attribute blocks, which is where the registers' ambiguous feature
    /// vectors come from.
    pub clans: usize,
    /// Probability that the family moved between the two certificates
    /// (later certificate carries a different parish and street). Urban
    /// Kilmarnock families move often; Skye crofting families almost never
    /// do — which flips how informative the parish feature is in the two
    /// domains and creates the class-conditional difference between them.
    pub move_prob: f64,
    /// Linkage relationship.
    pub kind: LinkKind,
    /// Corruption for the left certificate set.
    pub left_profile: CorruptionProfile,
    /// Corruption for the right certificate set.
    pub right_profile: CorruptionProfile,
    /// RNG seed.
    pub seed: u64,
}

impl DemographicConfig {
    /// Isle of Skye: tiny closed name pool, heavy transcription noise.
    pub fn ios(kind: LinkKind, entities: usize, seed: u64) -> Self {
        DemographicConfig {
            entities,
            overlap: 0.4,
            first_name_pool: 20,
            surname_pool: 14,
            // Crofting townships of ~80 couples each; the community count
            // grows with the population, keeping blocking output linear.
            clans: (entities / 80).max(8),
            move_prob: 0.02,
            kind,
            left_profile: ios_profile(),
            right_profile: ios_profile(),
            seed,
        }
    }

    /// Kilmarnock: larger town, broader names, moderately noisy records.
    pub fn kil(kind: LinkKind, entities: usize, seed: u64) -> Self {
        DemographicConfig {
            entities,
            overlap: 0.4,
            first_name_pool: 24,
            surname_pool: 20,
            clans: (entities / 100).max(12),
            move_prob: 0.35,
            kind,
            left_profile: register_profile(),
            right_profile: register_profile(),
            seed,
        }
    }
}

/// Skye registers: old hand-written volumes transcribed decades later —
/// markedly noisier than the town registers, which is the marginal
/// distribution difference between the IOS and KIL domains.
fn ios_profile() -> CorruptionProfile {
    CorruptionProfile {
        typo_prob: 0.25,
        max_typos: 1,
        ocr_prob: 0.04,
        abbreviate_prob: 0.10,
        drop_token_prob: 0.02,
        swap_tokens_prob: 0.01,
        nickname_prob: 0.15,
        missing_prob: 0.05,
        numeric_jitter_prob: 0.10,
        max_jitter: 2.0,
    }
}

/// The corruption level of hand-written civil registers as transcribed by
/// demographers: frequent spelling variation, occasional missing entries —
/// but not so noisy that exact agreements (the spike of all-1.0 feature
/// vectors every register linkage exhibits) disappear.
fn register_profile() -> CorruptionProfile {
    CorruptionProfile {
        typo_prob: 0.04,
        max_typos: 1,
        ocr_prob: 0.01,
        abbreviate_prob: 0.02,
        drop_token_prob: 0.01,
        swap_tokens_prob: 0.01,
        nickname_prob: 0.04,
        missing_prob: 0.03,
        numeric_jitter_prob: 0.05,
        max_jitter: 2.0,
    }
}

/// A clan template: the attribute block couples inherit.
#[derive(Debug, Clone)]
struct Clan {
    surname: String,
    parish: String,
    occupations: Vec<String>,
    streets: Vec<String>,
}

fn make_clans(config: &DemographicConfig, rng: &mut StdRng) -> Vec<Clan> {
    let lasts = &SURNAMES[..config.surname_pool.clamp(2, SURNAMES.len())];
    (0..config.clans.max(1))
        .map(|district| Clan {
            surname: pick(lasts, rng).to_string(),
            // Registration districts are numbered within a parish, so two
            // clans sharing a parish name still differ on the full value.
            parish: format!("{} district {district}", pick(PLACES, rng)),
            occupations: (0..2).map(|_| pick(OCCUPATIONS, rng).to_string()).collect(),
            streets: (0..2).map(|_| pick(STREETS, rng).to_string()).collect(),
        })
        .collect()
}

/// Sample the clean couple entities under the configured name-pool sizes.
pub fn generate_couples(config: &DemographicConfig) -> Vec<Couple> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let firsts = &FIRST_NAMES[..config.first_name_pool.clamp(2, FIRST_NAMES.len())];
    let clans = make_clans(config, &mut rng);
    (0..config.entities)
        .map(|_| {
            let clan = &clans[rng.random_range(0..clans.len())];
            let maiden_clan = &clans[rng.random_range(0..clans.len())];
            let marriage_year = rng.random_range(1855..=1890) as f64;
            Couple {
                father_first: pick(firsts, &mut rng).to_string(),
                father_last: clan.surname.clone(),
                mother_first: pick(firsts, &mut rng).to_string(),
                mother_last: clan.surname.clone(),
                mother_maiden: maiden_clan.surname.clone(),
                parish: clan.parish.clone(),
                street: clan.streets[rng.random_range(0..clan.streets.len())].clone(),
                father_occupation: clan.occupations[rng.random_range(0..clan.occupations.len())]
                    .clone(),
                mother_occupation: pick(OCCUPATIONS, &mut rng).to_string(),
                marriage_year,
                first_event_year: marriage_year + rng.random_range(1..=5) as f64,
            }
        })
        .collect()
}

/// Render one certificate's parent block. For Bp-Bp the right-hand record
/// is a later sibling's certificate (event year shifted, address possibly
/// changed); for Bp-Dp it is a death certificate (no event year feature,
/// fewer attributes).
#[allow(clippy::too_many_arguments)] // internal helper mirroring the certificate fields
fn render(
    entity: u64,
    id: u64,
    c: &Couple,
    kind: LinkKind,
    later_sibling: bool,
    move_prob: f64,
    profile: &CorruptionProfile,
    rng: &mut StdRng,
) -> Record {
    let event_year = if later_sibling {
        c.first_event_year + rng.random_range(1..=10) as f64
    } else {
        c.first_event_year
    };
    // Families move between certificates: the later record carries a new
    // parish district and street.
    let (parish, street) = if later_sibling && rng.random_bool(move_prob) {
        (
            format!("{} district {}", pick(PLACES, rng), rng.random_range(0..99u32)),
            pick(STREETS, rng).to_string(),
        )
    } else {
        (c.parish.clone(), c.street.clone())
    };
    let mut values = vec![
        corrupt_text(&c.father_first, profile, rng),
        corrupt_text(&c.father_last, profile, rng),
        corrupt_text(&c.mother_first, profile, rng),
        corrupt_text(&c.mother_last, profile, rng),
        corrupt_text(&c.mother_maiden, profile, rng),
        corrupt_text(&parish, profile, rng),
        corrupt_text(&c.father_occupation, profile, rng),
        // Scottish certificates (birth and death alike) record the
        // parents' marriage, so the marriage year is shared by both sides
        // of the Bp-Dp task — the attribute that separates a couple's own
        // certificates from a same-name neighbour couple's.
        corrupt_number(c.marriage_year, profile, rng),
    ];
    if kind == LinkKind::BpBp {
        values.push(corrupt_text(&street, profile, rng));
        values.push(corrupt_text(&c.mother_occupation, profile, rng));
        values.push(corrupt_number(event_year, profile, rng));
    }
    Record::new(id, entity, values)
}

/// Generate the two certificate sets `(left, right)`.
pub fn generate(config: &DemographicConfig) -> (Vec<Record>, Vec<Record>) {
    let couples = generate_couples(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xCE47);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (e, c) in couples.iter().enumerate() {
        let entity = e as u64;
        let in_both = rng.random_bool(config.overlap);
        let in_left = in_both || rng.random_bool(0.5);
        if in_left {
            left.push(render(
                entity,
                left.len() as u64,
                c,
                config.kind,
                false,
                config.move_prob,
                &config.left_profile,
                &mut rng,
            ));
        }
        if in_both || !in_left {
            right.push(render(
                entity,
                right.len() as u64,
                c,
                config.kind,
                true,
                config.move_prob,
                &config.right_profile,
                &mut rng,
            ));
        }
    }
    (left, right)
}

/// The shared feature space: 8 features for Bp-Dp, 11 for Bp-Bp (Table 1).
/// Person names use Jaro-Winkler; parish, occupations and street use token
/// Jaccard; years use the bounded year comparator.
pub fn comparison(kind: LinkKind) -> Comparison {
    let mut features = vec![
        (0, Measure::JaroWinkler),
        (1, Measure::JaroWinkler),
        (2, Measure::JaroWinkler),
        (3, Measure::JaroWinkler),
        (4, Measure::JaroWinkler),
        (5, Measure::TokenJaccard),
        (6, Measure::TokenJaccard),
        (7, Measure::Year),
    ];
    if kind == LinkKind::BpBp {
        features.push((8, Measure::TokenJaccard));
        features.push((9, Measure::TokenJaccard));
        features.push((10, Measure::Year));
    }
    Comparison::new(features).expect("non-empty feature list")
}

/// Attribute names in record order for the given link kind.
pub fn attribute_names(kind: LinkKind) -> Vec<&'static str> {
    let mut names = vec![
        "father_first",
        "father_last",
        "mother_first",
        "mother_last",
        "mother_maiden",
        "parish",
        "father_occupation",
        "marriage_year",
    ];
    if kind == LinkKind::BpBp {
        names.extend(["street", "mother_occupation", "event_year"]);
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn couples_reuse_names_on_the_isle() {
        let ios = DemographicConfig::ios(LinkKind::BpDp, 400, 3);
        let couples = generate_couples(&ios);
        let distinct: HashSet<(String, String)> =
            couples.iter().map(|c| (c.father_first.clone(), c.father_last.clone())).collect();
        // 400 couples drawn from a grid of 20 first names x at most 8 clan
        // surnames: massive reuse (at least 240 couples repeat a name).
        assert!(distinct.len() <= 20 * 8, "{} distinct father names", distinct.len());
    }

    #[test]
    fn kil_names_are_more_varied() {
        let ios = DemographicConfig::ios(LinkKind::BpDp, 300, 5);
        let kil = DemographicConfig::kil(LinkKind::BpDp, 300, 5);
        let distinct = |cfg: &DemographicConfig| {
            generate_couples(cfg)
                .iter()
                .map(|c| format!("{} {}", c.father_first, c.father_last))
                .collect::<HashSet<String>>()
                .len()
        };
        assert!(distinct(&kil) > distinct(&ios));
    }

    #[test]
    fn record_widths_match_link_kind() {
        for (kind, width) in [(LinkKind::BpDp, 8), (LinkKind::BpBp, 11)] {
            let cfg = DemographicConfig::kil(kind, 50, 1);
            let (l, r) = generate(&cfg);
            for rec in l.iter().chain(&r) {
                assert_eq!(rec.values.len(), width);
            }
            assert_eq!(comparison(kind).num_features(), width);
            assert_eq!(attribute_names(kind).len(), width);
        }
    }

    #[test]
    fn sibling_certificates_have_later_event_years() {
        let cfg = DemographicConfig {
            left_profile: CorruptionProfile::none(),
            right_profile: CorruptionProfile::none(),
            ..DemographicConfig::kil(LinkKind::BpBp, 200, 7)
        };
        let (l, r) = generate(&cfg);
        // For every matched pair the right (sibling) event year is later.
        for lr in &l {
            if let Some(rr) = r.iter().find(|rr| rr.entity == lr.entity) {
                let ly = lr.values[10].as_number().unwrap();
                let ry = rr.values[10].as_number().unwrap();
                assert!(ry > ly, "sibling year {ry} not after {ly}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DemographicConfig::ios(LinkKind::BpBp, 60, 17);
        assert_eq!(generate(&cfg), generate(&cfg));
    }
}

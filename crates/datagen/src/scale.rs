//! Streaming large-scale generator: 10^4–10^6+ records per domain with
//! controlled duplicate and corruption rates.
//!
//! The Table-1 scenario generators materialise per-entity tables before
//! emitting records, which is fine at 10^5 entities but makes the
//! *generator* — not the pipeline — the peak-RSS driver at 10^6+. This
//! module instead derives every record directly from its index with a
//! splitmix64 hash chain: record `k` of domain `d` is a pure function of
//! `(seed, d, k)`, so generation streams in index order with O(1) state
//! per record ([`ScaleGen::for_each_domain`]) and any single record can
//! be re-derived without generating its predecessors.
//!
//! Shape of a domain with `records = n` and `duplicate_rate = r`: the
//! first `n - round(r·n)` indices are clean descriptions of entity `k`
//! (one record per entity), the remaining indices are corrupted
//! re-descriptions of a hash-chosen earlier entity. Both domains of a
//! [`ScaleGen::pair`] draw their base attribute values from the same
//! per-entity stream, so every entity of the smaller domain has a
//! cross-domain match, while duplicate selection and corruption draw
//! from a per-domain stream and therefore differ between domains.
//!
//! The title vocabulary grows with the entity count (the
//! [`compound_word`] community trick of the scenario generators): titles
//! of unrelated entities share only low-information filler words, which
//! is what keeps MinHash-LSH candidate output linear in the collection
//! size instead of quadratic.

use transer_blocking::{Comparison, MinHashLshConfig};
use transer_common::{AttrValue, Error, Record, Result};
use transer_similarity::Measure;

use crate::lexicon::{compound_word, FIRST_NAMES, SURNAMES, TITLE_WORDS, VENUES_FULL};

/// Size of the publication ladder's scale knob: how many records each
/// generated domain holds, and how dirty they are.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Records per domain (each domain has this many).
    pub records: usize,
    /// Fraction of records that are corrupted re-descriptions of an
    /// earlier entity instead of a fresh entity. Must be in `[0, 0.9]`.
    pub duplicate_rate: f64,
    /// Per-attribute corruption probability applied to duplicate
    /// records. Must be in `[0, 1]`.
    pub corruption: f64,
    /// Root seed; every derived value is a pure function of it.
    pub seed: u64,
}

impl ScaleConfig {
    /// Default rates (30 % duplicates, 40 % per-attribute corruption,
    /// seed 42) at the given record count.
    pub fn new(records: usize) -> Self {
        ScaleConfig { records, duplicate_rate: 0.3, corruption: 0.4, seed: 42 }
    }

    /// Replace the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// splitmix64 finaliser: the one-instruction-stream mixer behind every
/// derived value. Chosen over an `StdRng` because it is O(1) per *index*
/// rather than per *stream position* — the property that makes records
/// independently derivable.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An independent hash value for `(seed, stream, index)`.
fn derive(seed: u64, stream: u64, index: u64) -> u64 {
    mix(seed ^ mix(stream ^ mix(index)))
}

/// Interpret the top 53 bits of a hash as a uniform draw in `[0, 1)` and
/// compare against `p`.
fn chance(h: u64, p: f64) -> bool {
    const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
    ((h >> 11) as f64 * SCALE) < p
}

/// Entities per title community: all members share one community word,
/// and the number of communities — hence the vocabulary — grows linearly
/// with the entity count.
const COMMUNITY: u64 = 50;

/// Per-domain streams (the `stream` argument of [`derive`]); entity
/// streams use the plain seed, record streams fold the domain in.
const STREAM_DUP: u64 = 1;
const STREAM_CORRUPT: u64 = 2;
const STREAM_TITLE: u64 = 3;
const STREAM_AUTHOR: u64 = 4;
const STREAM_VENUE: u64 = 5;
const STREAM_YEAR: u64 = 6;

/// Streaming generator for one [`ScaleConfig`]; see the module docs for
/// the derivation scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleGen {
    config: ScaleConfig,
    originals: usize,
}

impl ScaleGen {
    /// Validate the configuration.
    ///
    /// # Errors
    /// [`Error::InvalidParameter`] when `records` is zero, the duplicate
    /// rate leaves no original, or a rate is outside its range.
    pub fn new(config: ScaleConfig) -> Result<Self> {
        if config.records == 0 {
            return Err(Error::InvalidParameter {
                name: "records",
                message: "must be at least 1".into(),
            });
        }
        if !(0.0..=0.9).contains(&config.duplicate_rate) {
            return Err(Error::InvalidParameter {
                name: "duplicate_rate",
                message: format!("{} outside [0, 0.9]", config.duplicate_rate),
            });
        }
        if !(0.0..=1.0).contains(&config.corruption) {
            return Err(Error::InvalidParameter {
                name: "corruption",
                message: format!("{} outside [0, 1]", config.corruption),
            });
        }
        let dups = ((config.records as f64 * config.duplicate_rate).round() as usize)
            .min(config.records - 1);
        Ok(ScaleGen { config, originals: config.records - dups })
    }

    /// Records per domain.
    pub fn records(&self) -> usize {
        self.config.records
    }

    /// Distinct entities per domain (clean records; the rest are
    /// duplicates of these).
    pub fn originals(&self) -> usize {
        self.originals
    }

    /// Stream every record of `domain` in index order. O(1) generator
    /// state per record — the caller decides whether to collect.
    pub fn for_each_domain<F: FnMut(Record)>(&self, domain: u32, mut f: F) {
        for k in 0..self.config.records {
            f(self.record(domain, k));
        }
    }

    /// Collect one domain into a vector.
    pub fn domain(&self, domain: u32) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.config.records);
        self.for_each_domain(domain, |r| out.push(r));
        out
    }

    /// The two domains of a linkage task (domains 0 and 1).
    pub fn pair(&self) -> (Vec<Record>, Vec<Record>) {
        (self.domain(0), self.domain(1))
    }

    /// Derive record `k` of `domain` — the streaming kernel.
    ///
    /// # Panics
    /// `debug_assert!`s that `k` is within the configured record count.
    pub fn record(&self, domain: u32, k: usize) -> Record {
        debug_assert!(k < self.config.records, "record index out of range");
        let seed = self.config.seed;
        let dseed = seed ^ mix(u64::from(domain).wrapping_add(0x5851_F42D_4C95_7F2D));
        let is_dup = k >= self.originals;
        let entity = if is_dup {
            derive(dseed, STREAM_DUP, k as u64) % self.originals as u64
        } else {
            k as u64
        };

        let mut values = vec![
            AttrValue::Text(self.title(entity)),
            AttrValue::Text(self.authors(entity)),
            AttrValue::Text(
                VENUES_FULL[(derive(seed, STREAM_VENUE, entity) as usize) % VENUES_FULL.len()]
                    .to_string(),
            ),
            AttrValue::Number(f64::from(1950 + (derive(seed, STREAM_YEAR, entity) % 70) as u32)),
        ];
        if is_dup {
            self.corrupt(dseed, k as u64, &mut values);
        }
        Record::new(k as u64, entity, values)
    }

    /// Base title of an entity: one near-unique key word, one community
    /// word shared by [`COMMUNITY`] entities, two filler words from the
    /// base pool.
    fn title(&self, entity: u64) -> String {
        let seed = self.config.seed;
        let h = derive(seed, STREAM_TITLE, entity);
        // Bounded to 32 bits: `compound_word`'s index arithmetic must not
        // overflow, and 2^32 key words keep collisions negligible.
        let key = compound_word(TITLE_WORDS, ((mix(seed) ^ entity) & 0xFFFF_FFFF) as usize);
        let community = compound_word(TITLE_WORDS, (entity / COMMUNITY) as usize);
        let n = TITLE_WORDS.len();
        let filler_a = TITLE_WORDS[(h as usize) % n];
        let filler_b = TITLE_WORDS[((h >> 32) as usize) % n];
        format!("{key} {community} {filler_a} {filler_b}")
    }

    /// Base author list of an entity: two `first surname` authors drawn
    /// from the closed name pools.
    fn authors(&self, entity: u64) -> String {
        let h = derive(self.config.seed, STREAM_AUTHOR, entity);
        let pick =
            |shift: u32, pool: &'static [&'static str]| pool[((h >> shift) as usize) % pool.len()];
        format!(
            "{} {} {} {}",
            pick(0, FIRST_NAMES),
            pick(12, SURNAMES),
            pick(24, FIRST_NAMES),
            pick(36, SURNAMES),
        )
    }

    /// Corrupt a duplicate record in place: each attribute independently
    /// with probability `corruption`, driven by the per-domain stream.
    fn corrupt(&self, dseed: u64, k: u64, values: &mut [AttrValue]) {
        let p = self.config.corruption;
        let h = derive(dseed, STREAM_CORRUPT, k);
        // Title: drop the last filler word or swap two adjacent chars.
        if chance(h, p) {
            if let AttrValue::Text(s) = &mut values[0] {
                if h & 1 == 0 {
                    if let Some(cut) = s.rfind(' ') {
                        s.truncate(cut);
                    }
                } else {
                    swap_adjacent(s, mix(h));
                }
            }
        }
        // Authors: keep only the first author.
        if chance(mix(h ^ 1), p) {
            if let AttrValue::Text(s) = &mut values[1] {
                let mut words = s.split(' ');
                let (first, surname) = (words.next(), words.next());
                if let (Some(f), Some(l)) = (first, surname) {
                    *s = format!("{f} {l}");
                }
            }
        }
        // Venue: goes missing (the common real-world failure).
        if chance(mix(h ^ 2), p) {
            values[2] = AttrValue::Missing;
        }
        // Year: off-by-one transcription.
        if chance(mix(h ^ 3), p) {
            if let AttrValue::Number(y) = &mut values[3] {
                *y += if h & 2 == 0 { 1.0 } else { -1.0 };
            }
        }
    }

    /// The cheap comparison used on the scale ladder: token Jaccard on
    /// the two identifying text attributes, exact venue, year proximity.
    ///
    /// # Panics
    /// Never — the feature list is statically valid (covered by
    /// `comparison_is_well_formed`).
    pub fn comparison() -> Comparison {
        #[allow(clippy::unwrap_used)]
        Comparison::new(vec![
            (0, Measure::TokenJaccard),
            (1, Measure::TokenJaccard),
            (2, Measure::Exact),
            (3, Measure::Year),
        ])
        .unwrap()
    }

    /// Blocking configuration for the ladder: strict banding (4 bands of
    /// 8 rows, collision threshold ≈ 0.84 Jaccard). At 10^5+ records per
    /// domain there are ~10^10 cross pairs, so even a background token
    /// similarity of ~0.15 between *unrelated* titles (shared q-grams of
    /// pool words) would flood loose 8×4 banding with millions of
    /// spurious candidates; strict banding keeps output linear while
    /// identical and lightly-corrupted duplicate titles still collide.
    pub fn lsh_config() -> MinHashLshConfig {
        MinHashLshConfig { num_hashes: 32, bands: 4, max_bucket: 40, ..Default::default() }
    }

    /// The attributes blocking operates on: the title only. The author
    /// pool is closed (30 × 30 names), so author tokens and q-grams are
    /// shared across unrelated records and would flood the blocks at
    /// 10^5+ records; the title's near-unique key word keeps candidate
    /// output linear.
    pub fn blocking_attrs() -> &'static [usize] {
        &[0]
    }
}

/// Swap two adjacent bytes of `s` at a hash-chosen position; no-op on
/// strings shorter than two bytes or containing non-ASCII (the lexicon
/// pools are all ASCII, so this never fires the guard in practice).
fn swap_adjacent(s: &mut String, h: u64) {
    if s.len() < 2 || !s.is_ascii() {
        return;
    }
    let mut bytes = std::mem::take(s).into_bytes();
    let i = (h as usize) % (bytes.len() - 1);
    bytes.swap(i, i + 1);
    if let Ok(swapped) = String::from_utf8(bytes) {
        *s = swapped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use transer_blocking::MinHashLsh;

    fn gen(records: usize) -> ScaleGen {
        ScaleGen::new(ScaleConfig::new(records)).unwrap()
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(ScaleGen::new(ScaleConfig::new(0)).is_err());
        assert!(
            ScaleGen::new(ScaleConfig { duplicate_rate: 0.99, ..ScaleConfig::new(10) }).is_err()
        );
        assert!(ScaleGen::new(ScaleConfig { corruption: 1.5, ..ScaleConfig::new(10) }).is_err());
    }

    #[test]
    fn structure_matches_the_config() {
        let g = gen(1000);
        assert_eq!(g.records(), 1000);
        assert_eq!(g.originals(), 700);
        let d = g.domain(0);
        assert_eq!(d.len(), 1000);
        for (k, r) in d.iter().enumerate().take(g.originals()) {
            assert_eq!(r.entity, k as u64, "originals describe entity k");
        }
        for r in &d[g.originals()..] {
            assert!(r.entity < g.originals() as u64, "duplicates point at an original");
        }
    }

    #[test]
    fn generation_is_deterministic_and_indexable() {
        let g = gen(300);
        let a = g.domain(1);
        let b = g.domain(1);
        assert_eq!(a, b);
        for (k, r) in a.iter().enumerate() {
            assert_eq!(*r, g.record(1, k), "record {k} re-derives independently");
        }
    }

    #[test]
    fn streaming_matches_collection() {
        let g = gen(200);
        let collected = g.domain(0);
        let mut streamed = Vec::new();
        g.for_each_domain(0, |r| streamed.push(r));
        assert_eq!(streamed, collected);
    }

    #[test]
    fn domains_share_entities_but_differ_in_noise() {
        let g = gen(400);
        let (left, right) = g.pair();
        let left_entities: HashSet<u64> = left.iter().map(|r| r.entity).collect();
        assert!(right.iter().all(|r| left_entities.contains(&r.entity)));
        // The clean prefixes agree (same per-entity base stream) …
        assert_eq!(left[..g.originals()], right[..g.originals()]);
        // … while the duplicate tails are domain-specific.
        assert_ne!(left[g.originals()..], right[g.originals()..]);
    }

    #[test]
    fn duplicates_are_corrupted_but_recognisable() {
        let g = ScaleGen::new(ScaleConfig { corruption: 1.0, ..ScaleConfig::new(500) }).unwrap();
        let d = g.domain(0);
        let mut changed = 0;
        for dup in &d[g.originals()..] {
            let original = &d[dup.entity as usize];
            if dup.values != original.values {
                changed += 1;
            }
            // The title key word survives corruption, so blocking can
            // still find the pair.
            let key = |r: &Record| {
                r.values[0].as_text().and_then(|t| t.split(' ').next().map(str::to_string))
            };
            assert_eq!(key(dup).map(|w| w.len() > 3), Some(true));
            assert_eq!(original.entity, dup.entity);
        }
        assert!(changed * 10 >= (d.len() - g.originals()) * 9, "corruption=1 changes ~all dups");
    }

    #[test]
    fn comparison_is_well_formed() {
        assert_eq!(ScaleGen::comparison().num_features(), 4);
    }

    #[test]
    fn small_pipeline_smoke_finds_cross_domain_matches() {
        let g = gen(600);
        let (left, right) = g.pair();
        let blocker = MinHashLsh::new(ScaleGen::lsh_config()).expect("valid LSH config");
        let pairs = blocker.candidate_pairs_masked(&left, &right, Some(ScaleGen::blocking_attrs()));
        assert!(!pairs.is_empty());
        let matches = pairs.iter().filter(|&&(i, j)| left[i].entity == right[j].entity).count();
        assert!(matches * 2 >= g.records(), "blocking recovers most shared entities");
        // Output stays linear: far fewer candidates than the quadratic
        // cross product.
        assert!(pairs.len() < g.records() * 30);
    }
}

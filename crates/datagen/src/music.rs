//! Music generator: the Million Songs (MSD) / Musicbrainz (MB) family.
//!
//! Entities are songs with a title, album, artist, duration and year. The
//! Musicbrainz rendition layers on re-releases: the *same recording*
//! appears with qualified album names (`... remastered`, `... live`) and
//! shifted years, while *different* recordings (covers, re-recordings by
//! the same artist) share title and artist. Together these produce the
//! 22% ambiguous feature vectors Table 1 reports for MB — the same rounded
//! vector genuinely carries both labels, as in the paper's
//! `non e francesca` example.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_blocking::Comparison;
use transer_common::Record;
use transer_similarity::Measure;

use crate::corrupt::{corrupt_number, corrupt_text, CorruptionProfile};
use crate::lexicon::{compound_word, phrase, pick, ALBUM_QUALIFIERS, ARTIST_WORDS, SONG_WORDS};

/// A clean song entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Song {
    /// Track title.
    pub title: String,
    /// Album name.
    pub album: String,
    /// Artist name.
    pub artist: String,
    /// Track duration in seconds.
    pub duration: f64,
    /// Release year.
    pub year: f64,
}

/// Configuration of a music linkage scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MusicConfig {
    /// Number of distinct song entities.
    pub entities: usize,
    /// Fraction of entities present in both databases.
    pub overlap: f64,
    /// Probability that an entity is a *cover / re-recording* of an earlier
    /// song: same title and artist, different album and year — a true
    /// non-match that collides with the original's feature vector.
    pub cover_rate: f64,
    /// Probability that a rendered MB record replaces the album with a
    /// qualified re-release name and jitters the year.
    pub rerelease_rate: f64,
    /// Corruption for the left database.
    pub left_profile: CorruptionProfile,
    /// Corruption for the right database.
    pub right_profile: CorruptionProfile,
    /// Whether the *right* database exhibits Musicbrainz-style re-releases.
    pub right_is_mb: bool,
    /// RNG seed.
    pub seed: u64,
}

impl MusicConfig {
    /// The MSD linkage task (left and right both curated; moderate covers).
    pub fn msd(entities: usize, seed: u64) -> Self {
        MusicConfig {
            entities,
            overlap: 0.55,
            cover_rate: 0.10,
            rerelease_rate: 0.05,
            left_profile: CorruptionProfile::clean(),
            right_profile: CorruptionProfile::clean(),
            right_is_mb: false,
            seed,
        }
    }

    /// The Musicbrainz linkage task: heavy cover/re-release ambiguity.
    pub fn musicbrainz(entities: usize, seed: u64) -> Self {
        MusicConfig {
            entities,
            overlap: 0.5,
            cover_rate: 0.35,
            rerelease_rate: 0.75,
            left_profile: CorruptionProfile::noisy(),
            right_profile: CorruptionProfile::noisy(),
            right_is_mb: true,
            seed,
        }
    }
}

/// Sample the clean song entities.
pub fn generate_songs(config: &MusicConfig) -> Vec<Song> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut songs: Vec<Song> = Vec::with_capacity(config.entities);
    for i in 0..config.entities {
        if i > 0 && rng.random_bool(config.cover_rate) {
            // Cover / re-recording: same title & artist, new album & year.
            let base = songs[rng.random_range(0..i)].clone();
            songs.push(Song {
                title: base.title.clone(),
                album: phrase(SONG_WORDS, 2, &mut rng),
                artist: base.artist.clone(),
                duration: base.duration + rng.random_range(-15..=15) as f64,
                year: base.year + rng.random_range(1..=8) as f64,
            });
            continue;
        }
        // Music scenes (communities of ~150 songs) get their own compound
        // scene word in the title and artist, so vocabulary grows with the
        // catalogue and blocking output stays linear in its size.
        let scene = compound_word(SONG_WORDS, i / 150);
        songs.push(Song {
            title: format!("{} {scene}", phrase(SONG_WORDS, rng.random_range(1..=3), &mut rng)),
            album: phrase(SONG_WORDS, 2, &mut rng),
            artist: phrase(ARTIST_WORDS, 2, &mut rng),
            duration: rng.random_range(120..=420) as f64,
            year: rng.random_range(1965..=2012) as f64,
        });
    }
    songs
}

fn render(
    entity: u64,
    id: u64,
    s: &Song,
    profile: &CorruptionProfile,
    mb_style: bool,
    rerelease_rate: f64,
    rng: &mut StdRng,
) -> Record {
    let (album_clean, year_clean) = if mb_style && rng.random_bool(rerelease_rate) {
        // Re-release: qualified album, later year. Same entity, so this
        // *match* pair gets a low album/year similarity — the other half of
        // the ambiguity.
        (
            format!("{} {}", s.album, pick(ALBUM_QUALIFIERS, rng)),
            s.year + rng.random_range(1..=10) as f64,
        )
    } else {
        (s.album.clone(), s.year)
    };
    Record::new(
        id,
        entity,
        vec![
            corrupt_text(&s.title, profile, rng),
            corrupt_text(&album_clean, profile, rng),
            corrupt_text(&s.artist, profile, rng),
            corrupt_number(s.duration, profile, rng),
            corrupt_number(year_clean, profile, rng),
        ],
    )
}

/// Generate the two databases `(left, right)`.
pub fn generate(config: &MusicConfig) -> (Vec<Record>, Vec<Record>) {
    let songs = generate_songs(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x50_4E47);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (e, s) in songs.iter().enumerate() {
        let entity = e as u64;
        let in_both = rng.random_bool(config.overlap);
        let in_left = in_both || rng.random_bool(0.5);
        if in_left {
            left.push(render(
                entity,
                left.len() as u64,
                s,
                &config.left_profile,
                false,
                0.0,
                &mut rng,
            ));
        }
        if in_both || !in_left {
            right.push(render(
                entity,
                right.len() as u64,
                s,
                &config.right_profile,
                config.right_is_mb,
                config.rerelease_rate,
                &mut rng,
            ));
        }
    }
    (left, right)
}

/// The shared feature space of the music family (5 features, as in
/// Table 1): title/album by token Jaccard, artist by Jaro-Winkler,
/// duration by a bounded numeric comparator, year by the year comparator.
pub fn comparison() -> Comparison {
    Comparison::new(vec![
        (0, Measure::TokenJaccard),
        (1, Measure::TokenJaccard),
        (2, Measure::JaroWinkler),
        (3, Measure::Numeric(60.0)),
        (4, Measure::Year),
    ])
    .expect("non-empty feature list")
}

/// Attribute order used by [`generate`]'s records.
pub fn attribute_names() -> [&'static str; 5] {
    ["title", "album", "artist", "duration", "year"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn songs_have_expected_shape() {
        let cfg = MusicConfig::msd(200, 3);
        let songs = generate_songs(&cfg);
        assert_eq!(songs.len(), 200);
        for s in &songs {
            assert!(!s.title.is_empty() && !s.artist.is_empty());
            assert!((100.0..450.0).contains(&s.duration));
        }
    }

    #[test]
    fn covers_collide_on_title_and_artist() {
        let cfg = MusicConfig { cover_rate: 1.0, ..MusicConfig::musicbrainz(30, 5) };
        let songs = generate_songs(&cfg);
        let colliding = songs[1..]
            .iter()
            .filter(|s| {
                songs
                    .iter()
                    .any(|q| !std::ptr::eq(*s, q) && q.title == s.title && q.artist == s.artist)
            })
            .count();
        assert!(colliding >= 25, "{colliding}");
    }

    #[test]
    fn mb_right_side_has_rereleases() {
        let cfg = MusicConfig::musicbrainz(600, 9);
        let (_, r) = generate(&cfg);
        let qualified = r
            .iter()
            .filter(|rec| {
                rec.values[1]
                    .as_text()
                    .is_some_and(|a| ALBUM_QUALIFIERS.iter().any(|q| a.contains(q)))
            })
            .count();
        assert!(qualified > r.len() / 10, "only {qualified} of {} qualified", r.len());
    }

    #[test]
    fn msd_side_has_no_rereleases() {
        let cfg = MusicConfig::msd(300, 9);
        let (l, r) = generate(&cfg);
        for rec in l.iter().chain(&r) {
            if let Some(a) = rec.values[1].as_text() {
                // Album qualifiers only enter via mb_style rendering.
                assert!(
                    !ALBUM_QUALIFIERS.iter().any(|q| a.ends_with(q) && a.contains(' ')),
                    "unexpected qualifier in {a}"
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MusicConfig::musicbrainz(80, 13);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn comparison_has_five_features() {
        assert_eq!(comparison().num_features(), 5);
        assert_eq!(attribute_names().len(), 5);
    }
}

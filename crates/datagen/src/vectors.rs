//! Feature-vector-level mixture generator with *controllable* class
//! imbalance, ambiguity and cross-domain conditional differences.
//!
//! The record-level generators produce realistic workloads but their
//! Table 1 statistics are emergent. For unit tests, ablations and the
//! controlled sensitivity sweeps it is useful to dial those statistics in
//! directly: this module samples feature vectors from a bi-modal mixture —
//! a non-match mode at low similarity, a match mode at high similarity
//! (Fig. 2's two peaks) — plus a quantised *ambiguous* cluster in the
//! middle whose identical vectors carry random labels, and an optional
//! label-flip rate that manufactures class-conditional differences between
//! two domains.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_common::{DomainPair, FeatureMatrix, Label, LabeledDataset, Result};

/// Parameters of one synthetic feature-vector domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorDomainConfig {
    /// Number of feature vectors (record pairs).
    pub n: usize,
    /// Number of features.
    pub m: usize,
    /// Fraction of true matches among the unambiguous vectors.
    pub match_rate: f64,
    /// Mean similarity of the match mode.
    pub match_mean: f64,
    /// Mean similarity of the non-match mode.
    pub nonmatch_mean: f64,
    /// Standard deviation of both modes.
    pub spread: f64,
    /// Fraction of vectors drawn from the quantised ambiguous cluster
    /// (identical vectors carrying both labels).
    pub ambiguity: f64,
    /// Additive shift applied to every feature — the marginal-distribution
    /// difference `P(X^S) != P(X^T)`.
    pub shift: f64,
    /// Probability of flipping an unambiguous vector's label — symmetric
    /// label noise.
    pub flip_rate: f64,
    /// Fraction of instances drawn into the *conflict band* — a shoulder
    /// region at similarity ≈ 0.65 between the two modes. Combined with
    /// [`VectorDomainConfig::conflict_ambiguous`], this models the paper's
    /// class-conditional difference: the band is genuinely ambiguous
    /// (coin-flip labels) in one domain and canonically matched in the
    /// other, so `P(Y|X)` disagrees exactly there.
    pub conflict_mass: f64,
    /// Label behaviour inside the conflict band: `true` = predominantly
    /// non-match labels with a 25% match minority (the conflicted source —
    /// think MSD covers), `false` = canonical match labels (the target's
    /// conditional distribution — think MB re-releases).
    pub conflict_ambiguous: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VectorDomainConfig {
    fn default() -> Self {
        VectorDomainConfig {
            n: 1000,
            m: 4,
            match_rate: 0.25,
            match_mean: 0.82,
            nonmatch_mean: 0.18,
            spread: 0.10,
            ambiguity: 0.05,
            shift: 0.0,
            flip_rate: 0.0,
            conflict_mass: 0.0,
            conflict_ambiguous: false,
            seed: 0,
        }
    }
}

/// Standard-normal sample via Box-Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Sample one domain.
///
/// # Errors
/// Propagates dataset construction errors (zero features).
pub fn generate(name: impl Into<String>, cfg: &VectorDomainConfig) -> Result<LabeledDataset> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut x = FeatureMatrix::empty(cfg.m);
    let mut y = Vec::with_capacity(cfg.n);
    let mut buf = vec![0.0; cfg.m];
    for _ in 0..cfg.n {
        if cfg.conflict_mass > 0.0 && rng.random_bool(cfg.conflict_mass.clamp(0.0, 1.0)) {
            // Conflict band: a shoulder between the two modes whose label
            // behaviour differs across the paired domains.
            for b in buf.iter_mut() {
                *b = (0.65 + cfg.shift + 0.05 * normal(&mut rng)).clamp(0.0, 1.0);
            }
            let label = if cfg.conflict_ambiguous {
                Label::from_bool(rng.random_bool(0.25))
            } else {
                Label::Match
            };
            y.push(label);
            x.push_row(&buf);
            continue;
        }
        if rng.random_bool(cfg.ambiguity) {
            // Ambiguous cluster: coordinates snapped to a coarse 0.1 grid
            // around 0.5, so identical vectors recur; labels are coin flips
            // biased by the match rate.
            for b in buf.iter_mut() {
                let step: i64 = rng.random_range(-2..=2);
                *b = (0.5 + step as f64 * 0.1 + cfg.shift).clamp(0.0, 1.0);
            }
            y.push(Label::from_bool(rng.random_bool(cfg.match_rate.clamp(0.01, 0.99))));
        } else {
            let is_match = rng.random_bool(cfg.match_rate.clamp(0.0, 1.0));
            let mean = if is_match { cfg.match_mean } else { cfg.nonmatch_mean };
            for b in buf.iter_mut() {
                *b = (mean + cfg.shift + cfg.spread * normal(&mut rng)).clamp(0.0, 1.0);
            }
            let label = if rng.random_bool(cfg.flip_rate.clamp(0.0, 1.0)) {
                Label::from_bool(!is_match)
            } else {
                Label::from_bool(is_match)
            };
            y.push(label);
        }
        x.push_row(&buf);
    }
    LabeledDataset::new(name, x, y)
}

/// Sample a source/target pair: the target gets its own seed, the given
/// marginal `shift` and conditional `flip_rate` relative to the source.
///
/// # Errors
/// Propagates dataset construction errors.
pub fn domain_pair(
    source_cfg: &VectorDomainConfig,
    target_shift: f64,
    target_flip_rate: f64,
    target_n: usize,
) -> Result<DomainPair> {
    let source = generate("synthetic-source", source_cfg)?;
    let target_cfg = VectorDomainConfig {
        n: target_n,
        shift: source_cfg.shift + target_shift,
        flip_rate: target_flip_rate,
        // The target resolves the conflict band canonically.
        conflict_ambiguous: false,
        seed: source_cfg.seed ^ 0x7A46E7,
        ..*source_cfg
    };
    let target = generate("synthetic-target", &target_cfg)?;
    DomainPair::new(source, target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_and_bounds() {
        let cfg = VectorDomainConfig { n: 500, m: 6, ..Default::default() };
        let d = generate("t", &cfg).unwrap();
        assert_eq!(d.len(), 500);
        assert_eq!(d.x.cols(), 6);
        for row in d.x.iter_rows() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn match_rate_approximated() {
        let cfg = VectorDomainConfig { n: 4000, ambiguity: 0.0, ..Default::default() };
        let d = generate("t", &cfg).unwrap();
        assert!((d.match_rate() - 0.25).abs() < 0.05, "{}", d.match_rate());
    }

    #[test]
    fn bimodal_row_means() {
        let cfg = VectorDomainConfig { n: 3000, ..Default::default() };
        let d = generate("t", &cfg).unwrap();
        let means = d.x.row_means();
        let low = means.iter().filter(|&&v| v < 0.4).count();
        let high = means.iter().filter(|&&v| v > 0.6).count();
        let mid = means.len() - low - high;
        // Two clear peaks, thin valley.
        assert!(low > high, "non-matches dominate");
        assert!(high > mid, "match peak taller than the valley: {high} vs {mid}");
    }

    #[test]
    fn ambiguity_creates_duplicate_vectors_with_both_labels() {
        let cfg = VectorDomainConfig { n: 3000, ambiguity: 0.4, ..Default::default() };
        let d = generate("t", &cfg).unwrap();
        use std::collections::HashMap;
        let mut by_key: HashMap<Vec<i64>, (usize, usize)> = HashMap::new();
        for i in 0..d.len() {
            let e = by_key.entry(d.x.row_key(i, 2)).or_default();
            if d.y[i].is_match() {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        let ambiguous = by_key.values().filter(|(m, n)| *m > 0 && *n > 0).count();
        assert!(ambiguous > 10, "only {ambiguous} ambiguous keys");
    }

    #[test]
    fn shift_moves_the_marginal() {
        let base = VectorDomainConfig { n: 2000, ..Default::default() };
        let shifted = VectorDomainConfig { shift: 0.1, ..base };
        let a = generate("a", &base).unwrap();
        let b = generate("b", &shifted).unwrap();
        let mean = |d: &LabeledDataset| d.x.row_means().iter().sum::<f64>() / d.len() as f64;
        assert!(mean(&b) > mean(&a) + 0.05);
    }

    #[test]
    fn pair_shares_feature_space() {
        let cfg = VectorDomainConfig::default();
        let p = domain_pair(&cfg, 0.05, 0.1, 700).unwrap();
        assert_eq!(p.source.x.cols(), p.target.x.cols());
        assert_eq!(p.target.len(), 700);
        assert_ne!(p.source.x, p.target.x);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = VectorDomainConfig { seed: 42, ..Default::default() };
        assert_eq!(generate("a", &cfg).unwrap(), generate("a", &cfg).unwrap());
    }
}

//! Synthetic ER workloads standing in for the paper's seven data sets.
//!
//! The originals are either third-party benchmark collections (DBLP, ACM,
//! Scholar from the Magellan repository; Million Songs and Musicbrainz from
//! the Leipzig benchmark) or proprietary Scottish civil registers (Isle of
//! Skye and Kilmarnock). None can be redistributed here, so this crate
//! generates record-level substitutes that exercise *exactly* the same code
//! path — generate records → block with MinHash LSH → compare attributes →
//! feature matrix — and are calibrated to the characteristics Table 1 of
//! the paper reports: number of attributes, heavy class imbalance, a
//! sizeable share of *ambiguous* feature vectors (identical rounded vectors
//! carrying both labels), skewed bi-modal similarity distributions (Fig. 2)
//! and cross-domain label conflicts.
//!
//! Three generator families:
//!
//! * [`biblio`] — publications (title, authors, venue, year), clean
//!   DBLP/ACM versus the noisy Scholar rendition.
//! * [`music`] — songs (title, album, artist, duration, year); the
//!   Musicbrainz rendition is riddled with re-releases and remasters that
//!   create ambiguity.
//! * [`demographic`] — Scottish birth/death certificate parent couples;
//!   a small closed name pool reproduces the extreme ambiguity of the
//!   IOS/KIL registers.
//!
//! [`Scenario`] ties a generator to a corruption profile and produces a
//! [`LabeledDataset`](transer_common::LabeledDataset); [`ScenarioPair`]
//! produces the eight directed source → target tasks of Table 2.
//! [`vectors`] additionally provides a feature-vector-level mixture
//! generator with *controllable* imbalance, ambiguity and cross-domain
//! label-flip rates for unit tests and ablation studies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod biblio;
pub mod corrupt;
pub mod demographic;
pub mod export;
pub mod lexicon;
pub mod music;
pub mod scale;
pub mod vectors;

mod scenario;

pub use corrupt::CorruptionProfile;
pub use scale::{ScaleConfig, ScaleGen};
pub use scenario::{Scenario, ScenarioPair};

//! CSV export / import of labelled feature data sets.
//!
//! The paper's authors released their feature matrices alongside the code;
//! this module provides the same artefact for the synthetic workloads so
//! results can be consumed outside Rust (pandas, R) or fed back in.
//!
//! Format: a header `f0,f1,...,label`, then one row per record pair with
//! the similarity values and `M`/`N`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use transer_common::{Error, FeatureMatrix, Label, LabeledDataset, Result};

/// Write a data set as CSV.
///
/// # Errors
/// Propagates I/O errors as [`Error::TrainingFailed`]-free plain messages
/// via [`Error::InvalidParameter`] (the workspace has no I/O error
/// variant; exporting is an edge concern).
pub fn write_csv<W: Write>(ds: &LabeledDataset, writer: W) -> Result<()> {
    let io =
        |e: std::io::Error| Error::InvalidParameter { name: "csv writer", message: e.to_string() };
    let mut w = BufWriter::new(writer);
    let header: Vec<String> = (0..ds.x.cols()).map(|i| format!("f{i}")).collect();
    writeln!(w, "{},label", header.join(",")).map_err(io)?;
    for (row, label) in ds.x.iter_rows().zip(&ds.y) {
        let values: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(w, "{},{label}", values.join(",")).map_err(io)?;
    }
    w.flush().map_err(io)
}

/// Read a data set from CSV produced by [`write_csv`].
///
/// # Errors
/// Returns parse errors with line context.
pub fn read_csv<R: Read>(name: impl Into<String>, reader: R) -> Result<LabeledDataset> {
    let err = |line: usize, message: String| Error::InvalidParameter {
        name: "csv reader",
        message: format!("line {line}: {message}"),
    };
    let mut lines = BufReader::new(reader).lines().enumerate();
    let (_, header) = lines.next().ok_or_else(|| err(0, "empty file".into()))?;
    let header = header.map_err(|e| err(1, e.to_string()))?;
    let cols = header.split(',').count();
    if cols < 2 || !header.ends_with("label") {
        return Err(err(1, format!("unexpected header {header:?}")));
    }
    let m = cols - 1;

    let mut x = FeatureMatrix::empty(m);
    let mut y = Vec::new();
    let mut buf = vec![0.0; m];
    for (idx, line) in lines {
        let line = line.map_err(|e| err(idx + 1, e.to_string()))?;
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        for slot in buf.iter_mut() {
            let field = fields.next().ok_or_else(|| err(idx + 1, "too few fields".into()))?;
            *slot =
                field.parse().map_err(|e| err(idx + 1, format!("bad number {field:?}: {e}")))?;
        }
        let label = match fields.next() {
            Some("M") => Label::Match,
            Some("N") => Label::NonMatch,
            other => return Err(err(idx + 1, format!("bad label {other:?}"))),
        };
        if fields.next().is_some() {
            return Err(err(idx + 1, "too many fields".into()));
        }
        x.push_row(&buf);
        y.push(label);
    }
    LabeledDataset::new(name, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledDataset {
        let x = FeatureMatrix::from_vecs(&[vec![1.0, 0.5, 0.25], vec![0.0, 0.125, 1.0]]).unwrap();
        LabeledDataset::new("sample", x, vec![Label::Match, Label::NonMatch]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = sample();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("f0,f1,f2,label\n"));
        assert!(text.contains("1,0.5,0.25,M"));
        let back = read_csv("sample", buf.as_slice()).unwrap();
        assert_eq!(back.x, ds.x);
        assert_eq!(back.y, ds.y);
    }

    #[test]
    fn generated_scenario_roundtrips() {
        let ds = crate::Scenario::DblpAcm.generate(0.02, 9).unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(ds.name.clone(), buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        assert_eq!(back.y, ds.y);
        for (a, b) in back.x.as_slice().iter().zip(ds.x.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(read_csv("x", "".as_bytes()).is_err());
        assert!(read_csv("x", "not,a,header\n".as_bytes()).is_err());
        let err = read_csv("x", "f0,label\noops,M\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(read_csv("x", "f0,label\n0.5,X\n".as_bytes()).is_err());
        assert!(read_csv("x", "f0,label\n0.5,M,extra\n".as_bytes()).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let ds = read_csv("x", "f0,label\n0.5,M\n\n0.25,N\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }
}

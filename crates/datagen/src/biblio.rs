//! Bibliographic generator: the DBLP / ACM / Scholar family.
//!
//! Entities are publications with a title, an author list, a venue and a
//! year. DBLP and ACM are curated (clean profile); Google Scholar records
//! are web-scraped with misspellings, abbreviated venues and author
//! initials (heavy profile) — exactly the quality difference Köpcke et al.
//! (2010) describe and the paper leans on when calling DBLP-ACM "simple"
//! and DBLP-Scholar "challenging".

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use transer_blocking::Comparison;
use transer_common::Record;
use transer_similarity::Measure;

use crate::corrupt::{corrupt_number, corrupt_text, CorruptionProfile};
use crate::lexicon::{
    compound_word, phrase, pick, FIRST_NAMES, SURNAMES, TITLE_WORDS, VENUES_ABBREV, VENUES_FULL,
};

/// A clean publication entity.
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    /// Paper title (4–7 topic words).
    pub title: String,
    /// 1–3 authors, `first last` each, comma separated.
    pub authors: String,
    /// Full venue name (index into the venue pools).
    pub venue_idx: usize,
    /// Publication year.
    pub year: f64,
}

/// Configuration of a bibliographic linkage scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiblioConfig {
    /// Number of distinct publication entities.
    pub entities: usize,
    /// Fraction of entities present in both databases (true matches).
    pub overlap: f64,
    /// Probability that an entity is a *variant* of an earlier one —
    /// an extended journal version sharing most title words, a different
    /// year and venue. Variants are true non-matches that look like
    /// matches: the source of ambiguous feature vectors.
    pub variant_rate: f64,
    /// Corruption applied to the left database.
    pub left_profile: CorruptionProfile,
    /// Corruption applied to the right database.
    pub right_profile: CorruptionProfile,
    /// Scholar-style right database: venues abbreviated, authors reduced
    /// to initials, more missing values.
    pub scholar_style: bool,
    /// RNG seed.
    pub seed: u64,
}

impl BiblioConfig {
    /// The DBLP → ACM linkage (both curated).
    pub fn dblp_acm(entities: usize, seed: u64) -> Self {
        BiblioConfig {
            entities,
            overlap: 0.65,
            variant_rate: 0.08,
            left_profile: CorruptionProfile::clean(),
            right_profile: CorruptionProfile::clean(),
            scholar_style: false,
            seed,
        }
    }

    /// The DBLP → Scholar linkage (right side scraped and messy).
    pub fn dblp_scholar(entities: usize, seed: u64) -> Self {
        BiblioConfig {
            entities,
            overlap: 0.75,
            variant_rate: 0.12,
            left_profile: CorruptionProfile::clean(),
            right_profile: scholar_profile(),
            scholar_style: true,
            seed,
        }
    }
}

/// Web-scraped Scholar records: frequent misspellings and truncations that
/// depress — but do not destroy — the similarity of true matches, shifting
/// the target's match cluster to lower feature values than the curated
/// DBLP/ACM sources.
fn scholar_profile() -> CorruptionProfile {
    CorruptionProfile {
        typo_prob: 0.18,
        max_typos: 1,
        ocr_prob: 0.05,
        abbreviate_prob: 0.12,
        drop_token_prob: 0.10,
        swap_tokens_prob: 0.04,
        nickname_prob: 0.05,
        missing_prob: 0.07,
        numeric_jitter_prob: 0.12,
        max_jitter: 2.0,
    }
}

/// Sample the clean publication entities.
pub fn generate_publications(config: &BiblioConfig) -> Vec<Publication> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pubs: Vec<Publication> = Vec::with_capacity(config.entities);
    for i in 0..config.entities {
        if i > 0 && rng.random_bool(config.variant_rate) {
            // Journal/extended version of an earlier paper: same authors,
            // overlapping title, shifted year, different venue.
            let base = pubs[rng.random_range(0..i)].clone();
            let extra = pick(TITLE_WORDS, &mut rng);
            pubs.push(Publication {
                title: format!("{} {extra}", base.title),
                authors: base.authors.clone(),
                venue_idx: rng.random_range(0..VENUES_FULL.len()),
                year: base.year + rng.random_range(1..=2) as f64,
            });
            continue;
        }
        let n_authors = rng.random_range(1..=3);
        let authors = (0..n_authors)
            .map(|_| format!("{} {}", pick(FIRST_NAMES, &mut rng), pick(SURNAMES, &mut rng)))
            .collect::<Vec<_>>()
            .join(", ");
        // Each sub-field (community of ~150 papers) has its own compound
        // topic term, so title vocabulary grows with the collection and the
        // blocking output stays linear in the number of entities.
        let topic = compound_word(TITLE_WORDS, i / 150);
        pubs.push(Publication {
            title: format!("{} {topic}", phrase(TITLE_WORDS, rng.random_range(3..=6), &mut rng)),
            authors,
            venue_idx: rng.random_range(0..VENUES_FULL.len()),
            year: rng.random_range(1995..=2010) as f64,
        });
    }
    pubs
}

fn render(
    entity: u64,
    id: u64,
    p: &Publication,
    profile: &CorruptionProfile,
    scholar_style: bool,
    rng: &mut StdRng,
) -> Record {
    let title = corrupt_text(&p.title, profile, rng);
    let authors_clean = if scholar_style && rng.random_bool(0.5) {
        // Scholar renders authors as initialled surnames: "j smith, m ross".
        p.authors
            .split(", ")
            .map(|a| {
                let mut it = a.split(' ');
                let first = it.next().unwrap_or("");
                let last = it.next().unwrap_or("");
                format!("{} {last}", &first[..1.min(first.len())])
            })
            .collect::<Vec<_>>()
            .join(", ")
    } else {
        p.authors.clone()
    };
    let authors = corrupt_text(&authors_clean, profile, rng);
    let venue_clean = if scholar_style && rng.random_bool(0.6) {
        VENUES_ABBREV[p.venue_idx]
    } else {
        VENUES_FULL[p.venue_idx]
    };
    let venue = corrupt_text(venue_clean, profile, rng);
    let year = corrupt_number(p.year, profile, rng);
    Record::new(id, entity, vec![title, authors, venue, year])
}

/// Generate the two databases: `(left, right)` with entity ids aligned so
/// that equal ids are true matches.
pub fn generate(config: &BiblioConfig) -> (Vec<Record>, Vec<Record>) {
    let pubs = generate_publications(config);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5EED);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (e, p) in pubs.iter().enumerate() {
        let entity = e as u64;
        let in_both = rng.random_bool(config.overlap);
        let in_left = in_both || rng.random_bool(0.5);
        if in_left {
            left.push(render(entity, left.len() as u64, p, &config.left_profile, false, &mut rng));
        }
        if in_both || !in_left {
            right.push(render(
                entity,
                right.len() as u64,
                p,
                &config.right_profile,
                config.scholar_style,
                &mut rng,
            ));
        }
    }
    (left, right)
}

/// The shared feature space of the bibliographic family (4 features, as in
/// Table 1): title and venue by token Jaccard, authors by symmetrised
/// Monge-Elkan over Jaro-Winkler, year by the bounded year comparator.
pub fn comparison() -> Comparison {
    Comparison::new(vec![
        (0, Measure::TokenJaccard),
        (1, Measure::MongeElkanJw),
        (2, Measure::TokenJaccard),
        (3, Measure::Year),
    ])
    .expect("non-empty feature list")
}

/// Attribute order used by [`generate`]'s records.
pub fn attribute_names() -> [&'static str; 4] {
    ["title", "authors", "venue", "year"]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entities_have_expected_shape() {
        let cfg = BiblioConfig::dblp_acm(100, 7);
        let pubs = generate_publications(&cfg);
        assert_eq!(pubs.len(), 100);
        for p in &pubs {
            assert!(p.title.split(' ').count() >= 4);
            assert!(!p.authors.is_empty());
            assert!(p.venue_idx < VENUES_FULL.len());
            assert!((1995.0..=2013.0).contains(&p.year));
        }
    }

    #[test]
    fn variants_share_titles() {
        let cfg = BiblioConfig { variant_rate: 1.0, ..BiblioConfig::dblp_acm(20, 3) };
        let pubs = generate_publications(&cfg);
        // Every publication after the first extends an earlier title.
        let extended = pubs[1..]
            .iter()
            .filter(|p| pubs.iter().any(|q| !std::ptr::eq(*p, q) && p.title.starts_with(&q.title)))
            .count();
        assert!(extended >= 15, "{extended}");
    }

    #[test]
    fn databases_share_overlapping_entities() {
        let cfg = BiblioConfig::dblp_acm(300, 11);
        let (l, r) = generate(&cfg);
        assert!(!l.is_empty() && !r.is_empty());
        let l_entities: std::collections::HashSet<u64> = l.iter().map(|x| x.entity).collect();
        let shared = r.iter().filter(|x| l_entities.contains(&x.entity)).count();
        let frac = shared as f64 / cfg.entities as f64;
        assert!((0.4..0.7).contains(&frac), "overlap fraction {frac}");
        // Record ids are unique per database.
        let mut ids: Vec<u64> = l.iter().map(|x| x.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), l.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = BiblioConfig::dblp_scholar(50, 21);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn scholar_right_side_is_messier() {
        let cfg = BiblioConfig::dblp_scholar(400, 5);
        let (_, r) = generate(&cfg);
        let missing = r.iter().flat_map(|rec| &rec.values).filter(|v| v.is_missing()).count();
        let abbrevs = r
            .iter()
            .filter(|rec| rec.values[2].as_text().is_some_and(|v| VENUES_ABBREV.contains(&v)))
            .count();
        assert!(missing > 0, "heavy profile should drop values");
        assert!(abbrevs > r.len() / 4, "scholar style should abbreviate venues");
    }

    #[test]
    fn comparison_covers_all_attributes() {
        let c = comparison();
        assert_eq!(c.num_features(), 4);
        assert_eq!(attribute_names().len(), 4);
    }
}

//! Value-corruption models: the typographical errors, spelling variations,
//! abbreviations and omissions that make personal data hard to link
//! (Christen, *Data Matching*, 2012).

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;
use transer_common::AttrValue;

use crate::lexicon::nickname_of;

/// Per-value corruption probabilities. Each database gets its own profile;
/// the difference between profiles is what creates the difference in
/// marginal (and conditional) distributions between domains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionProfile {
    /// Probability of applying 1–`max_typos` random character edits.
    pub typo_prob: f64,
    /// Maximum number of character edits per corrupted value.
    pub max_typos: usize,
    /// Probability of an OCR-style confusion (`m`↔`rn`, `l`↔`1`, ...).
    pub ocr_prob: f64,
    /// Probability of abbreviating a token to its initial (`john` → `j`).
    pub abbreviate_prob: f64,
    /// Probability of dropping one token from a multi-token value.
    pub drop_token_prob: f64,
    /// Probability of swapping two adjacent tokens.
    pub swap_tokens_prob: f64,
    /// Probability of replacing a name by a nickname variant.
    pub nickname_prob: f64,
    /// Probability of the value going missing entirely.
    pub missing_prob: f64,
    /// Probability of perturbing a numeric value by ±`max_jitter`.
    pub numeric_jitter_prob: f64,
    /// Maximum absolute numeric perturbation.
    pub max_jitter: f64,
}

impl CorruptionProfile {
    /// A curated, well-edited database (DBLP, ACM, MSD).
    pub fn clean() -> Self {
        CorruptionProfile {
            typo_prob: 0.03,
            max_typos: 1,
            ocr_prob: 0.01,
            abbreviate_prob: 0.02,
            drop_token_prob: 0.02,
            swap_tokens_prob: 0.01,
            nickname_prob: 0.02,
            missing_prob: 0.01,
            numeric_jitter_prob: 0.02,
            max_jitter: 1.0,
        }
    }

    /// A moderately noisy database (Musicbrainz, KIL registers).
    pub fn noisy() -> Self {
        CorruptionProfile {
            typo_prob: 0.12,
            max_typos: 2,
            ocr_prob: 0.04,
            abbreviate_prob: 0.08,
            drop_token_prob: 0.08,
            swap_tokens_prob: 0.05,
            nickname_prob: 0.08,
            missing_prob: 0.05,
            numeric_jitter_prob: 0.08,
            max_jitter: 2.0,
        }
    }

    /// A heavily corrupted database (Scholar's web-scraped records, IOS
    /// transcriptions).
    pub fn heavy() -> Self {
        CorruptionProfile {
            typo_prob: 0.22,
            max_typos: 3,
            ocr_prob: 0.08,
            abbreviate_prob: 0.18,
            drop_token_prob: 0.14,
            swap_tokens_prob: 0.08,
            nickname_prob: 0.12,
            missing_prob: 0.10,
            numeric_jitter_prob: 0.15,
            max_jitter: 3.0,
        }
    }

    /// No corruption at all — useful in tests.
    pub fn none() -> Self {
        CorruptionProfile {
            typo_prob: 0.0,
            max_typos: 0,
            ocr_prob: 0.0,
            abbreviate_prob: 0.0,
            drop_token_prob: 0.0,
            swap_tokens_prob: 0.0,
            nickname_prob: 0.0,
            missing_prob: 0.0,
            numeric_jitter_prob: 0.0,
            max_jitter: 0.0,
        }
    }
}

/// OCR/transcription confusion pairs.
const OCR_CONFUSIONS: &[(&str, &str)] =
    &[("m", "rn"), ("w", "vv"), ("l", "1"), ("o", "0"), ("s", "5"), ("cl", "d"), ("nn", "m")];

const ALPHABET: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r', 's',
    't', 'u', 'v', 'w', 'x', 'y', 'z',
];

/// Apply one random character edit (insert / delete / substitute /
/// transpose) to a string; empty strings are returned unchanged.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let mut chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    match rng.random_range(0..4u8) {
        0 => {
            // insert
            let pos = rng.random_range(0..=chars.len());
            chars.insert(pos, *ALPHABET.choose(rng).expect("nonempty"));
        }
        1 => {
            // delete
            if chars.len() > 1 {
                let pos = rng.random_range(0..chars.len());
                chars.remove(pos);
            }
        }
        2 => {
            // substitute
            let pos = rng.random_range(0..chars.len());
            chars[pos] = *ALPHABET.choose(rng).expect("nonempty");
        }
        _ => {
            // transpose adjacent
            if chars.len() > 1 {
                let pos = rng.random_range(0..chars.len() - 1);
                chars.swap(pos, pos + 1);
            }
        }
    }
    chars.into_iter().collect()
}

/// Apply one OCR confusion somewhere in the string, if a pattern occurs.
pub fn ocr_confusion(s: &str, rng: &mut StdRng) -> String {
    let applicable: Vec<&(&str, &str)> =
        OCR_CONFUSIONS.iter().filter(|(from, _)| s.contains(from)).collect();
    match applicable.choose(rng) {
        Some((from, to)) => s.replacen(from, to, 1),
        None => s.to_string(),
    }
}

/// Corrupt a textual value according to the profile. Returns
/// [`AttrValue::Missing`] when the missing-value die comes up.
pub fn corrupt_text(s: &str, profile: &CorruptionProfile, rng: &mut StdRng) -> AttrValue {
    if rng.random_bool(profile.missing_prob) {
        return AttrValue::Missing;
    }
    let mut tokens: Vec<String> = s.split(' ').map(str::to_string).collect();

    // Nickname substitution operates on whole tokens.
    if rng.random_bool(profile.nickname_prob) {
        for t in &mut tokens {
            if let Some(nick) = nickname_of(t) {
                *t = nick.to_string();
                break;
            }
        }
    }
    // Abbreviation: one token collapses to its initial.
    if rng.random_bool(profile.abbreviate_prob) && !tokens.is_empty() {
        let idx = rng.random_range(0..tokens.len());
        if let Some(initial) = tokens[idx].chars().next() {
            tokens[idx] = initial.to_string();
        }
    }
    // Token drop / adjacent swap.
    if tokens.len() > 1 && rng.random_bool(profile.drop_token_prob) {
        let idx = rng.random_range(0..tokens.len());
        tokens.remove(idx);
    }
    if tokens.len() > 1 && rng.random_bool(profile.swap_tokens_prob) {
        let idx = rng.random_range(0..tokens.len() - 1);
        tokens.swap(idx, idx + 1);
    }

    let mut out = tokens.join(" ");
    if rng.random_bool(profile.ocr_prob) {
        out = ocr_confusion(&out, rng);
    }
    if rng.random_bool(profile.typo_prob) {
        let edits = rng.random_range(1..=profile.max_typos.max(1));
        for _ in 0..edits {
            out = typo(&out, rng);
        }
    }
    if out.is_empty() {
        AttrValue::Missing
    } else {
        AttrValue::Text(out)
    }
}

/// Corrupt a numeric value: missingness plus integer jitter.
pub fn corrupt_number(x: f64, profile: &CorruptionProfile, rng: &mut StdRng) -> AttrValue {
    if rng.random_bool(profile.missing_prob) {
        return AttrValue::Missing;
    }
    if profile.max_jitter > 0.0 && rng.random_bool(profile.numeric_jitter_prob) {
        let jitter = rng.random_range(1..=profile.max_jitter as i64);
        let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
        AttrValue::Number(x + sign * jitter as f64)
    } else {
        AttrValue::Number(x)
    }
}

/// Corrupt any attribute value according to the profile.
pub fn corrupt_value(v: &AttrValue, profile: &CorruptionProfile, rng: &mut StdRng) -> AttrValue {
    match v {
        AttrValue::Text(s) => corrupt_text(s, profile, rng),
        AttrValue::Number(x) => corrupt_number(*x, profile, rng),
        AttrValue::Missing => AttrValue::Missing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn typo_changes_at_most_one_edit() {
        let mut rng = rng();
        for _ in 0..100 {
            let out = typo("macdonald", &mut rng);
            let d = edit_distance(&out, "macdonald");
            assert!(d <= 2, "{out} too far"); // transpose counts 2 in plain Levenshtein
            assert!(!out.is_empty());
        }
    }

    fn edit_distance(a: &str, b: &str) -> usize {
        let a: Vec<char> = a.chars().collect();
        let b: Vec<char> = b.chars().collect();
        let mut prev: Vec<usize> = (0..=b.len()).collect();
        for (i, ca) in a.iter().enumerate() {
            let mut curr = vec![i + 1];
            for (j, cb) in b.iter().enumerate() {
                let cost = usize::from(ca != cb);
                curr.push((prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost));
            }
            prev = curr;
        }
        prev[b.len()]
    }

    #[test]
    fn none_profile_is_identity() {
        let mut rng = rng();
        let p = CorruptionProfile::none();
        for s in ["john macdonald", "efficient query processing", "x"] {
            match corrupt_text(s, &p, &mut rng) {
                AttrValue::Text(out) => assert_eq!(out, s),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(corrupt_number(1881.0, &p, &mut rng), AttrValue::Number(1881.0));
    }

    #[test]
    fn heavy_profile_corrupts_often() {
        let mut rng = rng();
        let p = CorruptionProfile::heavy();
        let changed = (0..300)
            .filter(|_| {
                !matches!(
                    corrupt_text("john macdonald portree", &p, &mut rng),
                    AttrValue::Text(ref t) if t == "john macdonald portree"
                )
            })
            .count();
        assert!(changed > 100, "only {changed} corrupted");
    }

    #[test]
    fn missingness_respects_probability() {
        let mut rng = rng();
        let p = CorruptionProfile { missing_prob: 1.0, ..CorruptionProfile::none() };
        assert_eq!(corrupt_text("anything", &p, &mut rng), AttrValue::Missing);
        assert_eq!(corrupt_number(5.0, &p, &mut rng), AttrValue::Missing);
    }

    #[test]
    fn numeric_jitter_bounded() {
        let mut rng = rng();
        let p = CorruptionProfile {
            numeric_jitter_prob: 1.0,
            max_jitter: 3.0,
            ..CorruptionProfile::none()
        };
        for _ in 0..100 {
            match corrupt_number(1900.0, &p, &mut rng) {
                AttrValue::Number(x) => assert!((x - 1900.0).abs() <= 3.0 && x != 1900.0),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn ocr_confusion_only_when_applicable() {
        let mut rng = rng();
        assert_eq!(ocr_confusion("xyz", &mut rng), "xyz".to_string());
        let out = ocr_confusion("mill", &mut rng);
        assert_ne!(out, "mill");
    }

    #[test]
    fn nickname_substitution() {
        let mut rng = rng();
        let p = CorruptionProfile { nickname_prob: 1.0, ..CorruptionProfile::none() };
        match corrupt_text("john macdonald", &p, &mut rng) {
            AttrValue::Text(t) => assert_eq!(t, "jock macdonald"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_passes_through() {
        let mut rng = rng();
        let p = CorruptionProfile::heavy();
        assert_eq!(corrupt_value(&AttrValue::Missing, &p, &mut rng), AttrValue::Missing);
    }
}

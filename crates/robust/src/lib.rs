//! **transer-robust** — deterministic, env-gated fault injection for the
//! TransER pipeline, plus the shared corruption helpers behind it.
//!
//! # Plan format
//!
//! A fault plan is declared through the `TRANSER_FAULT` environment
//! variable as `<site>:<kind>[:<rate>[:<seed>]]`:
//!
//! * `site` — one of the registered injection points in [`site`]
//!   (`compare`, `blocking`, `sel.knn`, `gen.fit`, `gen.predict`,
//!   `tcl.balance`, `tcl.fit`, `pool.dispatch`);
//! * `kind` — `nan`, `inf`, `empty`, `single_class` or `task_fail`
//!   ([`FaultKind`]);
//! * `rate` — firing probability in `[0, 1]`, default `1` (always fire);
//! * `seed` — seed of the deterministic firing sequence, default `0`.
//!
//! Example: `TRANSER_FAULT=gen.fit:nan:0.5:7` poisons the GEN training
//! matrix with NaNs on a deterministic half of the invocations.
//!
//! # Zero overhead when unset
//!
//! Like `transer-trace`, every injection point starts with a single
//! relaxed atomic load and a compare — branch-predicted false after the
//! first call — so instrumented seams cost nothing measurable when
//! `TRANSER_FAULT` is unset. The slow path (plan lookup, counter bump,
//! firing decision) only runs when a plan is armed.
//!
//! # Determinism
//!
//! Firing is a pure function of the plan's seed and a per-plan invocation
//! counter hashed through SplitMix64 — no clocks, no thread identity.
//! Injection points are placed at owner-thread (sequential) seams only, so
//! a given plan fires at the same invocations regardless of
//! `TRANSER_THREADS`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use transer_common::{env, FeatureMatrix, Label};

/// Registered fault-injection sites: phase boundaries and engine seams.
pub mod site {
    /// Record-pair comparison output (`transer-blocking::compare_pairs`).
    pub const COMPARE: &str = "compare";
    /// Candidate-pair generation (`transer-blocking::StandardBlocking`).
    pub const BLOCKING: &str = "blocking";
    /// SEL instance-selection k-NN scoring (`transer-core::select_instances`).
    pub const SEL_KNN: &str = "sel.knn";
    /// GEN pseudo-labeller training input (`generate_pseudo_labels`).
    pub const GEN_FIT: &str = "gen.fit";
    /// GEN pseudo-label output (labels and confidences).
    pub const GEN_PREDICT: &str = "gen.predict";
    /// TCL candidate filtering / class balancing input.
    pub const TCL_BALANCE: &str = "tcl.balance";
    /// TCL target-classifier training input.
    pub const TCL_FIT: &str = "tcl.fit";
    /// Thread-pool task dispatch (`transer-parallel::Pool`).
    pub const POOL_DISPATCH: &str = "pool.dispatch";
    /// Serving-path batch query (`transer-serve::MatchService::query_batch`).
    pub const SERVE_QUERY: &str = "serve.query";
}

/// What an armed fault does when it fires at a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison float cells with `NaN`.
    Nan,
    /// Poison float cells with `±Inf`.
    Inf,
    /// Degenerate the data to zero rows / no candidates.
    Empty,
    /// Collapse the label set to a single class.
    SingleClass,
    /// Simulate an outright task failure ([`transer_common::Error::FaultInjected`]).
    TaskFail,
}

impl FaultKind {
    /// Every kind, in plan-spec order. Useful for exhaustive harnesses.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Nan,
        FaultKind::Inf,
        FaultKind::Empty,
        FaultKind::SingleClass,
        FaultKind::TaskFail,
    ];

    fn parse(s: &str) -> Option<FaultKind> {
        match s.to_ascii_lowercase().as_str() {
            "nan" => Some(FaultKind::Nan),
            "inf" => Some(FaultKind::Inf),
            "empty" => Some(FaultKind::Empty),
            "single_class" => Some(FaultKind::SingleClass),
            "task_fail" => Some(FaultKind::TaskFail),
            _ => None,
        }
    }

    /// The plan-spec spelling (`nan`, `inf`, `empty`, `single_class`,
    /// `task_fail`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Nan => "nan",
            FaultKind::Inf => "inf",
            FaultKind::Empty => "empty",
            FaultKind::SingleClass => "single_class",
            FaultKind::TaskFail => "task_fail",
        }
    }
}

/// A parsed fault plan: one site, one kind, a firing rate and a seed.
#[derive(Debug)]
struct FaultPlan {
    site: String,
    kind: FaultKind,
    rate: f64,
    seed: u64,
    invocations: AtomicU64,
}

/// 0 = uninitialised, 1 = disarmed, 2 = armed.
static STATE: AtomicU8 = AtomicU8::new(0);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn lock_plan() -> MutexGuard<'static, Option<Arc<FaultPlan>>> {
    PLAN.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn parse_plan(spec: &str) -> Option<FaultPlan> {
    let mut parts = spec.split(':');
    let site = parts.next()?.trim();
    let kind = FaultKind::parse(parts.next()?.trim())?;
    let rate = match parts.next() {
        Some(r) => r.trim().parse::<f64>().ok().filter(|r| (0.0..=1.0).contains(r))?,
        None => 1.0,
    };
    let seed = match parts.next() {
        Some(s) => s.trim().parse::<u64>().ok()?,
        None => 0,
    };
    if site.is_empty() || parts.next().is_some() {
        return None;
    }
    Some(FaultPlan { site: site.to_string(), kind, rate, seed, invocations: AtomicU64::new(0) })
}

#[cold]
fn init_state() -> u8 {
    let plan = env::raw(env::FAULT).and_then(|spec| {
        let parsed = parse_plan(&spec);
        if parsed.is_none() {
            transer_trace::warn_invalid_env(
                env::FAULT,
                &spec,
                "<site>:<kind>[:<rate>[:<seed>]]",
                "fault injection disabled",
            );
        }
        parsed
    });
    let state = if plan.is_some() { 2 } else { 1 };
    let mut guard = lock_plan();
    // A racing `set_plan` wins; the stored state is what matters.
    match STATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            *guard = plan.map(Arc::new);
            state
        }
        Err(current) => current,
    }
}

/// Arm or disarm a fault plan for the whole process, overriding
/// `TRANSER_FAULT`. For tests (environment variables are process-global
/// and read once; this flips the same switch directly). An unparsable
/// spec disarms.
pub fn set_plan(spec: Option<&str>) {
    let plan = spec.and_then(parse_plan).map(Arc::new);
    let state = if plan.is_some() { 2 } else { 1 };
    let mut guard = lock_plan();
    *guard = plan;
    STATE.store(state, Ordering::Relaxed);
}

/// Serialise tests that arm fault plans: the plan is process-global, so
/// concurrent tests would race. Poisoning is absorbed (a failed test must
/// not cascade).
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// SplitMix64: the standard 64-bit finaliser, good avalanche, std-only.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn counter_name(site: &str) -> &'static str {
    match site {
        site::COMPARE => "robust.fault.compare",
        site::BLOCKING => "robust.fault.blocking",
        site::SEL_KNN => "robust.fault.sel.knn",
        site::GEN_FIT => "robust.fault.gen.fit",
        site::GEN_PREDICT => "robust.fault.gen.predict",
        site::TCL_BALANCE => "robust.fault.tcl.balance",
        site::TCL_FIT => "robust.fault.tcl.fit",
        site::POOL_DISPATCH => "robust.fault.pool.dispatch",
        site::SERVE_QUERY => "robust.fault.serve.query",
        _ => "robust.fault.other",
    }
}

#[cold]
fn fire_slow(site: &str) -> Option<FaultKind> {
    let plan = lock_plan().as_ref()?.clone();
    if plan.site != site {
        return None;
    }
    let n = plan.invocations.fetch_add(1, Ordering::Relaxed);
    let fires = plan.rate >= 1.0 || {
        // Top 53 bits of the hash as a uniform fraction in [0, 1).
        let fraction = (splitmix64(plan.seed ^ n) >> 11) as f64 / (1u64 << 53) as f64;
        fraction < plan.rate
    };
    if fires {
        transer_trace::counter(counter_name(&plan.site), 1);
        Some(plan.kind)
    } else {
        None
    }
}

/// Did the armed fault fire at this injection point? `None` when no plan
/// is armed, the plan targets a different site, or the rate rolled a miss.
/// The fast path — one relaxed load and a compare — is what every
/// instrumented seam pays when `TRANSER_FAULT` is unset.
#[inline]
pub fn fired(site: &str) -> Option<FaultKind> {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        if init_state() != 2 {
            return None;
        }
    } else if state != 2 {
        return None;
    }
    fire_slow(site)
}

/// Corrupt a feature matrix in place according to `kind`: `Nan`/`Inf`
/// poison every third cell, `Empty` truncates to zero rows,
/// `SingleClass`/`TaskFail` leave the matrix alone (they act on labels
/// and control flow respectively).
pub fn corrupt_matrix(x: &mut FeatureMatrix, kind: FaultKind) {
    match kind {
        FaultKind::Nan => {
            for v in x.as_mut_slice().iter_mut().step_by(3) {
                *v = f64::NAN;
            }
        }
        FaultKind::Inf => {
            for (i, v) in x.as_mut_slice().iter_mut().enumerate().step_by(3) {
                *v = if i % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY };
            }
        }
        FaultKind::Empty => x.truncate_rows(0),
        FaultKind::SingleClass | FaultKind::TaskFail => {}
    }
}

/// Corrupt a label vector in place according to `kind`: `SingleClass`
/// collapses every label to [`Label::NonMatch`], `Empty` clears the
/// vector, the float kinds leave labels alone.
pub fn corrupt_labels(y: &mut Vec<Label>, kind: FaultKind) {
    match kind {
        FaultKind::SingleClass => y.iter_mut().for_each(|l| *l = Label::NonMatch),
        FaultKind::Empty => y.clear(),
        FaultKind::Nan | FaultKind::Inf | FaultKind::TaskFail => {}
    }
}

/// Corrupt a confidence slice in place: `Nan` poisons every second value,
/// `Inf` alternates `±Inf`; the shape-changing kinds are no-ops (the
/// slice must stay aligned with its labels).
pub fn corrupt_confidences(confidences: &mut [f64], kind: FaultKind) {
    match kind {
        FaultKind::Nan => {
            for v in confidences.iter_mut().step_by(2) {
                *v = f64::NAN;
            }
        }
        FaultKind::Inf => {
            for (i, v) in confidences.iter_mut().enumerate().step_by(2) {
                *v = if i % 4 == 0 { f64::INFINITY } else { f64::NEG_INFINITY };
            }
        }
        FaultKind::Empty | FaultKind::SingleClass | FaultKind::TaskFail => {}
    }
}

/// Corrupted *copies* of a training pair, leaving the originals intact so
/// a degradation ladder can still fall back to the clean data. Keeps the
/// matrix and label vector aligned (`Empty` shrinks both to zero).
pub fn corrupted_pair(
    x: &FeatureMatrix,
    y: &[Label],
    kind: FaultKind,
) -> (FeatureMatrix, Vec<Label>) {
    let mut cx = x.clone();
    let mut cy = y.to_vec();
    corrupt_matrix(&mut cx, kind);
    corrupt_labels(&mut cy, kind);
    (cx, cy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parsing() {
        let p = parse_plan("gen.fit:nan").unwrap();
        assert_eq!((p.site.as_str(), p.kind, p.rate, p.seed), ("gen.fit", FaultKind::Nan, 1.0, 0));
        let p = parse_plan("compare:task_fail:0.25:9").unwrap();
        assert_eq!(
            (p.site.as_str(), p.kind, p.rate, p.seed),
            ("compare", FaultKind::TaskFail, 0.25, 9)
        );
        let p = parse_plan(" tcl.fit : INF : 0.5 ").unwrap();
        assert_eq!((p.site.as_str(), p.kind, p.rate), ("tcl.fit", FaultKind::Inf, 0.5));
        for bad in
            ["", "gen.fit", "gen.fit:frobnicate", "gen.fit:nan:2.0", "gen.fit:nan:0.5:x:y", ":nan"]
        {
            assert!(parse_plan(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn kind_spellings_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.as_str()), Some(kind));
        }
    }

    #[test]
    fn firing_is_deterministic_and_site_scoped() {
        let _guard = test_lock();
        set_plan(Some("sel.knn:nan"));
        assert_eq!(fired(site::SEL_KNN), Some(FaultKind::Nan));
        assert_eq!(fired(site::GEN_FIT), None, "other sites never fire");

        set_plan(Some("sel.knn:nan:0.5:42"));
        let first: Vec<bool> = (0..64).map(|_| fired(site::SEL_KNN).is_some()).collect();
        set_plan(Some("sel.knn:nan:0.5:42"));
        let second: Vec<bool> = (0..64).map(|_| fired(site::SEL_KNN).is_some()).collect();
        assert_eq!(first, second, "same plan, same firing sequence");
        let hits = first.iter().filter(|&&f| f).count();
        assert!(hits > 8 && hits < 56, "rate 0.5 fires roughly half the time, got {hits}/64");

        set_plan(None);
        assert_eq!(fired(site::SEL_KNN), None);
    }

    #[test]
    fn rate_zero_never_fires() {
        let _guard = test_lock();
        set_plan(Some("compare:empty:0.0"));
        assert!((0..32).all(|_| fired(site::COMPARE).is_none()));
        set_plan(None);
    }

    #[test]
    fn matrix_corruption_kinds() {
        let base =
            FeatureMatrix::from_vecs(&[vec![0.1, 0.2], vec![0.3, 0.4], vec![0.5, 0.6]]).unwrap();
        let mut nan = base.clone();
        corrupt_matrix(&mut nan, FaultKind::Nan);
        assert!(nan.as_slice().iter().any(|v| v.is_nan()));
        assert_eq!(nan.rows(), 3);

        let mut inf = base.clone();
        corrupt_matrix(&mut inf, FaultKind::Inf);
        assert!(inf.as_slice().contains(&f64::INFINITY));

        let mut empty = base.clone();
        corrupt_matrix(&mut empty, FaultKind::Empty);
        assert!(empty.is_empty());
        assert_eq!(empty.cols(), 2);

        let mut untouched = base.clone();
        corrupt_matrix(&mut untouched, FaultKind::TaskFail);
        assert_eq!(untouched, base);
    }

    #[test]
    fn label_and_confidence_corruption() {
        let mut y = vec![Label::Match, Label::NonMatch, Label::Match];
        corrupt_labels(&mut y, FaultKind::SingleClass);
        assert!(y.iter().all(|l| *l == Label::NonMatch));
        corrupt_labels(&mut y, FaultKind::Empty);
        assert!(y.is_empty());

        let mut c = vec![0.9, 0.8, 0.7, 0.6];
        corrupt_confidences(&mut c, FaultKind::Nan);
        assert!(c[0].is_nan() && c[2].is_nan() && c[1] == 0.8);
        let mut c = vec![0.9, 0.8, 0.7, 0.6];
        corrupt_confidences(&mut c, FaultKind::Empty);
        assert_eq!(c, vec![0.9, 0.8, 0.7, 0.6]);
    }

    #[test]
    fn corrupted_pair_keeps_alignment_and_originals() {
        let x = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.9]]).unwrap();
        let y = vec![Label::NonMatch, Label::Match];
        let (cx, cy) = corrupted_pair(&x, &y, FaultKind::Empty);
        assert!(cx.is_empty() && cy.is_empty());
        assert_eq!(x.rows(), 2, "original untouched");
        let (cx, cy) = corrupted_pair(&x, &y, FaultKind::SingleClass);
        assert_eq!(cx, x);
        assert!(cy.iter().all(|l| *l == Label::NonMatch));
    }

    #[test]
    fn fault_counter_recorded_in_trace() {
        let _guard = test_lock();
        transer_trace::set_enabled(true);
        set_plan(Some("tcl.fit:task_fail"));
        assert_eq!(fired(site::TCL_FIT), Some(FaultKind::TaskFail));
        set_plan(None);
        let report = transer_trace::drain_report();
        transer_trace::set_enabled(false);
        assert_eq!(report.counters.get("robust.fault.tcl.fit"), Some(&1));
    }
}

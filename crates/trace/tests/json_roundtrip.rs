//! Differential tests for `transer_trace::json`: any document the writer
//! can produce must parse back to the identical value (pretty and compact
//! forms alike), real `TraceReport`s round-trip through their serialised
//! form, and malformed inputs — truncations, bad escapes, duplicate keys —
//! must return `Err`, never panic.

use proptest::prelude::*;
use std::collections::BTreeMap;
use transer_trace::json::{self, Json};
use transer_trace::{Histogram, SpanNode, TraceReport, Warning, REPORT_VERSION};

/// Deterministic xorshift; proptest drives only the seed.
fn xorshift(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    }
}

/// An ASCII string exercising every escape class the writer knows:
/// quotes, backslashes, the named control escapes and raw control bytes
/// (which serialise as `\u00xx`).
fn gen_string(rng: &mut impl FnMut() -> u64) -> String {
    const PIECES: &[&str] =
        &["a", "key", "\"", "\\", "\n", "\t", "\r", "\u{1}", "\u{1f}", "/", " "];
    let len = (rng() % 6) as usize;
    (0..len).map(|_| PIECES[(rng() % PIECES.len() as u64) as usize]).collect()
}

/// A finite number from a palette of integers, dyadic fractions and
/// extreme magnitudes — everything `write_num` prints round-trips through
/// the shortest `f64` representation.
fn gen_number(rng: &mut impl FnMut() -> u64) -> f64 {
    match rng() % 5 {
        0 => (rng() % 10_000) as f64,
        1 => -((rng() % 100) as f64),
        2 => (rng() % 1_000) as f64 / 8.0,
        3 => (rng() % 97) as f64 * 1e300,
        _ => (rng() % 97) as f64 * 1e-308, // subnormal territory
    }
}

/// A random document, depth-limited so the recursive parser stays well
/// within stack bounds.
fn gen_value(rng: &mut impl FnMut() -> u64, depth: usize) -> Json {
    let choices = if depth == 0 { 4 } else { 6 };
    match rng() % choices {
        0 => Json::Null,
        1 => Json::Bool(rng().is_multiple_of(2)),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = (rng() % 4) as usize;
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = (rng() % 4) as usize;
            let mut map = BTreeMap::new();
            for i in 0..n {
                // Suffix with the index so keys never collide (the writer
                // could not emit duplicates from a BTreeMap anyway).
                map.insert(format!("{}{i}", gen_string(rng)), gen_value(rng, depth - 1));
            }
            Json::Obj(map)
        }
    }
}

/// A randomised but structurally valid report, as `drain_report` would
/// produce it.
fn gen_report(rng: &mut impl FnMut() -> u64) -> TraceReport {
    const COUNTERS: &[&str] = &["a.calls", "b.hits", "c.misses", "d.bytes"];
    const HISTS: &[&str] = &["h.size", "h.score"];
    const SPANS: &[&str] = &["pipeline", "sel", "gen", "tcl"];
    let mut report = TraceReport::default();
    for &name in COUNTERS {
        if rng().is_multiple_of(2) {
            report.counters.insert(name, rng() % 1_000_000);
        }
    }
    for &name in HISTS {
        if rng().is_multiple_of(2) {
            let mut h = Histogram::default();
            for _ in 0..(rng() % 20) {
                h.observe(gen_number(rng));
            }
            report.hists.insert(name, h);
        }
    }
    for &name in SPANS.iter().take((rng() % 3) as usize + 1) {
        report.spans.push(SpanNode {
            name,
            secs: (rng() % 10_000) as f64 / 1e6,
            alloc_count: rng() % 1_000,
            alloc_bytes: rng() % 1_000_000,
            children: vec![],
        });
    }
    if rng().is_multiple_of(3) {
        report.warnings.push(Warning { context: "env".into(), message: gen_string(rng) });
    }
    report
}

proptest! {
    /// Writer → parser is the identity, in both output forms.
    #[test]
    fn generated_documents_round_trip(seed in any::<u64>()) {
        let mut rng = xorshift(seed);
        let doc = gen_value(&mut rng, 4);
        let pretty = doc.to_pretty();
        prop_assert_eq!(json::parse(&pretty).unwrap(), doc.clone());
        let compact = doc.to_compact();
        prop_assert_eq!(json::parse(&compact).unwrap(), doc);
    }

    /// Serialised trace reports parse back with the schema fields intact.
    #[test]
    fn trace_reports_round_trip_through_to_json(seed in any::<u64>()) {
        let mut rng = xorshift(seed);
        let report = gen_report(&mut rng);
        let text = report.to_json("prop");
        let doc = json::parse(&text).unwrap();
        prop_assert_eq!(doc.get("version").unwrap().as_num(), Some(REPORT_VERSION as f64));
        prop_assert_eq!(doc.get("task").unwrap().as_str(), Some("prop"));
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        prop_assert_eq!(spans.len(), report.spans.len());
        for (node, span) in report.spans.iter().zip(spans) {
            prop_assert_eq!(span.get("name").unwrap().as_str(), Some(node.name));
            prop_assert_eq!(span.get("alloc_count").unwrap().as_num(), Some(node.alloc_count as f64));
            prop_assert_eq!(span.get("alloc_bytes").unwrap().as_num(), Some(node.alloc_bytes as f64));
        }
        let counters = doc.get("counters").unwrap().as_obj().unwrap();
        prop_assert_eq!(counters.len(), report.counters.len());
        for (&name, &value) in &report.counters {
            prop_assert_eq!(counters[name].as_num(), Some(value as f64));
        }
        for (&name, hist) in &report.hists {
            let h = doc.get("histograms").unwrap().get(name).unwrap();
            prop_assert_eq!(h.get("count").unwrap().as_num(), Some(hist.count as f64));
        }
    }

    /// Every proper prefix of a serialised document is a parse error (the
    /// root is always an object, so a cut anywhere inside leaves it
    /// unbalanced) — and never a panic.
    #[test]
    fn truncations_error_out_gracefully(seed in any::<u64>()) {
        let mut rng = xorshift(seed);
        // Force an object root so prefixes can never be complete documents.
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), gen_value(&mut rng, 3));
        let text = Json::Obj(map).to_pretty();
        let body_len = text.trim_end().len();
        // The output is pure ASCII (non-ASCII never enters `gen_string`),
        // so every byte offset is a char boundary.
        let cut = (rng() % body_len as u64) as usize;
        prop_assert!(json::parse(&text[..cut]).is_err(), "prefix {cut} of {body_len} parsed");
    }

    /// Flipping one interior byte to a hostile character never panics the
    /// parser (it may still parse: e.g. a digit swapped inside a number).
    #[test]
    fn corrupted_bytes_never_panic(seed in any::<u64>()) {
        let mut rng = xorshift(seed);
        let mut map = BTreeMap::new();
        map.insert("key".to_string(), gen_value(&mut rng, 3));
        let mut text = Json::Obj(map).to_pretty().into_bytes();
        const HOSTILE: &[u8] = b"\\\"{}[]:,xeE+-.\x01";
        let at = (rng() % text.len() as u64) as usize;
        text[at] = HOSTILE[(rng() % HOSTILE.len() as u64) as usize];
        if let Ok(corrupted) = String::from_utf8(text) {
            let _ = json::parse(&corrupted); // Err or Ok — just no panic
        }
    }
}

#[test]
fn malformed_escapes_and_duplicates_are_errors() {
    let cases = [
        r#"{"a": "\q"}"#,                 // unknown escape
        r#"{"a": "\u12"}"#,               // truncated \u escape
        r#"{"a": "\u12zz"}"#,             // non-hex \u escape
        "{\"a\": \"unterminated",         // unterminated string
        r#"{"a": "x\"#,                   // unterminated escape at EOF
        r#"{"k": 1, "k": 2}"#,            // duplicate key, flat
        r#"{"o": {"i": [0], "i": [0]}}"#, // duplicate key, nested
        r#"{"a": 1e}"#,                   // dangling exponent
        r#"{"a": 1.2.3}"#,                // double decimal point
        r#"{"a": 01e+}"#,                 // malformed exponent tail
        "[1, 2,, 3]",                     // empty array slot
        "{,}",                            // empty object slot
    ];
    for bad in cases {
        assert!(json::parse(bad).is_err(), "{bad:?} should be an error");
    }
}

#[test]
fn non_ascii_strings_round_trip() {
    let doc = Json::Obj(BTreeMap::from([
        ("ключ".to_string(), Json::Str("ナルト — é\u{301}".to_string())),
        ("mixed".to_string(), Json::Str("a\u{1}б\"\\\n".to_string())),
    ]));
    assert_eq!(json::parse(&doc.to_pretty()).unwrap(), doc);
    assert_eq!(json::parse(&doc.to_compact()).unwrap(), doc);
}

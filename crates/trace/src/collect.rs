//! Thread-local collection: every thread records into its own buffer with
//! no synchronisation; the `transer-parallel` pool harvests worker buffers
//! and the owning thread absorbs them in worker order.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::hist::Histogram;
use crate::report::{SpanNode, TraceReport, Warning};

/// An open span on the thread-local stack.
struct Frame {
    name: &'static str,
    start: Instant,
    children: Vec<SpanNode>,
    /// Thread allocation counters ([`crate::alloc::thread_counters`]) when
    /// the span opened; the span's alloc profile is the delta at close.
    alloc_count0: u64,
    alloc_bytes0: u64,
}

/// Per-thread trace buffer.
#[derive(Default)]
pub(crate) struct Collector {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    stack: Vec<Frame>,
    roots: Vec<SpanNode>,
    warnings: Vec<Warning>,
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

pub(crate) fn with<R>(f: impl FnOnce(&mut Collector) -> R) -> R {
    COLLECTOR.with(|c| f(&mut c.borrow_mut()))
}

impl Collector {
    pub(crate) fn add_counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    pub(crate) fn observe(&mut self, name: &'static str, value: f64, n: u64) {
        self.hists.entry(name).or_default().observe_n(value, n);
    }

    pub(crate) fn push_warning(&mut self, warning: Warning) {
        self.warnings.push(warning);
    }

    pub(crate) fn open_span(&mut self, name: &'static str) {
        // Push first, snapshot after: growing the stack may itself allocate,
        // and that event belongs to whatever enclosed the push, not to the
        // span being opened.
        self.stack.push(Frame {
            name,
            start: Instant::now(),
            children: Vec::new(),
            alloc_count0: 0,
            alloc_bytes0: 0,
        });
        let (count, bytes) = crate::alloc::thread_counters();
        if let Some(frame) = self.stack.last_mut() {
            frame.alloc_count0 = count;
            frame.alloc_bytes0 = bytes;
        }
    }

    /// Close the innermost open span. `secs` overrides the measured
    /// duration when the caller timed the interval itself ([`crate::timed`]
    /// measures outside the collector so the duration is identical whether
    /// or not tracing records it).
    pub(crate) fn close_span(&mut self, secs: Option<f64>) {
        // Snapshot before popping: building and attaching the closed node
        // allocates, and those events belong to the enclosing span.
        let (alloc_count, alloc_bytes) = crate::alloc::thread_counters();
        let Some(frame) = self.stack.pop() else {
            return; // mismatched close (e.g. tracing toggled mid-span): drop
        };
        let node = SpanNode {
            name: frame.name,
            secs: secs.unwrap_or_else(|| frame.start.elapsed().as_secs_f64()),
            alloc_count: alloc_count.wrapping_sub(frame.alloc_count0),
            alloc_bytes: alloc_bytes.wrapping_sub(frame.alloc_bytes0),
            children: frame.children,
        };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => self.roots.push(node),
        }
    }

    fn attach_spans(&mut self, spans: Vec<SpanNode>) {
        match self.stack.last_mut() {
            Some(parent) => parent.children.extend(spans),
            None => self.roots.extend(spans),
        }
    }

    /// True when no span is open and nothing has been recorded.
    pub(crate) fn is_clear(&self) -> bool {
        self.stack.is_empty()
            && self.roots.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.warnings.is_empty()
    }

    pub(crate) fn take_report(&mut self) -> TraceReport {
        TraceReport {
            spans: std::mem::take(&mut self.roots),
            counters: std::mem::take(&mut self.counters),
            hists: std::mem::take(&mut self.hists),
            warnings: std::mem::take(&mut self.warnings),
        }
    }
}

/// Everything a worker thread recorded during one parallel call, moved out
/// of its thread-local buffer so the owning thread can absorb it.
///
/// `None` means the worker recorded nothing (always the case when tracing
/// is disabled) and makes the harvest/absorb pair allocation-free on the
/// disabled path.
#[derive(Debug, Default)]
pub struct WorkerTrace(Option<Box<TraceReport>>);

/// Move the calling thread's buffer out (counters, histograms, warnings
/// and any spans completed on this thread). Called by pool workers right
/// before they finish; open spans stay behind.
pub fn worker_harvest() -> WorkerTrace {
    if !crate::enabled() {
        return WorkerTrace(None);
    }
    with(|c| {
        if c.is_clear() {
            WorkerTrace(None)
        } else {
            WorkerTrace(Some(Box::new(c.take_report())))
        }
    })
}

/// Fold a harvested worker buffer into the calling thread's buffer.
/// Counters and histograms merge commutatively; worker spans become
/// children of the caller's innermost open span. The pool absorbs workers
/// in spawn order, so the merged stream is deterministic.
pub fn absorb(harvest: WorkerTrace) {
    let Some(report) = harvest.0 else { return };
    with(|c| {
        for (name, n) in report.counters {
            c.add_counter(name, n);
        }
        for (name, h) in report.hists {
            c.hists.entry(name).or_default().merge(&h);
        }
        c.warnings.extend(report.warnings);
        c.attach_spans(report.spans);
    });
}

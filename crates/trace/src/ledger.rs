//! The run ledger: one append-only JSONL record per bench/eval run.
//!
//! Every `bench_*` and eval bin holds a [`RunLedger`] guard for the
//! duration of `main`; when it drops, one compact JSON line is appended to
//! `results/ledger.jsonl` recording *what ran and under which knobs*: the
//! binary name and argv, the git revision, every `TRANSER_*` environment
//! variable that was set, wall-clock seconds, peak RSS, the process-global
//! trace counters (when tracing was on) and an optional bin-specific
//! summary. The ledger is the provenance trail behind the committed
//! `results/*.json` artefacts — `trace_diff` tells you *that* two runs
//! differ, the ledger tells you *what else changed* between them.
//!
//! The file is machine-parseable line by line with [`crate::json::parse`]
//! and is deliberately git-ignored: it is a local lab notebook, not a
//! committed artefact (the blessed snapshots live in `results/baselines/`).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::Json;

/// Default ledger path, relative to the working directory of the run.
pub const LEDGER_PATH: &str = "results/ledger.jsonl";

/// The `TRANSER_*` knobs recorded by every ledger entry (set-or-absent; an
/// unset variable is simply omitted from the record).
const ENV_KNOBS: &[&str] = &[
    "TRANSER_THREADS",
    "TRANSER_TRACE",
    "TRANSER_ALLOC_TRACE",
    "TRANSER_FAULT",
    "TRANSER_KNN_INDEX",
    "TRANSER_TREE_ENGINE",
    "TRANSER_GRAIN",
    "TRANSER_SIM_KERNEL",
    "TRANSER_L2_KERNEL",
    "TRANSER_SERVE_MODEL",
    "TRANSER_SERVE_INDEX",
    "TRANSER_SERVE_BATCH",
];

/// The current git revision: `.git/HEAD` resolved through loose refs and
/// `packed-refs`, with no subprocess. `None` outside a git checkout.
pub fn git_rev() -> Option<String> {
    let head = std::fs::read_to_string(".git/HEAD").ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return Some(head.to_string()); // detached HEAD: the hash itself
    };
    if let Ok(loose) = std::fs::read_to_string(format!(".git/{refname}")) {
        return Some(loose.trim().to_string());
    }
    let packed = std::fs::read_to_string(".git/packed-refs").ok()?;
    packed.lines().filter(|l| !l.starts_with(['#', '^'])).find_map(|l| {
        let (hash, name) = l.split_once(' ')?;
        (name.trim() == refname).then(|| hash.to_string())
    })
}

/// Peak resident set size of the current process in bytes (`VmHWM` from
/// `/proc/self/status`); `None` when the proc interface is unavailable
/// (non-Linux hosts) or unparsable. The high-water mark is per process,
/// which is why `bench_scale` runs every grid cell in a fresh child
/// process — each cell gets its own untainted peak.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The artefact path named by `--out <path>` (or its older alias
/// `--json <path>`) in `args`, falling back to `default`. Every
/// `bench_*`/eval bin resolves its output file through this one
/// convention.
pub fn out_path(args: &[String], default: &str) -> String {
    args.windows(2)
        .find(|w| w[0] == "--out" || w[0] == "--json")
        .map_or(default, |w| w[1].as_str())
        .to_string()
}

/// RAII guard that appends one normalized record to the run ledger when it
/// drops. Construct it first thing in `main`; optionally attach a summary
/// ([`RunLedger::set_summary`]) before the bin exits.
#[must_use = "the ledger record is written when the guard drops"]
pub struct RunLedger {
    bin: String,
    argv: Vec<String>,
    start: Instant,
    path: String,
    summary: Option<Json>,
}

impl RunLedger {
    /// Start a ledger entry for the named bin, capturing argv and the
    /// start time now.
    pub fn new(bin: &str) -> Self {
        RunLedger {
            bin: bin.to_string(),
            argv: std::env::args().skip(1).collect(),
            start: Instant::now(),
            path: LEDGER_PATH.to_string(),
            summary: None,
        }
    }

    /// Redirect the record to a different ledger file (tests).
    pub fn with_path(mut self, path: &str) -> Self {
        self.path = path.to_string();
        self
    }

    /// Attach a bin-specific summary object to the record (e.g. headline
    /// timings, the `--out` path written).
    pub fn set_summary(&mut self, summary: Json) {
        self.summary = Some(summary);
    }

    fn record(&mut self) -> Json {
        let mut rec = BTreeMap::new();
        rec.insert("bin".to_string(), Json::Str(self.bin.clone()));
        rec.insert(
            "argv".to_string(),
            Json::Arr(self.argv.iter().map(|a| Json::Str(a.clone())).collect()),
        );
        rec.insert("git_rev".to_string(), git_rev().map_or(Json::Null, Json::Str));
        let unix_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0.0, |d| d.as_secs_f64().floor());
        rec.insert("unix_secs".to_string(), Json::Num(unix_secs));
        let env: BTreeMap<String, Json> = ENV_KNOBS
            .iter()
            .filter_map(|&k| std::env::var(k).ok().map(|v| (k.to_string(), Json::Str(v))))
            .collect();
        rec.insert("env".to_string(), Json::Obj(env));
        rec.insert("secs_total".to_string(), Json::Num(self.start.elapsed().as_secs_f64()));
        rec.insert(
            "peak_rss_bytes".to_string(),
            peak_rss_bytes().map_or(Json::Null, |b| Json::Num(b as f64)),
        );
        if crate::enabled() {
            let counters: BTreeMap<String, Json> = crate::peek_global_report()
                .counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::Num(v as f64)))
                .collect();
            rec.insert("counters".to_string(), Json::Obj(counters));
        }
        if let Some(summary) = self.summary.take() {
            rec.insert("summary".to_string(), summary);
        }
        Json::Obj(rec)
    }
}

impl Drop for RunLedger {
    fn drop(&mut self) {
        let line = self.record().to_compact();
        if let Err(e) = append_line(&self.path, &line) {
            eprintln!("[transer] warning: ledger: cannot append to {}: {e}", self.path);
        }
    }
}

fn append_line(path: &str, line: &str) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    writeln!(file, "{line}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn guard_appends_one_parseable_record_per_run() {
        let dir = std::env::temp_dir().join("transer_ledger_test");
        let path = dir.join("ledger.jsonl");
        let path_str = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(&path);
        for _ in 0..2 {
            let mut guard = RunLedger::new("unit_test").with_path(path_str);
            guard.set_summary(Json::Obj(std::collections::BTreeMap::from([(
                "cells".to_string(),
                Json::Num(3.0),
            )])));
            drop(guard);
        }
        let text = std::fs::read_to_string(&path).expect("ledger written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "one record per guard");
        for line in lines {
            let rec = json::parse(line).expect("ledger line parses");
            assert_eq!(rec.get("bin").and_then(Json::as_str), Some("unit_test"));
            assert!(rec.get("secs_total").and_then(Json::as_num).is_some_and(|s| s >= 0.0));
            assert!(rec.get("env").and_then(Json::as_obj).is_some());
            assert_eq!(
                rec.get("summary").and_then(|s| s.get("cells")).and_then(Json::as_num),
                Some(3.0)
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn out_path_honours_out_and_json_flags() {
        let args = |a: &[&str]| a.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(out_path(&args(&[]), "d.json"), "d.json");
        assert_eq!(out_path(&args(&["--smoke", "--out", "x.json"]), "d.json"), "x.json");
        assert_eq!(out_path(&args(&["--json", "y.json"]), "d.json"), "y.json");
        assert_eq!(out_path(&args(&["--out"]), "d.json"), "d.json"); // dangling flag
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_reads_a_positive_high_water_mark() {
        let rss = peak_rss_bytes().expect("VmHWM on linux");
        assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
    }
}

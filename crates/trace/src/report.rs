//! The drained, serialisable form of a trace: span trees, merged counters
//! and histograms, and structured warnings.

use std::collections::BTreeMap;

use crate::hist::Histogram;
use crate::json::Json;

/// Version stamped into serialised reports: v2 adds the per-span
/// `alloc_count` / `alloc_bytes` fields (zero unless `TRANSER_ALLOC_TRACE`
/// was on). `trace_report --check` accepts v1 files without them.
pub const REPORT_VERSION: u64 = 2;

/// One completed span: a named wall-clock interval with nested children.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Static span name (e.g. `"pipeline"`, `"sel"`).
    pub name: &'static str,
    /// Wall-clock seconds from open to close (monotonic clock).
    pub secs: f64,
    /// Allocation events observed on the opening thread while the span was
    /// open (inclusive of same-thread children; always 0 unless
    /// `TRANSER_ALLOC_TRACE` is on). Spans harvested from pool workers keep
    /// their own worker-thread attribution.
    pub alloc_count: u64,
    /// Fresh bytes requested on the opening thread while the span was open
    /// (same attribution rules as `alloc_count`).
    pub alloc_bytes: u64,
    /// Spans opened and closed while this one was open, in order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search for a span by name (this node included).
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn to_json(&self) -> Json {
        Json::Obj(BTreeMap::from([
            ("name".to_string(), Json::Str(self.name.to_string())),
            ("secs".to_string(), Json::Num(self.secs)),
            ("alloc_count".to_string(), Json::Num(self.alloc_count as f64)),
            ("alloc_bytes".to_string(), Json::Num(self.alloc_bytes as f64)),
            ("children".to_string(), Json::Arr(self.children.iter().map(Self::to_json).collect())),
        ]))
    }
}

/// A structured warning recorded through the trace layer (e.g. an
/// unparsable `TRANSER_*` environment variable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Short machine-readable context (e.g. `"env"`).
    pub context: String,
    /// Human-readable message.
    pub message: String,
}

/// Everything a trace collected: span trees in completion order, counters
/// and histograms merged across workers, and warnings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceReport {
    /// Root spans in the order they completed.
    pub spans: Vec<SpanNode>,
    /// Named event counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named log2 histograms.
    pub hists: BTreeMap<&'static str, Histogram>,
    /// Structured warnings.
    pub warnings: Vec<Warning>,
}

impl TraceReport {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.warnings.is_empty()
    }

    /// Fold another report into this one: spans and warnings are appended
    /// in order, counters and histograms are summed/merged.
    pub fn merge(&mut self, other: TraceReport) {
        self.spans.extend(other.spans);
        for (name, n) in other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        for (name, h) in other.hists {
            self.hists.entry(name).or_default().merge(&h);
        }
        self.warnings.extend(other.warnings);
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Depth-first search across all root spans.
    pub fn find_span(&self, name: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(name))
    }

    /// Total `(alloc_count, alloc_bytes)` over *every* span with this name,
    /// anywhere in the forest. Summing over occurrences makes the result
    /// independent of where worker-harvested spans attached, so it is the
    /// shape-insensitive aggregate to assert on in tests and gates. Note
    /// that nested same-name spans double-count (attribution is inclusive).
    pub fn alloc_totals(&self, name: &str) -> (u64, u64) {
        fn walk(node: &SpanNode, name: &str, acc: &mut (u64, u64)) {
            if node.name == name {
                acc.0 = acc.0.saturating_add(node.alloc_count);
                acc.1 = acc.1.saturating_add(node.alloc_bytes);
            }
            for child in &node.children {
                walk(child, name, acc);
            }
        }
        let mut acc = (0, 0);
        for span in &self.spans {
            walk(span, name, &mut acc);
        }
        acc
    }

    /// Serialise to the versioned report JSON (see `trace_report --check`).
    pub fn to_json(&self, task: &str) -> String {
        let counters: BTreeMap<String, Json> =
            self.counters.iter().map(|(&k, &v)| (k.to_string(), Json::Num(v as f64))).collect();
        let hists: BTreeMap<String, Json> =
            self.hists.iter().map(|(&k, h)| (k.to_string(), hist_to_json(h))).collect();
        let warnings: Vec<Json> = self
            .warnings
            .iter()
            .map(|w| {
                Json::Obj(BTreeMap::from([
                    ("context".to_string(), Json::Str(w.context.clone())),
                    ("message".to_string(), Json::Str(w.message.clone())),
                ]))
            })
            .collect();
        Json::Obj(BTreeMap::from([
            ("version".to_string(), Json::Num(REPORT_VERSION as f64)),
            ("task".to_string(), Json::Str(task.to_string())),
            ("spans".to_string(), Json::Arr(self.spans.iter().map(SpanNode::to_json).collect())),
            ("counters".to_string(), Json::Obj(counters)),
            ("histograms".to_string(), Json::Obj(hists)),
            ("warnings".to_string(), Json::Arr(warnings)),
        ]))
        .to_pretty()
    }
}

fn hist_to_json(h: &Histogram) -> Json {
    let buckets: BTreeMap<String, Json> =
        h.buckets.iter().map(|(&e, &n)| (e.to_string(), Json::Num(n as f64))).collect();
    Json::Obj(BTreeMap::from([
        ("count".to_string(), Json::Num(h.count as f64)),
        ("sum".to_string(), Json::Num(h.sum)),
        ("min".to_string(), h.min.map_or(Json::Null, Json::Num)),
        ("max".to_string(), h.max.map_or(Json::Null, Json::Num)),
        ("zero".to_string(), Json::Num(h.zero as f64)),
        ("negative".to_string(), Json::Num(h.negative as f64)),
        ("inf".to_string(), Json::Num(h.inf as f64)),
        ("nan".to_string(), Json::Num(h.nan as f64)),
        ("buckets".to_string(), Json::Obj(buckets)),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> TraceReport {
        let mut h = Histogram::default();
        h.observe(1.5);
        h.observe(0.0);
        TraceReport {
            spans: vec![SpanNode {
                name: "pipeline",
                secs: 0.5,
                alloc_count: 12,
                alloc_bytes: 4096,
                children: vec![SpanNode {
                    name: "sel",
                    secs: 0.25,
                    alloc_count: 3,
                    alloc_bytes: 256,
                    children: vec![],
                }],
            }],
            counters: BTreeMap::from([("sel.accepted", 7u64)]),
            hists: BTreeMap::from([("gen.confidence", h)]),
            warnings: vec![Warning { context: "env".into(), message: "bad value".into() }],
        }
    }

    #[test]
    fn merge_sums_counters_and_appends_spans() {
        let mut a = sample();
        a.merge(sample());
        assert_eq!(a.counter("sel.accepted"), 14);
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.hists["gen.confidence"].count, 4);
        assert_eq!(a.warnings.len(), 2);
        assert_eq!(a.counter("missing"), 0);
        let mut b = TraceReport::default();
        assert!(b.is_empty());
        b.merge(sample());
        assert_eq!(b, sample());
    }

    #[test]
    fn find_span_descends_the_tree() {
        let r = sample();
        assert_eq!(r.find_span("sel").unwrap().secs, 0.25);
        assert!(r.find_span("gen").is_none());
    }

    #[test]
    fn alloc_totals_sum_over_occurrences() {
        let mut r = sample();
        r.merge(sample()); // two root "pipeline" spans now
        assert_eq!(r.alloc_totals("pipeline"), (24, 8192));
        assert_eq!(r.alloc_totals("sel"), (6, 512));
        assert_eq!(r.alloc_totals("absent"), (0, 0));
    }

    #[test]
    fn json_output_parses_and_has_the_schema_fields() {
        let text = sample().to_json("unit");
        let doc = json::parse(&text).unwrap();
        assert_eq!(doc.get("version").unwrap().as_num(), Some(REPORT_VERSION as f64));
        assert_eq!(doc.get("task").unwrap().as_str(), Some("unit"));
        let spans = doc.get("spans").unwrap().as_arr().unwrap();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("pipeline"));
        assert_eq!(spans[0].get("alloc_count").unwrap().as_num(), Some(12.0));
        assert_eq!(spans[0].get("alloc_bytes").unwrap().as_num(), Some(4096.0));
        let kids = spans[0].get("children").unwrap().as_arr().unwrap();
        assert_eq!(kids[0].get("name").unwrap().as_str(), Some("sel"));
        let hist = doc.get("histograms").unwrap().get("gen.confidence").unwrap();
        assert_eq!(hist.get("count").unwrap().as_num(), Some(2.0));
        assert_eq!(hist.get("zero").unwrap().as_num(), Some(1.0));
        assert_eq!(hist.get("buckets").unwrap().get("0").unwrap().as_num(), Some(1.0));
        assert_eq!(doc.get("counters").unwrap().get("sel.accepted").unwrap().as_num(), Some(7.0));
    }
}

//! **transer-trace** — a from-scratch, std-only structured observability
//! layer: hierarchical spans (monotonic-clock timings with parent/child
//! nesting), named counters and log2-bucketed histograms.
//!
//! # Zero overhead when disabled
//!
//! Tracing is off unless the `TRANSER_TRACE` environment variable is set
//! to something other than `0`/`false`/`off`/empty. Every recording entry
//! point starts with [`enabled`] — a single relaxed atomic load and a
//! compare, branch-predicted false after the first call — so instrumented
//! hot loops cost a handful of branch-predictable instructions when
//! disabled. Instrumentation is also *placed* at batch granularity (per
//! chunk, per query, per node) rather than per element wherever possible,
//! so even the enabled path stays cheap.
//!
//! Tracing never changes results: collectors are observers, all merged
//! state is commutative or order-pinned, and the workspace's bit-identity
//! tests run with tracing on and off.
//!
//! # Threading model
//!
//! Every thread records into a thread-local buffer — no locks, no atomics
//! beyond the enabled flag. The `transer-parallel` pool harvests each
//! worker's buffer ([`worker_harvest`]) as the worker finishes and the
//! owning thread absorbs them in worker spawn order ([`absorb`]), so the
//! merged counters and histograms are identical for any worker count.
//!
//! # Reports
//!
//! [`drain_report`] moves the calling thread's buffer into a
//! [`TraceReport`] (and folds a copy into a process-wide accumulator so
//! harnesses that run many pipelines can collect everything at the end via
//! [`take_global_report`]). Reports serialise to a versioned JSON schema
//! rendered by the `trace_report` bin.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod collect;
pub mod hist;
pub mod json;
pub mod ledger;
mod report;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use collect::{absorb, worker_harvest, WorkerTrace};
pub use hist::Histogram;
pub use ledger::RunLedger;
pub use report::{SpanNode, TraceReport, Warning, REPORT_VERSION};

/// Environment variable enabling tracing (`0`/`false`/`off`/empty = off).
pub const TRACE_ENV: &str = "TRANSER_TRACE";

/// 0 = uninitialised, 1 = disabled, 2 = enabled.
static STATE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_state() -> u8 {
    let on = match std::env::var(TRACE_ENV) {
        Ok(v) => {
            let t = v.trim();
            !(t.is_empty()
                || t == "0"
                || t.eq_ignore_ascii_case("false")
                || t.eq_ignore_ascii_case("off"))
        }
        Err(_) => false,
    };
    let state = if on { 2 } else { 1 };
    // A racing `set_enabled` wins; the stored state is what matters.
    match STATE.compare_exchange(0, state, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => state,
        Err(current) => current,
    }
}

/// Is tracing enabled? The fast path — one relaxed load and a compare —
/// is what every instrumented call site pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return init_state() == 2;
    }
    state == 2
}

/// Force tracing on or off for the whole process, overriding
/// `TRANSER_TRACE`. For tests and benchmarks (environment variables are
/// process-global and read once; this flips the same switch directly).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Increment the named counter by `delta`. No-op when disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() && delta > 0 {
        collect::with(|c| c.add_counter(name, delta));
    }
}

/// Record one observation into the named log2 histogram. No-op when
/// disabled.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    if enabled() {
        collect::with(|c| c.observe(name, value, 1));
    }
}

/// Record `n` identical observations into the named histogram. No-op when
/// disabled.
#[inline]
pub fn observe_n(name: &'static str, value: f64, n: u64) {
    if enabled() && n > 0 {
        collect::with(|c| c.observe(name, value, n));
    }
}

/// An RAII span guard: the span closes (and its duration is recorded into
/// the thread-local span tree) when the guard drops.
#[must_use = "a span guard measures until it is dropped"]
pub struct Span {
    opened: bool,
}

/// Open a nested span. A complete no-op when disabled.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { opened: false };
    }
    collect::with(|c| c.open_span(name));
    Span { opened: true }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.opened {
            collect::with(|c| c.close_span(None));
        }
    }
}

/// A span that *always* measures wall-clock time — [`TimedSpan::finish`]
/// returns the elapsed seconds whether or not tracing is enabled — and
/// records itself into the span tree only when tracing is on.
///
/// This is how pipeline diagnostics (`Diagnostics` phase seconds) derive
/// from the span tree without making timings depend on `TRANSER_TRACE`.
#[must_use = "call finish() to read the elapsed seconds"]
pub struct TimedSpan {
    start: Instant,
    opened: bool,
}

/// Open a timed span (see [`TimedSpan`]).
#[inline]
pub fn timed(name: &'static str) -> TimedSpan {
    let opened = enabled();
    if opened {
        collect::with(|c| c.open_span(name));
    }
    TimedSpan { start: Instant::now(), opened }
}

impl TimedSpan {
    /// Close the span and return its wall-clock duration in seconds.
    pub fn finish(mut self) -> f64 {
        let secs = self.start.elapsed().as_secs_f64();
        if self.opened {
            collect::with(|c| c.close_span(Some(secs)));
            self.opened = false;
        }
        secs
    }
}

impl Drop for TimedSpan {
    fn drop(&mut self) {
        if self.opened {
            let secs = self.start.elapsed().as_secs_f64();
            collect::with(|c| c.close_span(Some(secs)));
        }
    }
}

/// Run `f`, attributing the allocation events/bytes it performs on the
/// calling thread to the two named counters. A plain call to `f` unless
/// both tracing *and* allocation profiling (`TRANSER_ALLOC_TRACE`) are on.
///
/// Unlike per-span attribution, counters merge through the deterministic
/// worker harvest — so scoped alloc totals recorded inside pool workers
/// are bit-identical at any worker count, exactly like every other
/// counter.
#[inline]
pub fn alloc_counted<R>(
    count_name: &'static str,
    bytes_name: &'static str,
    f: impl FnOnce() -> R,
) -> R {
    if !enabled() || !alloc::enabled() {
        return f();
    }
    let (c0, b0) = alloc::thread_counters();
    let out = f();
    let (c1, b1) = alloc::thread_counters();
    counter(count_name, c1.wrapping_sub(c0));
    counter(bytes_name, b1.wrapping_sub(b0));
    out
}

/// Record a structured warning. The warning always goes to stderr (it
/// reports a misconfiguration the user should see regardless of tracing)
/// and is additionally kept in the report when tracing is enabled.
pub fn warn(context: &str, message: &str) {
    eprintln!("[transer] warning: {context}: {message}");
    if enabled() {
        collect::with(|c| {
            c.push_warning(Warning { context: context.to_string(), message: message.to_string() });
        });
    }
}

/// The standard warning for a set-but-unparsable `TRANSER_*` environment
/// variable that falls back to a default instead of failing.
pub fn warn_invalid_env(var: &str, value: &str, expected: &str, fallback: &str) {
    warn("env", &format!("{var}={value:?} is not {expected}; using {fallback}"));
}

/// Process-wide accumulator of everything [`drain_report`] has drained.
static GLOBAL: Mutex<Option<TraceReport>> = Mutex::new(None);

/// Move the calling thread's buffer into a [`TraceReport`]. A copy is
/// folded into the process-wide accumulator (see [`take_global_report`]).
/// Returns an empty report when tracing is disabled.
pub fn drain_report() -> TraceReport {
    if !enabled() {
        return TraceReport::default();
    }
    // Open spans stay on the thread's stack: they belong to a future drain
    // once they close.
    let report = collect::with(|c| c.take_report());
    if !report.is_empty() {
        // A panicking holder cannot corrupt the accumulator (every critical
        // section is a merge/take that leaves it valid), so recover the
        // report from a poisoned lock instead of propagating the panic.
        let mut global = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        global.get_or_insert_with(TraceReport::default).merge(report.clone());
    }
    report
}

/// Drain the calling thread, then *copy* the process-wide accumulated
/// report without clearing it. For observers (e.g. the run ledger) that
/// want the counters-so-far while leaving [`take_global_report`]'s
/// take-and-clear semantics to the experiment harness.
pub fn peek_global_report() -> TraceReport {
    let _ = drain_report();
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).clone().unwrap_or_default()
}

/// Drain the calling thread, then take (and clear) the process-wide
/// accumulated report: the union of every [`drain_report`] since the last
/// take. This is how experiment harnesses that run many pipelines write
/// one `TRACE_<task>.json` at the end.
pub fn take_global_report() -> TraceReport {
    // `drain_report` folds the thread's tail into the accumulator, so after
    // it the accumulator is the complete picture.
    let _ = drain_report();
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner()).take().unwrap_or_default()
}

/// True when the calling thread's buffer holds nothing (no open spans, no
/// recorded data). Used by the disabled-path tests.
pub fn thread_buffer_is_clear() -> bool {
    collect::with(|c| c.is_clear())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; every test that flips it runs under
    // this lock and restores "disabled" at the end. Shared with the
    // `alloc` module's tests, which flip the (equally global) allocation
    // profiling switch.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_tracing<R>(on: bool, f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_global_report(); // isolate from earlier tests
        set_enabled(on);
        let out = f();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_path_records_nothing() {
        with_tracing(false, || {
            counter("t.count", 3);
            observe("t.hist", 1.5);
            let s = span("t.span");
            drop(s);
            let t = timed("t.timed");
            assert!(t.finish() >= 0.0);
            assert!(thread_buffer_is_clear());
            assert!(drain_report().is_empty());
            assert!(take_global_report().is_empty());
        });
    }

    #[test]
    fn enabled_path_builds_a_nested_report() {
        let report = with_tracing(true, || {
            let root = timed("root");
            {
                let _child = span("child");
                counter("t.count", 2);
                counter("t.count", 3);
                observe("t.hist", 4.0);
                observe_n("t.hist", 0.5, 2);
            }
            let secs = root.finish();
            assert!(secs >= 0.0);
            drain_report()
        });
        assert_eq!(report.counter("t.count"), 5);
        let h = &report.hists["t.hist"];
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[&2], 1);
        assert_eq!(h.buckets[&-1], 2);
        let root = report.find_span("root").expect("root span");
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "child");
        assert!(root.secs >= root.children[0].secs);
        // Drained: the thread buffer is clear again.
        assert!(thread_buffer_is_clear());
    }

    #[test]
    fn harvest_and_absorb_move_worker_buffers() {
        let report = with_tracing(true, || {
            let _root = span("owner");
            let harvests: Vec<WorkerTrace> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        scope.spawn(move || {
                            counter("w.count", i + 1);
                            observe("w.hist", (i + 1) as f64);
                            worker_harvest()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for h in harvests {
                absorb(h);
            }
            drop(_root);
            drain_report()
        });
        assert_eq!(report.counter("w.count"), 6);
        assert_eq!(report.hists["w.hist"].count, 3);
        assert!(report.find_span("owner").is_some());
    }

    #[test]
    fn global_accumulator_collects_across_drains() {
        let total = with_tracing(true, || {
            counter("g.count", 1);
            let first = drain_report();
            assert_eq!(first.counter("g.count"), 1);
            counter("g.count", 10);
            let _ = drain_report();
            take_global_report()
        });
        assert_eq!(total.counter("g.count"), 11);
        // Taking clears it.
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(take_global_report().is_empty());
    }

    #[test]
    fn spans_attribute_simulated_allocations() {
        let report = with_tracing(true, || {
            alloc::set_enabled(true);
            let outer = span("alloc.outer");
            alloc::on_alloc(100);
            {
                let inner = span("alloc.inner");
                alloc::on_alloc(50);
                alloc::on_alloc(50);
                drop(inner);
            }
            drop(outer);
            alloc::set_enabled(false);
            drain_report()
        });
        let inner = report.find_span("alloc.inner").expect("inner span");
        assert_eq!((inner.alloc_count, inner.alloc_bytes), (2, 100));
        let outer = report.find_span("alloc.outer").expect("outer span");
        // Inclusive attribution: the outer span sees its own event plus the
        // inner span's two, plus whatever the trace machinery itself did
        // while closing the inner span (real allocator hooks would add
        // those; the simulated hook records exactly the explicit calls).
        assert_eq!((outer.alloc_count, outer.alloc_bytes), (3, 200));
        assert_eq!(report.alloc_totals("alloc.inner"), (2, 100));
    }

    #[test]
    fn alloc_counted_records_deltas_into_counters() {
        let report = with_tracing(true, || {
            alloc::set_enabled(true);
            let out = alloc_counted("t.alloc.count", "t.alloc.bytes", || {
                alloc::on_alloc(64);
                alloc::on_alloc(192);
                7
            });
            assert_eq!(out, 7);
            alloc::set_enabled(false);
            // Disabled profiling: no counters recorded, `f` still runs.
            let out = alloc_counted("t.alloc.count", "t.alloc.bytes", || 8);
            assert_eq!(out, 8);
            drain_report()
        });
        assert_eq!(report.counter("t.alloc.count"), 2);
        assert_eq!(report.counter("t.alloc.bytes"), 256);
    }

    #[test]
    fn peek_keeps_the_accumulator_intact() {
        let (peeked, taken) = with_tracing(true, || {
            counter("p.count", 4);
            let _ = drain_report();
            counter("p.count", 1);
            let peeked = peek_global_report();
            let taken = take_global_report();
            (peeked, taken)
        });
        assert_eq!(peeked.counter("p.count"), 5, "peek folds the thread tail in");
        assert_eq!(taken.counter("p.count"), 5, "peek must not clear the accumulator");
    }

    #[test]
    fn warnings_are_recorded_when_enabled() {
        let report = with_tracing(true, || {
            warn_invalid_env("TRANSER_DEMO", "seven", "an integer", "the default");
            drain_report()
        });
        assert_eq!(report.warnings.len(), 1);
        assert_eq!(report.warnings[0].context, "env");
        assert!(report.warnings[0].message.contains("TRANSER_DEMO"));
    }
}

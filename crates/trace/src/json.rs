//! A minimal JSON value model with a writer and a strict parser.
//!
//! The workspace's vendored `serde_json` stub only serialises; the trace
//! layer also needs to *read* its own reports back (the `trace_report`
//! pretty-printer and the tier-1 schema check), so it carries this
//! self-contained implementation. It supports exactly the JSON subset the
//! trace reports use: objects, arrays, strings, finite numbers, booleans
//! and `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are kept in a `BTreeMap`, so
/// serialisation is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`; the report's integers are
    /// far below 2^53, where `f64` is exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entries when this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialise with 2-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serialise on one line with no whitespace — the JSONL form used by
    /// the run ledger (`results/ledger.jsonl`, one record per line).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(map) if map.is_empty() => out.push_str("{}"),
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    pad(out, indent + 1);
                    write_str(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

/// Build a [`Json::Obj`] from `(key, value)` pairs — the shared literal
/// constructor of every artefact-writing bin.
pub fn obj(entries: Vec<(&str, Json)>) -> Json {
    Json::Obj(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Write `doc` to `path` in pretty form, creating parent directories.
/// The shared artefact writer of the `bench_*`/eval bins: one code path
/// for `results/*.json` means one place that creates `results/`.
pub fn write_pretty(path: &str, doc: &Json) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc.to_pretty())
}

fn pad(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no NaN/inf; the report never produces them, but never
        // emit invalid JSON regardless.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Rejects trailing garbage.
///
/// # Errors
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.contains_key(&key) {
                // A BTreeMap would silently keep one of the two values;
                // reports never emit duplicates, so seeing one means the
                // file is corrupt (or hand-edited) — fail loudly.
                return Err(format!("duplicate object key {key:?} at byte {key_at}"));
            }
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // map unpaired ones to U+FFFD rather than fail.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume the maximal run up to the next quote or
                    // escape in one slice. `"` and `\` are ASCII, so they
                    // never occur inside a multi-byte UTF-8 sequence and
                    // the run boundary is always a character boundary.
                    // (Validating per character would rescan the remaining
                    // input each time — quadratic on large artefacts.)
                    let start = self.pos;
                    while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8")?;
                    out.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_report_like_document() {
        let mut obj = BTreeMap::new();
        obj.insert("version".into(), Json::Num(1.0));
        obj.insert("task".into(), Json::Str("controlled \"x\"\n".into()));
        obj.insert(
            "spans".into(),
            Json::Arr(vec![Json::Obj(BTreeMap::from([
                ("name".into(), Json::Str("pipeline".into())),
                ("secs".into(), Json::Num(0.012345)),
                ("children".into(), Json::Arr(vec![])),
            ]))]),
        );
        obj.insert("empty".into(), Json::Obj(BTreeMap::new()));
        obj.insert("flag".into(), Json::Bool(true));
        obj.insert("nothing".into(), Json::Null);
        obj.insert("neg".into(), Json::Num(-2.5e-3));
        let doc = Json::Obj(obj);
        let text = doc.to_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\"", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_duplicate_object_keys() {
        let err = parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(err.contains("duplicate object key \"a\""), "{err}");
        // Nested objects are checked too.
        assert!(parse(r#"{"outer": {"x": 1, "x": 1}}"#).is_err());
    }

    #[test]
    fn compact_form_round_trips_and_has_no_whitespace() {
        let doc = Json::Obj(BTreeMap::from([
            ("bin".into(), Json::Str("bench_sel \"q\"".into())),
            ("secs".into(), Json::Num(1.25)),
            ("argv".into(), Json::Arr(vec![Json::Str("--smoke".into()), Json::Null])),
            ("empty".into(), Json::Obj(BTreeMap::new())),
        ]));
        let line = doc.to_compact();
        assert!(!line.contains('\n') && !line.contains(": "), "{line}");
        assert_eq!(parse(&line).unwrap(), doc);
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v = parse(r#"{"a": 1e3, "b": -0.5, "c": "x\u0041\ty"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().as_num(), Some(-0.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("xA\ty"));
    }
}

//! Log2-bucketed histograms.
//!
//! Finite positive normal values land in the bucket `[2^e, 2^(e+1))` keyed
//! by their unbiased binary exponent `e`, read directly from the IEEE-754
//! bit pattern (one mask + shift, no `log2` call). Values the exponent
//! cannot classify are tracked in dedicated side counters with a fixed
//! policy:
//!
//! * `0.0`, `-0.0` and positive subnormals → `zero` (an underflow bucket:
//!   subnormals are below `2^-1022`, finer than any bucket we keep),
//! * negative values including `-inf` → `negative`,
//! * `+inf` → `inf`,
//! * `NaN` → `nan`.
//!
//! `count`/`sum`/`min`/`max` cover the finite observations (including
//! zeros, subnormals and negatives) so means stay meaningful even when a
//! few stray values hit the side counters.

use std::collections::BTreeMap;

/// A sparse log2 histogram: bucket `e` counts observations in
/// `[2^e, 2^(e+1))`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    /// Finite observations (everything except `nan` / `inf`).
    pub count: u64,
    /// Sum of the finite observations.
    pub sum: f64,
    /// Smallest finite observation (`None` until one arrives).
    pub min: Option<f64>,
    /// Largest finite observation (`None` until one arrives).
    pub max: Option<f64>,
    /// Underflow: `±0.0` and positive subnormals.
    pub zero: u64,
    /// Negative values, including `-inf`.
    pub negative: u64,
    /// `+inf` observations.
    pub inf: u64,
    /// `NaN` observations.
    pub nan: u64,
    /// Sparse buckets keyed by unbiased exponent.
    pub buckets: BTreeMap<i16, u64>,
}

/// The bucket a value falls into, or `None` when it belongs to one of the
/// side counters. Only finite positive normal values have a bucket.
pub fn bucket_of(value: f64) -> Option<i16> {
    if !value.is_finite() || value <= 0.0 {
        return None;
    }
    let biased = ((value.to_bits() >> 52) & 0x7ff) as i16;
    if biased == 0 {
        return None; // positive subnormal: below every bucket we keep
    }
    Some(biased - 1023)
}

impl Histogram {
    /// Record one observation. All `u64` totals saturate at `u64::MAX`
    /// rather than wrap — a histogram fed more than 2^64 observations
    /// pins at the ceiling instead of silently restarting from zero.
    pub fn observe(&mut self, value: f64) {
        self.observe_n(value, 1);
    }

    /// Record `value` `n` times (used when counting e.g. band sizes that
    /// are already aggregated). Saturating, like [`Histogram::observe`].
    pub fn observe_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if value.is_nan() {
            self.nan = self.nan.saturating_add(n);
            return;
        }
        if value == f64::INFINITY {
            self.inf = self.inf.saturating_add(n);
            return;
        }
        if value == f64::NEG_INFINITY {
            self.negative = self.negative.saturating_add(n);
            return;
        }
        self.count = self.count.saturating_add(n);
        self.sum += value * n as f64;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
        match bucket_of(value) {
            Some(e) => {
                let slot = self.buckets.entry(e).or_insert(0);
                *slot = slot.saturating_add(n);
            }
            None if value < 0.0 => self.negative = self.negative.saturating_add(n),
            None => self.zero = self.zero.saturating_add(n),
        }
    }

    /// Fold another histogram into this one. Commutative and associative,
    /// which is what makes the worker merge order-insensitive in value
    /// (the merge is still performed in worker order for determinism of
    /// any future order-sensitive fields). Totals saturate like
    /// [`Histogram::observe_n`].
    pub fn merge(&mut self, other: &Histogram) {
        self.count = self.count.saturating_add(other.count);
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.zero = self.zero.saturating_add(other.zero);
        self.negative = self.negative.saturating_add(other.negative);
        self.inf = self.inf.saturating_add(other.inf);
        self.nan = self.nan.saturating_add(other.nan);
        for (&e, &n) in &other.buckets {
            let slot = self.buckets.entry(e).or_insert(0);
            *slot = slot.saturating_add(n);
        }
    }

    /// Total observations including the non-finite side counters
    /// (saturating, so it never wraps past `u64::MAX`).
    pub fn total(&self) -> u64 {
        self.count.saturating_add(self.inf).saturating_add(self.nan)
    }

    /// Mean of the finite observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        // [2^e, 2^(e+1)) — the lower edge is inclusive, the upper exclusive.
        for e in [-1022i32, -600, -3, -1, 0, 1, 4, 52, 1023] {
            let lo = (e as f64).exp2();
            assert_eq!(bucket_of(lo), Some(e as i16), "lower edge of e={e}");
            let below = f64::from_bits(lo.to_bits() - 1);
            if below > 0.0 && below.is_normal() {
                assert_eq!(bucket_of(below), Some((e - 1) as i16), "just below e={e}");
            }
            let hi = ((e + 1) as f64).exp2();
            if hi.is_finite() {
                let inside = f64::from_bits(hi.to_bits() - 1);
                assert_eq!(bucket_of(inside), Some(e as i16), "upper edge of e={e}");
            }
        }
        assert_eq!(bucket_of(1.5), Some(0));
        assert_eq!(bucket_of(3.0), Some(1));
        assert_eq!(bucket_of(1024.0), Some(10));
    }

    #[test]
    fn subnormals_zero_and_specials_have_no_bucket() {
        assert_eq!(bucket_of(0.0), None);
        assert_eq!(bucket_of(-0.0), None);
        assert_eq!(bucket_of(f64::MIN_POSITIVE / 2.0), None); // subnormal
        assert_eq!(bucket_of(f64::from_bits(1)), None); // smallest subnormal
        assert_eq!(bucket_of(-1.0), None);
        assert_eq!(bucket_of(f64::NAN), None);
        assert_eq!(bucket_of(f64::INFINITY), None);
        assert_eq!(bucket_of(f64::NEG_INFINITY), None);
        // Largest normal is still bucketed.
        assert_eq!(bucket_of(f64::MAX), Some(1023));
        assert_eq!(bucket_of(f64::MIN_POSITIVE), Some(-1022));
    }

    #[test]
    fn observe_policy_for_special_values() {
        let mut h = Histogram::default();
        h.observe(0.0);
        h.observe(-0.0);
        h.observe(f64::MIN_POSITIVE / 4.0);
        h.observe(-2.5);
        h.observe(f64::NEG_INFINITY);
        h.observe(f64::INFINITY);
        h.observe(f64::NAN);
        assert_eq!(h.zero, 3);
        assert_eq!(h.negative, 2); // -2.5 and -inf
        assert_eq!(h.inf, 1);
        assert_eq!(h.nan, 1);
        // Finite values (0, -0, subnormal, -2.5) count toward count/min/max.
        assert_eq!(h.count, 4);
        assert_eq!(h.min, Some(-2.5));
        assert!(h.buckets.is_empty());
    }

    #[test]
    fn observe_and_merge_agree_with_sequential() {
        let values = [0.75, 1.0, 1.5, 2.0, 3.9, 4.0, 1e-3, 1e300, 0.0, -1.0];
        let mut whole = Histogram::default();
        for v in values {
            whole.observe(v);
        }
        let (mut a, mut b) = (Histogram::default(), Histogram::default());
        for (i, v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(*v);
            } else {
                b.observe(*v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(whole.count, 10);
        assert_eq!(whole.buckets[&0], 2); // 1.0, 1.5
        assert_eq!(whole.buckets[&1], 2); // 2.0, 3.9
        assert_eq!(whole.buckets[&2], 1); // 4.0
        assert_eq!(whole.buckets[&-1], 1); // 0.75
        assert_eq!(whole.mean().unwrap(), whole.sum / 10.0);
    }

    #[test]
    fn saturating_totals_never_wrap() {
        let mut h = Histogram::default();
        h.observe_n(2.0, u64::MAX);
        h.observe_n(2.0, 5); // would wrap; must pin at the ceiling
        h.observe_n(f64::NAN, u64::MAX);
        h.observe_n(f64::NAN, 1);
        h.observe_n(f64::INFINITY, u64::MAX);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.buckets[&1], u64::MAX);
        assert_eq!(h.nan, u64::MAX);
        assert_eq!(h.total(), u64::MAX, "total saturates too");
        let mut other = Histogram::default();
        other.observe_n(2.0, 7);
        other.observe_n(-1.0, u64::MAX);
        h.merge(&other);
        assert_eq!(h.count, u64::MAX);
        assert_eq!(h.negative, u64::MAX);
        // merging the saturated histogram into a fresh one saturates there
        let mut fresh = Histogram::default();
        fresh.observe_n(2.0, 3);
        fresh.merge(&h);
        assert_eq!(fresh.count, u64::MAX);
    }

    #[test]
    fn merge_handles_empty_subnormal_and_infinite_edges() {
        // Merging an empty histogram is the identity in both directions.
        let mut a = Histogram::default();
        a.observe(1.5);
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
        let mut empty = Histogram::default();
        empty.merge(&before);
        assert_eq!(empty, before);

        // Subnormals land in `zero` but still drive count/min/max/sum.
        let sub = f64::MIN_POSITIVE / 2.0;
        let mut s = Histogram::default();
        s.observe_n(sub, 2);
        assert_eq!((s.zero, s.count), (2, 2));
        assert_eq!(s.min, Some(sub));

        // ±Inf go to side counters and leave min/max untouched.
        let mut inf = Histogram::default();
        inf.observe_n(f64::INFINITY, 3);
        inf.observe_n(f64::NEG_INFINITY, 4);
        assert_eq!((inf.inf, inf.negative, inf.count), (3, 4, 0));
        assert_eq!((inf.min, inf.max), (None, None));
        s.merge(&inf);
        assert_eq!((s.inf, s.negative, s.count), (3, 4, 2));
        assert_eq!(s.max, Some(sub), "inf must not become the finite max");
        assert_eq!(s.total(), 2 + 3);
    }

    #[test]
    fn observe_n_zero_is_a_no_op_for_every_class_of_value() {
        let mut h = Histogram::default();
        for v in [1.0, 0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            h.observe_n(v, 0);
        }
        assert_eq!(h, Histogram::default());
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn observe_n_matches_repeated_observe() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [5.0, 0.0, -3.0, f64::NAN, f64::INFINITY] {
            a.observe_n(v, 3);
            for _ in 0..3 {
                b.observe(v);
            }
        }
        a.observe_n(9.0, 0);
        assert_eq!(a, b);
    }
}

//! Allocation profiling: env-gated, thread-local allocation counters.
//!
//! This module owns the *accounting* half of the allocation profiler: a
//! process-global enable switch (the `TRANSER_ALLOC_TRACE` environment
//! variable, read once) and per-thread event/byte counters. The *hooking*
//! half — the `#[global_allocator]` that actually observes allocations —
//! lives in `transer-common` (`CountingAllocator`), because a global
//! allocator needs one `unsafe impl` and this crate stays safe code; the
//! allocator calls [`on_alloc`] / [`on_realloc`] on every successful
//! allocation.
//!
//! # Zero overhead when disabled
//!
//! [`on_alloc`] starts with [`enabled`] — a single relaxed atomic load and
//! a compare — so when `TRANSER_ALLOC_TRACE` is off every allocation in
//! the process pays a handful of branch-predicted instructions and touches
//! no thread-local state.
//!
//! # Reentrancy
//!
//! The counters are plain `const`-initialised `Cell`s: reading or bumping
//! them never allocates, so the allocator hook cannot recurse. The one
//! allocation the module itself performs — reading the environment
//! variable on first use — is guarded by an *initialising* state that the
//! recursive [`enabled`] calls observe as "off".
//!
//! # Counting policy
//!
//! Every successful allocator round-trip (`alloc`, `alloc_zeroed`,
//! `realloc`) counts **one event**; bytes accumulate the fresh bytes
//! requested (for `realloc`, the growth over the old size — a shrinking
//! or same-size `realloc` still counts one event with zero bytes).
//! Deallocations are not tracked: the profile answers "how much does this
//! region churn the allocator", not "what is resident".

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable enabling allocation profiling
/// (`0`/`false`/`off`/empty = off).
pub const ALLOC_ENV: &str = "TRANSER_ALLOC_TRACE";

/// 0 = uninitialised, 1 = disabled, 2 = enabled, 3 = initialising (treated
/// as disabled so the env-var read below cannot recurse through the
/// allocator hook).
static STATE: AtomicU8 = AtomicU8::new(0);

#[cold]
fn init_state() -> u8 {
    // Claim the initialising state first: any allocation performed while
    // reading the environment re-enters `enabled`, sees 3 and bails out.
    if STATE.compare_exchange(0, 3, Ordering::Relaxed, Ordering::Relaxed).is_err() {
        return STATE.load(Ordering::Relaxed);
    }
    let on = match std::env::var(ALLOC_ENV) {
        Ok(v) => {
            let t = v.trim();
            !(t.is_empty()
                || t == "0"
                || t.eq_ignore_ascii_case("false")
                || t.eq_ignore_ascii_case("off"))
        }
        Err(_) => false,
    };
    let state = if on { 2 } else { 1 };
    // A racing `set_enabled` may have overwritten 3; its choice wins.
    let _ = STATE.compare_exchange(3, state, Ordering::Relaxed, Ordering::Relaxed);
    STATE.load(Ordering::Relaxed)
}

/// Is allocation profiling enabled? The fast path — one relaxed load and
/// a compare — is what every allocation in the process pays when off.
#[inline]
pub fn enabled() -> bool {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return init_state() == 2;
    }
    state == 2
}

/// Force allocation profiling on or off for the whole process, overriding
/// `TRANSER_ALLOC_TRACE`. For tests and benchmarks (the environment
/// variable is read once; this flips the same switch directly).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

thread_local! {
    /// Allocation events observed on this thread while profiling was on.
    static COUNT: Cell<u64> = const { Cell::new(0) };
    /// Fresh bytes requested on this thread while profiling was on.
    static BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Record one successful allocation of `bytes` bytes on the calling
/// thread. Called by the registered global allocator
/// (`transer_common::CountingAllocator`); tests may call it directly to
/// simulate allocations. Never allocates.
#[inline]
pub fn on_alloc(bytes: usize) {
    if enabled() {
        COUNT.with(|c| c.set(c.get().wrapping_add(1)));
        BYTES.with(|b| b.set(b.get().wrapping_add(bytes as u64)));
    }
}

/// Record one successful reallocation from `old` to `new` bytes: one
/// event, counting only the growth (zero bytes for shrink / same-size).
#[inline]
pub fn on_realloc(old: usize, new: usize) {
    on_alloc(new.saturating_sub(old));
}

/// The calling thread's cumulative `(events, bytes)` counters. Monotonic
/// within a thread (they only ever advance while profiling is on), so a
/// scoped measurement is the difference of two reads.
#[inline]
pub fn thread_counters() -> (u64, u64) {
    (COUNT.with(Cell::get), BYTES.with(Cell::get))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable switch is process-global; tests that flip it serialise on
    // the crate-wide test lock (shared with the span-attribution tests in
    // `lib.rs`) and restore "disabled" before returning.
    use crate::tests::TEST_LOCK;

    #[test]
    fn disabled_hook_is_a_no_op() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        let before = thread_counters();
        on_alloc(123);
        on_realloc(10, 500);
        assert_eq!(thread_counters(), before);
    }

    #[test]
    fn enabled_hook_counts_events_and_bytes() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let (c0, b0) = thread_counters();
        on_alloc(100);
        on_alloc(0);
        on_realloc(64, 256); // one event, 192 fresh bytes
        on_realloc(256, 64); // one event, shrink: zero fresh bytes
        set_enabled(false);
        let (c1, b1) = thread_counters();
        assert_eq!(c1 - c0, 4);
        assert_eq!(b1 - b0, 100 + 192);
    }

    #[test]
    fn counters_are_thread_local() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        let (c0, _) = thread_counters();
        std::thread::spawn(|| on_alloc(1_000_000)).join().expect("spawned thread");
        set_enabled(false);
        let (c1, _) = thread_counters();
        assert_eq!(c1, c0, "another thread's allocations must not land here");
    }
}

//! Property tests for the linear algebra substrate: eigendecomposition,
//! solving, covariance.

use proptest::prelude::*;
use transer_common::FeatureMatrix;
use transer_linalg::*;

/// Random symmetric matrix built as `B + Bᵀ` from a random `B`.
fn symmetric(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = Mat::from_vec(data, n, n);
        b.add(&b.transpose()).scale(0.5)
    })
}

/// Random SPD matrix built as `BᵀB + eps·I`.
fn spd(n: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |data| {
        let b = Mat::from_vec(data, n, n);
        b.transpose().matmul(&b).add(&Mat::identity(n).scale(0.1))
    })
}

proptest! {
    #[test]
    fn eigen_reconstructs(a in symmetric(5)) {
        let e = jacobi_eigen(&a);
        prop_assert!(a.frobenius_distance(&e.reconstruct()) < 1e-8);
    }

    #[test]
    fn eigen_trace_preserved(a in symmetric(6)) {
        let e = jacobi_eigen(&a);
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn eigen_vectors_orthonormal(a in symmetric(4)) {
        let e = jacobi_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        prop_assert!(vtv.frobenius_distance(&Mat::identity(4)) < 1e-8);
    }

    #[test]
    fn eigen_values_sorted(a in symmetric(5)) {
        let e = jacobi_eigen(&a);
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn solve_then_multiply(a in spd(4), b in prop::collection::vec(-1.0..1.0f64, 4)) {
        let x = solve(&a, &b).expect("SPD is nonsingular");
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-6, "{l} vs {r}");
        }
    }

    #[test]
    fn inverse_roundtrip(a in spd(3)) {
        let inv = inverse(&a).expect("SPD is nonsingular");
        prop_assert!(a.matmul(&inv).frobenius_distance(&Mat::identity(3)) < 1e-6);
    }

    #[test]
    fn covariance_is_psd(rows in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 3..=3), 2..60)) {
        let x = FeatureMatrix::from_vecs(&rows).unwrap();
        let c = covariance(&x);
        prop_assert!(c.is_symmetric(1e-10));
        let e = jacobi_eigen(&c);
        for &l in &e.values {
            prop_assert!(l > -1e-9, "negative eigenvalue {l}");
        }
    }

    #[test]
    fn sqrt_squares_back(a in spd(4)) {
        let s = sym_sqrt(&a);
        prop_assert!(s.matmul(&s).frobenius_distance(&a) < 1e-6);
    }

    #[test]
    fn centering_zeroes_means(rows in prop::collection::vec(prop::collection::vec(0.0..1.0f64, 2..=2), 1..40)) {
        let x = FeatureMatrix::from_vecs(&rows).unwrap();
        let (c, _) = mean_center(&x);
        for m in c.column_means().unwrap() {
            prop_assert!(m.abs() < 1e-10);
        }
    }
}

//! Covariance statistics over feature matrices and symmetric matrix
//! functions built on the Jacobi eigendecomposition.

use transer_common::FeatureMatrix;

use crate::{jacobi_eigen, Mat};

/// Sample covariance matrix (`1/(n-1)` normalisation) of the rows of `x`.
///
/// With fewer than two rows the covariance is the zero matrix.
pub fn covariance(x: &FeatureMatrix) -> Mat {
    let m = x.cols();
    let n = x.rows();
    let mut cov = Mat::zeros(m, m);
    if n < 2 {
        return cov;
    }
    let Some(means) = x.column_means() else {
        return cov; // unreachable: n >= 2 rows here
    };
    for row in x.iter_rows() {
        for i in 0..m {
            let di = row[i] - means[i];
            for j in i..m {
                cov[(i, j)] += di * (row[j] - means[j]);
            }
        }
    }
    let denom = (n - 1) as f64;
    for i in 0..m {
        for j in i..m {
            cov[(i, j)] /= denom;
            cov[(j, i)] = cov[(i, j)];
        }
    }
    cov
}

/// Subtract the column means from every row, returning the centred matrix
/// and the means. An empty matrix is returned unchanged with zero means.
pub fn mean_center(x: &FeatureMatrix) -> (FeatureMatrix, Vec<f64>) {
    let means = x.column_means().unwrap_or_else(|| vec![0.0; x.cols()]);
    let mut out = FeatureMatrix::empty(x.cols());
    let mut buf = vec![0.0; x.cols()];
    for row in x.iter_rows() {
        for ((b, &v), &m) in buf.iter_mut().zip(row).zip(&means) {
            *b = v - m;
        }
        out.push_row(&buf);
    }
    (out, means)
}

/// Symmetric positive semi-definite square root `A^{1/2}`; negative
/// eigenvalues from numerical noise are floored at zero.
///
/// # Panics
/// Panics when `a` is not symmetric.
pub fn sym_sqrt(a: &Mat) -> Mat {
    jacobi_eigen(a).map_values(|l| l.max(0.0).sqrt())
}

/// Regularised inverse square root `(A + eps·I)^{-1/2}` — the whitening
/// operator used by Coral. Eigenvalues are floored at `eps` before the
/// inverse square root, so the result is always finite.
///
/// # Panics
/// Panics when `a` is not symmetric or `eps <= 0`.
pub fn sym_inv_sqrt(a: &Mat, eps: f64) -> Mat {
    assert!(eps > 0.0, "eps must be positive");
    jacobi_eigen(a).map_values(|l| 1.0 / (l.max(0.0) + eps).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_known() {
        // Two perfectly correlated columns.
        let x =
            FeatureMatrix::from_vecs(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let c = covariance(&x);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_independent_columns() {
        let x = FeatureMatrix::from_vecs(&[
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, -1.0],
        ])
        .unwrap();
        let c = covariance(&x);
        assert!(c[(0, 1)].abs() < 1e-12);
        assert!(c.is_symmetric(1e-12));
    }

    #[test]
    fn degenerate_inputs() {
        let c = covariance(&FeatureMatrix::empty(3));
        assert_eq!(c.max_abs(), 0.0);
        let one = FeatureMatrix::from_vecs(&[vec![1.0, 2.0]]).unwrap();
        assert_eq!(covariance(&one).max_abs(), 0.0);
    }

    #[test]
    fn centering() {
        let x = FeatureMatrix::from_vecs(&[vec![1.0, 10.0], vec![3.0, 20.0]]).unwrap();
        let (c, means) = mean_center(&x);
        assert_eq!(means, vec![2.0, 15.0]);
        assert_eq!(c.row(0), &[-1.0, -5.0]);
        assert_eq!(c.row(1), &[1.0, 5.0]);
        assert!(c.column_means().unwrap().iter().all(|m| m.abs() < 1e-12));
    }

    #[test]
    fn sqrt_squares_back() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let s = sym_sqrt(&a);
        assert!(s.matmul(&s).frobenius_distance(&a) < 1e-9);
    }

    #[test]
    fn inv_sqrt_whitens() {
        let a = Mat::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]);
        let w = sym_inv_sqrt(&a, 1e-12);
        // w a w ≈ I.
        let white = w.matmul(&a).matmul(&w);
        assert!(white.frobenius_distance(&Mat::identity(2)) < 1e-5);
    }

    #[test]
    fn inv_sqrt_handles_singular() {
        let a = Mat::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]); // rank 1
        let w = sym_inv_sqrt(&a, 1e-3);
        assert!(w.as_slice().iter().all(|v| v.is_finite()));
    }
}

//! Cyclic Jacobi eigendecomposition for real symmetric matrices.

use crate::Mat;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Matrix whose *columns* are the corresponding orthonormal
    /// eigenvectors.
    pub vectors: Mat,
}

impl Eigen {
    /// Reconstruct `V · diag(λ) · Vᵀ` — useful for testing.
    pub fn reconstruct(&self) -> Mat {
        let n = self.values.len();
        let mut vd = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] = self.vectors[(i, j)] * self.values[j];
            }
        }
        vd.matmul(&self.vectors.transpose())
    }

    /// Apply `f` to every eigenvalue and reassemble the matrix — the basis
    /// for matrix square roots and inverse square roots.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> Mat {
        let mapped = Eigen {
            values: self.values.iter().map(|&l| f(l)).collect(),
            vectors: self.vectors.clone(),
        };
        mapped.reconstruct()
    }
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Converges quadratically; for the matrix sizes in this workspace
/// (covariances of ≤ a few dozen features, kernels of ≤ a couple thousand
/// samples) a handful of sweeps suffices. Eigenvalues are returned in
/// descending order with matching eigenvector columns.
///
/// # Panics
/// Panics when `a` is not square or not symmetric (tolerance `1e-8`).
pub fn jacobi_eigen(a: &Mat) -> Eigen {
    assert!(a.is_symmetric(1e-8), "jacobi_eigen requires a symmetric matrix");
    let n = a.rows();
    let mut a = a.clone();
    let mut v = Mat::identity(n);

    const MAX_SWEEPS: usize = 64;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        if off.sqrt() <= 1e-12 * (1.0 + a.max_abs()) {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= 1e-300 {
                    continue;
                }
                // Rotation angle zeroing a[p][q].
                let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A <- Jᵀ A J, updating rows/columns p and q.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let values: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
    // total_cmp (with the index tiebreak) keeps the order well-defined
    // even when NaN input leaks NaN onto the diagonal.
    order.sort_by(|&i, &j| values[j].total_cmp(&values[i]).then(i.cmp(&j)));
    let sorted_values: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut sorted_vectors = Mat::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            sorted_vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Eigen { values: sorted_values, vectors: sorted_vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix() {
        let d = Mat::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]);
        let e = jacobi_eigen(&d);
        close(e.values[0], 3.0, 1e-12);
        close(e.values[1], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        close(e.values[0], 3.0, 1e-10);
        close(e.values[1], 1.0, 1e-10);
        assert!(a.frobenius_distance(&e.reconstruct()) < 1e-10);
    }

    #[test]
    fn known_3x3() {
        // Symmetric matrix with known spectrum {6, 3, 1} (constructed as
        // V diag(6,3,1) V^T for an orthonormal V would be ideal; instead we
        // check reconstruction + trace/determinant invariants).
        let a = Mat::from_rows(&[vec![4.0, 1.0, 1.0], vec![1.0, 3.0, 0.5], vec![1.0, 0.5, 2.0]]);
        let e = jacobi_eigen(&a);
        // Trace preserved.
        close(e.values.iter().sum::<f64>(), 9.0, 1e-9);
        // Reconstruction.
        assert!(a.frobenius_distance(&e.reconstruct()) < 1e-9);
        // Sorted descending.
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a =
            Mat::from_rows(&[vec![2.0, -1.0, 0.0], vec![-1.0, 2.0, -1.0], vec![0.0, -1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.frobenius_distance(&Mat::identity(3)) < 1e-9);
        // Known spectrum of the path-graph Laplacian-like matrix:
        // 2 - sqrt(2), 2, 2 + sqrt(2).
        close(e.values[0], 2.0 + 2f64.sqrt(), 1e-9);
        close(e.values[1], 2.0, 1e-9);
        close(e.values[2], 2.0 - 2f64.sqrt(), 1e-9);
    }

    #[test]
    fn map_values_squares_spectrum() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        let a2 = e.map_values(|l| l * l);
        assert!(a2.frobenius_distance(&a.matmul(&a)) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        jacobi_eigen(&Mat::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]));
    }

    #[test]
    fn one_by_one() {
        let e = jacobi_eigen(&Mat::from_rows(&[vec![5.0]]));
        assert_eq!(e.values, vec![5.0]);
        assert_eq!(e.vectors[(0, 0)], 1.0);
    }
}

//! Gaussian elimination with partial pivoting: linear solve and inverse.

use crate::Mat;

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns `None` when `A` is (numerically) singular.
///
/// # Panics
/// Panics when `A` is not square or `b.len() != A.rows()`.
pub fn solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows(), a.cols(), "solve requires a square matrix");
    assert_eq!(b.len(), a.rows(), "rhs length must equal matrix order");
    let n = a.rows();
    let mut aug = a.clone();
    let mut x: Vec<f64> = b.to_vec();

    for col in 0..n {
        // Partial pivot over *finite* magnitudes only: a NaN pivot
        // poisons the whole solve and an Inf pivot degenerates to NaN in
        // the elimination (inf/inf), so both count as singular. `>=`
        // keeps the last maximal row, exactly like the `max_by` this
        // replaces, so finite inputs pivot bit-identically.
        let mut pivot_row = None;
        let mut best = f64::NEG_INFINITY;
        for i in col..n {
            let mag = aug[(i, col)].abs();
            if mag.is_finite() && mag >= best {
                best = mag;
                pivot_row = Some(i);
            }
        }
        let pivot_row = match pivot_row {
            Some(row) if aug[(row, col)].abs() >= 1e-12 => row,
            _ => return None,
        };
        if pivot_row != col {
            for j in 0..n {
                let tmp = aug[(col, j)];
                aug[(col, j)] = aug[(pivot_row, j)];
                aug[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        // Eliminate below.
        for row in (col + 1)..n {
            let f = aug[(row, col)] / aug[(col, col)];
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                let v = aug[(col, j)];
                aug[(row, j)] -= f * v;
            }
            x[row] -= f * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut v = x[col];
        for j in (col + 1)..n {
            v -= aug[(col, j)] * x[j];
        }
        x[col] = v / aug[(col, col)];
    }
    Some(x)
}

/// Matrix inverse by solving against the identity columns.
///
/// Returns `None` when the matrix is (numerically) singular.
///
/// # Panics
/// Panics when the matrix is not square.
pub fn inverse(a: &Mat) -> Option<Mat> {
    assert_eq!(a.rows(), a.cols(), "inverse requires a square matrix");
    let n = a.rows();
    let mut inv = Mat::zeros(n, n);
    let mut e = vec![0.0; n];
    for col in 0..n {
        e[col] = 1.0;
        let x = solve(a, &e)?;
        e[col] = 0.0;
        for row in 0..n {
            inv[(row, col)] = x[row];
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        let a = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn needs_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Mat::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
        assert!(inverse(&a).is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Mat::from_rows(&[vec![4.0, 7.0, 2.0], vec![3.0, 5.0, 1.0], vec![1.0, 1.0, 3.0]]);
        let inv = inverse(&a).unwrap();
        let i = a.matmul(&inv);
        assert!(i.frobenius_distance(&Mat::identity(3)) < 1e-9);
        let i2 = inv.matmul(&a);
        assert!(i2.frobenius_distance(&Mat::identity(3)) < 1e-9);
    }

    #[test]
    fn identity_inverse_is_identity() {
        let inv = inverse(&Mat::identity(4)).unwrap();
        assert!(inv.frobenius_distance(&Mat::identity(4)) < 1e-12);
    }

    #[test]
    fn non_finite_pivot_candidates_are_skipped() {
        // NaN in a pivot column: pre-fix, partial_cmp's Equal fallback
        // could select the NaN row as pivot and poison the solve into a
        // `Some` full of NaN; post-fix the contamination is detected at
        // the next pivot search and reported as singular (`None`).
        let a = Mat::from_rows(&[vec![f64::NAN, 1.0], vec![1.0, 0.0]]);
        assert!(solve(&a, &[2.0, 3.0]).is_none());

        // A column whose pivot tail is all non-finite is singular.
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![0.0, f64::NAN]]);
        assert!(solve(&a, &[1.0, 1.0]).is_none());
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![0.0, f64::INFINITY]]);
        assert!(solve(&a, &[1.0, 1.0]).is_none());
        let a = Mat::from_rows(&[vec![f64::NAN, 1.0], vec![f64::INFINITY, 1.0]]);
        assert!(solve(&a, &[1.0, 1.0]).is_none());
        assert!(inverse(&a).is_none());
    }

    #[test]
    fn later_tied_pivot_still_wins() {
        // max_by keeps the last maximal element; the explicit loop must
        // do the same so finite systems pivot (and round) identically.
        let a = Mat::from_rows(&[vec![2.0, 1.0, 0.0], vec![-2.0, 1.0, 1.0], vec![2.0, 0.0, 1.0]]);
        let x = solve(&a, &[3.0, 0.0, 3.0]).unwrap();
        let r0 = 2.0 * x[0] + x[1];
        let r1 = -2.0 * x[0] + x[1] + x[2];
        let r2 = 2.0 * x[0] + x[2];
        assert!((r0 - 3.0).abs() < 1e-10 && r1.abs() < 1e-10 && (r2 - 3.0).abs() < 1e-10);
    }
}

//! Small dense linear algebra substrate for the feature-based transfer
//! baselines (Coral, TCA) and the LocIT* covariance features.
//!
//! ER feature spaces are tiny (the paper's data sets have 4-11 features),
//! so the covariance-level operations work on matrices of a few dozen
//! entries; TCA additionally needs eigendecompositions of kernel matrices
//! over (sub)samples of record pairs, which stay in the hundreds of rows.
//! A classic cyclic Jacobi eigensolver is accurate and entirely adequate at
//! these sizes, and keeps the workspace free of native BLAS dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eigen;
mod matrix;
mod solve;
mod stats;

pub use eigen::{jacobi_eigen, Eigen};
pub use matrix::Mat;
pub use solve::{inverse, solve};
pub use stats::{covariance, mean_center, sym_inv_sqrt, sym_sqrt};

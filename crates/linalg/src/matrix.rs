//! A dense row-major matrix with the handful of operations the transfer
//! baselines need.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { data: vec![0.0; rows * cols], rows, cols }
    }

    /// `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must be rows*cols");
        Mat { data, rows, cols }
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Mat { data, rows: r, cols: c }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy (cache-blocked; shares the kernel the column-major
    /// training view in `transer-common` is built with).
    pub fn transpose(&self) -> Mat {
        let mut data = vec![0.0; self.rows * self.cols];
        transer_common::transpose_blocked(&self.data, self.rows, self.cols, &mut data);
        Mat::from_vec(data, self.cols, self.rows)
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        // ikj loop order: the innermost loop walks both `other` and `out`
        // rows contiguously.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal cols");
        (0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Mat { data, rows: self.rows, cols: self.cols }
    }

    /// Element-wise difference.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Mat) -> Mat {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Mat { data, rows: self.rows, cols: self.cols }
    }

    /// Scaled copy `s · self`.
    pub fn scale(&self, s: f64) -> Mat {
        let data = self.data.iter().map(|a| a * s).collect();
        Mat { data, rows: self.rows, cols: self.cols }
    }

    /// Maximum absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm of `self − other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn frobenius_distance(&self, other: &Mat) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt()
    }

    /// True when the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(Mat::identity(3)[(2, 2)], 1.0);
        assert_eq!(Mat::identity(3)[(0, 2)], 0.0);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Mat::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        // Identity is neutral.
        assert_eq!(a.matmul(&Mat::identity(2)), a);
        assert_eq!(Mat::identity(2).matmul(&a), a);
    }

    #[test]
    fn matvec_and_transpose() {
        let a = Mat::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn arithmetic() {
        let a = Mat::from_rows(&[vec![1.0, 2.0]]);
        let b = Mat::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!(b.max_abs(), 5.0);
        assert!((a.frobenius_distance(&b) - (4.0 + 9.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn symmetry_check() {
        let s = Mat::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Mat::from_rows(&[vec![2.0, 1.0], vec![0.0, 3.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Mat::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        Mat::zeros(2, 3).matmul(&Mat::zeros(2, 3));
    }
}

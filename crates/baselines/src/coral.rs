//! Coral — CORrelation ALignment ("Return of Frustratingly Easy Domain
//! Adaptation", Sun, Feng & Saenko, 2016).
//!
//! Coral aligns the *second-order statistics* of the two domains: the
//! source features are whitened with `(C_S + λI)^{-1/2}` and re-coloured
//! with `(C_T + λI)^{1/2}`, after which a classifier trained on the
//! transformed source is applied to the raw target. It only needs `m × m`
//! covariance matrices, so it is nearly free — but, as the paper's
//! evaluation shows, aligning Gaussians cannot fix the skewed bi-modal
//! shapes of ER feature data, except where the marginals already coincide.

use transer_common::{FeatureMatrix, Label, Result};
use transer_linalg::{covariance, mean_center, sym_inv_sqrt, sym_sqrt, Mat};

use crate::{RunContext, TaskView, TransferMethod};

/// The Coral baseline.
#[derive(Debug, Clone, Copy)]
pub struct Coral {
    /// Covariance regulariser λ.
    pub lambda: f64,
}

impl Default for Coral {
    fn default() -> Self {
        Coral { lambda: 1.0 }
    }
}

impl Coral {
    /// The Coral transform: recolour centred source rows with the target's
    /// covariance structure, then restore the target mean.
    fn transform_source(&self, xs: &FeatureMatrix, xt: &FeatureMatrix) -> FeatureMatrix {
        let m = xs.cols();
        let reg = Mat::identity(m).scale(self.lambda);
        let cs = covariance(xs).add(&reg);
        let ct = covariance(xt).add(&reg);
        let whiten = sym_inv_sqrt(&cs, 1e-9);
        let colour = sym_sqrt(&ct);
        let transform = whiten.matmul(&colour);

        let (centered, _) = mean_center(xs);
        let target_mean = xt.column_means().unwrap_or_else(|| vec![0.0; m]);
        let mut out = FeatureMatrix::empty(m);
        let mut buf = vec![0.0; m];
        for row in centered.iter_rows() {
            // row · transform + target_mean (row vector times matrix).
            for (j, b) in buf.iter_mut().enumerate() {
                *b = row.iter().enumerate().map(|(i, &v)| v * transform[(i, j)]).sum::<f64>()
                    + target_mean[j];
            }
            out.push_row(&buf);
        }
        out
    }
}

impl TransferMethod for Coral {
    fn name(&self) -> &'static str {
        "Coral"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        let aligned = self.transform_source(task.xs, task.xt);
        ctx.check_time()?;
        let mut clf = ctx.classifier.build(ctx.seed);
        clf.fit(&aligned, task.ys)?;
        ctx.check_time()?;
        Ok(clf.predict(task.xt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn gaussian_domain(
        mean: [f64; 2],
        spread: f64,
        n: usize,
        seed: u64,
    ) -> (FeatureMatrix, Vec<Label>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let jx: f64 = rng.random_range(-spread..spread);
            let jy: f64 = rng.random_range(-spread..spread);
            rows.push(vec![mean[0] + 0.3 + jx, mean[1] + 0.3 + jy]);
            ys.push(Label::Match);
            rows.push(vec![mean[0] - 0.3 + jx, mean[1] - 0.3 + jy]);
            ys.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), ys)
    }

    #[test]
    fn aligns_shifted_gaussians() {
        let (xs, ys) = gaussian_domain([0.4, 0.4], 0.1, 40, 1);
        let (xt, yt) = gaussian_domain([0.5, 0.5], 0.1, 30, 2);
        let task = TaskView::features(&xs, &ys, &xt);
        let out = Coral::default().run(&task, &RunContext::default()).unwrap();
        let acc = out.iter().zip(&yt).filter(|(a, b)| a == b).count() as f64 / yt.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn transform_matches_target_statistics() {
        let coral = Coral { lambda: 1e-3 };
        let (xs, _) = gaussian_domain([0.3, 0.5], 0.15, 60, 3);
        let (xt, _) = gaussian_domain([0.6, 0.4], 0.08, 60, 4);
        let aligned = coral.transform_source(&xs, &xt);
        let am = aligned.column_means().unwrap();
        let tm = xt.column_means().unwrap();
        for (a, t) in am.iter().zip(&tm) {
            assert!((a - t).abs() < 0.02, "mean {a} vs {t}");
        }
        // Covariances should be close after alignment (up to the λ shift).
        let ca = covariance(&aligned);
        let ct = covariance(&xt);
        assert!(ca.frobenius_distance(&ct) < 0.05);
    }

    #[test]
    fn identity_when_domains_equal() {
        let (xs, ys) = gaussian_domain([0.5, 0.5], 0.1, 50, 5);
        let task = TaskView::features(&xs, &ys, &xs);
        let out = Coral::default().run(&task, &RunContext::default()).unwrap();
        let acc = out.iter().zip(&ys).filter(|(a, b)| a == b).count() as f64 / ys.len() as f64;
        assert!(acc > 0.95);
    }
}

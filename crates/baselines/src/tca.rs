//! TCA — Transfer Component Analysis (Pan et al., 2011).
//!
//! TCA maps source and target into a shared latent space that minimises
//! the maximum mean discrepancy between the two domains: with an RBF
//! kernel `K` over the stacked instances, the transfer components are the
//! leading eigenvectors of `(K L K + μI)^{-1} K H K`, where `L` encodes the
//! MMD weights and `H` is the centering matrix. A classifier is then
//! trained on the transformed source and applied to the transformed
//! target.
//!
//! The method is faithfully `O(n²)` in memory and `O(n³)` in time for
//! `n = |X^S| + |X^T|` — which is exactly why the paper reports `ME`
//! (memory exceeded) for TCA on every data set beyond the bibliographic
//! pair; the [`RunContext`] guards reproduce that behaviour.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_linalg::Mat;

use crate::{RunContext, TaskView, TransferMethod};

/// The TCA baseline.
#[derive(Debug, Clone, Copy)]
pub struct Tca {
    /// Number of transfer components (latent dimensions).
    pub components: usize,
    /// Regularisation μ of the generalised eigenproblem.
    pub mu: f64,
    /// RBF kernel width parameter γ in `exp(-γ ‖a−b‖²)`.
    pub gamma: f64,
    /// Orthogonal-iteration rounds for the leading eigenvectors.
    pub power_iterations: usize,
}

impl Default for Tca {
    fn default() -> Self {
        Tca { components: 8, mu: 1.0, gamma: 1.0, power_iterations: 30 }
    }
}

impl Tca {
    fn rbf_kernel(&self, z: &FeatureMatrix) -> Mat {
        let n = z.rows();
        let mut k = Mat::zeros(n, n);
        for i in 0..n {
            k[(i, i)] = 1.0;
            for j in (i + 1)..n {
                let d2 = transer_common::sq_dist(z.row(i), z.row(j));
                let v = (-self.gamma * d2).exp();
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        k
    }
}

impl TransferMethod for Tca {
    fn name(&self) -> &'static str {
        "TCA"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        let ns = task.xs.rows();
        let nt = task.xt.rows();
        let n = ns + nt;
        // Three n×n matrices live simultaneously (K, KHK/M, scratch).
        ctx.check_memory(3 * (n as u64) * (n as u64) * 8)?;

        let z = task.xs.vstack(task.xt)?;
        let k = self.rbf_kernel(&z);
        ctx.check_time()?;

        // L = u uᵀ with u_i = 1/ns (source) or −1/nt (target), so
        // K L K = v vᵀ with v = K u — rank one.
        let mut u = vec![1.0 / ns as f64; ns];
        u.extend(std::iter::repeat_n(-1.0 / nt as f64, nt));
        let v = k.matvec(&u);

        // H K = K with centred columns; then K H K = (H K)ᵀ K.
        let col_means: Vec<f64> =
            (0..n).map(|j| (0..n).map(|i| k[(i, j)]).sum::<f64>() / n as f64).collect();
        let mut hk = k.clone();
        for i in 0..n {
            for j in 0..n {
                hk[(i, j)] -= col_means[j];
            }
        }
        ctx.check_time()?;
        let khk = hk.transpose().matmul(&k);
        ctx.check_time()?;

        // M = (v vᵀ + μ I)^{-1} K H K via Sherman–Morrison.
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        let vt_khk = khk.transpose().matvec(&v); // row vector vᵀ·KHK
        let scale = 1.0 / (self.mu + vtv);
        let mut m = khk;
        for i in 0..n {
            let vi = v[i] * scale;
            for j in 0..n {
                m[(i, j)] = (m[(i, j)] - vi * vt_khk[j]) / self.mu;
            }
        }
        ctx.check_time()?;

        // Leading eigenvectors by orthogonal iteration.
        let d = self.components.min(n.saturating_sub(1)).max(1);
        let mut q = Mat::zeros(n, d);
        // Deterministic pseudo-random start.
        let mut state = 0x9E37_79B9_7F4A_7C15u64 ^ ctx.seed;
        for i in 0..n {
            for j in 0..d {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                q[(i, j)] = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            }
        }
        for _ in 0..self.power_iterations {
            ctx.check_time()?;
            let mq = m.matmul(&q);
            q = gram_schmidt(mq)?;
        }

        // Embed: rows of K·Q; first ns rows are the source, rest target.
        // The iteration may have narrowed to the kernel's numerical rank,
        // so use the actual component count.
        let embedded = k.matmul(&q);
        let _ = d;
        let mut es = FeatureMatrix::empty(embedded.cols());
        let mut et = FeatureMatrix::empty(embedded.cols());
        for i in 0..n {
            if i < ns {
                es.push_row(embedded.row(i));
            } else {
                et.push_row(embedded.row(i));
            }
        }

        let mut clf = ctx.classifier.build(ctx.seed);
        clf.fit(&es, task.ys)?;
        ctx.check_time()?;
        Ok(clf.predict(&et))
    }
}

/// Orthonormalise the columns of `a` (modified Gram-Schmidt), *dropping*
/// linearly dependent columns — smooth kernels are effectively low-rank,
/// so the iteration gracefully narrows to the kernel's numerical rank.
fn gram_schmidt(a: Mat) -> Result<Mat> {
    let (n, d) = (a.rows(), a.cols());
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(d);
    for j in 0..d {
        let mut col: Vec<f64> = (0..n).map(|i| a[(i, j)]).collect();
        for prev in &kept {
            let dot: f64 = col.iter().zip(prev).map(|(x, y)| x * y).sum();
            for (c, p) in col.iter_mut().zip(prev) {
                *c -= dot * p;
            }
        }
        let norm: f64 = col.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-10 {
            continue; // dependent direction: the kernel's rank is exhausted
        }
        col.iter_mut().for_each(|x| *x /= norm);
        kept.push(col);
    }
    if kept.is_empty() {
        return Err(Error::TrainingFailed("TCA: zero-rank iteration".into()));
    }
    let mut q = Mat::zeros(n, kept.len());
    for (j, col) in kept.iter().enumerate() {
        for i in 0..n {
            q[(i, j)] = col[i];
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceBudget;
    use transer_ml::ClassifierKind;

    fn shifted_domains() -> (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..25 {
            let j = (i % 10) as f64 * 0.006;
            xs.push(vec![0.85 + j, 0.8 - j]);
            ys.push(Label::Match);
            xs.push(vec![0.15 - j / 2.0, 0.2 + j]);
            ys.push(Label::NonMatch);
            xt.push(vec![0.8 + j, 0.85 - j]);
            yt.push(Label::Match);
            xt.push(vec![0.2 - j / 2.0, 0.25 + j]);
            yt.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), yt)
    }

    #[test]
    fn transfers_on_small_aligned_domains() {
        let (xs, ys, xt, yt) = shifted_domains();
        let task = TaskView::features(&xs, &ys, &xt);
        let out = Tca::default().run(&task, &RunContext::default()).unwrap();
        let acc = out.iter().zip(&yt).filter(|(a, b)| a == b).count() as f64 / yt.len() as f64;
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn memory_guard_reproduces_me() {
        let (xs, ys, xt, _) = shifted_domains();
        let task = TaskView::features(&xs, &ys, &xt);
        let ctx = RunContext::new(
            ClassifierKind::LogisticRegression,
            0,
            ResourceBudget { max_memory_bytes: 1024, max_secs: 100.0 },
        );
        let err = Tca::default().run(&task, &ctx).unwrap_err();
        assert!(matches!(err, Error::MemoryExceeded { .. }));
    }

    #[test]
    fn gram_schmidt_orthonormalises() {
        let a = Mat::from_rows(&[vec![1.0, 1.0], vec![1.0, 0.0], vec![0.0, 2.0]]);
        let q = gram_schmidt(a).unwrap();
        let qtq = q.transpose().matmul(&q);
        assert!(qtq.frobenius_distance(&Mat::identity(2)) < 1e-10);
    }

    #[test]
    fn rank_deficient_columns_are_dropped() {
        let a = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let q = gram_schmidt(a).unwrap();
        assert_eq!(q.cols(), 1);
        let zero = Mat::zeros(3, 2);
        assert!(gram_schmidt(zero).is_err());
    }
}

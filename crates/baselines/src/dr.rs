//! DR — "Reuse and Adaptation for Entity Resolution through Transfer
//! Learning" (Thirumuruganathan et al., 2018): frozen distributed
//! representations + instance reweighting + traditional classifiers.
//!
//! The record pairs are embedded with the frozen pseudo-FastText embedder;
//! every source instance is reweighted by a k-NN density ratio
//! `w(x) ≈ ρ_T(x) / ρ_S(x)` so the source sample mimics the target's
//! marginal distribution; and a traditional classifier is trained on the
//! weighted, embedded source. On personal-name-style data where the
//! embeddings carry no useful semantics (the out-of-vocabulary problem),
//! this is the *negative transfer* the paper reports.

use transer_common::{Label, Result};
use transer_knn::KdTree;

use crate::{HashedEmbedder, RunContext, TaskView, TransferMethod};

/// The DR baseline.
#[derive(Debug, Clone, Copy)]
pub struct DeepRanker {
    /// Embedding front end.
    pub embedder: HashedEmbedder,
    /// Neighbourhood size for the density-ratio weights.
    pub k: usize,
    /// Weights are clipped into `[1/clip, clip]` for stability.
    pub clip: f64,
}

impl Default for DeepRanker {
    fn default() -> Self {
        DeepRanker { embedder: HashedEmbedder::default(), k: 5, clip: 10.0 }
    }
}

impl DeepRanker {
    /// k-NN density-ratio weights for the source instances: the ratio of
    /// the k-th-neighbour-distance-based density estimates under the
    /// target and source samples.
    fn density_ratio_weights(
        &self,
        es: &transer_common::FeatureMatrix,
        et: &transer_common::FeatureMatrix,
    ) -> Vec<f64> {
        let source_tree = KdTree::build(es);
        let target_tree = KdTree::build(et);
        let k = self.k.min(es.rows().saturating_sub(1)).max(1);
        (0..es.rows())
            .map(|i| {
                let row = es.row(i);
                let ds = source_tree
                    .k_nearest_excluding(row, k, Some(i))
                    .last()
                    .map_or(f64::INFINITY, |n| n.sq_dist)
                    .sqrt();
                let dt = target_tree
                    .k_nearest(row, k)
                    .last()
                    .map_or(f64::INFINITY, |n| n.sq_dist)
                    .sqrt();
                // Density ∝ 1 / r^d; the ratio collapses to (ds/dt)^d, and
                // using the plain ratio keeps the weights well-conditioned.

                if dt <= 1e-12 {
                    self.clip
                } else if !ds.is_finite() {
                    1.0
                } else {
                    (ds / dt).clamp(1.0 / self.clip, self.clip)
                }
            })
            .collect()
    }
}

impl TransferMethod for DeepRanker {
    fn name(&self) -> &'static str {
        "DR"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        let rows = (task.xs.rows() + task.xt.rows()) as u64;
        ctx.check_memory(rows * (2 * self.embedder.dim as u64) * 8)?;
        let es = self.embedder.embed_side(task.source_texts, task.xs);
        let et = self.embedder.embed_side(task.target_texts, task.xt);
        ctx.check_time()?;

        let weights = self.density_ratio_weights(&es, &et);
        ctx.check_time()?;

        let mut clf = ctx.classifier.build(ctx.seed);
        clf.fit_weighted(&es, task.ys, Some(&weights))?;
        ctx.check_time()?;
        Ok(clf.predict(&et))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::FeatureMatrix;

    type TaskFixture =
        (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<(String, String)>, Vec<(String, String)>);

    fn toy_task() -> TaskFixture {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut st = Vec::new();
        let mut xt = Vec::new();
        let mut tt = Vec::new();
        for i in 0..25 {
            xs.push(vec![0.9, 0.9]);
            ys.push(Label::Match);
            st.push((format!("word{i} common"), format!("word{i} common")));
            xs.push(vec![0.1, 0.1]);
            ys.push(Label::NonMatch);
            st.push((format!("word{i} common"), format!("other{} thing", i + 50)));
            xt.push(vec![0.88, 0.86]);
            tt.push((format!("fresh{i} token"), format!("fresh{i} token")));
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), st, tt)
    }

    #[test]
    fn produces_labels() {
        let (xs, ys, xt, st, tt) = toy_task();
        let mut task = TaskView::features(&xs, &ys, &xt);
        task.source_texts = Some(&st);
        task.target_texts = Some(&tt);
        let out = DeepRanker::default().run(&task, &RunContext::default()).unwrap();
        assert_eq!(out.len(), xt.rows());
    }

    #[test]
    fn weights_are_clipped_and_positive() {
        let (xs, ys, xt, st, tt) = toy_task();
        let dr = DeepRanker::default();
        let es = dr.embedder.embed_side(Some(&st), &xs);
        let et = dr.embedder.embed_side(Some(&tt), &xt);
        let w = dr.density_ratio_weights(&es, &et);
        assert_eq!(w.len(), ys.len());
        for &v in &w {
            assert!(v >= 1.0 / dr.clip - 1e-12 && v <= dr.clip + 1e-12, "{v}");
        }
    }

    #[test]
    fn feature_fallback_works() {
        let (xs, ys, xt, _, _) = toy_task();
        let task = TaskView::features(&xs, &ys, &xt);
        let out = DeepRanker::default().run(&task, &RunContext::default()).unwrap();
        assert_eq!(out.len(), xt.rows());
    }
}

//! Run context shared by the baselines: the task view, the classifier
//! family, seeds and the resource budget behind the paper's `ME`/`TE`
//! entries.

use std::time::Instant;

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::ClassifierKind;

/// A borrowed view of one transfer task. The deep baselines additionally
/// need the raw record-pair *text* the feature vectors were computed from
/// (they embed characters, not similarities); feature-only callers can pass
/// `None` and those baselines fall back to embedding the feature values —
/// documented, strictly worse, but functional.
#[derive(Debug, Clone, Copy)]
pub struct TaskView<'a> {
    /// Source feature matrix `X^S`.
    pub xs: &'a FeatureMatrix,
    /// Source labels `Y^S`.
    pub ys: &'a [Label],
    /// Target feature matrix `X^T`.
    pub xt: &'a FeatureMatrix,
    /// Concatenated attribute text of each source record pair.
    pub source_texts: Option<&'a [(String, String)]>,
    /// Concatenated attribute text of each target record pair.
    pub target_texts: Option<&'a [(String, String)]>,
}

impl<'a> TaskView<'a> {
    /// A feature-only view (no raw text).
    pub fn features(xs: &'a FeatureMatrix, ys: &'a [Label], xt: &'a FeatureMatrix) -> Self {
        TaskView { xs, ys, xt, source_texts: None, target_texts: None }
    }

    /// Validate the basic shape invariants.
    ///
    /// # Errors
    /// Returns shape errors for empty or misaligned inputs.
    pub fn validate(&self) -> Result<()> {
        if self.xs.rows() == 0 {
            return Err(Error::EmptyInput("source instances"));
        }
        if self.xt.rows() == 0 {
            return Err(Error::EmptyInput("target instances"));
        }
        if self.xs.rows() != self.ys.len() {
            return Err(Error::DimensionMismatch {
                what: "source rows vs labels",
                left: self.xs.rows(),
                right: self.ys.len(),
            });
        }
        if self.xs.cols() != self.xt.cols() {
            return Err(Error::DimensionMismatch {
                what: "source vs target feature columns",
                left: self.xs.cols(),
                right: self.xt.cols(),
            });
        }
        if let Some(t) = self.source_texts {
            if t.len() != self.xs.rows() {
                return Err(Error::DimensionMismatch {
                    what: "source texts vs rows",
                    left: t.len(),
                    right: self.xs.rows(),
                });
            }
        }
        if let Some(t) = self.target_texts {
            if t.len() != self.xt.rows() {
                return Err(Error::DimensionMismatch {
                    what: "target texts vs rows",
                    left: t.len(),
                    right: self.xt.rows(),
                });
            }
        }
        Ok(())
    }
}

/// Memory and wall-clock budget. The paper capped experiments at 200 GB /
/// 72 h; scaled-down reproductions use proportionally smaller budgets so
/// the same methods exceed them on the same relative workloads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResourceBudget {
    /// Maximum bytes a method may *plan* to allocate (checked against
    /// explicit estimates before the allocation happens).
    pub max_memory_bytes: u64,
    /// Maximum wall-clock seconds (checked at phase boundaries).
    pub max_secs: f64,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        // Generous defaults for library use; the evaluation harness
        // installs scaled-down budgets mirroring the paper's limits.
        ResourceBudget { max_memory_bytes: 8 << 30, max_secs: 3600.0 }
    }
}

/// Everything a baseline needs besides the data.
#[derive(Debug, Clone)]
pub struct RunContext {
    /// Classifier family used by the feature-based methods.
    pub classifier: ClassifierKind,
    /// Seed for stochastic components.
    pub seed: u64,
    /// Resource budget (`ME`/`TE` guards).
    pub budget: ResourceBudget,
    started: Instant,
}

impl RunContext {
    /// Create a context; the `TE` clock starts now.
    pub fn new(classifier: ClassifierKind, seed: u64, budget: ResourceBudget) -> Self {
        RunContext { classifier, seed, budget, started: Instant::now() }
    }

    /// Restart the `TE` clock (call between independent method runs).
    pub fn restart_clock(&mut self) {
        self.started = Instant::now();
    }

    /// Check an allocation plan against the memory budget.
    ///
    /// # Errors
    /// Returns [`Error::MemoryExceeded`] when the estimate exceeds the
    /// budget.
    pub fn check_memory(&self, estimated_bytes: u64) -> Result<()> {
        if estimated_bytes > self.budget.max_memory_bytes {
            return Err(Error::MemoryExceeded {
                required: estimated_bytes,
                budget: self.budget.max_memory_bytes,
            });
        }
        Ok(())
    }

    /// Check elapsed wall-clock time against the budget.
    ///
    /// # Errors
    /// Returns [`Error::TimeExceeded`] when the budget is blown.
    pub fn check_time(&self) -> Result<()> {
        let elapsed = self.started.elapsed().as_secs_f64();
        if elapsed > self.budget.max_secs {
            return Err(Error::TimeExceeded {
                elapsed_secs: elapsed,
                budget_secs: self.budget.max_secs,
            });
        }
        Ok(())
    }
}

impl Default for RunContext {
    fn default() -> Self {
        RunContext::new(ClassifierKind::LogisticRegression, 0, ResourceBudget::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize) -> FeatureMatrix {
        FeatureMatrix::from_vecs(&(0..rows).map(|i| vec![i as f64, 0.0]).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn validates_shapes() {
        let xs = matrix(3);
        let xt = matrix(2);
        let ys = vec![Label::Match, Label::NonMatch, Label::Match];
        assert!(TaskView::features(&xs, &ys, &xt).validate().is_ok());
        assert!(TaskView::features(&xs, &ys[..2], &xt).validate().is_err());
        let narrow = FeatureMatrix::from_vecs(&[vec![1.0]]).unwrap();
        assert!(TaskView::features(&xs, &ys, &narrow).validate().is_err());
        let empty = FeatureMatrix::empty(2);
        assert!(TaskView::features(&empty, &[], &xt).validate().is_err());
    }

    #[test]
    fn validates_text_alignment() {
        let xs = matrix(2);
        let xt = matrix(1);
        let ys = vec![Label::Match, Label::NonMatch];
        let texts = vec![("a".to_string(), "b".to_string())];
        let mut view = TaskView::features(&xs, &ys, &xt);
        view.source_texts = Some(&texts);
        assert!(view.validate().is_err()); // 1 text for 2 rows
        view.source_texts = None;
        view.target_texts = Some(&texts);
        assert!(view.validate().is_ok());
    }

    #[test]
    fn memory_guard() {
        let ctx = RunContext::new(
            ClassifierKind::Svm,
            0,
            ResourceBudget { max_memory_bytes: 1000, max_secs: 10.0 },
        );
        assert!(ctx.check_memory(999).is_ok());
        let err = ctx.check_memory(1001).unwrap_err();
        assert!(err.is_resource_exceeded());
    }

    #[test]
    fn time_guard() {
        let ctx = RunContext::new(
            ClassifierKind::Svm,
            0,
            ResourceBudget { max_memory_bytes: 1000, max_secs: 0.0 },
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(ctx.check_time().is_err());
    }
}

//! LocIT* — the instance-selection half of "Transfer Learning for Anomaly
//! Detection through Localized and Unsupervised Instance Selection"
//! (Vercruyssen et al., 2020), followed by an ER classifier, exactly as the
//! paper's variant.
//!
//! LocIT trains a *transferability classifier* self-supervised on the
//! target domain: for each target instance, the pair (instance
//! neighbourhood, nearest-neighbour's neighbourhood) is a positive example
//! of "locally consistent", and (instance neighbourhood, far instance's
//! neighbourhood) a negative one. The features of a pair are the location
//! distance between neighbourhood centroids and the Frobenius distance
//! between neighbourhood covariances. A source instance is transferred
//! when its (source-neighbourhood, target-neighbourhood) pair classifies
//! positive. The labels never enter the selection — the reason LocIT*
//! underperforms on ER, sometimes transferring a single class and scoring
//! zero, as Table 2 shows.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_knn::KdTree;
use transer_linalg::covariance;
use transer_ml::{Classifier, LinearSvm};

use crate::{RunContext, TaskView, TransferMethod};

/// The LocIT* baseline.
#[derive(Debug, Clone, Copy)]
pub struct LocItStar {
    /// Neighbourhood size.
    pub k: usize,
}

impl Default for LocItStar {
    fn default() -> Self {
        LocItStar { k: 7 }
    }
}

/// Location + covariance distance between two neighbourhoods.
fn pair_features(x1: &FeatureMatrix, n1: &[usize], x2: &FeatureMatrix, n2: &[usize]) -> [f64; 2] {
    let centroid = |x: &FeatureMatrix, idx: &[usize]| -> Vec<f64> {
        let mut c = vec![0.0; x.cols()];
        for &i in idx {
            for (acc, &v) in c.iter_mut().zip(x.row(i)) {
                *acc += v;
            }
        }
        let k = idx.len().max(1) as f64;
        c.iter_mut().for_each(|v| *v /= k);
        c
    };
    let c1 = centroid(x1, n1);
    let c2 = centroid(x2, n2);
    let loc = c1.iter().zip(&c2).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
    let cov1 = covariance(&x1.select_rows(n1));
    let cov2 = covariance(&x2.select_rows(n2));
    [loc, cov1.frobenius_distance(&cov2)]
}

impl TransferMethod for LocItStar {
    fn name(&self) -> &'static str {
        "LocIT*"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        let xt = task.xt;
        let xs = task.xs;
        let k = self.k.min(xt.rows().saturating_sub(1)).max(1);
        let target_tree = KdTree::build(xt);
        let source_tree = KdTree::build(xs);

        // Self-supervised transferability training set from the target.
        let mut feats = FeatureMatrix::empty(2);
        let mut labels = Vec::new();
        for i in 0..xt.rows() {
            ctx.check_time()?;
            let nn = target_tree.k_nearest_excluding(xt.row(i), k, Some(i));
            if nn.len() < k {
                continue;
            }
            let own: Vec<usize> = nn.iter().map(|n| n.index).collect();
            // Positive: this neighbourhood vs the nearest neighbour's.
            let nearest = own[0];
            let nn2 = target_tree.k_nearest_excluding(xt.row(nearest), k, Some(nearest));
            let theirs: Vec<usize> = nn2.iter().map(|n| n.index).collect();
            feats.push_row(&pair_features(xt, &own, xt, &theirs));
            labels.push(Label::Match); // "transferable"

            // Negative: vs a far instance's neighbourhood (deterministic
            // pick spread over the data).
            let far = (i + xt.rows() / 2) % xt.rows();
            let nnf = target_tree.k_nearest_excluding(xt.row(far), k, Some(far));
            let far_n: Vec<usize> = nnf.iter().map(|n| n.index).collect();
            feats.push_row(&pair_features(xt, &own, xt, &far_n));
            labels.push(Label::NonMatch);
        }
        if feats.rows() < 4 {
            return Err(Error::TrainingFailed("LocIT*: too few transferability pairs".into()));
        }
        let mut svm = LinearSvm::with_seed(ctx.seed);
        svm.fit(&feats, &labels)?;
        ctx.check_time()?;

        // Select source instances whose (source, target) neighbourhood pair
        // classifies as transferable.
        let mut selected = Vec::new();
        for i in 0..xs.rows() {
            let ns: Vec<usize> = source_tree
                .k_nearest_excluding(xs.row(i), k.min(xs.rows().saturating_sub(1)).max(1), Some(i))
                .iter()
                .map(|n| n.index)
                .collect();
            let nt: Vec<usize> =
                target_tree.k_nearest(xs.row(i), k).iter().map(|n| n.index).collect();
            if ns.is_empty() || nt.is_empty() {
                continue;
            }
            let f = pair_features(xs, &ns, xt, &nt);
            let fm = FeatureMatrix::from_vecs(&[f.to_vec()])?;
            if svm.predict(&fm)[0].is_match() {
                selected.push(i);
            }
        }
        ctx.check_time()?;

        // Train the ER classifier on the selected instances. Degenerate
        // selections (empty / single-class) produce the all-non-match
        // output — the 0.00 rows of Table 2.
        let ys_sel: Vec<Label> = selected.iter().map(|&i| task.ys[i]).collect();
        let matches = ys_sel.iter().filter(|l| l.is_match()).count();
        if selected.is_empty() || matches == 0 || matches == ys_sel.len() {
            return Ok(vec![Label::NonMatch; xt.rows()]);
        }
        let xs_sel = xs.select_rows(&selected);
        let mut clf = ctx.classifier.build(ctx.seed);
        clf.fit(&xs_sel, &ys_sel)?;
        Ok(clf.predict(xt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered(n: usize, offset: f64) -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let j = (i % 10) as f64 * 0.004;
            rows.push(vec![0.9 - j + offset, 0.85 + j]);
            ys.push(Label::Match);
            rows.push(vec![0.1 + j + offset, 0.15 - j]);
            ys.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), ys)
    }

    #[test]
    fn runs_on_aligned_domains() {
        let (xs, ys) = clustered(25, 0.0);
        let (xt, _) = clustered(20, 0.01);
        let task = TaskView::features(&xs, &ys, &xt);
        let out = LocItStar::default().run(&task, &RunContext::default()).unwrap();
        assert_eq!(out.len(), xt.rows());
    }

    #[test]
    fn degenerate_selection_yields_all_non_matches() {
        // A target wildly different from the source makes every source
        // instance non-transferable (or single-class): output collapses.
        let (xs, ys) = clustered(25, 0.0);
        let mut far_rows = Vec::new();
        for i in 0..30 {
            far_rows.push(vec![0.5, 0.002 * i as f64]);
        }
        let xt = FeatureMatrix::from_vecs(&far_rows).unwrap();
        let task = TaskView::features(&xs, &ys, &xt);
        let out = LocItStar::default().run(&task, &RunContext::default()).unwrap();
        // Either a real prediction or the degenerate all-non-match answer —
        // both have full length; the degenerate case is the common one.
        assert_eq!(out.len(), 30);
    }

    #[test]
    fn pair_feature_zero_for_identical_neighbourhoods() {
        let (x, _) = clustered(10, 0.0);
        let idx: Vec<usize> = (0..5).collect();
        let f = pair_features(&x, &idx, &x, &idx);
        assert_eq!(f, [0.0, 0.0]);
    }

    #[test]
    fn tiny_target_errors() {
        let (xs, ys) = clustered(10, 0.0);
        let xt = FeatureMatrix::from_vecs(&[vec![0.5, 0.5]]).unwrap();
        let task = TaskView::features(&xs, &ys, &xt);
        assert!(LocItStar::default().run(&task, &RunContext::default()).is_err());
    }
}

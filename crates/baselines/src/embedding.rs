//! Frozen hashed character-n-gram embeddings — the stand-in for the
//! pre-trained FastText vectors the DR and DTAL baselines rely on.
//!
//! FastText represents a word as the sum of its character-n-gram vectors;
//! we reproduce that shape with a *frozen random projection*: each n-gram
//! hashes to a fixed pseudo-random vector (derived from the hash, no table
//! needed) and a string embeds as the normalised sum over its grams. The
//! embedding is "pre-trained" in the sense that it is independent of any
//! training data — and exactly like real FastText on out-of-vocabulary
//! personal names, it carries no task-specific semantics, which is the
//! negative-transfer failure mode the paper demonstrates for DR.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use transer_common::FeatureMatrix;

/// Frozen hashed n-gram embedder.
#[derive(Debug, Clone, Copy)]
pub struct HashedEmbedder {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Character n-gram length.
    pub ngram: usize,
    /// Seed mixed into every hash.
    pub seed: u64,
}

impl Default for HashedEmbedder {
    fn default() -> Self {
        HashedEmbedder { dim: 32, ngram: 3, seed: 0xE64 }
    }
}

impl HashedEmbedder {
    /// Embed one string: mean of its padded n-gram vectors, L2-normalised.
    /// The zero vector is returned for empty strings.
    pub fn embed(&self, text: &str) -> Vec<f64> {
        let mut v = vec![0.0; self.dim];
        if text.is_empty() {
            return v;
        }
        let chars: Vec<char> = std::iter::repeat_n('#', self.ngram - 1)
            .chain(text.chars().flat_map(|c| c.to_lowercase()))
            .chain(std::iter::repeat_n('#', self.ngram - 1))
            .collect();
        if chars.len() < self.ngram {
            return v;
        }
        let mut grams = 0usize;
        for window in chars.windows(self.ngram) {
            let mut h = DefaultHasher::new();
            self.seed.hash(&mut h);
            window.hash(&mut h);
            let mut state = h.finish() | 1;
            // Each gram contributes a deterministic pseudo-random ±1 pattern.
            for slot in v.iter_mut() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *slot += if state & 1 == 0 { 1.0 } else { -1.0 };
            }
            grams += 1;
        }
        if grams > 0 {
            let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 0.0 {
                for x in &mut v {
                    *x /= norm;
                }
            }
        }
        v
    }

    /// Embed a record pair `(a, b)` into the representation the deep
    /// baselines classify: `[|e_a − e_b|, e_a ⊙ e_b]` (absolute difference
    /// and element-wise product), `2 × dim` values.
    pub fn embed_pair(&self, a: &str, b: &str) -> Vec<f64> {
        let ea = self.embed(a);
        let eb = self.embed(b);
        let mut out = Vec::with_capacity(2 * self.dim);
        out.extend(ea.iter().zip(&eb).map(|(x, y)| (x - y).abs()));
        out.extend(ea.iter().zip(&eb).map(|(x, y)| x * y));
        out
    }

    /// Embed a whole task side: with raw pair texts when available, else —
    /// as a degraded but functional fallback — treating the similarity
    /// feature values themselves as the "text".
    pub fn embed_side(
        &self,
        texts: Option<&[(String, String)]>,
        features: &FeatureMatrix,
    ) -> FeatureMatrix {
        let mut out = FeatureMatrix::empty(2 * self.dim);
        match texts {
            Some(pairs) => {
                for (a, b) in pairs {
                    out.push_row(&self.embed_pair(a, b));
                }
            }
            None => {
                for row in features.iter_rows() {
                    let rendered: Vec<String> = row.iter().map(|v| format!("{v:.2}")).collect();
                    let text = rendered.join(" ");
                    out.push_row(&self.embed_pair(&text, &text));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emb() -> HashedEmbedder {
        HashedEmbedder::default()
    }

    #[test]
    fn deterministic_and_normalised() {
        let e = emb();
        let a = e.embed("john macdonald");
        assert_eq!(a, e.embed("john macdonald"));
        let norm: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_strings_closer_than_dissimilar() {
        let e = emb();
        let a = e.embed("the quick brown fox");
        let b = e.embed("the quick brown fix");
        let c = e.embed("entirely different words");
        let dot = |x: &[f64], y: &[f64]| x.iter().zip(y).map(|(p, q)| p * q).sum::<f64>();
        assert!(dot(&a, &b) > dot(&a, &c));
    }

    #[test]
    fn empty_string_is_zero() {
        let v = emb().embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pair_embedding_shape_and_identity() {
        let e = emb();
        let p = e.embed_pair("abc", "abc");
        assert_eq!(p.len(), 64);
        // |a-a| part must be all zeros.
        assert!(p[..32].iter().all(|&x| x == 0.0));
        let q = e.embed_pair("abc", "xyz");
        assert!(q[..32].iter().any(|&x| x > 0.0));
    }

    #[test]
    fn embed_side_with_and_without_text() {
        let e = emb();
        let x = FeatureMatrix::from_vecs(&[vec![0.9, 0.8], vec![0.1, 0.2]]).unwrap();
        let texts =
            vec![("a b".to_string(), "a b".to_string()), ("c d".to_string(), "e f".to_string())];
        let with = e.embed_side(Some(&texts), &x);
        assert_eq!(with.rows(), 2);
        assert_eq!(with.cols(), 64);
        let without = e.embed_side(None, &x);
        assert_eq!(without.rows(), 2);
    }
}

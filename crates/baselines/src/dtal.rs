//! DTAL* — the deep-transfer representative (Kasai et al., 2019, without
//! the active-learning loop, exactly as the paper's variant).
//!
//! Transfer happens through a gradient-reversal layer: a shared encoder is
//! trained so a domain discriminator *cannot* tell source pairs from
//! target pairs while a label head classifies the source pairs. The input
//! representation is the hashed character-n-gram embedding of the raw
//! record-pair text ([`HashedEmbedder`]) — a faithful stand-in for the
//! word-embedding front ends of deep ER models, and the reason the method
//! struggles on short, typo-ridden structured values.

use transer_common::{Label, Result};
use transer_ml::{GrlConfig, GrlNet};

use crate::{HashedEmbedder, RunContext, TaskView, TransferMethod};

/// Domain-adversarial deep transfer baseline.
#[derive(Debug, Clone, Copy)]
pub struct DtalStar {
    /// Embedding front end.
    pub embedder: HashedEmbedder,
    /// Network hyper-parameters.
    pub net: GrlConfig,
    /// Wall-clock seconds simulated per SGD step missing from our compact
    /// network relative to a real deep matcher. Deep models dominated the
    /// paper's runtime table; the default of 0 disables the simulation and
    /// only the genuine compute is counted.
    pub epoch_cost_factor: u32,
}

impl Default for DtalStar {
    fn default() -> Self {
        DtalStar {
            embedder: HashedEmbedder::default(),
            net: GrlConfig { hidden: 32, epochs: 25, learning_rate: 0.05, lambda: 0.5 },
            epoch_cost_factor: 0,
        }
    }
}

impl TransferMethod for DtalStar {
    fn name(&self) -> &'static str {
        "DTAL*"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        // Embedding both sides is the memory-heavy step: 2*dim f64 per pair.
        let rows = (task.xs.rows() + task.xt.rows()) as u64;
        ctx.check_memory(rows * (2 * self.embedder.dim as u64) * 8)?;
        let es = self.embedder.embed_side(task.source_texts, task.xs);
        ctx.check_time()?;
        let et = self.embedder.embed_side(task.target_texts, task.xt);
        ctx.check_time()?;

        let mut net = GrlNet::new(self.net, ctx.seed);
        net.fit(&es, task.ys, &et)?;
        ctx.check_time()?;
        Ok(net.predict(&et))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ResourceBudget;
    use transer_common::{Error, FeatureMatrix};
    use transer_ml::ClassifierKind;

    type TaskFixture =
        (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<(String, String)>, Vec<(String, String)>);

    fn task_data() -> TaskFixture {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut st = Vec::new();
        let mut xt = Vec::new();
        let mut tt = Vec::new();
        for i in 0..30 {
            xs.push(vec![0.9, 0.9]);
            ys.push(Label::Match);
            st.push((format!("alpha beta {i}"), format!("alpha beta {i}")));
            xs.push(vec![0.1, 0.1]);
            ys.push(Label::NonMatch);
            st.push((format!("alpha beta {i}"), format!("gamma delta {}", i + 1)));
            xt.push(vec![0.85, 0.9]);
            tt.push((format!("epsilon zeta {i}"), format!("epsilon zeta {i}")));
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), st, tt)
    }

    #[test]
    fn runs_with_text() {
        let (xs, ys, xt, st, tt) = task_data();
        let mut task = TaskView::features(&xs, &ys, &xt);
        task.source_texts = Some(&st);
        task.target_texts = Some(&tt);
        let out = DtalStar::default().run(&task, &RunContext::default()).unwrap();
        assert_eq!(out.len(), xt.rows());
        // Identical-text target pairs should mostly be called matches.
        let matches = out.iter().filter(|l| l.is_match()).count();
        assert!(matches > xt.rows() / 2, "{matches}/{}", xt.rows());
    }

    #[test]
    fn runs_without_text_fallback() {
        let (xs, ys, xt, _, _) = task_data();
        let task = TaskView::features(&xs, &ys, &xt);
        let out = DtalStar::default().run(&task, &RunContext::default()).unwrap();
        assert_eq!(out.len(), xt.rows());
    }

    #[test]
    fn memory_guard_fires() {
        let (xs, ys, xt, _, _) = task_data();
        let task = TaskView::features(&xs, &ys, &xt);
        let ctx = RunContext::new(
            ClassifierKind::LogisticRegression,
            0,
            ResourceBudget { max_memory_bytes: 64, max_secs: 100.0 },
        );
        let err = DtalStar::default().run(&task, &ctx).unwrap_err();
        assert!(matches!(err, Error::MemoryExceeded { .. }));
    }

    #[test]
    fn deterministic_under_seed() {
        let (xs, ys, xt, st, tt) = task_data();
        let mut task = TaskView::features(&xs, &ys, &xt);
        task.source_texts = Some(&st);
        task.target_texts = Some(&tt);
        let ctx = RunContext::new(ClassifierKind::Svm, 11, ResourceBudget::default());
        let a = DtalStar::default().run(&task, &ctx).unwrap();
        let b = DtalStar::default().run(&task, &ctx).unwrap();
        assert_eq!(a, b);
    }
}

//! The Naive baseline: train on the source, apply to the target, no
//! transfer whatsoever.

use transer_common::{Label, Result};

use crate::{RunContext, TaskView, TransferMethod};

/// Source-trained classifier applied blindly to the target — the paper's
/// stand-in for Magellan/Tamer-style supervised matching without TL.
#[derive(Debug, Clone, Copy, Default)]
pub struct Naive;

impl TransferMethod for Naive {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>> {
        task.validate()?;
        let mut clf = ctx.classifier.build(ctx.seed);
        clf.fit(task.xs, task.ys)?;
        ctx.check_time()?;
        Ok(clf.predict(task.xt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::FeatureMatrix;

    #[test]
    fn classifies_aligned_domains_well() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.004;
            rows.push(vec![0.9 - j, 0.85 + j]);
            ys.push(Label::Match);
            rows.push(vec![0.1 + j, 0.2 - j]);
            ys.push(Label::NonMatch);
        }
        let xs = FeatureMatrix::from_vecs(&rows).unwrap();
        let xt = xs.clone();
        let task = TaskView::features(&xs, &ys, &xt);
        let out = Naive.run(&task, &RunContext::default()).unwrap();
        assert_eq!(out, ys);
    }

    #[test]
    fn rejects_empty() {
        let empty = FeatureMatrix::empty(2);
        let task = TaskView::features(&empty, &[], &empty);
        assert!(Naive.run(&task, &RunContext::default()).is_err());
    }
}

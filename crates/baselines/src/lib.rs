//! The transfer-learning baselines of the paper's evaluation (Section
//! 5.1.3), reimplemented from scratch:
//!
//! * [`Naive`] — a classifier trained on the source applied blindly to the
//!   target (no transfer; the Magellan/Tamer-style reference point).
//! * [`DtalStar`] — the deep-transfer representative: a domain-adversarial
//!   network with a gradient-reversal layer (Kasai et al., 2019) over
//!   hashed character-n-gram embeddings of the raw record-pair text.
//! * [`DeepRanker`] (`DR`, Thirumuruganathan et al., 2018) — frozen
//!   pseudo-FastText embeddings for representation, density-ratio instance
//!   weighting for transfer, traditional classifiers for classification.
//! * [`LocItStar`] — the instance-selection part of LocIT (Vercruyssen et
//!   al., 2020): a transferability SVM over (location, covariance)
//!   neighbourhood features, trained self-supervised on the target.
//! * [`Tca`] — Transfer Component Analysis (Pan et al., 2011): kernel MMD
//!   minimisation via a generalised eigenproblem. Faithfully `O(n²)` in
//!   memory, so it hits the `ME` resource guard on mid-sized data exactly
//!   as in the paper.
//! * [`Coral`] — CORrelation ALignment (Sun et al., 2016): second-order
//!   statistics alignment of the source onto the target.
//!
//! All baselines implement [`TransferMethod`] and run under a
//! [`ResourceBudget`] that reproduces the paper's `ME` (memory exceeded)
//! and `TE` (time exceeded) table entries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
mod coral;
mod dr;
mod dtal;
mod embedding;
mod locit;
mod naive;
mod tca;

pub use context::{ResourceBudget, RunContext, TaskView};
pub use coral::Coral;
pub use dr::DeepRanker;
pub use dtal::DtalStar;
pub use embedding::HashedEmbedder;
pub use locit::LocItStar;
pub use naive::Naive;
pub use tca::Tca;

use transer_common::{Label, Result};

/// A transfer-learning method for ER: given the labelled source and the
/// unlabelled target, produce target labels.
pub trait TransferMethod {
    /// Display name matching the paper's tables.
    fn name(&self) -> &'static str;

    /// Run the method on a task.
    ///
    /// # Errors
    /// Returns [`transer_common::Error::MemoryExceeded`] /
    /// [`transer_common::Error::TimeExceeded`] when the resource budget is
    /// blown (reported as `ME`/`TE`), or other errors for degenerate input.
    fn run(&self, task: &TaskView<'_>, ctx: &RunContext) -> Result<Vec<Label>>;
}

/// All six baselines boxed, in the paper's Table 2 column order.
pub fn all_baselines() -> Vec<Box<dyn TransferMethod>> {
    vec![
        Box::new(Naive),
        Box::new(DtalStar::default()),
        Box::new(DeepRanker::default()),
        Box::new(LocItStar::default()),
        Box::new(Tca::default()),
        Box::new(Coral::default()),
    ]
}

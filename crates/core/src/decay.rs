//! Exponential decay functions mapping normalised distances in `[0, 1]`
//! to similarity scores (Fig. 5 of the paper).
//!
//! The structural similarity `sim_l` divides a centroid distance by its
//! maximum possible value `sqrt(m)`, which biases the normalised distance
//! towards small values; the paper therefore converts it to a similarity
//! with `e^{-5 d}`, which spreads those small distances over a useful part
//! of `[0, 1]` (steeper than `e^{-d}`, gentler than `e^{-10 d}`).

/// `e^{-d}` — too flat: a full-scale distance of 1 still scores 0.37.
#[inline]
pub fn exp_decay_1(d: f64) -> f64 {
    (-d).exp()
}

/// `e^{-5 d}` — the decay TransER uses in Eq. (2).
#[inline]
pub fn exp_decay_5(d: f64) -> f64 {
    (-5.0 * d).exp()
}

/// `e^{-10 d}` — too steep: moderate distances are crushed to ~0.
#[inline]
pub fn exp_decay_10(d: f64) -> f64 {
    (-10.0 * d).exp()
}

/// Generic `e^{-rate·d}`.
#[inline]
pub fn exp_decay(d: f64, rate: f64) -> f64 {
    (-rate * d).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_is_perfect_similarity() {
        assert_eq!(exp_decay_1(0.0), 1.0);
        assert_eq!(exp_decay_5(0.0), 1.0);
        assert_eq!(exp_decay_10(0.0), 1.0);
    }

    #[test]
    fn steeper_rates_decay_faster() {
        for d in [0.1, 0.3, 0.5, 0.9] {
            assert!(exp_decay_1(d) > exp_decay_5(d));
            assert!(exp_decay_5(d) > exp_decay_10(d));
        }
    }

    #[test]
    fn monotone_decreasing() {
        let mut prev = exp_decay_5(0.0);
        for i in 1..=10 {
            let v = exp_decay_5(i as f64 / 10.0);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn known_values() {
        assert!((exp_decay_5(0.2) - (-1.0f64).exp()).abs() < 1e-12);
        assert!((exp_decay(0.5, 2.0) - (-1.0f64).exp()).abs() < 1e-12);
        // At full-scale distance the paper's decay is ~0.0067 — effectively
        // "not transferable".
        assert!(exp_decay_5(1.0) < 0.01);
    }

    #[test]
    fn output_in_unit_interval_for_unit_inputs() {
        for i in 0..=100 {
            let d = i as f64 / 100.0;
            for f in [exp_decay_1, exp_decay_5, exp_decay_10] {
                let s = f(d);
                assert!((0.0..=1.0).contains(&s));
            }
        }
    }
}

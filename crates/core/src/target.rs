//! Phase (iii) — the target-domain classifier (TCL), Section 4.3 of the
//! paper.
//!
//! From the pseudo-labelled target instances, TCL keeps those whose
//! confidence is at least `t_p`, under-samples non-matches to a `1 : b`
//! match/non-match ratio (ER candidate sets are heavily skewed towards
//! non-matches), trains the final classifier `C^V` on this balanced sample,
//! and labels the whole target with it.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::{undersample_to_ratio, Classifier};
use transer_robust::{site, FaultKind};

use crate::pseudo::PseudoLabels;

/// Output of the TCL phase.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetPhaseOutput {
    /// Final labels `Y^T` for every target instance.
    pub labels: Vec<Label>,
    /// Number of target instances whose pseudo-label confidence cleared
    /// `t_p` (the candidate set `X^V`).
    pub candidate_count: usize,
    /// Size of the balanced training sample `X^V_b`.
    pub balanced_count: usize,
}

/// Run the TCL phase (lines 12–21 of Algorithm 1).
///
/// # Errors
/// Returns an error when no instances clear `t_p`, the candidates are
/// single-class, or training fails. The pipeline treats these as a signal
/// to fall back to the pseudo labels directly.
pub fn train_target_classifier(
    classifier: &mut dyn Classifier,
    xt: &FeatureMatrix,
    pseudo: &PseudoLabels,
    t_p: f64,
    balance_ratio: f64,
    seed: u64,
) -> Result<TargetPhaseOutput> {
    if xt.rows() != pseudo.labels.len() {
        return Err(Error::DimensionMismatch {
            what: "target rows vs pseudo labels",
            left: xt.rows(),
            right: pseudo.labels.len(),
        });
    }
    // Fault site `tcl.balance`: fail the phase outright or corrupt a copy
    // of the pseudo labels before the candidate filter sees them.
    let fault = transer_robust::fired(site::TCL_BALANCE);
    if matches!(fault, Some(FaultKind::TaskFail | FaultKind::Empty)) {
        return Err(Error::FaultInjected(site::TCL_BALANCE));
    }
    let corrupted;
    let pseudo = if let Some(kind) = fault {
        let mut p = pseudo.clone();
        transer_robust::corrupt_confidences(&mut p.confidences, kind);
        transer_robust::corrupt_labels(&mut p.labels, kind);
        corrupted = p;
        &corrupted
    } else {
        pseudo
    };
    let mut candidates = pseudo.high_confidence_indices(t_p);
    if candidates.is_empty() {
        return Err(Error::EmptyInput("high-confidence pseudo-labelled instances"));
    }
    let high_confidence = candidates.len();
    backfill_candidates(pseudo, &mut candidates, balance_ratio);
    candidates.sort_unstable();
    transer_trace::counter("tcl.candidates", candidates.len() as u64);
    transer_trace::counter("tcl.backfill", (candidates.len() - high_confidence) as u64);
    let yv: Vec<Label> = candidates.iter().map(|&i| pseudo.labels[i]).collect();
    let matches = yv.iter().filter(|l| l.is_match()).count();
    if matches == 0 || matches == yv.len() {
        return Err(Error::TrainingFailed(format!(
            "candidate pseudo labels are single-class ({matches}/{} matches)",
            yv.len()
        )));
    }

    // GetBalancedData: under-sample non-matches to the 1:b ratio.
    let balanced_local = undersample_to_ratio(&yv, balance_ratio, seed);
    let balanced: Vec<usize> = balanced_local.iter().map(|&j| candidates[j]).collect();
    transer_trace::counter("tcl.balanced", balanced.len() as u64);
    transer_trace::counter("tcl.discarded", (candidates.len() - balanced.len()) as u64);
    let mut xb = xt.select_rows(&balanced);
    let mut yb: Vec<Label> = balanced.iter().map(|&i| pseudo.labels[i]).collect();

    // Fault site `tcl.fit`: fail the final training step or corrupt the
    // balanced sample just before the classifier sees it.
    if let Some(kind) = transer_robust::fired(site::TCL_FIT) {
        if kind == FaultKind::TaskFail {
            return Err(Error::FaultInjected(site::TCL_FIT));
        }
        transer_robust::corrupt_matrix(&mut xb, kind);
        transer_robust::corrupt_labels(&mut yb, kind);
    }
    classifier.fit(&xb, &yb)?;
    Ok(TargetPhaseOutput {
        labels: classifier.predict(xt),
        candidate_count: candidates.len(),
        balanced_count: balanced.len(),
    })
}

/// The strict `t_p` filter can starve one class (a conservative C^U
/// rarely reaches high confidence on minority matches), leaving a final
/// training set too small and too skewed to beat the pseudo labels it
/// came from. Backfill each class with its most confident remaining
/// instances up to the 1:b ratio the balancing step targets — standard
/// top-k pseudo-labelling practice.
fn backfill_candidates(pseudo: &PseudoLabels, candidates: &mut Vec<usize>, balance_ratio: f64) {
    let n_match = candidates.iter().filter(|&&i| pseudo.labels[i].is_match()).count();
    let n_non = candidates.len() - n_match;
    let want_match = ((n_non as f64 / balance_ratio).ceil() as usize).max(25);
    let want_non = ((n_match as f64 * balance_ratio).ceil() as usize).max(25);
    // Membership mask instead of `candidates.contains(&i)` per row: the
    // scan was O(candidates × rows), quadratic on large targets.
    let mut in_candidates = vec![false; pseudo.labels.len()];
    for &i in candidates.iter() {
        in_candidates[i] = true;
    }
    for (class, have, want) in
        [(Label::Match, n_match, want_match), (Label::NonMatch, n_non, want_non)]
    {
        if have >= want {
            continue;
        }
        let mut pool: Vec<usize> = (0..pseudo.labels.len())
            .filter(|&i| pseudo.labels[i] == class && !in_candidates[i])
            .collect();
        // Descending by confidence under total_cmp, index tiebreak: ties
        // (and any NaN confidence, which ranks above every finite value
        // and therefore backfills first) order deterministically. The old
        // partial_cmp→Equal comparator violated Ord on NaN, which sort_by
        // may panic on since Rust 1.81.
        pool.sort_by(|&a, &b| {
            pseudo.confidences[b].total_cmp(&pseudo.confidences[a]).then(a.cmp(&b))
        });
        candidates.extend(pool.into_iter().take(want - have));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_ml::ClassifierKind;

    /// Target: clear match cluster near 1, big non-match cloud near 0, and
    /// pseudo labels that are confident on the clusters only.
    fn fixture() -> (FeatureMatrix, PseudoLabels) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut conf = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.005;
            rows.push(vec![0.9 + j, 0.88 - j]);
            labels.push(Label::Match);
            conf.push(0.999);
        }
        for i in 0..60 {
            let j = (i % 10) as f64 * 0.005;
            rows.push(vec![0.1 + j, 0.12 - j]);
            labels.push(Label::NonMatch);
            conf.push(0.998);
        }
        // Uncertain middle points that must not enter training.
        for i in 0..5 {
            rows.push(vec![0.5, 0.5 + i as f64 * 0.01]);
            labels.push(Label::Match);
            conf.push(0.6);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), PseudoLabels { labels, confidences: conf })
    }

    #[test]
    fn balances_and_classifies() {
        let (xt, pseudo) = fixture();
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let out = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42).unwrap();
        // 70 high-confidence instances plus the 5 uncertain matches
        // backfilled to reach the per-class minimum.
        assert_eq!(out.candidate_count, 75);
        // 15 matches kept + 45 undersampled non-matches.
        assert_eq!(out.balanced_count, 60);
        assert_eq!(out.labels.len(), xt.rows());
        // The clear clusters must be classified correctly.
        assert!(out.labels[..10].iter().all(|l| l.is_match()));
        assert!(out.labels[10..70].iter().all(|l| !l.is_match()));
    }

    #[test]
    fn strict_threshold_errors_out() {
        let (xt, pseudo) = fixture();
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = train_target_classifier(clf.as_mut(), &xt, &pseudo, 1.0, 3.0, 42);
        assert!(matches!(err, Err(Error::EmptyInput(_))));
    }

    #[test]
    fn single_class_candidates_error_out() {
        // When the pseudo labels contain no matches at all, even the
        // backfill cannot help and TCL must signal the fallback.
        let xt = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2], vec![0.9]]).unwrap();
        let pseudo =
            PseudoLabels { labels: vec![Label::NonMatch; 3], confidences: vec![0.999, 0.999, 0.6] };
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 0);
        assert!(matches!(err, Err(Error::TrainingFailed(_))));
    }

    #[test]
    fn backfill_restores_starved_class() {
        // Only non-matches clear t_p, but below-threshold matches exist:
        // the per-class backfill must pull them in instead of failing.
        let mut rows = vec![vec![0.9], vec![0.85]];
        let mut labels = vec![Label::Match, Label::Match];
        let mut conf = vec![0.7, 0.65];
        for i in 0..40 {
            rows.push(vec![0.1 + (i % 7) as f64 * 0.01]);
            labels.push(Label::NonMatch);
            conf.push(0.999);
        }
        let xt = FeatureMatrix::from_vecs(&rows).unwrap();
        let pseudo = PseudoLabels { labels, confidences: conf };
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let out = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 1).unwrap();
        assert_eq!(out.labels.len(), xt.rows());
        assert!(out.candidate_count >= 42);
    }

    #[test]
    fn backfill_orders_nan_and_ties_deterministically() {
        // Candidates: the one high-confidence non-match (index 5). The
        // match pool carries a NaN confidence and an exact 0.5 tie; the
        // post-fix order is pinned: NaN ranks above every finite value
        // under total_cmp (backfills first), and the 0.5 tie breaks by
        // index.
        let pseudo = PseudoLabels {
            labels: vec![Label::Match; 5].into_iter().chain([Label::NonMatch]).collect(),
            confidences: vec![0.5, f64::NAN, 0.7, 0.5, 0.9, 0.999],
        };
        let mut candidates = vec![5];
        backfill_candidates(&pseudo, &mut candidates, 3.0);
        assert_eq!(candidates, vec![5, 1, 4, 2, 0, 3]);

        // Same confidences permuted across indices: the relative order of
        // NaN / finite / tied entries must not depend on input order.
        let permuted = PseudoLabels {
            labels: pseudo.labels.clone(),
            confidences: vec![0.5, 0.5, 0.9, f64::NAN, 0.7, 0.999],
        };
        let mut candidates = vec![5];
        backfill_candidates(&permuted, &mut candidates, 3.0);
        assert_eq!(candidates, vec![5, 3, 2, 4, 0, 1]);
    }

    #[test]
    fn tcl_fault_sites_fail_typed_or_degrade() {
        let _guard = transer_robust::test_lock();
        let (xt, pseudo) = fixture();

        transer_robust::set_plan(Some("tcl.balance:task_fail"));
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42);
        assert!(matches!(err, Err(Error::FaultInjected("tcl.balance"))));

        // NaN-corrupted confidences knock the affected rows out of the
        // `>= t_p` filter; the phase trains on what is left or reports a
        // typed error — either way, never a panic.
        transer_robust::set_plan(Some("tcl.balance:nan"));
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        if let Ok(out) = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42) {
            assert_eq!(out.labels.len(), xt.rows());
        }

        transer_robust::set_plan(Some("tcl.fit:task_fail"));
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42);
        assert!(matches!(err, Err(Error::FaultInjected("tcl.fit"))));

        // Emptying the balanced sample surfaces as the classifier's own
        // typed empty-input error.
        transer_robust::set_plan(Some("tcl.fit:empty"));
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42);
        assert!(matches!(err, Err(Error::EmptyInput(_))));

        // With the plan cleared the phase behaves normally again.
        transer_robust::set_plan(None);
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        assert!(train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 42).is_ok());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let (xt, pseudo) = fixture();
        let small = xt.select_rows(&[0, 1]);
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        assert!(train_target_classifier(clf.as_mut(), &small, &pseudo, 0.9, 3.0, 0).is_err());
    }

    #[test]
    fn works_with_every_paper_classifier() {
        let (xt, pseudo) = fixture();
        for kind in ClassifierKind::PAPER_SET {
            let mut clf = kind.build(11);
            let out = train_target_classifier(clf.as_mut(), &xt, &pseudo, 0.99, 3.0, 1)
                .unwrap_or_else(|e| panic!("{} failed: {e}", kind.name()));
            assert_eq!(out.labels.len(), xt.rows());
        }
    }
}

//! TransER configuration and ablation variants.

use transer_common::{Error, Result};

/// Ablation switches for the components of Algorithm 1 (Table 4 of the
/// paper). The default is the full framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Variant {
    /// Run the SEL instance-selection phase (off = "without SEL").
    pub use_selection: bool,
    /// Filter by the class-confidence similarity `sim_c`
    /// (off = "without sim_c").
    pub use_sim_c: bool,
    /// Filter by the structural similarity `sim_l` (off = "without sim_l").
    pub use_sim_l: bool,
    /// Additionally filter by the covariance similarity `sim_v` of LocIT
    /// (on = "TransER + sim_v").
    pub use_sim_v: bool,
    /// Run the GEN + TCL phases (off = "without GEN & TCL": train the
    /// final classifier directly on the selected source instances).
    pub use_gen_tcl: bool,
}

impl Default for Variant {
    fn default() -> Self {
        Variant {
            use_selection: true,
            use_sim_c: true,
            use_sim_l: true,
            use_sim_v: false,
            use_gen_tcl: true,
        }
    }
}

impl Variant {
    /// The full framework (paper default).
    pub fn full() -> Self {
        Variant::default()
    }

    /// Ablation: skip pseudo labelling and target training; classify the
    /// target with a model trained on the selected source instances.
    pub fn without_gen_tcl() -> Self {
        Variant { use_gen_tcl: false, ..Variant::default() }
    }

    /// Ablation: transfer every source instance unfiltered.
    pub fn without_sel() -> Self {
        Variant { use_selection: false, ..Variant::default() }
    }

    /// Ablation: drop the class-confidence filter.
    pub fn without_sim_c() -> Self {
        Variant { use_sim_c: false, ..Variant::default() }
    }

    /// Ablation: drop the structural-similarity filter.
    pub fn without_sim_l() -> Self {
        Variant { use_sim_l: false, ..Variant::default() }
    }

    /// Extension: add LocIT's covariance filter on top of the full
    /// framework.
    pub fn with_sim_v() -> Self {
        Variant { use_sim_v: true, ..Variant::default() }
    }

    /// The paper's Table 4 rows, in order, with their display names.
    pub fn ablation_suite() -> [(&'static str, Variant); 6] {
        [
            ("TransER", Variant::full()),
            ("without GEN & TCL", Variant::without_gen_tcl()),
            ("without SEL", Variant::without_sel()),
            ("without sim_c", Variant::without_sim_c()),
            ("without sim_l", Variant::without_sim_l()),
            ("TransER + sim_v", Variant::with_sim_v()),
        ]
    }
}

/// TransER hyper-parameters (inputs of Algorithm 1).
///
/// The paper's defaults are `t_c = 0.9`, `t_l = 0.9`, `t_p = 0.99`,
/// `k = 7`, `b = 3`, chosen by its sensitivity analysis on the original
/// data sets. This reproduction re-ran that analysis on the synthetic
/// workloads (see `transer-eval`'s Fig. 7 harness): at simulation scale the
/// k-NN neighbourhoods are sparser than on the authors' 100k+-pair
/// matrices, which lowers the structural similarity `sim_l` across the
/// board and makes well-calibrated 0.99-confidence pseudo labels rarer, so
/// the calibrated defaults here are `t_l = 0.7` and `t_p = 0.9` with the
/// remaining parameters as in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransErConfig {
    /// Neighbourhood size `k` for the SEL phase.
    pub k: usize,
    /// Threshold `t_c` on the instance confidence similarity, in `[0, 1]`.
    pub t_c: f64,
    /// Threshold `t_l` on the instance structural similarity, in `[0, 1]`.
    pub t_l: f64,
    /// Threshold `t_p` on the pseudo-label confidence, in `[0, 1]`.
    pub t_p: f64,
    /// Threshold `t_v` on the covariance similarity (only with
    /// [`Variant::use_sim_v`]).
    pub t_v: f64,
    /// Class-imbalance ratio `b`: non-matches are under-sampled to at most
    /// `b ×` the matches (the paper uses a 1:3 match:non-match ratio).
    pub balance_ratio: f64,
    /// Ablation switches.
    pub variant: Variant,
}

impl Default for TransErConfig {
    fn default() -> Self {
        TransErConfig {
            k: 7,
            t_c: 0.9,
            t_l: 0.7,
            t_p: 0.9,
            t_v: 0.9,
            balance_ratio: 3.0,
            variant: Variant::default(),
        }
    }
}

impl TransErConfig {
    /// Validate parameter ranges.
    ///
    /// # Errors
    /// Returns [`Error::InvalidParameter`] for `k == 0`, thresholds outside
    /// `[0, 1]`, or a non-positive balance ratio.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::InvalidParameter {
                name: "k",
                message: "neighbourhood size must be at least 1".into(),
            });
        }
        for (name, v) in
            [("t_c", self.t_c), ("t_l", self.t_l), ("t_p", self.t_p), ("t_v", self.t_v)]
        {
            if !(0.0..=1.0).contains(&v) || !v.is_finite() {
                return Err(Error::InvalidParameter {
                    name,
                    message: format!("threshold must be in [0, 1], got {v}"),
                });
            }
        }
        if self.balance_ratio <= 0.0 || self.balance_ratio.is_nan() {
            return Err(Error::InvalidParameter {
                name: "balance_ratio",
                message: format!("must be positive, got {}", self.balance_ratio),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = TransErConfig::default();
        assert_eq!(c.k, 7);
        assert_eq!(c.t_c, 0.9);
        assert_eq!(c.t_l, 0.7);
        assert_eq!(c.t_p, 0.9);
        assert_eq!(c.balance_ratio, 3.0);
        assert!(c.validate().is_ok());
        assert_eq!(c.variant, Variant::full());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(TransErConfig { k: 0, ..Default::default() }.validate().is_err());
        assert!(TransErConfig { t_c: 1.5, ..Default::default() }.validate().is_err());
        assert!(TransErConfig { t_l: -0.1, ..Default::default() }.validate().is_err());
        assert!(TransErConfig { t_p: f64::NAN, ..Default::default() }.validate().is_err());
        assert!(TransErConfig { balance_ratio: 0.0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn ablation_suite_covers_table4() {
        let suite = Variant::ablation_suite();
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[0].1, Variant::full());
        assert!(!suite[1].1.use_gen_tcl);
        assert!(!suite[2].1.use_selection);
        assert!(!suite[3].1.use_sim_c);
        assert!(!suite[4].1.use_sim_l);
        assert!(suite[5].1.use_sim_v);
    }

    #[test]
    fn variants_differ_only_in_flagged_component() {
        let full = Variant::full();
        let no_c = Variant::without_sim_c();
        assert!(no_c.use_selection && no_c.use_sim_l && no_c.use_gen_tcl);
        assert_ne!(full, no_c);
    }
}

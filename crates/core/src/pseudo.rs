//! Phase (ii) — the pseudo-label generator (GEN), Section 4.2 of the paper.
//!
//! A classifier `C^U` is trained on the transferred instances `(X^U, Y^U)`
//! and applied to the full target matrix `X^T`, producing a pseudo label
//! `Y^P` and a confidence score `Z^P` (the probability of the predicted
//! class) per target instance. The next phase trains on the target itself
//! using only the high-confidence pseudo labels, which is how TransER
//! absorbs the difference in marginal distributions.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::Classifier;

/// Pseudo labels and confidences for every target instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PseudoLabels {
    /// Predicted label `y^P` per target row.
    pub labels: Vec<Label>,
    /// Confidence `z^P = max(p, 1-p)` of each predicted label, in
    /// `[0.5, 1]`.
    pub confidences: Vec<f64>,
}

impl PseudoLabels {
    /// Indices of instances whose confidence is at least `t_p`.
    pub fn high_confidence_indices(&self, t_p: f64) -> Vec<usize> {
        (0..self.labels.len()).filter(|&i| self.confidences[i] >= t_p).collect()
    }
}

/// Train `C^U` on the transferred instances and pseudo-label the target
/// (lines 10–11 of Algorithm 1).
///
/// The classifier is passed in unfitted so callers control the model family
/// and seed; it is fitted here.
///
/// # Errors
/// Returns an error when the transferred set is empty, single-class (no
/// decision boundary can be learned), or training fails.
pub fn generate_pseudo_labels(
    classifier: &mut dyn Classifier,
    xu: &FeatureMatrix,
    yu: &[Label],
    xt: &FeatureMatrix,
) -> Result<PseudoLabels> {
    if xu.rows() == 0 {
        return Err(Error::EmptyInput("transferred instances"));
    }
    let matches = yu.iter().filter(|l| l.is_match()).count();
    if matches == 0 || matches == yu.len() {
        return Err(Error::TrainingFailed(format!(
            "transferred set is single-class ({matches}/{} matches)",
            yu.len()
        )));
    }
    classifier.fit(xu, yu)?;
    let (labels, confidences): (Vec<Label>, Vec<f64>) =
        classifier.predict_confidence(xt).into_iter().unzip();
    Ok(PseudoLabels { labels, confidences })
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_ml::ClassifierKind;

    fn training_data() -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..15 {
            let j = i as f64 * 0.005;
            rows.push(vec![0.9 - j, 0.85 + j]);
            labels.push(Label::Match);
            rows.push(vec![0.1 + j, 0.15 - j]);
            labels.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), labels)
    }

    #[test]
    fn pseudo_labels_follow_structure() {
        let (xu, yu) = training_data();
        let xt =
            FeatureMatrix::from_vecs(&[vec![0.88, 0.9], vec![0.12, 0.1], vec![0.5, 0.5]]).unwrap();
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let p = generate_pseudo_labels(clf.as_mut(), &xu, &yu, &xt).unwrap();
        assert_eq!(p.labels[0], Label::Match);
        assert_eq!(p.labels[1], Label::NonMatch);
        // Confident at the extremes, less so in the middle.
        assert!(p.confidences[0] > p.confidences[2]);
        assert!(p.confidences[1] > p.confidences[2]);
    }

    #[test]
    fn confidences_in_valid_range() {
        let (xu, yu) = training_data();
        let xt = xu.clone();
        for kind in ClassifierKind::PAPER_SET {
            let mut clf = kind.build(7);
            let p = generate_pseudo_labels(clf.as_mut(), &xu, &yu, &xt).unwrap();
            for &c in &p.confidences {
                assert!((0.5..=1.0).contains(&c), "{} gave {c}", kind.name());
            }
        }
    }

    #[test]
    fn high_confidence_filtering() {
        let p = PseudoLabels {
            labels: vec![Label::Match, Label::NonMatch, Label::Match],
            confidences: vec![0.995, 0.7, 0.999],
        };
        assert_eq!(p.high_confidence_indices(0.99), vec![0, 2]);
        assert_eq!(p.high_confidence_indices(0.5), vec![0, 1, 2]);
        assert!(p.high_confidence_indices(1.0).is_empty());
    }

    #[test]
    fn nan_confidences_never_clear_the_threshold() {
        // `NaN >= t_p` is false for every threshold, so a corrupted
        // confidence can only shrink the candidate set — it never slips a
        // row into TCL's training sample.
        let p = PseudoLabels {
            labels: vec![Label::Match, Label::NonMatch, Label::Match],
            confidences: vec![f64::NAN, 0.995, 0.999],
        };
        assert_eq!(p.high_confidence_indices(0.99), vec![1, 2]);
        let all_nan = PseudoLabels { labels: p.labels, confidences: vec![f64::NAN; 3] };
        assert!(all_nan.high_confidence_indices(0.0).is_empty());
    }

    #[test]
    fn single_class_rejected() {
        let x = FeatureMatrix::from_vecs(&[vec![0.9], vec![0.8]]).unwrap();
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let err = generate_pseudo_labels(clf.as_mut(), &x, &[Label::Match; 2], &x);
        assert!(matches!(err, Err(Error::TrainingFailed(_))));
        let err = generate_pseudo_labels(clf.as_mut(), &x, &[Label::NonMatch; 2], &x);
        assert!(err.is_err());
    }

    #[test]
    fn empty_rejected() {
        let mut clf = ClassifierKind::LogisticRegression.build(0);
        let x = FeatureMatrix::empty(2);
        assert!(generate_pseudo_labels(clf.as_mut(), &x, &[], &x).is_err());
    }
}

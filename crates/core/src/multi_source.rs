//! Multi-source selection — the paper's §6 future-work item "explore how
//! to choose the best source domain when multiple semantically related
//! labelled data sets are available".
//!
//! Given several candidate source domains sharing the target's feature
//! space, we score each by how much of it survives the SEL phase and how
//! structurally close the transferable part is to the target: a source
//! whose confident instances densely cover the target's local structures
//! is a better donor. The score is deliberately computed from SEL's own
//! quantities, so ranking costs one selector pass per candidate and no
//! classifier training.

use transer_common::{Error, FeatureMatrix, Label, Result};

use crate::config::TransErConfig;
use crate::selector::select_instances;

/// Ranking of one candidate source domain.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceScore {
    /// Index of the candidate in the input order.
    pub source_index: usize,
    /// Fraction of the source that passed SEL's thresholds.
    pub selection_yield: f64,
    /// Mean structural similarity `sim_l` of the *selected* instances.
    pub mean_structural_similarity: f64,
    /// Number of selected match instances (a donor with no transferable
    /// matches cannot train `C^U`).
    pub selected_matches: usize,
    /// The combined score used for ranking (higher is better).
    pub score: f64,
}

/// Rank candidate source domains for a target, best first.
///
/// The combined score is `yield × mean sim_l`, zeroed when the selection
/// lacks either class — a donor must contribute a *trainable* transferred
/// set, not just structurally similar instances.
///
/// # Errors
/// Returns [`Error::EmptyInput`] when no candidate is given, and
/// propagates selector errors (mismatched feature spaces and the like).
pub fn rank_sources(
    candidates: &[(&FeatureMatrix, &[Label])],
    xt: &FeatureMatrix,
    config: &TransErConfig,
) -> Result<Vec<SourceScore>> {
    if candidates.is_empty() {
        return Err(Error::EmptyInput("candidate source domains"));
    }
    let mut scores = Vec::with_capacity(candidates.len());
    for (source_index, &(xs, ys)) in candidates.iter().enumerate() {
        let sel = select_instances(xs, ys, xt, config)?;
        let selected = sel.indices.len();
        let selection_yield = selected as f64 / xs.rows().max(1) as f64;
        let mean_structural_similarity = if selected == 0 {
            0.0
        } else {
            sel.indices.iter().map(|&i| sel.scores[i].sim_l).sum::<f64>() / selected as f64
        };
        let selected_matches = sel.indices.iter().filter(|&&i| ys[i].is_match()).count();
        let selected_non_matches = selected - selected_matches;
        let trainable = selected_matches > 0 && selected_non_matches > 0;
        let score = if trainable { selection_yield * mean_structural_similarity } else { 0.0 };
        scores.push(SourceScore {
            source_index,
            selection_yield,
            mean_structural_similarity,
            selected_matches,
            score,
        });
    }
    // total_cmp with an index tiebreak: deterministic and panic-free even
    // if a score comes out NaN (partial_cmp→Equal violated Ord, which
    // sort_by is allowed to panic on since Rust 1.81).
    scores.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.source_index.cmp(&b.source_index)));
    Ok(scores)
}

/// Convenience: the index of the best-scoring candidate.
///
/// # Errors
/// See [`rank_sources`].
pub fn best_source(
    candidates: &[(&FeatureMatrix, &[Label])],
    xt: &FeatureMatrix,
    config: &TransErConfig,
) -> Result<usize> {
    Ok(rank_sources(candidates, xt, config)?[0].source_index)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clustered domain with the match cluster centred at `center`.
    fn domain(center: f64, n: usize) -> (FeatureMatrix, Vec<Label>) {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let j = (i % 10) as f64 * 0.005;
            rows.push(vec![center + j, center - j]);
            ys.push(Label::Match);
            rows.push(vec![0.1 + j, 0.12 - j]);
            ys.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&rows).unwrap(), ys)
    }

    #[test]
    fn prefers_the_aligned_source() {
        let (aligned_x, aligned_y) = domain(0.85, 25);
        let (shifted_x, shifted_y) = domain(0.55, 25);
        let (target_x, _) = domain(0.86, 25);
        let config = TransErConfig { k: 5, ..Default::default() };
        let candidates: Vec<(&FeatureMatrix, &[Label])> =
            vec![(&shifted_x, &shifted_y), (&aligned_x, &aligned_y)];
        let ranked = rank_sources(&candidates, &target_x, &config).unwrap();
        assert_eq!(ranked[0].source_index, 1, "{ranked:?}");
        assert!(ranked[0].score >= ranked[1].score);
        assert_eq!(best_source(&candidates, &target_x, &config).unwrap(), 1);
    }

    #[test]
    fn untrainable_donor_scores_zero() {
        // A source whose matches never pass selection cannot be the donor.
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            rows.push(vec![0.1 + (i % 10) as f64 * 0.004, 0.1]);
            ys.push(Label::NonMatch);
        }
        rows.push(vec![0.95, 0.95]); // a single isolated match
        ys.push(Label::Match);
        let xs = FeatureMatrix::from_vecs(&rows).unwrap();
        let (xt, _) = domain(0.5, 20);
        let config = TransErConfig { k: 5, ..Default::default() };
        let scores = rank_sources(&[(&xs, ys.as_slice())], &xt, &config).unwrap();
        assert_eq!(scores[0].score, 0.0);
    }

    #[test]
    fn scores_are_complete_and_sorted() {
        let (a_x, a_y) = domain(0.8, 15);
        let (b_x, b_y) = domain(0.7, 15);
        let (c_x, c_y) = domain(0.6, 15);
        let (t_x, _) = domain(0.8, 15);
        let config = TransErConfig { k: 3, ..Default::default() };
        let candidates: Vec<(&FeatureMatrix, &[Label])> =
            vec![(&a_x, &a_y), (&b_x, &b_y), (&c_x, &c_y)];
        let ranked = rank_sources(&candidates, &t_x, &config).unwrap();
        assert_eq!(ranked.len(), 3);
        for w in ranked.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
        let mut seen: Vec<usize> = ranked.iter().map(|s| s.source_index).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn empty_candidates_rejected() {
        let (t_x, _) = domain(0.8, 5);
        assert!(rank_sources(&[], &t_x, &TransErConfig::default()).is_err());
    }
}

//! Active-learning integration — the paper's §6 future-work item "explore
//! how to integrate our framework with active learning techniques".
//!
//! After the GEN phase, the pseudo-label confidences tell us exactly where
//! the transferred model is unsure: the lowest-confidence target instances
//! are the most informative ones to show a human oracle. This module ranks
//! them (uncertainty sampling) and runs the resulting
//! query → label → re-run loop on top of
//! [`SemiSupervisedTransEr`](crate::SemiSupervisedTransEr).

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::ClassifierKind;

use crate::config::TransErConfig;
use crate::pipeline::TransEr;
use crate::semi::{SemiSupervisedTransEr, TargetLabel};

/// Target row indices the oracle should label next, most informative
/// first (uncertainty sampling over the pseudo-label confidences).
///
/// `exclude` lists rows already labelled; they are never suggested again.
///
/// # Errors
/// Propagates pipeline errors; returns [`Error::EmptyInput`] when `n == 0`.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline inputs plus the query budget
pub fn suggest_queries(
    config: TransErConfig,
    classifier: ClassifierKind,
    seed: u64,
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    exclude: &[usize],
    n: usize,
) -> Result<Vec<usize>> {
    if n == 0 {
        return Err(Error::EmptyInput("query budget"));
    }
    let out = TransEr::new(config, classifier, seed)?.fit_predict(xs, ys, xt)?;
    let pseudo = out.pseudo.ok_or(Error::EmptyInput("pseudo labels (GEN/TCL ablated?)"))?;
    let mut candidates: Vec<usize> = (0..xt.rows()).filter(|i| !exclude.contains(i)).collect();
    // total_cmp: a NaN confidence must not collapse the comparator to
    // Equal (input-order-dependent results, and an Ord violation that
    // sort_by may panic on); NaN ranks above every finite value, so such
    // rows sort last — least informative — deterministically.
    candidates
        .sort_by(|&a, &b| pseudo.confidences[a].total_cmp(&pseudo.confidences[b]).then(a.cmp(&b)));
    candidates.truncate(n);
    Ok(candidates)
}

/// Result of one active-learning round.
#[derive(Debug, Clone)]
pub struct ActiveRound {
    /// Labels predicted after incorporating the oracle answers so far.
    pub labels: Vec<Label>,
    /// All target rows labelled so far (cumulative).
    pub labelled: Vec<TargetLabel>,
}

/// Run `rounds` rounds of uncertainty-sampled active transfer, asking the
/// `oracle` for `per_round` labels each round and re-running the
/// semi-supervised pipeline with everything collected.
///
/// The oracle is any `Fn(usize) -> Label` — in experiments, a lookup into
/// the held-out ground truth.
///
/// # Errors
/// Propagates pipeline and query errors.
#[allow(clippy::too_many_arguments)] // mirrors the pipeline inputs plus the loop controls
pub fn active_transfer(
    config: TransErConfig,
    classifier: ClassifierKind,
    seed: u64,
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    rounds: usize,
    per_round: usize,
    oracle: impl Fn(usize) -> Label,
) -> Result<Vec<ActiveRound>> {
    let semi = SemiSupervisedTransEr::new(config, classifier, seed)?;
    let mut labelled: Vec<TargetLabel> = Vec::new();
    let mut history = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let exclude: Vec<usize> = labelled.iter().map(|&(i, _)| i).collect();
        let queries = suggest_queries(config, classifier, seed, xs, ys, xt, &exclude, per_round)?;
        if queries.is_empty() {
            break;
        }
        labelled.extend(queries.iter().map(|&i| (i, oracle(i))));
        let out = semi.fit_predict(xs, ys, xt, &labelled)?;
        history.push(ActiveRound { labels: out.labels, labelled: labelled.clone() });
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_metrics::evaluate;

    fn shifted_task() -> (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..20 {
            let j = (i % 10) as f64 * 0.006;
            xs.push(vec![0.9 - j, 0.85 + j]);
            ys.push(Label::Match);
            xs.push(vec![0.1 + j, 0.15 - j]);
            ys.push(Label::NonMatch);
            xt.push(vec![0.6 - j, 0.58 + j]);
            yt.push(Label::Match);
            xt.push(vec![0.14 + j, 0.2 - j]);
            yt.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), yt)
    }

    fn cfg() -> TransErConfig {
        TransErConfig { k: 5, ..Default::default() }
    }

    #[test]
    fn queries_target_the_uncertain_region() {
        let (xs, ys, xt, _) = shifted_task();
        let q =
            suggest_queries(cfg(), ClassifierKind::LogisticRegression, 1, &xs, &ys, &xt, &[], 5)
                .unwrap();
        assert_eq!(q.len(), 5);
        // The uncertain instances are the shifted matches (even indices).
        let shifted_hits = q.iter().filter(|&&i| i % 2 == 0).count();
        assert!(shifted_hits >= 3, "queries {q:?} missed the uncertain region");
    }

    #[test]
    fn exclusion_is_respected_and_deterministic() {
        let (xs, ys, xt, _) = shifted_task();
        let first =
            suggest_queries(cfg(), ClassifierKind::LogisticRegression, 1, &xs, &ys, &xt, &[], 3)
                .unwrap();
        let second =
            suggest_queries(cfg(), ClassifierKind::LogisticRegression, 1, &xs, &ys, &xt, &first, 3)
                .unwrap();
        for i in &second {
            assert!(!first.contains(i));
        }
        let again =
            suggest_queries(cfg(), ClassifierKind::LogisticRegression, 1, &xs, &ys, &xt, &[], 3)
                .unwrap();
        assert_eq!(first, again);
    }

    #[test]
    fn active_rounds_accumulate_labels_and_do_not_regress() {
        let (xs, ys, xt, yt) = shifted_task();
        let history = active_transfer(
            cfg(),
            ClassifierKind::LogisticRegression,
            1,
            &xs,
            &ys,
            &xt,
            3,
            4,
            |i| yt[i],
        )
        .unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].labelled.len(), 4);
        assert_eq!(history[2].labelled.len(), 12);
        let first = evaluate(&history[0].labels, &yt).f_star();
        let last = evaluate(&history[2].labels, &yt).f_star();
        assert!(last >= first - 0.05, "active learning regressed: {first} -> {last}");
    }

    #[test]
    fn zero_budget_rejected() {
        let (xs, ys, xt, _) = shifted_task();
        assert!(suggest_queries(
            cfg(),
            ClassifierKind::LogisticRegression,
            1,
            &xs,
            &ys,
            &xt,
            &[],
            0
        )
        .is_err());
    }
}

//! The TransER pipeline: SEL → GEN → TCL (Algorithm 1), with diagnostics,
//! phase timings, ablation variants and documented fallbacks for the
//! degenerate situations Algorithm 1 leaves implicit.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::{Classifier, ClassifierKind, TreeEngine};
use transer_robust::{site, FaultKind};

use crate::config::TransErConfig;
use crate::pseudo::{generate_pseudo_labels, PseudoLabels};
use crate::selector::select_instances;
use crate::target::train_target_classifier;

/// One step of the pipeline's graceful-degradation ladder: why a phase
/// abandoned its primary strategy and what it used instead.
///
/// Every step is recorded in [`Diagnostics::fallbacks`] and — when tracing
/// is enabled — as a `robust.fallback.*` counter, so degraded runs are
/// observable rather than silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FallbackReason {
    /// SEL transferred too little (or a single class) to train `C^U`; GEN
    /// trained on the full source instead.
    SelectionStarved,
    /// GEN could not produce pseudo labels; the target was classified
    /// directly by a model trained on the transferred instances (the
    /// "without GEN & TCL" ablation shape).
    GenFailed,
    /// The direct classifier could not be trained on the transferred
    /// instances either; it was trained on the full source.
    SourceDirect,
    /// TCL could not be trained (no / single-class high-confidence pseudo
    /// labels); the pseudo labels were returned directly.
    TclFailed,
}

impl FallbackReason {
    /// Every ladder step, in pipeline order.
    pub const ALL: [FallbackReason; 4] = [
        FallbackReason::SelectionStarved,
        FallbackReason::GenFailed,
        FallbackReason::SourceDirect,
        FallbackReason::TclFailed,
    ];

    /// Stable snake_case name (used in reports and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            FallbackReason::SelectionStarved => "selection_starved",
            FallbackReason::GenFailed => "gen_failed",
            FallbackReason::SourceDirect => "source_direct",
            FallbackReason::TclFailed => "tcl_failed",
        }
    }

    /// The trace counter bumped when this step is taken.
    fn counter_name(self) -> &'static str {
        match self {
            FallbackReason::SelectionStarved => "robust.fallback.sel",
            FallbackReason::GenFailed => "robust.fallback.gen",
            FallbackReason::SourceDirect => "robust.fallback.source",
            FallbackReason::TclFailed => "robust.fallback.tcl",
        }
    }
}

/// The set of [`FallbackReason`] steps taken during one run (a small
/// bitmask, so [`Diagnostics`] stays `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FallbackSet(u8);

impl FallbackSet {
    /// Whether `reason` was recorded.
    pub fn contains(self, reason: FallbackReason) -> bool {
        self.0 & (1 << reason as u8) != 0
    }

    /// Whether the run completed without any fallback.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The recorded reasons, in pipeline order.
    pub fn iter(self) -> impl Iterator<Item = FallbackReason> {
        FallbackReason::ALL.into_iter().filter(move |&r| self.contains(r))
    }

    fn insert(&mut self, reason: FallbackReason) {
        self.0 |= 1 << reason as u8;
    }
}

/// Counters and timings recorded while running the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Diagnostics {
    /// `|X^S|`.
    pub source_count: usize,
    /// `|X^U|` — instances transferred by SEL.
    pub selected_count: usize,
    /// `|X^V|` — target instances whose pseudo-label confidence cleared
    /// `t_p` (0 when GEN/TCL is ablated away).
    pub candidate_count: usize,
    /// `|X^V_b|` — size of the balanced final training sample.
    pub balanced_count: usize,
    /// SEL wall-clock seconds.
    pub sel_secs: f64,
    /// GEN wall-clock seconds.
    pub gen_secs: f64,
    /// TCL wall-clock seconds.
    pub tcl_secs: f64,
    /// End-to-end wall-clock seconds, measured by the root `pipeline` span
    /// (≥ the phase sum: it includes the glue between phases).
    pub total_secs: f64,
    /// SEL produced a set too degenerate to train on (empty or
    /// single-class); the full source was used instead. Mirrors
    /// `fallbacks.contains(FallbackReason::SelectionStarved)`.
    pub selection_fallback: bool,
    /// TCL could not be trained (no/single-class high-confidence pseudo
    /// labels); the pseudo labels were returned directly. Mirrors
    /// `fallbacks.contains(FallbackReason::TclFailed)`.
    pub tcl_fallback: bool,
    /// Every degradation-ladder step the run took.
    pub fallbacks: FallbackSet,
}

impl Diagnostics {
    /// Total wall-clock seconds (the `total_secs` field; kept as a method
    /// for backwards compatibility with callers of the old phase sum).
    pub fn total_secs(&self) -> f64 {
        self.total_secs
    }

    /// Record a degradation-ladder step: sets the typed [`FallbackSet`]
    /// bit, keeps the legacy boolean flags in sync, and bumps the
    /// `robust.fallback.*` trace counter.
    pub(crate) fn record_fallback(&mut self, reason: FallbackReason) {
        self.fallbacks.insert(reason);
        match reason {
            FallbackReason::SelectionStarved => self.selection_fallback = true,
            FallbackReason::TclFailed => self.tcl_fallback = true,
            FallbackReason::GenFailed | FallbackReason::SourceDirect => {}
        }
        transer_trace::counter(reason.counter_name(), 1);
    }
}

/// The result of running TransER on a domain pair.
#[derive(Debug, Clone, PartialEq)]
pub struct TransErOutput {
    /// Final labels `Y^T`, aligned with the target rows.
    pub labels: Vec<Label>,
    /// The intermediate pseudo labels `Y^P`/`Z^P` (equal to the final
    /// labels when the TCL phase fell back; absent when GEN/TCL is ablated
    /// away or when the GEN ladder degraded to direct classification —
    /// see [`Diagnostics::fallbacks`]).
    pub pseudo: Option<PseudoLabels>,
    /// Counters and timings.
    pub diagnostics: Diagnostics,
    /// The structured trace of this run (`Some` only when tracing is
    /// enabled — see [`transer_trace::enabled`]): the span tree behind
    /// [`Diagnostics`] plus every counter and histogram the run recorded.
    pub trace: Option<transer_trace::TraceReport>,
}

/// Drain the run's trace buffer into the output (`None` when disabled).
pub(crate) fn take_run_trace() -> Option<transer_trace::TraceReport> {
    transer_trace::enabled().then(transer_trace::drain_report)
}

/// Trace the GEN confidence distribution against `t_p`: the histogram
/// shows how sharply `C^U` separates the target, and the two counters are
/// the exact split TCL will see.
fn trace_confidences(pseudo: &PseudoLabels, t_p: f64) {
    if !transer_trace::enabled() {
        return;
    }
    let mut above = 0u64;
    for &c in &pseudo.confidences {
        transer_trace::observe("gen.confidence", c);
        if c >= t_p {
            above += 1;
        }
    }
    transer_trace::counter("gen.pseudo_labels", pseudo.labels.len() as u64);
    transer_trace::counter("gen.above_t_p", above);
    transer_trace::counter("gen.below_t_p", pseudo.confidences.len() as u64 - above);
}

/// What the GEN phase produced: pseudo labels for TCL, or — when every
/// pseudo-labelling attempt failed — target labels classified directly.
/// Either way the trained classifier rides along, so the serving layer can
/// persist whichever model produced the labels it will replay.
pub(crate) enum GenOutcome {
    /// Pseudo labels with confidences (and the trained `C^U`); TCL runs
    /// next.
    Pseudo(PseudoLabels, Box<dyn Classifier>),
    /// GEN fell back to direct classification; there is nothing for TCL
    /// to refine, so these are the final labels (and the direct model is
    /// the one that produced them).
    Direct(Vec<Label>, Box<dyn Classifier>),
}

/// Fit a fresh classifier on `(x, y)` and label the target — the shape of
/// the "without GEN & TCL" ablation, reused as the ladder's direct rungs.
fn direct_labels(
    classifier: ClassifierKind,
    seed: u64,
    engine: TreeEngine,
    x: &FeatureMatrix,
    y: &[Label],
    xt: &FeatureMatrix,
) -> Result<(Vec<Label>, Box<dyn Classifier>)> {
    let mut clf = classifier.build_with_engine(seed, engine);
    clf.fit(x, y)?;
    let labels = clf.predict(xt);
    Ok((labels, clf))
}

/// Run GEN with the graceful-degradation ladder:
///
/// 1. pseudo-label via `C^U` trained on the transferred set `(xu, yu)`;
/// 2. on failure, classify the target directly from the (clean)
///    transferred set ([`FallbackReason::GenFailed`]);
/// 3. on failure again, classify directly from the full source
///    ([`FallbackReason::SourceDirect`]);
/// 4. only then surface a typed error.
///
/// Resource-limit errors ([`Error::is_resource_exceeded`]) abort
/// immediately — retrying would blow the same budget.
///
/// Hosts the `gen.fit` fault site (corrupts a *copy* of the training pair,
/// so the ladder's clean-retry rungs stay meaningful) and the
/// `gen.predict` site (corrupts the produced confidences/labels).
#[allow(clippy::too_many_arguments)] // mirrors the pipeline inputs
pub(crate) fn gen_with_ladder(
    classifier: ClassifierKind,
    seed: u64,
    engine: TreeEngine,
    xu: &FeatureMatrix,
    yu: &[Label],
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    diag: &mut Diagnostics,
) -> Result<GenOutcome> {
    let mut cu = classifier.build_with_engine(seed, engine);
    let generated = match transer_robust::fired(site::GEN_FIT) {
        Some(FaultKind::TaskFail) => Err(Error::FaultInjected(site::GEN_FIT)),
        Some(kind) => {
            let (fx, fy) = transer_robust::corrupted_pair(xu, yu, kind);
            generate_pseudo_labels(cu.as_mut(), &fx, &fy, xt)
        }
        None => generate_pseudo_labels(cu.as_mut(), xu, yu, xt),
    };
    let generated =
        generated.and_then(|mut pseudo| match transer_robust::fired(site::GEN_PREDICT) {
            Some(FaultKind::TaskFail | FaultKind::Empty) => {
                Err(Error::FaultInjected(site::GEN_PREDICT))
            }
            Some(kind) => {
                transer_robust::corrupt_confidences(&mut pseudo.confidences, kind);
                transer_robust::corrupt_labels(&mut pseudo.labels, kind);
                Ok(pseudo)
            }
            None => Ok(pseudo),
        });
    match generated {
        Ok(pseudo) => Ok(GenOutcome::Pseudo(pseudo, cu)),
        Err(e) if e.is_resource_exceeded() => Err(e),
        Err(_) => {
            diag.record_fallback(FallbackReason::GenFailed);
            if let Ok((labels, clf)) = direct_labels(classifier, seed, engine, xu, yu, xt) {
                return Ok(GenOutcome::Direct(labels, clf));
            }
            diag.record_fallback(FallbackReason::SourceDirect);
            direct_labels(classifier, seed, engine, xs, ys, xt)
                .map(|(labels, clf)| GenOutcome::Direct(labels, clf))
        }
    }
}

/// The TransER framework: configuration plus the classifier family used
/// for both `C^U` and `C^V`.
#[derive(Debug, Clone)]
pub struct TransEr {
    config: TransErConfig,
    classifier: ClassifierKind,
    seed: u64,
    tree_engine: TreeEngine,
}

impl TransEr {
    /// Create a pipeline.
    ///
    /// # Errors
    /// Returns [`transer_common::Error::InvalidParameter`] when the
    /// configuration is invalid.
    pub fn new(config: TransErConfig, classifier: ClassifierKind, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(TransEr { config, classifier, seed, tree_engine: TreeEngine::from_env() })
    }

    /// Pin the decision-tree training engine for the tree-based classifier
    /// kinds instead of reading `TRANSER_TREE_ENGINE`. The engines produce
    /// bit-identical classifiers, so pipeline outputs do not depend on this
    /// choice — it exists for benchmarks and equivalence tests.
    pub fn with_tree_engine(mut self, engine: TreeEngine) -> Self {
        self.tree_engine = engine;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &TransErConfig {
        &self.config
    }

    /// Run Algorithm 1: predict labels for every target instance.
    ///
    /// Degenerate intermediate states walk a graceful-degradation ladder
    /// (each step typed in [`Diagnostics::fallbacks`]) rather than failing:
    ///
    /// * SEL transfers nothing / a single class → GEN trains on the full
    ///   source instead ([`FallbackReason::SelectionStarved`]).
    /// * GEN cannot produce pseudo labels → the target is classified
    ///   directly from the transferred set
    ///   ([`FallbackReason::GenFailed`]), and if that fails too, from the
    ///   full source ([`FallbackReason::SourceDirect`]).
    /// * No (two-class) high-confidence pseudo labels → the pseudo labels
    ///   are returned as the final labels ([`FallbackReason::TclFailed`]).
    ///
    /// # Errors
    /// Returns an error for empty/mismatched inputs or when even the
    /// fallback training sets are unusable (e.g. a single-class source).
    pub fn fit_predict(
        &self,
        xs: &FeatureMatrix,
        ys: &[Label],
        xt: &FeatureMatrix,
    ) -> Result<TransErOutput> {
        self.fit_predict_with_model(xs, ys, xt).map(|(out, _)| out)
    }

    /// [`TransEr::fit_predict`], additionally returning the trained model
    /// that produced the final labels — the TCL classifier `C^V` on the
    /// happy path, or whichever ladder rung answered (the GEN model `C^U`
    /// when TCL fell back, a direct classifier when GEN degraded). `None`
    /// when that classifier kind has no persistence format (SVM, MLP); the
    /// three serialisable kinds always yield `Some`.
    ///
    /// This is the offline half of the serving story: train once, persist
    /// the returned model, and replay it against query batches without
    /// refitting.
    ///
    /// # Errors
    /// See [`TransEr::fit_predict`].
    pub fn fit_predict_with_model(
        &self,
        xs: &FeatureMatrix,
        ys: &[Label],
        xt: &FeatureMatrix,
    ) -> Result<(TransErOutput, Option<transer_ml::PersistedModel>)> {
        let root = transer_trace::timed("pipeline");
        let mut diag = Diagnostics { source_count: xs.rows(), ..Default::default() };
        let variant = self.config.variant;

        // Phase (i): SEL.
        let sel_span = transer_trace::timed("sel");
        let (mut xu, mut yu) = if variant.use_selection {
            let sel = select_instances(xs, ys, xt, &self.config)?;
            sel.transferred(xs, ys)
        } else {
            // "without SEL": transfer everything. Still validates inputs.
            let cfg = TransErConfig {
                variant: crate::config::Variant {
                    use_sim_c: false,
                    use_sim_l: false,
                    use_sim_v: false,
                    ..variant
                },
                ..self.config
            };
            let sel = select_instances(xs, ys, xt, &cfg)?;
            sel.transferred(xs, ys)
        };
        diag.selected_count = xu.rows();

        // Fallback: a degenerate transferred set cannot train C^U.
        let matches = yu.iter().filter(|l| l.is_match()).count();
        if xu.rows() < 2 || matches == 0 || matches == yu.len() {
            diag.record_fallback(FallbackReason::SelectionStarved);
            xu = xs.clone();
            yu = ys.to_vec();
        }
        diag.sel_secs = sel_span.finish();

        if !variant.use_gen_tcl {
            // Ablation "without GEN & TCL": classify the target with a
            // model trained directly on the transferred instances.
            let gen_span = transer_trace::timed("gen");
            let mut clf = self.classifier.build_with_engine(self.seed, self.tree_engine);
            clf.fit(&xu, &yu)?;
            let labels = clf.predict(xt);
            diag.gen_secs = gen_span.finish();
            diag.total_secs = root.finish();
            let model = transer_ml::PersistedModel::from_classifier(clf.as_ref());
            return Ok((
                TransErOutput { labels, pseudo: None, diagnostics: diag, trace: take_run_trace() },
                model,
            ));
        }

        // Phase (ii): GEN, with the degradation ladder.
        let gen_span = transer_trace::timed("gen");
        let outcome = gen_with_ladder(
            self.classifier,
            self.seed,
            self.tree_engine,
            &xu,
            &yu,
            xs,
            ys,
            xt,
            &mut diag,
        )?;
        diag.gen_secs = gen_span.finish();
        let (pseudo, cu) = match outcome {
            GenOutcome::Pseudo(pseudo, cu) => (pseudo, cu),
            GenOutcome::Direct(labels, clf) => {
                // GEN degraded to direct classification: nothing for TCL
                // to refine.
                diag.total_secs = root.finish();
                let model = transer_ml::PersistedModel::from_classifier(clf.as_ref());
                return Ok((
                    TransErOutput {
                        labels,
                        pseudo: None,
                        diagnostics: diag,
                        trace: take_run_trace(),
                    },
                    model,
                ));
            }
        };
        trace_confidences(&pseudo, self.config.t_p);

        // Phase (iii): TCL.
        let tcl_span = transer_trace::timed("tcl");
        let mut cv: Box<dyn Classifier> =
            self.classifier.build_with_engine(self.seed.wrapping_add(1), self.tree_engine);
        let (output, served_model) = match train_target_classifier(
            cv.as_mut(),
            xt,
            &pseudo,
            self.config.t_p,
            self.config.balance_ratio,
            self.seed,
        ) {
            Ok(out) => {
                diag.candidate_count = out.candidate_count;
                diag.balanced_count = out.balanced_count;
                (out.labels, cv.as_ref())
            }
            Err(e) if !e.is_resource_exceeded() => {
                // Fallback: the pseudo labels are the best available
                // answer, and the GEN model that produced them is the one
                // worth persisting.
                diag.record_fallback(FallbackReason::TclFailed);
                (pseudo.labels.clone(), cu.as_ref())
            }
            Err(e) => return Err(e),
        };
        diag.tcl_secs = tcl_span.finish();
        diag.total_secs = root.finish();
        let model = transer_ml::PersistedModel::from_classifier(served_model);

        Ok((
            TransErOutput {
                labels: output,
                pseudo: Some(pseudo),
                diagnostics: diag,
                trace: take_run_trace(),
            },
            model,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Variant;

    /// Source with a conflicted mid region; target is the two clean
    /// clusters, shifted slightly.
    fn fixture() -> (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..20 {
            let j = (i % 10) as f64 * 0.006;
            xs.push(vec![0.9 - j, 0.85 + j]);
            ys.push(Label::Match);
            xs.push(vec![0.1 + j, 0.15 - j]);
            ys.push(Label::NonMatch);
            xs.push(vec![0.12 + j, 0.1 - j / 2.0]);
            ys.push(Label::NonMatch);
        }
        // Conflicted instances whose labels disagree with the target's
        // conditional distribution.
        for i in 0..8 {
            let j = i as f64 * 0.004;
            xs.push(vec![0.5 + j, 0.5 - j]);
            ys.push(if i % 2 == 0 { Label::Match } else { Label::NonMatch });
        }
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..15 {
            let j = (i % 8) as f64 * 0.007;
            xt.push(vec![0.87 - j, 0.88 + j]);
            yt.push(Label::Match);
            xt.push(vec![0.13 + j, 0.12 - j]);
            yt.push(Label::NonMatch);
            xt.push(vec![0.16 + j, 0.14 - j / 2.0]);
            yt.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), yt)
    }

    fn run(config: TransErConfig) -> (TransErOutput, Vec<Label>) {
        let (xs, ys, xt, yt) = fixture();
        let t = TransEr::new(config, ClassifierKind::LogisticRegression, 42).unwrap();
        (t.fit_predict(&xs, &ys, &xt).unwrap(), yt)
    }

    fn accuracy(pred: &[Label], truth: &[Label]) -> f64 {
        pred.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn full_pipeline_classifies_target() {
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let (out, yt) = run(cfg);
        assert_eq!(out.labels.len(), yt.len());
        assert!(accuracy(&out.labels, &yt) > 0.95, "accuracy too low");
        let d = out.diagnostics;
        assert!(d.selected_count > 0 && d.selected_count < d.source_count);
        assert!(!d.selection_fallback);
        assert!(d.fallbacks.is_empty(), "clean run took a fallback: {:?}", d.fallbacks);
        assert!(out.pseudo.is_some());
        assert!(d.total_secs() >= 0.0);
    }

    #[test]
    fn selector_drops_conflicted_instances() {
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let (out, _) = run(cfg);
        // The 8 conflicted mid instances cannot all survive selection.
        assert!(out.diagnostics.selected_count <= out.diagnostics.source_count - 4);
    }

    #[test]
    fn without_gen_tcl_variant() {
        let cfg = TransErConfig { k: 5, variant: Variant::without_gen_tcl(), ..Default::default() };
        let (out, yt) = run(cfg);
        assert!(out.pseudo.is_none());
        assert_eq!(out.diagnostics.candidate_count, 0);
        assert!(accuracy(&out.labels, &yt) > 0.9);
    }

    #[test]
    fn without_sel_transfers_everything() {
        let cfg = TransErConfig { k: 5, variant: Variant::without_sel(), ..Default::default() };
        let (out, _) = run(cfg);
        assert_eq!(out.diagnostics.selected_count, out.diagnostics.source_count);
    }

    #[test]
    fn tcl_fallback_on_impossible_threshold() {
        // t_p = 1.0 keeps almost nothing; logistic probabilities rarely
        // saturate exactly, so TCL falls back to the pseudo labels.
        let cfg = TransErConfig { k: 5, t_p: 1.0, ..Default::default() };
        let (out, yt) = run(cfg);
        assert_eq!(out.labels.len(), yt.len());
        if out.diagnostics.tcl_fallback {
            let pseudo = out.pseudo.expect("pseudo kept");
            assert_eq!(out.labels, pseudo.labels);
        }
    }

    #[test]
    fn selection_fallback_on_hostile_thresholds() {
        // Thresholds so strict nothing passes: pipeline must fall back to
        // the full source rather than fail.
        let cfg = TransErConfig { k: 5, t_c: 1.0, t_l: 1.0, ..Default::default() };
        let (xs, ys, xt, _) = fixture();
        // Force structural mismatch so sim_l = 1.0 never holds.
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 1).unwrap();
        let out = t.fit_predict(&xs, &ys, &xt).unwrap();
        assert_eq!(out.labels.len(), xt.rows());
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let (xs, ys, xt, _) = fixture();
        let a = TransEr::new(cfg, ClassifierKind::RandomForest, 9).unwrap();
        let b = TransEr::new(cfg, ClassifierKind::RandomForest, 9).unwrap();
        assert_eq!(
            a.fit_predict(&xs, &ys, &xt).unwrap().labels,
            b.fit_predict(&xs, &ys, &xt).unwrap().labels
        );
    }

    #[test]
    fn tracing_never_changes_labels_and_reports_all_phases() {
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let (xs, ys, xt, _) = fixture();
        let t = TransEr::new(cfg, ClassifierKind::RandomForest, 7).unwrap();
        let plain = t.fit_predict(&xs, &ys, &xt).unwrap();
        assert!(plain.trace.is_none(), "trace must be absent when disabled");

        // Flip the process-global switch for one traced run; restore after.
        transer_trace::set_enabled(true);
        let traced = t.fit_predict(&xs, &ys, &xt);
        transer_trace::set_enabled(false);
        let traced = traced.unwrap();

        assert_eq!(plain.labels, traced.labels, "tracing must not change outputs");
        let report = traced.trace.expect("trace present when enabled");
        let root = report.find_span("pipeline").expect("root span");
        for phase in ["sel", "gen", "tcl"] {
            let child = root.find(phase).unwrap_or_else(|| panic!("{phase} span missing"));
            assert!(child.secs >= 0.0);
        }
        assert!(root.secs >= root.children.iter().map(|c| c.secs).sum::<f64>());
        let d = traced.diagnostics;
        assert!(d.total_secs >= d.sel_secs + d.gen_secs + d.tcl_secs);
        // The accept/reject breakdown covers every source row, and GEN's
        // confidence histogram covers every target row.
        let verdicts = report.counter("sel.accepted")
            + report.counter("sel.rejected.sim_c")
            + report.counter("sel.rejected.sim_l")
            + report.counter("sel.rejected.sim_v");
        assert_eq!(verdicts, xs.rows() as u64);
        assert_eq!(report.counter("sel.accepted"), d.selected_count as u64);
        assert_eq!(report.hists["gen.confidence"].count, xt.rows() as u64);
        assert_eq!(report.counter("tcl.candidates"), d.candidate_count as u64);
        assert_eq!(report.counter("tcl.balanced"), d.balanced_count as u64);
        assert_eq!(report.counter("tcl.discarded"), (d.candidate_count - d.balanced_count) as u64);
    }

    #[test]
    fn fallback_set_is_a_typed_bitmask() {
        let mut set = FallbackSet::default();
        assert!(set.is_empty());
        assert!(set.iter().next().is_none());
        set.insert(FallbackReason::GenFailed);
        set.insert(FallbackReason::TclFailed);
        assert!(!set.is_empty());
        assert!(set.contains(FallbackReason::GenFailed));
        assert!(!set.contains(FallbackReason::SelectionStarved));
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![FallbackReason::GenFailed, FallbackReason::TclFailed]
        );
        assert_eq!(FallbackReason::SourceDirect.as_str(), "source_direct");
        for reason in FallbackReason::ALL {
            assert!(!reason.as_str().is_empty());
        }
    }

    #[test]
    fn record_fallback_syncs_legacy_flags() {
        let mut diag = Diagnostics::default();
        diag.record_fallback(FallbackReason::SelectionStarved);
        assert!(diag.selection_fallback && !diag.tcl_fallback);
        diag.record_fallback(FallbackReason::TclFailed);
        assert!(diag.tcl_fallback);
        diag.record_fallback(FallbackReason::GenFailed);
        assert_eq!(diag.fallbacks.iter().count(), 3);
    }

    #[test]
    fn gen_fault_degrades_to_direct_classification() {
        let _guard = transer_robust::test_lock();
        let (xs, ys, xt, yt) = fixture();
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 42).unwrap();

        // GEN fails outright: rung 1 (direct classification from the
        // clean transferred set) answers, and records only GenFailed.
        transer_robust::set_plan(Some("gen.fit:task_fail"));
        let out = t.fit_predict(&xs, &ys, &xt);
        transer_robust::set_plan(None);
        let out = out.unwrap();
        assert!(out.pseudo.is_none(), "direct rung produces no pseudo labels");
        let d = out.diagnostics;
        assert!(d.fallbacks.contains(FallbackReason::GenFailed));
        assert!(!d.fallbacks.contains(FallbackReason::SourceDirect));
        assert!(accuracy(&out.labels, &yt) > 0.9, "direct rung must still classify well");
    }

    #[test]
    fn fallback_counters_appear_in_trace() {
        let _guard = transer_robust::test_lock();
        let (xs, ys, xt, _) = fixture();
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let t = TransEr::new(cfg, ClassifierKind::LogisticRegression, 42).unwrap();
        transer_robust::set_plan(Some("gen.fit:task_fail"));
        transer_trace::set_enabled(true);
        let out = t.fit_predict(&xs, &ys, &xt);
        transer_trace::set_enabled(false);
        transer_robust::set_plan(None);
        let report = out.unwrap().trace.expect("trace enabled");
        assert_eq!(report.counter("robust.fallback.gen"), 1);
        assert_eq!(report.counter("robust.fault.gen.fit"), 1);
        assert_eq!(report.counter("robust.fallback.source"), 0);
    }

    #[test]
    fn invalid_config_rejected_at_construction() {
        assert!(TransEr::new(TransErConfig { k: 0, ..Default::default() }, ClassifierKind::Svm, 0)
            .is_err());
    }

    #[test]
    fn works_with_all_paper_classifiers() {
        let (xs, ys, xt, yt) = fixture();
        for kind in ClassifierKind::PAPER_SET {
            let t = TransEr::new(TransErConfig { k: 5, ..Default::default() }, kind, 3).unwrap();
            let out = t.fit_predict(&xs, &ys, &xt).unwrap();
            let acc = accuracy(&out.labels, &yt);
            assert!(acc > 0.8, "{} accuracy {acc}", kind.name());
        }
    }
}

//! Semi-supervised transfer — the paper's §6 future-work item "investigate
//! how to perform TL when some labels are available in the target domain".
//!
//! Known target labels enter the pipeline at the TCL phase: they override
//! the pseudo labels for their instances (with full confidence), so the
//! final classifier trains on a mixture of trusted human labels and
//! high-confidence pseudo labels, balanced as usual. Even a few dozen
//! target labels anchor the decision boundary in the target's own space.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_ml::{ClassifierKind, TreeEngine};

use crate::config::TransErConfig;
use crate::pipeline::{
    gen_with_ladder, Diagnostics, FallbackReason, GenOutcome, TransEr, TransErOutput,
};
use crate::pseudo::PseudoLabels;
use crate::selector::select_instances;
use crate::target::train_target_classifier;

/// A known target label: `(row index into X^T, label)`.
pub type TargetLabel = (usize, Label);

/// TransER with partially labelled target data.
///
/// Wraps the standard pipeline; the supplied target labels override the
/// pseudo labels before the TCL phase.
#[derive(Debug, Clone)]
pub struct SemiSupervisedTransEr {
    config: TransErConfig,
    classifier: ClassifierKind,
    seed: u64,
}

impl SemiSupervisedTransEr {
    /// Create a semi-supervised pipeline.
    ///
    /// # Errors
    /// Returns an error for an invalid configuration.
    pub fn new(config: TransErConfig, classifier: ClassifierKind, seed: u64) -> Result<Self> {
        config.validate()?;
        Ok(SemiSupervisedTransEr { config, classifier, seed })
    }

    /// Run the pipeline with known target labels.
    ///
    /// With an empty `target_labels` this is exactly
    /// [`TransEr::fit_predict`].
    ///
    /// # Errors
    /// Returns an error for out-of-range label indices or pipeline
    /// failures.
    pub fn fit_predict(
        &self,
        xs: &FeatureMatrix,
        ys: &[Label],
        xt: &FeatureMatrix,
        target_labels: &[TargetLabel],
    ) -> Result<TransErOutput> {
        for &(i, _) in target_labels {
            if i >= xt.rows() {
                return Err(Error::InvalidParameter {
                    name: "target_labels",
                    message: format!("index {i} out of range for {} target rows", xt.rows()),
                });
            }
        }
        if target_labels.is_empty() {
            return TransEr::new(self.config, self.classifier, self.seed)?.fit_predict(xs, ys, xt);
        }

        let root = transer_trace::timed("pipeline");
        let mut diag = Diagnostics { source_count: xs.rows(), ..Default::default() };

        // SEL + GEN as in the standard pipeline.
        let sel = select_instances(xs, ys, xt, &self.config)?;
        let (mut xu, mut yu) = sel.transferred(xs, ys);
        diag.selected_count = xu.rows();
        let matches = yu.iter().filter(|l| l.is_match()).count();
        if xu.rows() < 2 || matches == 0 || matches == yu.len() {
            diag.record_fallback(FallbackReason::SelectionStarved);
            xu = xs.clone();
            yu = ys.to_vec();
        }
        let outcome = gen_with_ladder(
            self.classifier,
            self.seed,
            TreeEngine::from_env(),
            &xu,
            &yu,
            xs,
            ys,
            xt,
            &mut diag,
        )?;
        let mut pseudo: PseudoLabels = match outcome {
            GenOutcome::Pseudo(pseudo, _) => pseudo,
            GenOutcome::Direct(mut labels, _) => {
                // GEN degraded to direct classification; the known labels
                // are still authoritative in the output.
                for &(i, label) in target_labels {
                    labels[i] = label;
                }
                diag.total_secs = root.finish();
                return Ok(TransErOutput {
                    labels,
                    pseudo: None,
                    diagnostics: diag,
                    trace: crate::pipeline::take_run_trace(),
                });
            }
        };

        // Inject the trusted labels with full confidence.
        for &(i, label) in target_labels {
            pseudo.labels[i] = label;
            pseudo.confidences[i] = 1.0;
        }

        let mut cv = self.classifier.build(self.seed.wrapping_add(1));
        let labels = match train_target_classifier(
            cv.as_mut(),
            xt,
            &pseudo,
            self.config.t_p,
            self.config.balance_ratio,
            self.seed,
        ) {
            Ok(out) => {
                diag.candidate_count = out.candidate_count;
                diag.balanced_count = out.balanced_count;
                out.labels
            }
            Err(e) if !e.is_resource_exceeded() => {
                diag.record_fallback(FallbackReason::TclFailed);
                pseudo.labels.clone()
            }
            Err(e) => return Err(e),
        };

        // Known labels are authoritative in the output too.
        let mut labels = labels;
        for &(i, label) in target_labels {
            labels[i] = label;
        }
        diag.total_secs = root.finish();
        Ok(TransErOutput {
            labels,
            pseudo: Some(pseudo),
            diagnostics: diag,
            trace: crate::pipeline::take_run_trace(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shifted_task() -> (FeatureMatrix, Vec<Label>, FeatureMatrix, Vec<Label>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut xt = Vec::new();
        let mut yt = Vec::new();
        for i in 0..20 {
            let j = (i % 10) as f64 * 0.006;
            xs.push(vec![0.9 - j, 0.85 + j]);
            ys.push(Label::Match);
            xs.push(vec![0.1 + j, 0.15 - j]);
            ys.push(Label::NonMatch);
            // Target matches sit lower: the level shift that hurts Naive.
            xt.push(vec![0.62 - j, 0.6 + j]);
            yt.push(Label::Match);
            xt.push(vec![0.12 + j, 0.18 - j]);
            yt.push(Label::NonMatch);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap(), yt)
    }

    #[test]
    fn empty_labels_match_standard_pipeline() {
        let (xs, ys, xt, _) = shifted_task();
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let semi = SemiSupervisedTransEr::new(cfg, ClassifierKind::LogisticRegression, 3).unwrap();
        let standard = TransEr::new(cfg, ClassifierKind::LogisticRegression, 3).unwrap();
        assert_eq!(
            semi.fit_predict(&xs, &ys, &xt, &[]).unwrap().labels,
            standard.fit_predict(&xs, &ys, &xt).unwrap().labels
        );
    }

    #[test]
    fn known_labels_are_respected_and_help() {
        let (xs, ys, xt, yt) = shifted_task();
        let cfg = TransErConfig { k: 5, ..Default::default() };
        let semi = SemiSupervisedTransEr::new(cfg, ClassifierKind::LogisticRegression, 3).unwrap();
        // Reveal a handful of target labels, biased towards matches (the
        // class the shifted boundary misses).
        let revealed: Vec<TargetLabel> = (0..10).map(|i| (i * 2, yt[i * 2])).collect();
        let out = semi.fit_predict(&xs, &ys, &xt, &revealed).unwrap();
        for &(i, l) in &revealed {
            assert_eq!(out.labels[i], l, "revealed label must be kept");
        }
        let correct = out.labels.iter().zip(&yt).filter(|(a, b)| a == b).count();
        assert!(correct as f64 / yt.len() as f64 > 0.8);
    }

    #[test]
    fn out_of_range_labels_rejected() {
        let (xs, ys, xt, _) = shifted_task();
        let semi = SemiSupervisedTransEr::new(
            TransErConfig::default(),
            ClassifierKind::LogisticRegression,
            0,
        )
        .unwrap();
        let err = semi.fit_predict(&xs, &ys, &xt, &[(10_000, Label::Match)]);
        assert!(matches!(err, Err(Error::InvalidParameter { .. })));
    }
}

//! **TransER** — instance-based homogeneous transfer learning for entity
//! resolution, reproducing Kirielle, Christen & Ranbaduge (EDBT 2022).
//!
//! Given a labelled *source* domain `(X^S, Y^S)` and an unlabelled *target*
//! domain `X^T` sharing the same feature space (the same attributes
//! compared with the same similarity functions), TransER predicts
//! match/non-match labels for the target in three phases (Algorithm 1 of
//! the paper):
//!
//! 1. **SEL** ([`select_instances`]) — keep source instances whose local
//!    class-label confidence `sim_c` (Eq. 1) and local structural
//!    similarity to the target `sim_l` (Eq. 2) clear the thresholds `t_c`
//!    and `t_l`. This filters out instances with conflicting
//!    class-conditional distributions across the domains.
//! 2. **GEN** ([`generate_pseudo_labels`]) — train a classifier on the
//!    selected instances and predict *pseudo labels* with confidence
//!    scores for every target instance.
//! 3. **TCL** ([`train_target_classifier`]) — keep target instances with
//!    pseudo-label confidence at least `t_p`, under-sample non-matches to a
//!    `1 : b` match/non-match ratio, train the final classifier on this
//!    balanced pseudo-labelled sample and label all of `X^T` with it.
//!    Training on the target's own marginal distribution is what absorbs
//!    `P(X^S) ≠ P(X^T)`.
//!
//! ```
//! use transer_common::{FeatureMatrix, Label};
//! use transer_core::{TransEr, TransErConfig};
//! use transer_ml::ClassifierKind;
//!
//! // A toy source domain: similarity near 1 => match, near 0 => non-match.
//! let xs = FeatureMatrix::from_vecs(&(0..40).map(|i| {
//!     let v = i as f64 / 40.0;
//!     vec![v, v * 0.9]
//! }).collect::<Vec<_>>()).unwrap();
//! let ys: Vec<Label> = (0..40).map(|i| Label::from_bool(i >= 20)).collect();
//! // The target is the same structure, slightly shifted.
//! let xt = FeatureMatrix::from_vecs(&(0..30).map(|i| {
//!     let v = i as f64 / 30.0;
//!     vec![(v + 0.03).min(1.0), v]
//! }).collect::<Vec<_>>()).unwrap();
//!
//! let config = TransErConfig { k: 5, ..TransErConfig::default() };
//! let transer = TransEr::new(config, ClassifierKind::LogisticRegression, 42).unwrap();
//! let output = transer.fit_predict(&xs, &ys, &xt).unwrap();
//! assert_eq!(output.labels.len(), 30);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod active;
mod config;
pub mod decay;
mod multi_source;
mod pipeline;
mod pseudo;
mod selector;
mod semi;
mod target;

pub use active::{active_transfer, suggest_queries, ActiveRound};
pub use config::{TransErConfig, Variant};
pub use multi_source::{best_source, rank_sources, SourceScore};
pub use pipeline::{Diagnostics, FallbackReason, FallbackSet, TransEr, TransErOutput};
pub use pseudo::{generate_pseudo_labels, PseudoLabels};
pub use selector::{
    select_instances, select_instances_per_row_with_pool, select_instances_with_backend,
    select_instances_with_pool, InstanceScores, SelectionResult,
};
pub use semi::{SemiSupervisedTransEr, TargetLabel};
pub use target::{train_target_classifier, TargetPhaseOutput};
pub use transer_knn::IndexKind;

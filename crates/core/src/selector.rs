//! Phase (i) — the instance selector (SEL), Section 4.1 of the paper.
//!
//! For every source instance `x^S` the selector computes:
//!
//! * `sim_c(x^S)` (Eq. 1): the fraction of its `k` nearest source
//!   neighbours sharing its class label — the *class confidence*. Low
//!   values flag instances in ambiguous regions, where the same feature
//!   vector carries both labels.
//! * `sim_l(x^S)` (Eq. 2): `exp(-5 · ‖c_S − c_T‖₂ / √m)` where `c_S`/`c_T`
//!   are the centroids of its `k`-neighbourhoods in the source and target —
//!   the *local structural similarity* of the two marginal distributions
//!   around the instance.
//! * optionally `sim_v(x^S)`: the covariance analogue used by LocIT,
//!   `exp(-5 · ‖Σ_S − Σ_T‖_F / m)`, available for the `+ sim_v` ablation.
//!
//! An instance is transferred when every enabled score clears its
//! threshold.
//!
//! # The duplicate-aware fast path
//!
//! ER feature matrices are massively duplicated — many record pairs share
//! a rounded similarity vector — so the default path interns the source
//! and target rows ([`RowInterning`](transer_common::RowInterning)) and
//! does all k-NN and
//! centroid/covariance work once per *unique* source row on a
//! [`DedupKnn`] engine, broadcasting scores to the duplicates. The
//! neighbour order of a duplicated matrix is fully determined by the
//! unique rows, their multiplicities and the original row indices, so the
//! scores are **bit-identical** to the straightforward per-row path
//! (retained as [`select_instances_per_row_with_pool`] and pinned by
//! tests) at every worker count and for both index backends.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_knn::{DedupKnn, IndexKind, Neighbor};
use transer_linalg::{covariance, Mat};
use transer_parallel::{CostClass, CostHint, Pool};

use crate::config::{TransErConfig, Variant};
use crate::decay::exp_decay_5;

/// Unique source rows scored per parallel work item: fixed, so chunk
/// boundaries — and thus floating-point results — never depend on the
/// worker count, and large enough for the blocked kernel to amortise each
/// point block across the panel.
const PANEL: usize = 32;

/// The per-instance similarity scores computed by the selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceScores {
    /// Class-confidence similarity `sim_c` (Eq. 1).
    pub sim_c: f64,
    /// Structural similarity `sim_l` (Eq. 2).
    pub sim_l: f64,
    /// Covariance similarity `sim_v` (only computed when the variant
    /// enables it; 1.0 otherwise).
    pub sim_v: f64,
}

/// Output of the SEL phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Indices into `X^S` of the transferred instances `X^U`, ascending.
    pub indices: Vec<usize>,
    /// Scores for *every* source instance (selected or not), aligned with
    /// the rows of `X^S`; useful for diagnostics and the sensitivity
    /// experiments.
    pub scores: Vec<InstanceScores>,
}

impl SelectionResult {
    /// Materialise the transferred feature matrix `X^U` and labels `Y^U`.
    pub fn transferred(&self, xs: &FeatureMatrix, ys: &[Label]) -> (FeatureMatrix, Vec<Label>) {
        (xs.select_rows(&self.indices), self.indices.iter().map(|&i| ys[i]).collect())
    }
}

/// Run the SEL phase: score every source instance and keep those clearing
/// the enabled thresholds (lines 1–9 of Algorithm 1).
///
/// Scoring runs per *unique* source row on the duplicate-aware engine and
/// on the global [`Pool`] (`TRANSER_THREADS`); the k-NN backend follows
/// `TRANSER_KNN_INDEX` (default: chosen per matrix shape). The result is
/// bit-identical for every worker count and backend.
///
/// # Errors
/// Returns an error for empty inputs, mismatched shapes or an invalid
/// configuration.
pub fn select_instances(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
) -> Result<SelectionResult> {
    select_instances_with_pool(xs, ys, xt, config, &Pool::global())
}

/// [`select_instances`] on an explicit [`Pool`] — the hook the determinism
/// tests and benchmarks use to pin the worker count.
///
/// # Errors
/// As for [`select_instances`].
pub fn select_instances_with_pool(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    pool: &Pool,
) -> Result<SelectionResult> {
    select_instances_with_backend(xs, ys, xt, config, pool, IndexKind::from_env())
}

/// [`select_instances_with_pool`] with an explicit k-NN backend — the hook
/// benchmarks use to compare backends within one process.
///
/// # Errors
/// As for [`select_instances`].
pub fn select_instances_with_backend(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    pool: &Pool,
    kind: IndexKind,
) -> Result<SelectionResult> {
    validate(xs, ys, xt, config)?;
    // Fault site `sel.knn`: float kinds corrupt a copy of the source the
    // scoring sees; shape/label kinds starve the selection outright (the
    // pipeline's degenerate-set check then takes the full-source rung).
    let corrupted;
    let xs = match transer_robust::fired(transer_robust::site::SEL_KNN) {
        Some(kind @ (transer_robust::FaultKind::Nan | transer_robust::FaultKind::Inf)) => {
            let mut c = xs.clone();
            transer_robust::corrupt_matrix(&mut c, kind);
            corrupted = c;
            &corrupted
        }
        Some(_) => {
            return Ok(SelectionResult {
                indices: Vec::new(),
                scores: vec![InstanceScores { sim_c: 0.0, sim_l: 0.0, sim_v: 0.0 }; xs.rows()],
            });
        }
        None => xs,
    };
    let k = config.k;
    let source = DedupKnn::build(xs, kind);
    let target = DedupKnn::build(xt, kind);
    let interning = source.interning();

    let unique_ids: Vec<u32> = (0..interning.unique_rows() as u32).collect();
    // Per unique row: two panel k-NN queries plus group scoring. The panel
    // is pinned (see [`PANEL`]) so only the inline/pooled decision — never
    // the chunk boundaries, and thus never the floats — comes from the
    // grain policy.
    let sel_hint = CostHint::new(unique_ids.len(), CostClass::Light);
    let groups: Vec<Vec<(u32, InstanceScores, bool)>> =
        pool.par_chunks_costed(&unique_ids, Some(PANEL), sel_hint, |_, chunk| {
            let queries: Vec<&[f64]> =
                chunk.iter().map(|&u| interning.unique().row(u as usize)).collect();
            // Budget k + 1: after dropping the instance itself from the
            // expanded order, k neighbours are still covered.
            let src = source.k_nearest_unique_panel(&queries, k + 1);
            let tgt = target.k_nearest_unique_panel(&queries, k);
            chunk
                .iter()
                .zip(src.iter().zip(&tgt))
                .map(|(&u, (sw, tw))| {
                    score_group(u as usize, sw, tw, xs, ys, xt, &source, &target, config)
                })
                .collect()
        });

    let n = xs.rows();
    let mut scores = vec![InstanceScores { sim_c: 0.0, sim_l: 0.0, sim_v: 0.0 }; n];
    let mut keep = vec![false; n];
    for group in &groups {
        for &(i, s, kept) in group {
            scores[i as usize] = s;
            keep[i as usize] = kept;
        }
    }
    let indices = keep.iter().enumerate().filter_map(|(i, &kept)| kept.then_some(i)).collect();
    Ok(SelectionResult { indices, scores })
}

/// Score every member of unique source row `u` from the group's weighted
/// neighbour queries (`weighted_src` at budget `k + 1`, `weighted_tgt` at
/// budget `k`, both over unique rows).
///
/// Let `P` be the first `min(k + 1, n)` entries of the full neighbour
/// order of the original matrix (obtained by expanding `weighted_src`).
/// Every member `i` of the group is at squared distance exactly `+0.0`
/// from the query (its own row), so its per-row neighbourhood is
///
/// * `P \ {i}` when `i ∈ P`, and
/// * `P[..k]` when `i ∉ P` (then `|P| = k + 1` and `i` sits beyond it in
///   the order, so removing it does not disturb the prefix).
///
/// In the common *clean* case — every zero-distance entry of `P` belongs
/// to this group, hence is bitwise equal to the query — the row-value
/// sequence of `P \ {i}` equals that of `P[1..]` for every member in `P`:
/// the leading zero-distance entries all hold the same bits, so removing
/// any one of them leaves the same value sequence. Centroids and
/// covariances (functions of the value sequence) are therefore computed
/// once per variant, and `sim_c` reduces to label counting over `P`. The
/// rare non-clean case (a row numerically equal but not bitwise equal to
/// the query, e.g. `0.0` vs `-0.0`, inside the zero prefix) falls back to
/// exact per-member scoring from `P` — still without re-querying.
#[allow(clippy::too_many_arguments)]
fn score_group(
    u: usize,
    weighted_src: &[Neighbor],
    weighted_tgt: &[Neighbor],
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    source: &DedupKnn,
    target: &DedupKnn,
    config: &TransErConfig,
) -> Vec<(u32, InstanceScores, bool)> {
    let k = config.k;
    let m = xs.cols() as f64;
    let variant = config.variant;
    let interning = source.interning();
    let members = interning.members(u);
    let row = interning.unique().row(u);

    let p = source.expand_to_original(weighted_src, k + 1, None);
    let nt = target.expand_to_original(weighted_tgt, k, None);

    // Target-side quantities, shared by the whole group.
    let ct = (!nt.is_empty()).then(|| centroid(xt, &nt, row));
    let cov_t = (variant.use_sim_v && !nt.is_empty())
        .then(|| covariance(&xt.select_rows(&nt.iter().map(|n| n.index).collect::<Vec<_>>())));

    let zero_count = p.iter().take_while(|n| n.sq_dist == 0.0).count();
    let clean = p[..zero_count].iter().all(|n| interning.to_unique()[n.index] as usize == u);

    let mut out = Vec::with_capacity(members.len());
    if clean {
        let p_len = p.len();
        let k_prefix = k.min(p_len);
        let matches_full = p.iter().filter(|n| ys[n.index] == Label::Match).count();
        let matches_prefix = p[..k_prefix].iter().filter(|n| ys[n.index] == Label::Match).count();
        // Members inside `P` share the value sequence of `P[1..]`; members
        // beyond it share `P[..k]`. Memoise each variant's structural
        // scores lazily, so each is computed at most once and exactly when
        // a member needs it.
        let mut inside: Option<SharedScores> = None;
        let mut beyond: Option<SharedScores> = None;
        for (j, &i) in members.iter().enumerate() {
            let i = i as usize;
            let (ns_len, same, shared) = if j < zero_count {
                let same_full =
                    if ys[i] == Label::Match { matches_full } else { p_len - matches_full };
                let shared = &*inside.get_or_insert_with(|| {
                    shared_scores(&p[1..], ct.as_deref(), cov_t.as_ref(), xs, row, m, variant)
                });
                // `i` itself is in `P` and trivially shares its own label.
                (p_len - 1, same_full - 1, shared)
            } else {
                let same =
                    if ys[i] == Label::Match { matches_prefix } else { k_prefix - matches_prefix };
                let shared = &*beyond.get_or_insert_with(|| {
                    shared_scores(
                        &p[..k_prefix],
                        ct.as_deref(),
                        cov_t.as_ref(),
                        xs,
                        row,
                        m,
                        variant,
                    )
                });
                (k_prefix, same, shared)
            };
            let sim_c = if ns_len == 0 { 1.0 } else { same as f64 / ns_len as f64 };
            out.push(assemble(i, sim_c, shared, config));
        }
    } else {
        for &i in members {
            let i = i as usize;
            let ns: Vec<Neighbor> = match p.iter().position(|n| n.index == i) {
                Some(pos) => {
                    let mut v = p.clone();
                    v.remove(pos);
                    v
                }
                None => p[..k.min(p.len())].to_vec(),
            };
            let same = ns.iter().filter(|n| ys[n.index] == ys[i]).count();
            let sim_c = if ns.is_empty() { 1.0 } else { same as f64 / ns.len() as f64 };
            let shared = shared_scores(&ns, ct.as_deref(), cov_t.as_ref(), xs, row, m, variant);
            out.push(assemble(i, sim_c, &shared, config));
        }
    }
    out
}

/// The structural scores determined by a neighbourhood's value sequence:
/// `sim_l` from the centroid distance, `sim_v` from the covariance
/// distance (1.0 when disabled or undefined).
struct SharedScores {
    sim_l: f64,
    sim_v: f64,
}

fn shared_scores(
    ns: &[Neighbor],
    ct: Option<&[f64]>,
    cov_t: Option<&Mat>,
    xs: &FeatureMatrix,
    row: &[f64],
    m: f64,
    variant: Variant,
) -> SharedScores {
    // Eq. (2): decayed, normalised centroid distance; 0.0 when the target
    // neighbourhood is empty.
    let sim_l = match ct {
        None => 0.0,
        Some(ct) => {
            let cs = centroid(xs, ns, row);
            let dist: f64 = cs.iter().zip(ct).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            exp_decay_5(dist / m.sqrt())
        }
    };
    // Optional LocIT covariance similarity for the + sim_v ablation.
    let sim_v = match cov_t {
        Some(cov_t) if variant.use_sim_v && !ns.is_empty() => {
            let cov_s =
                covariance(&xs.select_rows(&ns.iter().map(|n| n.index).collect::<Vec<_>>()));
            exp_decay_5(cov_s.frobenius_distance(cov_t) / m)
        }
        _ => 1.0,
    };
    SharedScores { sim_l, sim_v }
}

/// Apply the thresholds of every enabled score (line 6 of Algorithm 1).
fn assemble(
    i: usize,
    sim_c: f64,
    shared: &SharedScores,
    config: &TransErConfig,
) -> (u32, InstanceScores, bool) {
    let variant = config.variant;
    let keep = (!variant.use_sim_c || sim_c >= config.t_c)
        && (!variant.use_sim_l || shared.sim_l >= config.t_l)
        && (!variant.use_sim_v || shared.sim_v >= config.t_v);
    record_verdict(sim_c, shared.sim_l, shared.sim_v, config, keep);
    (i as u32, InstanceScores { sim_c, sim_l: shared.sim_l, sim_v: shared.sim_v }, keep)
}

/// Trace the SEL accept/reject breakdown: accepted rows bump `sel.accepted`;
/// rejected rows are attributed to the *first* enabled threshold they fail
/// (the order Algorithm 1 tests them in).
fn record_verdict(sim_c: f64, sim_l: f64, sim_v: f64, config: &TransErConfig, keep: bool) {
    if !transer_trace::enabled() {
        return;
    }
    let variant = config.variant;
    if keep {
        transer_trace::counter("sel.accepted", 1);
    } else if variant.use_sim_c && sim_c < config.t_c {
        transer_trace::counter("sel.rejected.sim_c", 1);
    } else if variant.use_sim_l && sim_l < config.t_l {
        transer_trace::counter("sel.rejected.sim_l", 1);
    } else if variant.use_sim_v && sim_v < config.t_v {
        transer_trace::counter("sel.rejected.sim_v", 1);
    } else {
        // A non-finite score fails its threshold without comparing below
        // it (`NaN < t` is false), so no filter above claims the row; only
        // reachable under fault injection.
        transer_trace::counter("sel.rejected.nan", 1);
    }
}

/// The straightforward per-row SEL path: two KD-tree queries plus
/// centroid / covariance work for every source row, with no interning or
/// memoization. Kept as the reference implementation the duplicate-aware
/// path is pinned against (bit-for-bit) by the equivalence tests, and as
/// the baseline of the `bench_sel` benchmark.
///
/// # Errors
/// As for [`select_instances`].
pub fn select_instances_per_row_with_pool(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    pool: &Pool,
) -> Result<SelectionResult> {
    validate(xs, ys, xt, config)?;
    let k = config.k;
    let m = xs.cols() as f64;
    let source_tree = transer_knn::KdTree::build(xs);
    let target_tree = transer_knn::KdTree::build(xt);

    let variant = config.variant;
    let row_indices: Vec<usize> = (0..xs.rows()).collect();
    let row_hint = CostHint::new(row_indices.len(), CostClass::Light);
    let scored: Vec<(InstanceScores, bool)> = pool.par_map_costed(&row_indices, row_hint, |&i| {
        let row = xs.row(i);
        // Neighbourhoods N_x^S (excluding the instance itself) and N_x^T.
        let ns = source_tree.k_nearest_excluding(row, k, Some(i));
        let nt = target_tree.k_nearest(row, k);

        // Eq. (1): fraction of source neighbours sharing the label. The
        // paper divides by k; when fewer than k neighbours exist (tiny
        // sources) we divide by the actual count to keep the score in [0,1].
        let same = ns.iter().filter(|n| ys[n.index] == ys[i]).count();
        let sim_c = if ns.is_empty() { 1.0 } else { same as f64 / ns.len() as f64 };

        // Eq. (2): decayed, normalised centroid distance.
        let sim_l = if nt.is_empty() {
            0.0
        } else {
            let cs = centroid(xs, &ns, row);
            let ct = centroid(xt, &nt, row);
            let dist: f64 = cs.iter().zip(&ct).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            exp_decay_5(dist / m.sqrt())
        };

        // Optional LocIT covariance similarity for the + sim_v ablation.
        let sim_v = if variant.use_sim_v && !ns.is_empty() && !nt.is_empty() {
            let cov_s =
                covariance(&xs.select_rows(&ns.iter().map(|n| n.index).collect::<Vec<_>>()));
            let cov_t =
                covariance(&xt.select_rows(&nt.iter().map(|n| n.index).collect::<Vec<_>>()));
            exp_decay_5(cov_s.frobenius_distance(&cov_t) / m)
        } else {
            1.0
        };

        let keep = (!variant.use_sim_c || sim_c >= config.t_c)
            && (!variant.use_sim_l || sim_l >= config.t_l)
            && (!variant.use_sim_v || sim_v >= config.t_v);
        record_verdict(sim_c, sim_l, sim_v, config, keep);
        (InstanceScores { sim_c, sim_l, sim_v }, keep)
    });

    let mut indices = Vec::new();
    let mut scores = Vec::with_capacity(xs.rows());
    for (i, (instance_scores, keep)) in scored.into_iter().enumerate() {
        if keep {
            indices.push(i);
        }
        scores.push(instance_scores);
    }
    Ok(SelectionResult { indices, scores })
}

fn validate(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
) -> Result<()> {
    config.validate()?;
    if xs.rows() == 0 {
        return Err(Error::EmptyInput("source instances"));
    }
    if xt.rows() == 0 {
        return Err(Error::EmptyInput("target instances"));
    }
    if xs.rows() != ys.len() {
        return Err(Error::DimensionMismatch {
            what: "source rows vs labels",
            left: xs.rows(),
            right: ys.len(),
        });
    }
    if xs.cols() != xt.cols() {
        return Err(Error::DimensionMismatch {
            what: "source vs target feature columns",
            left: xs.cols(),
            right: xt.cols(),
        });
    }
    Ok(())
}

/// Mean of the neighbourhood rows; falls back to the instance itself when
/// the neighbourhood is empty (single-row matrices).
fn centroid(x: &FeatureMatrix, neighbours: &[Neighbor], fallback: &[f64]) -> Vec<f64> {
    if neighbours.is_empty() {
        return fallback.to_vec();
    }
    let mut c = vec![0.0; x.cols()];
    for n in neighbours {
        for (acc, &v) in c.iter_mut().zip(x.row(n.index)) {
            *acc += v;
        }
    }
    let k = neighbours.len() as f64;
    c.iter_mut().for_each(|v| *v /= k);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source: tight match cluster at (0.9, 0.9), tight non-match cluster
    /// at (0.1, 0.1), plus one contested instance at (0.5, 0.5) surrounded
    /// by opposite labels. Target mirrors the two clusters.
    fn fixture() -> (FeatureMatrix, Vec<Label>, FeatureMatrix) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.004;
            xs.push(vec![0.9 + j, 0.9 - j]);
            ys.push(Label::Match);
            xs.push(vec![0.1 + j, 0.1 - j]);
            ys.push(Label::NonMatch);
        }
        // A conflicted region: interleaved labels at the same spot.
        for i in 0..6 {
            let j = i as f64 * 0.003;
            xs.push(vec![0.5 + j, 0.5 - j]);
            ys.push(if i % 2 == 0 { Label::Match } else { Label::NonMatch });
        }
        let mut xt = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.004;
            xt.push(vec![0.88 + j, 0.91 - j]);
            xt.push(vec![0.12 + j, 0.09 - j]);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap())
    }

    /// A duplicate-heavy fixture: every source row repeated several times
    /// (with mixed labels at the contested prototype) and a duplicated
    /// target.
    fn duplicated_fixture() -> (FeatureMatrix, Vec<Label>, FeatureMatrix) {
        let protos = [
            (vec![0.9, 0.9], Label::Match),
            (vec![0.1, 0.1], Label::NonMatch),
            (vec![0.5, 0.5], Label::Match),
            (vec![0.5, 0.5], Label::NonMatch),
            (vec![0.7, 0.3], Label::Match),
        ];
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for rep in 0..8 {
            for (row, label) in &protos {
                // Skip some entries so multiplicities differ per prototype.
                if rep % ((xs.len() % 3) + 1) == 0 || rep < 4 {
                    xs.push(row.clone());
                    ys.push(*label);
                }
            }
        }
        let mut xt = Vec::new();
        for _ in 0..6 {
            xt.push(vec![0.88, 0.91]);
            xt.push(vec![0.12, 0.09]);
            xt.push(vec![0.52, 0.48]);
        }
        (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap())
    }

    fn config(k: usize) -> TransErConfig {
        TransErConfig { k, ..Default::default() }
    }

    fn assert_bit_identical(a: &SelectionResult, b: &SelectionResult, what: &str) {
        assert_eq!(a.indices, b.indices, "{what}: indices differ");
        assert_eq!(a.scores.len(), b.scores.len(), "{what}: score count differs");
        for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
            assert_eq!(x.sim_c.to_bits(), y.sim_c.to_bits(), "{what}: sim_c row {i}");
            assert_eq!(x.sim_l.to_bits(), y.sim_l.to_bits(), "{what}: sim_l row {i}");
            assert_eq!(x.sim_v.to_bits(), y.sim_v.to_bits(), "{what}: sim_v row {i}");
        }
    }

    #[test]
    fn confident_cluster_instances_selected() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        // The 20 cluster instances are confident and structurally aligned;
        // the 6 conflicted mid-points are not.
        for &i in &sel.indices {
            assert!(i < 20, "conflicted instance {i} selected");
        }
        assert!(sel.indices.len() >= 16, "selected {:?}", sel.indices.len());
    }

    #[test]
    fn conflicted_instances_have_low_sim_c() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        for s in &sel.scores[20..] {
            assert!(s.sim_c < 0.9, "sim_c {} not low", s.sim_c);
        }
        for s in &sel.scores[..20] {
            assert!(s.sim_c >= 0.9, "cluster sim_c {} unexpectedly low", s.sim_c);
        }
    }

    #[test]
    fn structurally_absent_regions_have_low_sim_l() {
        let (xs, ys, _) = fixture();
        // Target far away from every source instance.
        let far = FeatureMatrix::from_vecs(
            &(0..10).map(|i| vec![0.0, 0.9 + i as f64 * 0.01]).collect::<Vec<_>>(),
        )
        .unwrap();
        let sel = select_instances(&xs, &ys, &far, &config(5)).unwrap();
        // Match-cluster instances at (0.9,0.9) are far from the target
        // cloud near (0.0,0.95): sim_l must be small.
        assert!(sel.scores[0].sim_l < 0.9);
    }

    #[test]
    fn scores_bounded() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(7)).unwrap();
        for s in &sel.scores {
            assert!((0.0..=1.0).contains(&s.sim_c));
            assert!((0.0..=1.0).contains(&s.sim_l));
            assert!((0.0..=1.0).contains(&s.sim_v));
        }
    }

    #[test]
    fn thresholds_zero_select_everything() {
        let (xs, ys, xt) = fixture();
        let cfg = TransErConfig { t_c: 0.0, t_l: 0.0, ..config(5) };
        let sel = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert_eq!(sel.indices.len(), xs.rows());
    }

    #[test]
    fn disabled_filters_ignore_thresholds() {
        let (xs, ys, xt) = fixture();
        let mut cfg = TransErConfig { t_c: 1.0, t_l: 1.0, ..config(5) };
        cfg.variant.use_sim_c = false;
        cfg.variant.use_sim_l = false;
        let sel = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert_eq!(sel.indices.len(), xs.rows());
    }

    #[test]
    fn sim_v_filter_tightens_selection() {
        let (xs, ys, xt) = fixture();
        let plain = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        let mut cfg = config(5);
        cfg.variant.use_sim_v = true;
        cfg.t_v = 0.999; // extremely strict covariance agreement
        let with_v = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert!(with_v.indices.len() <= plain.indices.len());
        for i in &with_v.indices {
            assert!(plain.indices.contains(i));
        }
    }

    #[test]
    fn transferred_materialisation() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        let (xu, yu) = sel.transferred(&xs, &ys);
        assert_eq!(xu.rows(), sel.indices.len());
        assert_eq!(yu.len(), sel.indices.len());
        assert_eq!(xu.row(0), xs.row(sel.indices[0]));
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_sequential() {
        let (xs, ys, xt) = fixture();
        let mut cfg = config(5);
        cfg.variant.use_sim_v = true; // exercise every score path
        let seq = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1)).unwrap();
        for workers in [2, 4, 16] {
            let par = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(workers)).unwrap();
            assert_bit_identical(&seq, &par, &format!("workers={workers}"));
        }
    }

    #[test]
    fn dedup_path_is_bit_identical_to_per_row_path() {
        for (name, (xs, ys, xt)) in [("clusters", fixture()), ("duplicated", duplicated_fixture())]
        {
            for k in [1, 3, 5] {
                let mut cfg = config(k);
                cfg.variant.use_sim_v = true;
                let reference =
                    select_instances_per_row_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1)).unwrap();
                for kind in
                    [IndexKind::KdTree, IndexKind::BallTree, IndexKind::Blocked, IndexKind::Auto]
                {
                    for workers in [1, 4] {
                        let fast = select_instances_with_backend(
                            &xs,
                            &ys,
                            &xt,
                            &cfg,
                            &Pool::new(workers),
                            kind,
                        )
                        .unwrap();
                        assert_bit_identical(
                            &reference,
                            &fast,
                            &format!("{name} k={k} kind={kind:?} workers={workers}"),
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn signed_zero_duplicates_fall_back_exactly() {
        // 0.0 and -0.0 rows are numerically identical but intern into
        // different groups: the non-clean fallback must still match the
        // per-row path bit for bit.
        let xs = FeatureMatrix::from_vecs(&[
            vec![0.0, 0.5],
            vec![-0.0, 0.5],
            vec![0.0, 0.5],
            vec![-0.0, 0.5],
            vec![0.3, 0.4],
            vec![0.9, 0.9],
        ])
        .unwrap();
        let ys = vec![
            Label::Match,
            Label::NonMatch,
            Label::Match,
            Label::Match,
            Label::NonMatch,
            Label::Match,
        ];
        let xt =
            FeatureMatrix::from_vecs(&[vec![0.1, 0.5], vec![0.8, 0.85], vec![-0.0, 0.5]]).unwrap();
        let mut cfg = config(3);
        cfg.variant.use_sim_v = true;
        let reference =
            select_instances_per_row_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1)).unwrap();
        for kind in [IndexKind::KdTree, IndexKind::BallTree, IndexKind::Blocked] {
            let fast =
                select_instances_with_backend(&xs, &ys, &xt, &cfg, &Pool::new(2), kind).unwrap();
            assert_bit_identical(&reference, &fast, &format!("kind={kind:?}"));
        }
    }

    #[test]
    fn input_validation() {
        let (xs, ys, xt) = fixture();
        assert!(select_instances(&FeatureMatrix::empty(2), &[], &xt, &config(5)).is_err());
        assert!(select_instances(&xs, &ys, &FeatureMatrix::empty(2), &config(5)).is_err());
        assert!(select_instances(&xs, &ys[..3], &xt, &config(5)).is_err());
        let narrow = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(select_instances(&xs, &ys, &narrow, &config(5)).is_err());
        assert!(select_instances(&xs, &ys, &xt, &config(0)).is_err());
    }
}

//! Phase (i) — the instance selector (SEL), Section 4.1 of the paper.
//!
//! For every source instance `x^S` the selector computes:
//!
//! * `sim_c(x^S)` (Eq. 1): the fraction of its `k` nearest source
//!   neighbours sharing its class label — the *class confidence*. Low
//!   values flag instances in ambiguous regions, where the same feature
//!   vector carries both labels.
//! * `sim_l(x^S)` (Eq. 2): `exp(-5 · ‖c_S − c_T‖₂ / √m)` where `c_S`/`c_T`
//!   are the centroids of its `k`-neighbourhoods in the source and target —
//!   the *local structural similarity* of the two marginal distributions
//!   around the instance.
//! * optionally `sim_v(x^S)`: the covariance analogue used by LocIT,
//!   `exp(-5 · ‖Σ_S − Σ_T‖_F / m)`, available for the `+ sim_v` ablation.
//!
//! An instance is transferred when every enabled score clears its
//! threshold.

use transer_common::{Error, FeatureMatrix, Label, Result};
use transer_knn::KdTree;
use transer_linalg::covariance;
use transer_parallel::Pool;

use crate::config::TransErConfig;
use crate::decay::exp_decay_5;

/// The per-instance similarity scores computed by the selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceScores {
    /// Class-confidence similarity `sim_c` (Eq. 1).
    pub sim_c: f64,
    /// Structural similarity `sim_l` (Eq. 2).
    pub sim_l: f64,
    /// Covariance similarity `sim_v` (only computed when the variant
    /// enables it; 1.0 otherwise).
    pub sim_v: f64,
}

/// Output of the SEL phase.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionResult {
    /// Indices into `X^S` of the transferred instances `X^U`, ascending.
    pub indices: Vec<usize>,
    /// Scores for *every* source instance (selected or not), aligned with
    /// the rows of `X^S`; useful for diagnostics and the sensitivity
    /// experiments.
    pub scores: Vec<InstanceScores>,
}

impl SelectionResult {
    /// Materialise the transferred feature matrix `X^U` and labels `Y^U`.
    pub fn transferred(&self, xs: &FeatureMatrix, ys: &[Label]) -> (FeatureMatrix, Vec<Label>) {
        (xs.select_rows(&self.indices), self.indices.iter().map(|&i| ys[i]).collect())
    }
}

/// Run the SEL phase: score every source instance and keep those clearing
/// the enabled thresholds (lines 1–9 of Algorithm 1).
///
/// Per-instance scoring (two k-NN queries plus centroid / covariance work
/// per source row) runs on the global [`Pool`] (`TRANSER_THREADS`); the
/// result is bit-identical for every worker count.
///
/// # Errors
/// Returns an error for empty inputs, mismatched shapes or an invalid
/// configuration.
pub fn select_instances(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
) -> Result<SelectionResult> {
    select_instances_with_pool(xs, ys, xt, config, &Pool::global())
}

/// [`select_instances`] on an explicit [`Pool`] — the hook the determinism
/// tests and benchmarks use to pin the worker count.
///
/// # Errors
/// As for [`select_instances`].
pub fn select_instances_with_pool(
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    pool: &Pool,
) -> Result<SelectionResult> {
    config.validate()?;
    if xs.rows() == 0 {
        return Err(Error::EmptyInput("source instances"));
    }
    if xt.rows() == 0 {
        return Err(Error::EmptyInput("target instances"));
    }
    if xs.rows() != ys.len() {
        return Err(Error::DimensionMismatch {
            what: "source rows vs labels",
            left: xs.rows(),
            right: ys.len(),
        });
    }
    if xs.cols() != xt.cols() {
        return Err(Error::DimensionMismatch {
            what: "source vs target feature columns",
            left: xs.cols(),
            right: xt.cols(),
        });
    }

    let k = config.k;
    let m = xs.cols() as f64;
    let source_tree = KdTree::build(xs);
    let target_tree = KdTree::build(xt);

    let variant = config.variant;
    let row_indices: Vec<usize> = (0..xs.rows()).collect();
    let scored: Vec<(InstanceScores, bool)> = pool.par_map(&row_indices, |&i| {
        let row = xs.row(i);
        // Neighbourhoods N_x^S (excluding the instance itself) and N_x^T.
        let ns = source_tree.k_nearest_excluding(row, k, Some(i));
        let nt = target_tree.k_nearest(row, k);

        // Eq. (1): fraction of source neighbours sharing the label. The
        // paper divides by k; when fewer than k neighbours exist (tiny
        // sources) we divide by the actual count to keep the score in [0,1].
        let same = ns.iter().filter(|n| ys[n.index] == ys[i]).count();
        let sim_c = if ns.is_empty() { 1.0 } else { same as f64 / ns.len() as f64 };

        // Eq. (2): decayed, normalised centroid distance.
        let sim_l = if nt.is_empty() {
            0.0
        } else {
            let cs = centroid(xs, &ns, row);
            let ct = centroid(xt, &nt, row);
            let dist: f64 = cs
                .iter()
                .zip(&ct)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            exp_decay_5(dist / m.sqrt())
        };

        // Optional LocIT covariance similarity for the + sim_v ablation.
        let sim_v = if variant.use_sim_v && !ns.is_empty() && !nt.is_empty() {
            let cov_s = covariance(&xs.select_rows(&ns.iter().map(|n| n.index).collect::<Vec<_>>()));
            let cov_t = covariance(&xt.select_rows(&nt.iter().map(|n| n.index).collect::<Vec<_>>()));
            exp_decay_5(cov_s.frobenius_distance(&cov_t) / m)
        } else {
            1.0
        };

        let keep = (!variant.use_sim_c || sim_c >= config.t_c)
            && (!variant.use_sim_l || sim_l >= config.t_l)
            && (!variant.use_sim_v || sim_v >= config.t_v);
        (InstanceScores { sim_c, sim_l, sim_v }, keep)
    });

    let mut indices = Vec::new();
    let mut scores = Vec::with_capacity(xs.rows());
    for (i, (instance_scores, keep)) in scored.into_iter().enumerate() {
        if keep {
            indices.push(i);
        }
        scores.push(instance_scores);
    }
    Ok(SelectionResult { indices, scores })
}

/// Mean of the neighbourhood rows; falls back to the instance itself when
/// the neighbourhood is empty (single-row matrices).
fn centroid(
    x: &FeatureMatrix,
    neighbours: &[transer_knn::Neighbor],
    fallback: &[f64],
) -> Vec<f64> {
    if neighbours.is_empty() {
        return fallback.to_vec();
    }
    let mut c = vec![0.0; x.cols()];
    for n in neighbours {
        for (acc, &v) in c.iter_mut().zip(x.row(n.index)) {
            *acc += v;
        }
    }
    let k = neighbours.len() as f64;
    c.iter_mut().for_each(|v| *v /= k);
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Source: tight match cluster at (0.9, 0.9), tight non-match cluster
    /// at (0.1, 0.1), plus one contested instance at (0.5, 0.5) surrounded
    /// by opposite labels. Target mirrors the two clusters.
    fn fixture() -> (FeatureMatrix, Vec<Label>, FeatureMatrix) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.004;
            xs.push(vec![0.9 + j, 0.9 - j]);
            ys.push(Label::Match);
            xs.push(vec![0.1 + j, 0.1 - j]);
            ys.push(Label::NonMatch);
        }
        // A conflicted region: interleaved labels at the same spot.
        for i in 0..6 {
            let j = i as f64 * 0.003;
            xs.push(vec![0.5 + j, 0.5 - j]);
            ys.push(if i % 2 == 0 { Label::Match } else { Label::NonMatch });
        }
        let mut xt = Vec::new();
        for i in 0..10 {
            let j = i as f64 * 0.004;
            xt.push(vec![0.88 + j, 0.91 - j]);
            xt.push(vec![0.12 + j, 0.09 - j]);
        }
        (
            FeatureMatrix::from_vecs(&xs).unwrap(),
            ys,
            FeatureMatrix::from_vecs(&xt).unwrap(),
        )
    }

    fn config(k: usize) -> TransErConfig {
        TransErConfig { k, ..Default::default() }
    }

    #[test]
    fn confident_cluster_instances_selected() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        // The 20 cluster instances are confident and structurally aligned;
        // the 6 conflicted mid-points are not.
        for &i in &sel.indices {
            assert!(i < 20, "conflicted instance {i} selected");
        }
        assert!(sel.indices.len() >= 16, "selected {:?}", sel.indices.len());
    }

    #[test]
    fn conflicted_instances_have_low_sim_c() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        for s in &sel.scores[20..] {
            assert!(s.sim_c < 0.9, "sim_c {} not low", s.sim_c);
        }
        for s in &sel.scores[..20] {
            assert!(s.sim_c >= 0.9, "cluster sim_c {} unexpectedly low", s.sim_c);
        }
    }

    #[test]
    fn structurally_absent_regions_have_low_sim_l() {
        let (xs, ys, _) = fixture();
        // Target far away from every source instance.
        let far =
            FeatureMatrix::from_vecs(&(0..10).map(|i| vec![0.0, 0.9 + i as f64 * 0.01]).collect::<Vec<_>>())
                .unwrap();
        let sel = select_instances(&xs, &ys, &far, &config(5)).unwrap();
        // Match-cluster instances at (0.9,0.9) are far from the target
        // cloud near (0.0,0.95): sim_l must be small.
        assert!(sel.scores[0].sim_l < 0.9);
    }

    #[test]
    fn scores_bounded() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(7)).unwrap();
        for s in &sel.scores {
            assert!((0.0..=1.0).contains(&s.sim_c));
            assert!((0.0..=1.0).contains(&s.sim_l));
            assert!((0.0..=1.0).contains(&s.sim_v));
        }
    }

    #[test]
    fn thresholds_zero_select_everything() {
        let (xs, ys, xt) = fixture();
        let cfg = TransErConfig { t_c: 0.0, t_l: 0.0, ..config(5) };
        let sel = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert_eq!(sel.indices.len(), xs.rows());
    }

    #[test]
    fn disabled_filters_ignore_thresholds() {
        let (xs, ys, xt) = fixture();
        let mut cfg = TransErConfig { t_c: 1.0, t_l: 1.0, ..config(5) };
        cfg.variant.use_sim_c = false;
        cfg.variant.use_sim_l = false;
        let sel = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert_eq!(sel.indices.len(), xs.rows());
    }

    #[test]
    fn sim_v_filter_tightens_selection() {
        let (xs, ys, xt) = fixture();
        let plain = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        let mut cfg = config(5);
        cfg.variant.use_sim_v = true;
        cfg.t_v = 0.999; // extremely strict covariance agreement
        let with_v = select_instances(&xs, &ys, &xt, &cfg).unwrap();
        assert!(with_v.indices.len() <= plain.indices.len());
        for i in &with_v.indices {
            assert!(plain.indices.contains(i));
        }
    }

    #[test]
    fn transferred_materialisation() {
        let (xs, ys, xt) = fixture();
        let sel = select_instances(&xs, &ys, &xt, &config(5)).unwrap();
        let (xu, yu) = sel.transferred(&xs, &ys);
        assert_eq!(xu.rows(), sel.indices.len());
        assert_eq!(yu.len(), sel.indices.len());
        assert_eq!(xu.row(0), xs.row(sel.indices[0]));
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_sequential() {
        let (xs, ys, xt) = fixture();
        let mut cfg = config(5);
        cfg.variant.use_sim_v = true; // exercise every score path
        let seq = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1)).unwrap();
        for workers in [2, 4, 16] {
            let par = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(workers)).unwrap();
            assert_eq!(seq.indices, par.indices, "workers={workers}");
            for (a, b) in seq.scores.iter().zip(&par.scores) {
                assert_eq!(a.sim_c.to_bits(), b.sim_c.to_bits(), "workers={workers}");
                assert_eq!(a.sim_l.to_bits(), b.sim_l.to_bits(), "workers={workers}");
                assert_eq!(a.sim_v.to_bits(), b.sim_v.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn input_validation() {
        let (xs, ys, xt) = fixture();
        assert!(select_instances(&FeatureMatrix::empty(2), &[], &xt, &config(5)).is_err());
        assert!(select_instances(&xs, &ys, &FeatureMatrix::empty(2), &config(5)).is_err());
        assert!(select_instances(&xs, &ys[..3], &xt, &config(5)).is_err());
        let narrow = FeatureMatrix::from_vecs(&[vec![0.5]]).unwrap();
        assert!(select_instances(&xs, &ys, &narrow, &config(5)).is_err());
        assert!(select_instances(&xs, &ys, &xt, &config(0)).is_err());
    }
}

//! Fault-injection sweep: every injection site × every fault kind, driven
//! through the full pipeline for every paper classifier. The contract
//! under test is the panic-free guarantee — each run either returns `Ok`
//! (possibly via the degradation ladder) or a typed `Err`, never a panic —
//! plus the zero-overhead promise that a disarmed harness leaves outputs
//! bit-identical to the baseline.

use transer_common::{FeatureMatrix, Label};
use transer_core::{select_instances_with_pool, TransEr, TransErConfig};
use transer_ml::ClassifierKind;
use transer_parallel::Pool;
use transer_robust::{site, FaultKind};

/// Source with two clean clusters plus a conflicted mid region; target is
/// the clusters, slightly shifted.
fn fixture() -> (FeatureMatrix, Vec<Label>, FeatureMatrix) {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for i in 0..16 {
        let j = (i % 8) as f64 * 0.006;
        xs.push(vec![0.9 - j, 0.85 + j]);
        ys.push(Label::Match);
        xs.push(vec![0.1 + j, 0.15 - j]);
        ys.push(Label::NonMatch);
    }
    for i in 0..6 {
        let j = i as f64 * 0.004;
        xs.push(vec![0.5 + j, 0.5 - j]);
        ys.push(if i % 2 == 0 { Label::Match } else { Label::NonMatch });
    }
    let mut xt = Vec::new();
    for i in 0..12 {
        let j = (i % 6) as f64 * 0.007;
        xt.push(vec![0.87 - j, 0.88 + j]);
        xt.push(vec![0.13 + j, 0.12 - j]);
    }
    (FeatureMatrix::from_vecs(&xs).unwrap(), ys, FeatureMatrix::from_vecs(&xt).unwrap())
}

const SITES: [&str; 8] = [
    site::COMPARE,
    site::BLOCKING,
    site::SEL_KNN,
    site::GEN_FIT,
    site::GEN_PREDICT,
    site::TCL_BALANCE,
    site::TCL_FIT,
    site::POOL_DISPATCH,
];

#[test]
fn every_site_and_kind_is_ok_or_typed_err() {
    let _guard = transer_robust::test_lock();
    let (xs, ys, xt) = fixture();
    let cfg = TransErConfig { k: 5, ..Default::default() };
    for classifier in ClassifierKind::PAPER_SET {
        let t = TransEr::new(cfg, classifier, 7).unwrap();
        transer_robust::set_plan(None);
        let baseline = t.fit_predict(&xs, &ys, &xt).unwrap();
        for s in SITES {
            for fault in FaultKind::ALL {
                transer_robust::set_plan(Some(&format!("{s}:{}", fault.as_str())));
                match t.fit_predict(&xs, &ys, &xt) {
                    Ok(out) => assert_eq!(
                        out.labels.len(),
                        xt.rows(),
                        "{s}:{} under {}: labels misaligned",
                        fault.as_str(),
                        classifier.name()
                    ),
                    // A typed error must render; the panic-free guarantee
                    // is that we got here at all.
                    Err(e) => assert!(!e.to_string().is_empty()),
                }
            }
        }
        // Disarmed again: outputs bit-identical to the pre-sweep baseline.
        transer_robust::set_plan(None);
        let again = t.fit_predict(&xs, &ys, &xt).unwrap();
        assert_eq!(baseline.labels, again.labels, "{}: disarmed run drifted", classifier.name());
        let (b, a) = (baseline.diagnostics, again.diagnostics);
        assert_eq!(b.selected_count, a.selected_count);
        assert_eq!(b.candidate_count, a.candidate_count);
        assert_eq!(b.balanced_count, a.balanced_count);
        assert_eq!(b.fallbacks, a.fallbacks);
    }
}

#[test]
fn hostile_matrices_are_bit_identical_across_worker_counts() {
    let _guard = transer_robust::test_lock();
    transer_robust::set_plan(None);
    // NaN/±Inf cells, a constant column and duplicate rows: SEL must not
    // panic on them, and its scores must not depend on the worker count.
    let mut rows = Vec::new();
    let mut ys = Vec::new();
    for i in 0..12 {
        let v = i as f64 / 12.0;
        rows.push(vec![v, 1.0, v * 0.5]);
        ys.push(Label::from_bool(i % 2 == 0));
    }
    rows.push(vec![f64::NAN, 1.0, 0.2]);
    ys.push(Label::Match);
    rows.push(vec![f64::INFINITY, 1.0, f64::NEG_INFINITY]);
    ys.push(Label::NonMatch);
    rows.push(vec![0.5, 1.0, 0.25]);
    ys.push(Label::Match);
    rows.push(vec![0.5, 1.0, 0.25]);
    ys.push(Label::NonMatch);
    let xs = FeatureMatrix::from_vecs(&rows).unwrap();
    let xt = FeatureMatrix::from_vecs(&[
        vec![0.4, 1.0, 0.2],
        vec![f64::NAN, 1.0, 0.9],
        vec![0.6, 1.0, 0.3],
    ])
    .unwrap();
    let cfg = TransErConfig { k: 3, ..Default::default() };
    let seq = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(1)).unwrap();
    let par = select_instances_with_pool(&xs, &ys, &xt, &cfg, &Pool::new(4)).unwrap();
    assert_eq!(seq.indices, par.indices);
    for (a, b) in seq.scores.iter().zip(&par.scores) {
        assert_eq!(a.sim_c.to_bits(), b.sim_c.to_bits());
        assert_eq!(a.sim_l.to_bits(), b.sim_l.to_bits());
        assert_eq!(a.sim_v.to_bits(), b.sim_v.to_bits());
    }
}

//! Acceptance test for the presorted tree engine at pipeline level: the
//! full TransER run (SEL → GEN → TCL) with the tree-based classifiers
//! must produce the same labels and bit-identical pseudo-label
//! confidences whichever engine trains the trees — i.e. the seed
//! behaviour is preserved end to end.

use transer_core::{TransEr, TransErConfig};
use transer_datagen::ScenarioPair;
use transer_ml::{ClassifierKind, TreeEngine};

#[test]
fn pipeline_outputs_identical_across_tree_engines() {
    const SCALE: f64 = 0.03;
    const SEED: u64 = 42;

    for scenario in [ScenarioPair::Bibliographic, ScenarioPair::Music] {
        let pair = scenario.domain_pair(SCALE, SEED).unwrap();
        for kind in [ClassifierKind::RandomForest, ClassifierKind::DecisionTree] {
            let run = |engine: TreeEngine| {
                TransEr::new(TransErConfig::default(), kind, SEED)
                    .unwrap()
                    .with_tree_engine(engine)
                    .fit_predict(&pair.source.x, &pair.source.y, &pair.target.x)
                    .unwrap()
            };
            let reference = run(TreeEngine::Reference);
            let presorted = run(TreeEngine::Presorted);
            let what = format!("{scenario:?}/{}", kind.name());
            assert_eq!(reference.labels, presorted.labels, "{what}: final labels differ");
            let (ref_pseudo, pre_pseudo) =
                (reference.pseudo.expect("pseudo kept"), presorted.pseudo.expect("pseudo kept"));
            assert_eq!(ref_pseudo.labels, pre_pseudo.labels, "{what}: pseudo labels differ");
            assert_eq!(
                ref_pseudo.confidences.len(),
                pre_pseudo.confidences.len(),
                "{what}: confidence count differs"
            );
            for (i, (a, b)) in
                ref_pseudo.confidences.iter().zip(&pre_pseudo.confidences).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{what}: confidence row {i}");
            }
        }
    }
}

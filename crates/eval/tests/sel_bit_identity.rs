//! Acceptance test for the duplicate-aware SEL engine: on three synthetic
//! datasets — including the duplicate-heavy rounded bibliographic pair —
//! the engine must reproduce the per-row reference path bit for bit, at
//! one worker and at several, for every k-NN backend (KD-tree, ball
//! tree, blocked, auto).

use transer_common::{FeatureMatrix, Label, RowInterning};
use transer_core::{
    select_instances_per_row_with_pool, select_instances_with_backend, IndexKind, SelectionResult,
    TransErConfig,
};
use transer_datagen::ScenarioPair;
use transer_eval::sel_bench::{round_features, tile_rows};
use transer_parallel::Pool;

fn assert_bit_identical(a: &SelectionResult, b: &SelectionResult, what: &str) {
    assert_eq!(a.indices, b.indices, "{what}: indices differ");
    assert_eq!(a.scores.len(), b.scores.len(), "{what}: score count differs");
    for (i, (x, y)) in a.scores.iter().zip(&b.scores).enumerate() {
        assert_eq!(x.sim_c.to_bits(), y.sim_c.to_bits(), "{what}: sim_c row {i}");
        assert_eq!(x.sim_l.to_bits(), y.sim_l.to_bits(), "{what}: sim_l row {i}");
        assert_eq!(x.sim_v.to_bits(), y.sim_v.to_bits(), "{what}: sim_v row {i}");
    }
}

fn check_dataset(name: &str, xs: &FeatureMatrix, ys: &[Label], xt: &FeatureMatrix) {
    let mut config = TransErConfig::default();
    config.variant.use_sim_v = true; // exercise every score path
    let reference = select_instances_per_row_with_pool(xs, ys, xt, &config, &Pool::new(1)).unwrap();
    for kind in [IndexKind::KdTree, IndexKind::BallTree, IndexKind::Blocked, IndexKind::Auto] {
        for workers in [1, 4] {
            let fast =
                select_instances_with_backend(xs, ys, xt, &config, &Pool::new(workers), kind)
                    .unwrap();
            assert_bit_identical(
                &reference,
                &fast,
                &format!("{name} kind={kind:?} workers={workers}"),
            );
        }
    }
}

#[test]
fn sel_engine_bit_identical_on_three_datasets() {
    const SCALE: f64 = 0.03;
    const SEED: u64 = 42;

    let biblio = ScenarioPair::Bibliographic.domain_pair(SCALE, SEED).unwrap();
    check_dataset("bibliographic", &biblio.source.x, &biblio.source.y, &biblio.target.x);

    let music = ScenarioPair::Music.domain_pair(SCALE, SEED).unwrap();
    check_dataset("music", &music.source.x, &music.source.y, &music.target.x);

    // Duplicate-heavy: rounding collapses the features to a bounded grid
    // and tiling grows multiplicities, the regime the engine memoizes
    // hardest.
    let (xs, ys) = tile_rows(&round_features(&biblio.source.x, 1), Some(&biblio.source.y), 8);
    let (xt, _) = tile_rows(&round_features(&biblio.target.x, 1), None, 8);
    let interning = RowInterning::of(&xs);
    assert!(
        interning.dedup_ratio() > 5.0,
        "tiled dataset not duplicate-heavy (ratio {:.2})",
        interning.dedup_ratio()
    );
    check_dataset("bibliographic-rounded1-x8", &xs, &ys, &xt);
}

//! Table 3 — feature-matrix sizes and per-method runtimes.

use serde::Serialize;
use transer_baselines::all_baselines;
use transer_core::TransErConfig;
use transer_ml::ClassifierKind;

use crate::tasks::{directed_tasks, run_baseline, run_transer, MethodOutcome};
use crate::{Cell, Options};

/// Sizes and runtimes for one directed task.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// `"source -> target"`.
    pub task: String,
    /// `|X^S|`.
    pub source_rows: usize,
    /// `|X^T|`.
    pub target_rows: usize,
    /// `(method, runtime seconds or None for ME/TE)` — TransER first.
    pub runtimes: Vec<(String, Option<f64>)>,
}

/// Run the Table 3 experiment. Runtimes are measured with a single
/// classifier (logistic regression), matching the per-experiment
/// measurements of the paper.
///
/// # Errors
/// Propagates workload generation and TransER errors.
pub fn table3(opts: &Options) -> transer_common::Result<Vec<Table3Row>> {
    let classifiers = [ClassifierKind::LogisticRegression];
    let tasks = directed_tasks(opts.scale, opts.seed)?;
    let baselines = all_baselines();
    let mut rows = Vec::new();
    for task in &tasks {
        let mut runtimes = Vec::new();
        let (_, secs, _) = run_transer(TransErConfig::default(), task, &classifiers, opts.seed)?;
        runtimes.push(("TransER".to_string(), Some(secs)));
        for baseline in &baselines {
            let outcome =
                run_baseline(baseline.as_ref(), task, &classifiers, opts.seed, opts.budget);
            let secs = match outcome {
                MethodOutcome::Ok { secs, .. } => Some(secs),
                _ => None,
            };
            runtimes.push((baseline.name().to_string(), secs));
        }
        rows.push(Table3Row {
            task: task.name.clone(),
            source_rows: task.source.len(),
            target_rows: task.target.len(),
            runtimes,
        });
    }
    Ok(rows)
}

/// Render Table 3.
pub fn render(rows: &[Table3Row]) -> String {
    let mut table = Vec::new();
    let mut header = vec![Cell::from("Task"), Cell::from("|X^S|"), Cell::from("|X^T|")];
    if let Some(first) = rows.first() {
        header.extend(first.runtimes.iter().map(|(n, _)| Cell::from(n.clone())));
    }
    table.push(header);
    for row in rows {
        let mut line = vec![
            Cell::from(row.task.clone()),
            Cell::Num(row.source_rows as f64),
            Cell::Num(row.target_rows as f64),
        ];
        line.extend(row.runtimes.iter().map(|(_, s)| match s {
            Some(v) => Cell::Num(*v),
            None => Cell::from("ME/TE"),
        }));
        table.push(line);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_smoke() {
        let opts = Options {
            scale: 0.02,
            budget: transer_baselines::ResourceBudget {
                max_memory_bytes: 64 << 20,
                max_secs: 120.0,
            },
            ..Options::default()
        };
        let rows = table3(&opts).unwrap();
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.source_rows > 0 && row.target_rows > 0);
            assert_eq!(row.runtimes[0].0, "TransER");
            assert!(row.runtimes[0].1.is_some());
        }
        let text = render(&rows);
        assert!(text.contains("|X^S|"));
    }
}

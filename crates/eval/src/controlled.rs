//! Controlled conflict experiment — the Table 4 mechanism demonstrated at
//! the paper's conflict intensities.
//!
//! The record-realistic generators reach only a few percent of
//! cross-domain label conflict, so the Table 4 ablation differences stay
//! small on them (see EXPERIMENTS.md). The paper's data sets carry up to
//! 64–80% ambiguous/conflicting common vectors; this module reproduces
//! that regime with the controllable feature-vector generator. A *conflict
//! band* (a shoulder region between the two modes) is predominantly
//! non-match in the source but canonically matched in the target — the
//! MSD-covers vs MB-re-releases situation. Sweeping the band's mass shows
//! direct transfer (Naive) collapsing with the conflict mass while
//! TransER's phases neutralise it; the per-variant columns additionally
//! expose how much of that rescue each phase provides in this
//! implementation (whose TCL backfill is stronger than the paper's, see
//! DESIGN.md).

use serde::Serialize;
use transer_common::Result;
use transer_core::{TransEr, TransErConfig, Variant};
use transer_datagen::vectors::{domain_pair, VectorDomainConfig};
use transer_datagen::Scenario;
use transer_metrics::evaluate;
use transer_ml::ClassifierKind;

use crate::{Cell, Options};

/// Quality of the methods at one conflict level.
#[derive(Debug, Clone, Serialize)]
pub struct ConflictPoint {
    /// Fraction of instances living in the conflict band.
    pub conflict_mass: f64,
    /// F* of full TransER.
    pub full_f_star: f64,
    /// F* without the SEL phase (GEN + TCL still run).
    pub without_sel_f_star: f64,
    /// F* without GEN & TCL (selection + direct classification).
    pub without_gen_tcl_f_star: f64,
    /// F* of the Naive baseline (no transfer machinery at all).
    pub naive_f_star: f64,
}

/// Sweep the cross-domain conflict rate and measure full vs −SEL quality.
///
/// # Errors
/// Propagates generation and pipeline errors.
pub fn conflict_sweep(opts: &Options) -> Result<Vec<ConflictPoint>> {
    let masses = [0.0, 0.1, 0.2, 0.3, 0.4];
    let mut out = Vec::with_capacity(masses.len());
    for &conflict_mass in &masses {
        // The *source* treats the conflict band as coin-flip ambiguous;
        // the paired target resolves it canonically as matches — the
        // class-conditional difference `P(Y|X^S) != P(Y|X^T)`.
        let source_cfg = VectorDomainConfig {
            n: (2_000.0 * opts.scale.max(0.05)) as usize + 400,
            m: 4,
            ambiguity: 0.05,
            conflict_mass,
            conflict_ambiguous: true,
            seed: opts.seed,
            ..Default::default()
        };
        let pair = domain_pair(&source_cfg, 0.02, 0.0, 1_000)?;
        let mut full = 0.0;
        let mut without_sel = 0.0;
        let mut without_gen_tcl = 0.0;
        let mut naive = 0.0;
        let classifiers = opts.classifier_set();
        for (i, &kind) in classifiers.iter().enumerate() {
            let seed = opts.seed.wrapping_add(i as u64);
            let run = |variant: Variant| -> Result<f64> {
                let cfg = TransErConfig { variant, ..Default::default() };
                let t = TransEr::new(cfg, kind, seed)?;
                let out = t.fit_predict(&pair.source.x, &pair.source.y, &pair.target.x)?;
                Ok(evaluate(&out.labels, &pair.target.y).f_star())
            };
            full += run(Variant::full())?;
            without_sel += run(Variant::without_sel())?;
            without_gen_tcl += run(Variant::without_gen_tcl())?;
            let mut clf = kind.build(seed);
            clf.fit(&pair.source.x, &pair.source.y)?;
            naive += evaluate(&clf.predict(&pair.target.x), &pair.target.y).f_star();
        }
        let n = classifiers.len() as f64;
        out.push(ConflictPoint {
            conflict_mass,
            full_f_star: full / n,
            without_sel_f_star: without_sel / n,
            without_gen_tcl_f_star: without_gen_tcl / n,
            naive_f_star: naive / n,
        });
    }
    Ok(out)
}

/// A miniature record-based run through the full stack, executed by
/// `ablation_controlled` only when tracing is enabled. The conflict sweep
/// above works on pre-built feature vectors and never touches blocking or
/// record comparison; this probe sends one tiny bibliographic task through
/// record generation (MinHash-LSH blocking + attribute comparison) and a
/// random-forest pipeline, so `TRACE_controlled.json` covers every
/// instrumented layer: blocking, compare, knn, ml and the core phases.
///
/// # Errors
/// Propagates generation and pipeline errors.
pub fn traced_record_probe(seed: u64) -> Result<()> {
    let source = Scenario::DblpAcm.generate(0.02, seed)?;
    let target = Scenario::DblpScholar.generate(0.02, seed)?;
    let t = TransEr::new(TransErConfig::default(), ClassifierKind::RandomForest, seed)?;
    let _ = t.fit_predict(&source.x, &source.y, &target.x)?;
    Ok(())
}

/// Render the sweep.
pub fn render(points: &[ConflictPoint]) -> String {
    let mut rows = vec![vec![
        Cell::from("conflict mass"),
        Cell::from("TransER F*"),
        Cell::from("without SEL F*"),
        Cell::from("without GEN&TCL F*"),
        Cell::from("Naive F*"),
    ]];
    for p in points {
        rows.push(vec![
            Cell::Num(p.conflict_mass),
            Cell::Pct(p.full_f_star, 0.0),
            Cell::Pct(p.without_sel_f_star, 0.0),
            Cell::Pct(p.without_gen_tcl_f_star, 0.0),
            Cell::Pct(p.naive_f_star, 0.0),
        ]);
    }
    crate::format_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transer_neutralises_conflicts_that_collapse_naive() {
        let opts = Options { scale: 0.05, quick: true, ..Options::default() };
        let points = conflict_sweep(&opts).unwrap();
        assert_eq!(points.len(), 5);
        // With no conflict everything is comparable.
        let clean = &points[0];
        assert!((clean.full_f_star - clean.naive_f_star).abs() < 0.15, "clean: {clean:?}");
        // Under heavy conflict, direct transfer collapses while the full
        // framework holds.
        let conflicted = &points[points.len() - 1];
        assert!(
            conflicted.naive_f_star < clean.naive_f_star - 0.2,
            "naive did not collapse: {conflicted:?}"
        );
        assert!(
            conflicted.full_f_star > conflicted.naive_f_star + 0.15,
            "full framework should clearly beat naive: {conflicted:?}"
        );
        assert!(conflicted.full_f_star > 0.8, "framework held: {conflicted:?}");
    }
}

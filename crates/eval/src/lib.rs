//! Experiment harness regenerating every table and figure of the TransER
//! paper (EDBT 2022) on the synthetic workload substrate.
//!
//! One module — and one binary under `src/bin/` — per experiment:
//!
//! | Paper artefact | Module | Binary |
//! |---|---|---|
//! | Table 1 (data set characteristics) | [`characteristics`] | `table1` |
//! | Figure 2 (bi-modal similarity distributions) | [`distribution`] | `fig2` |
//! | Figure 5 (exponential decay behaviour) | [`decay_fig`] | `fig5` |
//! | Table 2 (linkage quality vs baselines) | [`quality`] | `table2` |
//! | Table 3 (runtimes) | [`runtime`] | `table3` |
//! | Figure 6 (labelled-source-size sensitivity) | [`sensitivity`] | `fig6` |
//! | Figure 7 (parameter sensitivity) | [`sensitivity`] | `fig7` |
//! | Table 4 (ablation) | [`ablation`] | `table4` |
//!
//! Every binary accepts `--scale <f>` (entity-count multiplier relative to
//! the paper's Table 1 sizes, default 0.1), `--seed <n>` and `--quick`
//! (restrict the classifier set to logistic regression). Results print as
//! aligned text tables; `--json <path>` additionally writes the raw
//! numbers for downstream processing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod characteristics;
pub mod controlled;
pub mod decay_fig;
pub mod distribution;
pub mod forest_bench;
pub mod quality;
pub mod runtime;
pub mod scaling;
pub mod sel_bench;
pub mod sensitivity;

mod options;
mod report;
mod tasks;
mod tracefile;

pub use options::Options;
pub use report::{format_table, Cell};
pub use tasks::{
    directed_tasks, run_baseline, run_transer, EvalTask, MethodOutcome, QualityNumbers,
};
pub use tracefile::write_trace_report;

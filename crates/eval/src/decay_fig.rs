//! Figure 5 — behaviour of the exponential decay functions the structural
//! similarity could use; the paper picks `e^{-5d}`.

use serde::Serialize;
use transer_core::decay::{exp_decay_1, exp_decay_10, exp_decay_5};

/// The three decay curves sampled over `[0, 1]`.
#[derive(Debug, Clone, Serialize)]
pub struct DecayCurves {
    /// Sample positions.
    pub x: Vec<f64>,
    /// `e^{-x}`.
    pub rate1: Vec<f64>,
    /// `e^{-5x}` (the paper's choice).
    pub rate5: Vec<f64>,
    /// `e^{-10x}`.
    pub rate10: Vec<f64>,
}

/// Sample the curves at `steps + 1` points.
pub fn fig5(steps: usize) -> DecayCurves {
    let x: Vec<f64> = (0..=steps).map(|i| i as f64 / steps as f64).collect();
    DecayCurves {
        rate1: x.iter().map(|&d| exp_decay_1(d)).collect(),
        rate5: x.iter().map(|&d| exp_decay_5(d)).collect(),
        rate10: x.iter().map(|&d| exp_decay_10(d)).collect(),
        x,
    }
}

/// Render as a small table.
pub fn render(c: &DecayCurves) -> String {
    let mut rows = vec![vec![
        crate::Cell::from("x"),
        crate::Cell::from("e^-x"),
        crate::Cell::from("e^-5x"),
        crate::Cell::from("e^-10x"),
    ]];
    for i in 0..c.x.len() {
        rows.push(vec![
            crate::Cell::Num(c.x[i]),
            crate::Cell::Num(c.rate1[i]),
            crate::Cell::Num(c.rate5[i]),
            crate::Cell::Num(c.rate10[i]),
        ]);
    }
    crate::format_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_have_expected_shape() {
        let c = fig5(20);
        assert_eq!(c.x.len(), 21);
        assert_eq!(c.rate5[0], 1.0);
        // Strictly decreasing, ordered by steepness.
        for i in 1..c.x.len() {
            assert!(c.rate5[i] < c.rate5[i - 1]);
            assert!(c.rate1[i] > c.rate5[i]);
            assert!(c.rate5[i] > c.rate10[i]);
        }
    }

    #[test]
    fn render_contains_header() {
        let text = render(&fig5(4));
        assert!(text.contains("e^-5x"));
        assert_eq!(text.lines().count(), 7);
    }
}

//! Table 4 — ablation of TransER's components on the paper's three
//! representative pairs (one bibliographic, one music, one demographic).

use serde::Serialize;
use transer_common::Result;
use transer_core::{TransErConfig, Variant};

use crate::tasks::{directed_tasks, run_transer, QualityNumbers};
use crate::{Cell, Options};

/// Results of all six variants on one task.
#[derive(Debug, Clone, Serialize)]
pub struct Table4Row {
    /// `"source -> target"`.
    pub task: String,
    /// `(variant name, quality)` in the paper's column order.
    pub variants: Vec<(String, QualityNumbers)>,
}

/// The paper's three ablation tasks (Section 5.4).
pub const ABLATION_TASKS: [&str; 3] =
    ["DBLP-ACM -> DBLP-Scholar", "MB -> MSD", "KIL Bp-Dp -> IOS Bp-Dp"];

/// Run the Table 4 experiment.
///
/// # Errors
/// Propagates workload generation and TransER errors.
pub fn table4(opts: &Options) -> Result<Vec<Table4Row>> {
    let classifiers = opts.classifier_set();
    let tasks = directed_tasks(opts.scale, opts.seed)?;
    let mut rows = Vec::new();
    for task in tasks.iter().filter(|t| ABLATION_TASKS.contains(&t.name.as_str())) {
        let mut variants = Vec::new();
        for (name, variant) in Variant::ablation_suite() {
            let config = TransErConfig { variant, ..TransErConfig::default() };
            let (q, _, _) = run_transer(config, task, &classifiers, opts.seed)?;
            variants.push((name.to_string(), q));
        }
        rows.push(Table4Row { task: task.name.clone(), variants });
    }
    Ok(rows)
}

/// Render Table 4 in the paper's layout.
pub fn render(rows: &[Table4Row]) -> String {
    let mut table = Vec::new();
    let mut header = vec![Cell::from("Task"), Cell::from("")];
    if let Some(first) = rows.first() {
        header.extend(first.variants.iter().map(|(n, _)| Cell::from(n.clone())));
    }
    table.push(header);
    let metric_names = ["P", "R", "F*", "F1"];
    for row in rows {
        for (mi, mn) in metric_names.iter().enumerate() {
            let mut line = vec![
                if mi == 0 { Cell::from(row.task.clone()) } else { Cell::Empty },
                Cell::from(*mn),
            ];
            for (_, q) in &row.variants {
                let (m, s) = match mi {
                    0 => q.precision,
                    1 => q.recall,
                    2 => q.f_star,
                    _ => q.f1,
                };
                line.push(Cell::Pct(m, s));
            }
            table.push(line);
        }
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_ablation_smoke() {
        let opts = Options { scale: 0.02, quick: true, ..Options::default() };
        let rows = table4(&opts).unwrap();
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert_eq!(row.variants.len(), 6);
            assert_eq!(row.variants[0].0, "TransER");
            assert_eq!(row.variants[2].0, "without SEL");
        }
        let text = render(&rows);
        assert!(text.contains("without sim_c"));
    }
}

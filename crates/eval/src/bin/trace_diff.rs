//! Compare two JSON run artefacts and flag regressions.
//!
//! `trace_diff [--gate] [--time-tol R] [--mean-tol R] [--ignore PREFIX]...
//! <a.json> <b.json>` diffs two files written by the trace layer or a
//! bench bin, splitting every difference into two classes:
//!
//! * **deterministic** fields — counters, histogram counts / buckets /
//!   side counters, span-tree shape, allocation counters, and any
//!   non-timing value in a generic artefact — must match *exactly*;
//! * **timing** fields — span seconds, histogram `sum`/`min`/`max`, and
//!   keys that look like wall-clock figures (`secs`, `ns`, `speedup`,
//!   ...) — are tolerance-banded: flagged only when the ratio exceeds
//!   `--time-tol` (default 3×) *and* the absolute gap exceeds 50 ms
//!   (`--mean-tol` sets the relative band for histogram statistics,
//!   default 1e-6 — float sums may differ by accumulation order only).
//!
//! Without `--gate` every difference is reported and the exit code is 0;
//! with `--gate` any deterministic mismatch (or out-of-band timing) exits
//! 1 — the tier-1 regression gate against `results/baselines/`.
//!
//! Trace reports (objects with `version`/`spans`/`counters`) get the
//! structured comparison; span trees are canonicalised first (same-name
//! siblings merged, timings and allocation counters summed) so a run that
//! emits the same phases in a different interleaving still matches.
//! `--ignore PREFIX` drops counters / flattened paths whose name starts
//! with the prefix from the comparison.

use std::collections::BTreeMap;

use transer_trace::json::{self, Json};

/// One difference between the two files.
struct Diff {
    /// Dotted path of the differing field.
    path: String,
    /// Human-readable description of the mismatch.
    what: String,
    /// Deterministic mismatches gate; timing drift inside the band never
    /// reaches the list, timing drift outside it gates too.
    gating: bool,
}

struct Tolerances {
    /// Max allowed ratio between timing values (with a 50 ms floor).
    time_tol: f64,
    /// Max allowed relative error on histogram float statistics.
    mean_tol: f64,
    /// Name prefixes excluded from the comparison.
    ignore: Vec<String>,
}

/// Absolute floor under which timing differences never flag: smoke-scale
/// spans jitter freely in the millisecond range on a shared host.
const TIME_ABS_FLOOR_SECS: f64 = 0.050;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut gate = false;
    let mut tol = Tolerances { time_tol: 3.0, mean_tol: 1e-6, ignore: Vec::new() };
    let mut paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--time-tol" => tol.time_tol = next_num(&mut it, "--time-tol"),
            "--mean-tol" => tol.mean_tol = next_num(&mut it, "--mean-tol"),
            "--ignore" => match it.next() {
                Some(prefix) => tol.ignore.push(prefix),
                None => usage("--ignore needs a prefix"),
            },
            _ if arg.starts_with("--") => usage(&format!("unknown flag {arg}")),
            _ => paths.push(arg),
        }
    }
    let [a_path, b_path] = paths.as_slice() else { usage("expected exactly two files") };

    let a = load(a_path);
    let b = load(b_path);
    let diffs = if is_trace_report(&a) && is_trace_report(&b) {
        diff_trace(&a, &b, &tol)
    } else {
        let mut diffs = Vec::new();
        diff_generic("", &a, &b, &tol, &mut diffs);
        diffs
    };

    let gating = diffs.iter().filter(|d| d.gating).count();
    for d in &diffs {
        let class = if d.gating { "DIFF" } else { "info" };
        println!("{class} {}: {}", if d.path.is_empty() { "<root>" } else { &d.path }, d.what);
    }
    if diffs.is_empty() {
        println!("identical under the configured tolerances: {a_path} == {b_path}");
    } else {
        println!("{} difference(s), {gating} gating", diffs.len());
    }
    if gate && gating > 0 {
        eprintln!("trace_diff: gate FAILED: {gating} gating difference(s)");
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "trace_diff: {msg}\nusage: trace_diff [--gate] [--time-tol R] [--mean-tol R] \
         [--ignore PREFIX]... <a.json> <b.json>"
    );
    std::process::exit(2);
}

fn next_num(it: &mut impl Iterator<Item = String>, flag: &str) -> f64 {
    match it.next().and_then(|v| v.parse::<f64>().ok()) {
        Some(v) if v > 0.0 => v,
        _ => usage(&format!("{flag} needs a positive number")),
    }
}

fn load(path: &str) -> Json {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_diff: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("trace_diff: {path} is not valid JSON: {e}");
            std::process::exit(2);
        }
    }
}

fn is_trace_report(doc: &Json) -> bool {
    doc.get("version").is_some() && doc.get("spans").is_some() && doc.get("counters").is_some()
}

fn ignored(tol: &Tolerances, name: &str) -> bool {
    tol.ignore.iter().any(|p| name.starts_with(p.as_str()))
}

/// A canonicalised span: same-name siblings merged, order dropped.
#[derive(Default)]
struct CanonSpan {
    secs: f64,
    alloc_count: f64,
    alloc_bytes: f64,
    children: BTreeMap<String, CanonSpan>,
}

fn canonicalize(spans: &[Json], into: &mut BTreeMap<String, CanonSpan>) {
    for span in spans {
        let name = span.get("name").and_then(Json::as_str).unwrap_or("?").to_string();
        let entry = into.entry(name).or_default();
        entry.secs += span.get("secs").and_then(Json::as_num).unwrap_or(0.0);
        entry.alloc_count += span.get("alloc_count").and_then(Json::as_num).unwrap_or(0.0);
        entry.alloc_bytes += span.get("alloc_bytes").and_then(Json::as_num).unwrap_or(0.0);
        if let Some(kids) = span.get("children").and_then(Json::as_arr) {
            canonicalize(kids, &mut entry.children);
        }
    }
}

/// Timing drift check: flags only a ratio beyond `time_tol` with an
/// absolute gap beyond the 50 ms floor.
fn time_out_of_band(a: f64, b: f64, tol: &Tolerances) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    hi - lo > TIME_ABS_FLOOR_SECS && (lo <= 0.0 || hi / lo > tol.time_tol)
}

fn rel_out_of_band(a: f64, b: f64, rel_tol: f64) -> bool {
    let scale = a.abs().max(b.abs());
    scale > 0.0 && (a - b).abs() / scale > rel_tol
}

fn diff_spans(
    path: &str,
    a: &BTreeMap<String, CanonSpan>,
    b: &BTreeMap<String, CanonSpan>,
    alloc_on: bool,
    tol: &Tolerances,
    diffs: &mut Vec<Diff>,
) {
    for name in a.keys().chain(b.keys().filter(|k| !a.contains_key(k.as_str()))) {
        let full = if path.is_empty() { name.clone() } else { format!("{path}/{name}") };
        match (a.get(name), b.get(name)) {
            (Some(sa), Some(sb)) => {
                if time_out_of_band(sa.secs, sb.secs, tol) {
                    diffs.push(Diff {
                        path: format!("span {full}"),
                        what: format!("secs {:.6} vs {:.6} beyond the band", sa.secs, sb.secs),
                        gating: true,
                    });
                }
                if alloc_on
                    && (sa.alloc_count != sb.alloc_count || sa.alloc_bytes != sb.alloc_bytes)
                {
                    diffs.push(Diff {
                        path: format!("span {full}"),
                        what: format!(
                            "allocations ({}, {} B) vs ({}, {} B)",
                            sa.alloc_count, sa.alloc_bytes, sb.alloc_count, sb.alloc_bytes
                        ),
                        gating: true,
                    });
                }
                diff_spans(&full, &sa.children, &sb.children, alloc_on, tol, diffs);
            }
            (Some(_), None) | (None, Some(_)) => {
                let side = if a.contains_key(name) { "first" } else { "second" };
                diffs.push(Diff {
                    path: format!("span {full}"),
                    what: format!("present only in the {side} file (span-tree shape changed)"),
                    gating: true,
                });
            }
            (None, None) => unreachable!("name came from one of the maps"),
        }
    }
}

/// Any allocation recorded anywhere (spans or `alloc.` counters) marks a
/// run as alloc-profiled; alloc counters gate only when *both* runs were.
fn alloc_profiled(doc: &Json) -> bool {
    fn span_has(span: &Json) -> bool {
        span.get("alloc_count").and_then(Json::as_num).unwrap_or(0.0) > 0.0
            || span
                .get("children")
                .and_then(Json::as_arr)
                .is_some_and(|kids| kids.iter().any(span_has))
    }
    doc.get("spans").and_then(Json::as_arr).is_some_and(|s| s.iter().any(span_has))
}

fn diff_trace(a: &Json, b: &Json, tol: &Tolerances) -> Vec<Diff> {
    let mut diffs = Vec::new();
    for field in ["version", "task"] {
        let (va, vb) = (a.get(field), b.get(field));
        if va != vb {
            diffs.push(Diff {
                path: field.to_string(),
                what: format!("{va:?} vs {vb:?}"),
                gating: true,
            });
        }
    }

    // Counters: key set and values exact.
    let empty = BTreeMap::new();
    let ca = a.get("counters").and_then(Json::as_obj).unwrap_or(&empty);
    let cb = b.get("counters").and_then(Json::as_obj).unwrap_or(&empty);
    for key in ca.keys().chain(cb.keys().filter(|k| !ca.contains_key(k.as_str()))) {
        if ignored(tol, key) {
            continue;
        }
        let (va, vb) = (ca.get(key).and_then(Json::as_num), cb.get(key).and_then(Json::as_num));
        if va != vb {
            diffs.push(Diff {
                path: format!("counters.{key}"),
                what: format!(
                    "{} vs {}",
                    va.map_or("absent".to_string(), |v| v.to_string()),
                    vb.map_or("absent".to_string(), |v| v.to_string())
                ),
                gating: true,
            });
        }
    }

    // Histograms: integer structure exact, float statistics banded.
    let ha = a.get("histograms").and_then(Json::as_obj).unwrap_or(&empty);
    let hb = b.get("histograms").and_then(Json::as_obj).unwrap_or(&empty);
    for key in ha.keys().chain(hb.keys().filter(|k| !ha.contains_key(k.as_str()))) {
        if ignored(tol, key) {
            continue;
        }
        match (ha.get(key), hb.get(key)) {
            (Some(xa), Some(xb)) => diff_hist(key, xa, xb, tol, &mut diffs),
            (Some(_), None) | (None, Some(_)) => diffs.push(Diff {
                path: format!("histograms.{key}"),
                what: format!(
                    "present only in the {} file",
                    if ha.contains_key(key) { "first" } else { "second" }
                ),
                gating: true,
            }),
            (None, None) => {}
        }
    }

    // Span trees: canonical shape exact, timings banded, allocations
    // exact when both runs were alloc-profiled.
    let (mut ta, mut tb) = (BTreeMap::new(), BTreeMap::new());
    canonicalize(a.get("spans").and_then(Json::as_arr).unwrap_or(&[]), &mut ta);
    canonicalize(b.get("spans").and_then(Json::as_arr).unwrap_or(&[]), &mut tb);
    let alloc_on = alloc_profiled(a) && alloc_profiled(b);
    diff_spans("", &ta, &tb, alloc_on, tol, &mut diffs);
    diffs
}

fn diff_hist(name: &str, a: &Json, b: &Json, tol: &Tolerances, diffs: &mut Vec<Diff>) {
    let num = |doc: &Json, f: &str| doc.get(f).and_then(Json::as_num);
    for field in ["count", "zero", "negative", "inf", "nan"] {
        let (va, vb) = (num(a, field), num(b, field));
        if va != vb {
            diffs.push(Diff {
                path: format!("histograms.{name}.{field}"),
                what: format!("{va:?} vs {vb:?}"),
                gating: true,
            });
        }
    }
    if a.get("buckets") != b.get("buckets") {
        diffs.push(Diff {
            path: format!("histograms.{name}.buckets"),
            what: "bucket populations differ".to_string(),
            gating: true,
        });
    }
    for field in ["sum", "min", "max"] {
        if let (Some(va), Some(vb)) = (num(a, field), num(b, field)) {
            if rel_out_of_band(va, vb, tol.mean_tol) {
                diffs.push(Diff {
                    path: format!("histograms.{name}.{field}"),
                    what: format!("{va} vs {vb} beyond relative tolerance {}", tol.mean_tol),
                    gating: true,
                });
            }
        }
    }
}

/// A key that carries wall-clock measurements in the bench artefacts;
/// such values drift run to run and get the timing band instead of
/// exact comparison.
fn is_timing_key(path: &str) -> bool {
    let last = path.rsplit('.').next().unwrap_or(path);
    ["secs", "ns", "nanos", "ms", "speedup", "per_sec", "rss"].iter().any(|t| last.contains(t))
}

fn diff_generic(path: &str, a: &Json, b: &Json, tol: &Tolerances, diffs: &mut Vec<Diff>) {
    if !path.is_empty() && ignored(tol, path) {
        return;
    }
    match (a, b) {
        (Json::Obj(ma), Json::Obj(mb)) => {
            for key in ma.keys().chain(mb.keys().filter(|k| !ma.contains_key(k.as_str()))) {
                let full = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                match (ma.get(key), mb.get(key)) {
                    (Some(va), Some(vb)) => diff_generic(&full, va, vb, tol, diffs),
                    (Some(_), None) | (None, Some(_)) => {
                        if ignored(tol, &full) {
                            continue;
                        }
                        diffs.push(Diff {
                            path: full,
                            what: format!(
                                "present only in the {} file",
                                if ma.contains_key(key) { "first" } else { "second" }
                            ),
                            gating: true,
                        });
                    }
                    (None, None) => {}
                }
            }
        }
        (Json::Arr(va), Json::Arr(vb)) => {
            if va.len() != vb.len() {
                diffs.push(Diff {
                    path: path.to_string(),
                    what: format!("array length {} vs {}", va.len(), vb.len()),
                    gating: true,
                });
                return;
            }
            for (i, (xa, xb)) in va.iter().zip(vb).enumerate() {
                diff_generic(&format!("{path}[{i}]"), xa, xb, tol, diffs);
            }
        }
        (Json::Num(na), Json::Num(nb)) => {
            if is_timing_key(path) {
                if time_out_of_band(*na, *nb, tol) {
                    diffs.push(Diff {
                        path: path.to_string(),
                        what: format!("{na} vs {nb} beyond the timing band"),
                        gating: true,
                    });
                }
            } else if na.to_bits() != nb.to_bits() && na != nb {
                diffs.push(Diff {
                    path: path.to_string(),
                    what: format!("{na} vs {nb}"),
                    gating: true,
                });
            }
        }
        _ => {
            if a != b {
                diffs.push(Diff {
                    path: path.to_string(),
                    what: format!("{a:?} vs {b:?}"),
                    gating: true,
                });
            }
        }
    }
}

//! Regenerate Figure 7 (parameter sensitivity).
use transer_eval::{sensitivity, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("fig7");
    let opts = Options::from_env();
    match sensitivity::fig7(&opts) {
        Ok(panels) => {
            println!("Figure 7 — parameter sensitivity (scale {})\n", opts.scale);
            for p in &panels {
                println!("{}", sensitivity::render_series(p.parameter.name(), &p.series));
            }
            opts.maybe_write_json(&panels);
        }
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerate Figure 6 (sensitivity to labelled source size).
use transer_eval::{sensitivity, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("fig6");
    let opts = Options::from_env();
    match sensitivity::fig6(&opts) {
        Ok(series) => {
            println!("Figure 6 — sensitivity to labelled source fraction (scale {})\n", opts.scale);
            print!("{}", sensitivity::render_series("fraction", &series));
            opts.maybe_write_json(&series);
        }
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! The Table 4 −SEL collapse, demonstrated at the paper's conflict
//! intensities with the controllable generator (see EXPERIMENTS.md).
use transer_eval::{controlled, Options};

fn main() {
    let opts = Options::from_env();
    match controlled::conflict_sweep(&opts) {
        Ok(points) => {
            println!(
                "Controlled ablation — SEL advantage vs cross-domain conflict rate (scale {})\n",
                opts.scale
            );
            print!("{}", controlled::render(&points));
            opts.maybe_write_json(&points);
        }
        Err(e) => {
            eprintln!("ablation_controlled failed: {e}");
            std::process::exit(1);
        }
    }
}

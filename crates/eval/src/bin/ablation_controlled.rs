//! The Table 4 −SEL collapse, demonstrated at the paper's conflict
//! intensities with the controllable generator (see EXPERIMENTS.md).
use transer_eval::{controlled, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("ablation_controlled");
    let opts = Options::from_env();
    match controlled::conflict_sweep(&opts) {
        Ok(points) => {
            println!(
                "Controlled ablation — SEL advantage vs cross-domain conflict rate (scale {})\n",
                opts.scale
            );
            print!("{}", controlled::render(&points));
            opts.maybe_write_json(&points);
            if transer_trace::enabled() {
                // The sweep is vector-based; one tiny record probe gives
                // the trace its blocking/compare/ml coverage.
                if let Err(e) = controlled::traced_record_probe(opts.seed) {
                    eprintln!("warning: traced record probe failed: {e}");
                }
                transer_eval::write_trace_report("controlled");
            }
        }
        Err(e) => {
            eprintln!("ablation_controlled failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerate Figure 5 (exponential decay behaviour).
use transer_eval::{decay_fig, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("fig5");
    let opts = Options::from_env();
    let curves = decay_fig::fig5(20);
    println!("Figure 5 — exponential decay functions\n");
    print!("{}", decay_fig::render(&curves));
    opts.maybe_write_json(&curves);
}

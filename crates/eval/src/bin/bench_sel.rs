//! Benchmark the SEL phase: per-row reference path vs the duplicate-aware
//! adaptive k-NN engine, per dataset and worker count, recording
//! `results/BENCH_sel.json`. Accepts the shared eval flags plus
//! `--threads <n>` (default: the global pool, i.e. `TRANSER_THREADS` or
//! the machine's available parallelism).

use transer_eval::{sel_bench, Options};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(args.iter().cloned());
    if opts.json.is_none() {
        opts.json = Some("results/BENCH_sel.json".to_string());
    }
    let threads = args.windows(2).find(|w| w[0] == "--threads").and_then(|w| w[1].parse().ok());
    match sel_bench::sel_benchmark(&opts, threads) {
        Ok(report) => {
            println!(
                "SEL benchmark — per-row path vs duplicate-aware engine (scale {}, k {}, {} core(s) available)",
                report.scale, report.k, report.available_parallelism
            );
            for d in &report.datasets {
                println!(
                    "\n{}: {} source rows ({} unique, dedup {:.2}×), {} target rows ({} unique)\n",
                    d.name,
                    d.source_rows,
                    d.source_unique_rows,
                    d.source_dedup_ratio,
                    d.target_rows,
                    d.target_unique_rows,
                );
                print!("{}", sel_bench::render(d));
            }
            opts.maybe_write_json(&report);
        }
        Err(e) => {
            eprintln!("bench_sel failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Benchmark the SEL phase: per-row reference path vs the duplicate-aware
//! adaptive k-NN engine, per dataset and worker count, plus the
//! per-(rows, dims) regime sweep of the raw index backends that the
//! `IndexKind::Auto` crossovers are transcribed from. Records
//! `results/BENCH_sel.json`. Accepts the shared eval flags plus
//! `--threads <n>` (default: the global pool, i.e. `TRANSER_THREADS` or
//! the machine's available parallelism) and `--smoke` (tier-1 mode: one
//! small deterministic dataset, every backend asserted bitwise-identical
//! to brute force, one timed regime cell as the artefact).

use transer_eval::{sel_bench, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("bench_sel");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(args.iter().cloned());
    let smoke = args.iter().any(|a| a == "--smoke");
    if opts.json.is_none() {
        opts.json = Some(
            if smoke { "target/BENCH_sel_smoke.json" } else { "results/BENCH_sel.json" }
                .to_string(),
        );
    }

    if smoke {
        // Panics (failing the tier-1 gate) if any backend disagrees with
        // the brute-force reference on the smoke dataset.
        let cell = sel_bench::smoke(opts.seed);
        println!(
            "SEL smoke: kdtree/balltree/blocked bitwise-identical to brute force \
             on {} rows × {} dims (winner under the SEL cost model: {})",
            cell.rows, cell.dim, cell.winner
        );
        print!("{}", sel_bench::render_regimes(std::slice::from_ref(&cell)));
        opts.maybe_write_json(&cell);
        return;
    }

    let threads = args.windows(2).find(|w| w[0] == "--threads").and_then(|w| w[1].parse().ok());
    match sel_bench::sel_benchmark(&opts, threads) {
        Ok(mut report) => {
            println!(
                "SEL benchmark — per-row path vs duplicate-aware engine (scale {}, k {}, {} core(s) available)",
                report.scale, report.k, report.available_parallelism
            );
            for d in &report.datasets {
                println!(
                    "\n{}: {} source rows ({} unique, dedup {:.2}×), {} target rows ({} unique)\n",
                    d.name,
                    d.source_rows,
                    d.source_unique_rows,
                    d.source_dedup_ratio,
                    d.target_rows,
                    d.target_unique_rows,
                );
                print!("{}", sel_bench::render(d));
            }
            println!("\nregime sweep — raw index backends, cost model build + rows × query\n");
            report.regimes = sel_bench::regime_sweep(opts.seed);
            print!("{}", sel_bench::render_regimes(&report.regimes));
            opts.maybe_write_json(&report);
        }
        Err(e) => {
            eprintln!("bench_sel failed: {e}");
            std::process::exit(1);
        }
    }
}

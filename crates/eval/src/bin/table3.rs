//! Regenerate Table 3 (runtimes).
use transer_eval::{runtime, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("table3");
    let opts = Options::from_env();
    match runtime::table3(&opts) {
        Ok(rows) => {
            println!(
                "Table 3 — feature matrix sizes and runtimes in seconds (scale {})\n",
                opts.scale
            );
            print!("{}", runtime::render(&rows));
            opts.maybe_write_json(&rows);
        }
        Err(e) => {
            eprintln!("table3 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerate Table 2 (linkage quality of TransER vs the baselines).
use transer_eval::{quality, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("table2");
    let opts = Options::from_env();
    eprintln!(
        "Running Table 2 at scale {} with {} classifier(s); this is the heavyweight experiment...",
        opts.scale,
        opts.classifier_set().len()
    );
    match quality::table2(&opts) {
        Ok(t) => {
            println!("Table 2 — linkage quality (scale {}, seed {})\n", opts.scale, opts.seed);
            print!("{}", quality::render(&t));
            opts.maybe_write_json(&t);
        }
        Err(e) => {
            eprintln!("table2 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Measure sequential-vs-parallel wall clock for the hot paths and record
//! `results/BENCH_parallel.json`. Accepts the shared eval flags plus
//! `--threads <n>` (default: the global pool, i.e. `TRANSER_THREADS` or
//! the machine's available parallelism).

use transer_eval::{scaling, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("bench_parallel");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(args.iter().cloned());
    if opts.json.is_none() {
        opts.json = Some("results/BENCH_parallel.json".to_string());
    }
    let threads = args.windows(2).find(|w| w[0] == "--threads").and_then(|w| w[1].parse().ok());
    match scaling::thread_scaling(&opts, threads) {
        Ok(report) => {
            println!(
                "Thread scaling — sequential vs parallel hot paths (scale {}, {} core(s) available)\n",
                opts.scale, report.available_parallelism
            );
            print!("{}", scaling::render(&report.rows));
            opts.maybe_write_json(&report);
        }
        Err(e) => {
            eprintln!("bench_parallel failed: {e}");
            std::process::exit(1);
        }
    }
}

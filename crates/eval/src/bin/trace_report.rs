//! Pretty-print and validate `results/TRACE_*.json` reports.
//!
//! * `trace_report <path>` renders a human-readable summary: the span
//!   tree with timings, then counters, histograms and warnings.
//! * `trace_report --check <path>` validates the file against the
//!   report schema — version 1 or 2; version 2 additionally requires the
//!   per-span `alloc_count`/`alloc_bytes` allocation counters, and any
//!   unknown top-level key is rejected in both — *and* the expected
//!   layer coverage of a
//!   traced pipeline run (spans for all three phases, at least one
//!   counter each from the blocking, knn, ml, core and grain-dispatch
//!   layers, a `parallel.chunk_size` histogram consistent with the
//!   pooled-dispatch counter, the similarity-kernel partition
//!   invariant `bitparallel + fallback == levenshtein.calls`, and the
//!   ball-tree traversal partition invariant
//!   `node_visits + queries == bound_prunes + 2 × leaf_scans`); exits
//!   non-zero on any violation. This is the tier-1 smoke check.

use std::fmt::Write as _;

use transer_trace::json::{self, Json};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (check, path) = match args.as_slice() {
        [p] if p != "--check" => (false, p.clone()),
        [flag, p] if flag == "--check" => (true, p.clone()),
        _ => {
            eprintln!("usage: trace_report [--check] <TRACE_*.json>");
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match json::parse(&text) {
        Ok(d) => d,
        Err(e) => fail(&format!("{path} is not valid JSON: {e}")),
    };
    if check {
        match validate(&doc) {
            Ok(()) => println!("{path}: OK"),
            Err(msg) => fail(&format!("{path}: {msg}")),
        }
    } else {
        print!("{}", render(&doc));
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

/// Schema + layer-coverage validation (see the module docs).
fn validate(doc: &Json) -> Result<(), String> {
    let version = match doc.get("version").and_then(Json::as_num) {
        Some(v @ (1.0 | 2.0)) => v as u64,
        Some(v) => return Err(format!("unsupported version {v}")),
        None => return Err("version is not a number".into()),
    };
    const TOP_LEVEL: [&str; 6] = ["version", "task", "spans", "counters", "histograms", "warnings"];
    for key in doc.as_obj().ok_or("report is not an object")?.keys() {
        if !TOP_LEVEL.contains(&key.as_str()) {
            return Err(format!("unknown top-level key {key:?}"));
        }
    }
    doc.get("task").and_then(Json::as_str).ok_or("task is not a string")?;
    let spans = doc.get("spans").and_then(Json::as_arr).ok_or("spans is not an array")?;
    for span in spans {
        validate_span(span, version)?;
    }
    let counters = doc.get("counters").and_then(Json::as_obj).ok_or("counters is not an object")?;
    for (name, value) in counters {
        let n = value.as_num().ok_or_else(|| format!("counter {name} is not a number"))?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("counter {name} is not a non-negative integer"));
        }
    }
    let hists = doc.get("histograms").and_then(Json::as_obj).ok_or("histograms not an object")?;
    for (name, hist) in hists {
        validate_hist(name, hist)?;
    }
    let warnings = doc.get("warnings").and_then(Json::as_arr).ok_or("warnings is not an array")?;
    for w in warnings {
        w.get("context").and_then(Json::as_str).ok_or("warning without context")?;
        w.get("message").and_then(Json::as_str).ok_or("warning without message")?;
    }

    // Layer coverage of a traced pipeline run.
    for phase in ["pipeline", "sel", "gen", "tcl"] {
        if !spans.iter().any(|s| span_contains(s, phase)) {
            return Err(format!("no span named {phase:?}"));
        }
    }
    for layer in [
        &["blocking."][..],
        &["knn."],
        &["ml."],
        &["sel.", "gen.", "tcl."], // core
        &["parallel.dispatch."],   // grain-dispatch decisions
    ] {
        if !counters.keys().any(|k| layer.iter().any(|p| k.starts_with(p))) {
            return Err(format!("no counter from the {} layer", layer[0].trim_end_matches('.')));
        }
    }
    // Every pooled dispatch records its chunk size; the histogram must
    // agree with the pooled-decision counter.
    let pooled = counters.get("parallel.dispatch.pooled").and_then(Json::as_num).unwrap_or(0.0);
    let chunks = doc
        .get("histograms")
        .and_then(|h| h.get("parallel.chunk_size"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    if pooled != chunks {
        return Err(format!(
            "parallel.chunk_size histogram has {chunks} samples but \
             parallel.dispatch.pooled counted {pooled} dispatches"
        ));
    }
    // The fast similarity engine partitions every Levenshtein kernel run
    // into exactly one of single-block bit-parallel or multi-block wide
    // fallback (0 = 0 + 0 for runs that never invoke Levenshtein).
    let get = |k: &str| counters.get(k).and_then(Json::as_num).unwrap_or(0.0);
    let lev = get("similarity.levenshtein.calls");
    let bitparallel = get("similarity.kernel.bitparallel");
    let fallback = get("similarity.kernel.fallback");
    if bitparallel + fallback != lev {
        return Err(format!(
            "similarity.kernel.bitparallel ({bitparallel}) + similarity.kernel.fallback \
             ({fallback}) != similarity.levenshtein.calls ({lev})"
        ));
    }
    // Ball-tree traversal partition: every visited node is either a query
    // root or an unpruned child, and every visited internal node hands
    // both children to exactly one of {prune, visit} while every visited
    // leaf is scanned — so node_visits + queries == bound_prunes +
    // 2 × leaf_scans (0 = 0 for runs that never touch the ball tree).
    let visits = get("knn.balltree.node_visits");
    let queries = get("knn.balltree.queries");
    let prunes = get("knn.balltree.bound_prunes");
    let leaf_scans = get("knn.balltree.leaf_scans");
    if visits + queries != prunes + 2.0 * leaf_scans {
        return Err(format!(
            "knn.balltree.node_visits ({visits}) + knn.balltree.queries ({queries}) != \
             knn.balltree.bound_prunes ({prunes}) + 2 × knn.balltree.leaf_scans ({leaf_scans})"
        ));
    }
    Ok(())
}

fn validate_span(span: &Json, version: u64) -> Result<(), String> {
    let name = span.get("name").and_then(Json::as_str).ok_or("span without name")?;
    let secs = span.get("secs").and_then(Json::as_num).ok_or("span without secs")?;
    if secs < 0.0 {
        return Err("span with negative secs".into());
    }
    // Allocation counters arrived with version 2: required there,
    // optional in a version-1 file but still type-checked when present.
    for field in ["alloc_count", "alloc_bytes"] {
        match span.get(field).map(Json::as_num) {
            Some(Some(n)) if n >= 0.0 && n.fract() == 0.0 => {}
            Some(_) => return Err(format!("span {name}: {field} is not a non-negative integer")),
            None if version >= 2 => return Err(format!("span {name}: v2 requires {field}")),
            None => {}
        }
    }
    for child in span.get("children").and_then(Json::as_arr).ok_or("span without children")? {
        validate_span(child, version)?;
    }
    Ok(())
}

fn validate_hist(name: &str, hist: &Json) -> Result<(), String> {
    for field in ["count", "sum", "zero", "negative", "inf", "nan"] {
        hist.get(field)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("histogram {name} missing {field}"))?;
    }
    let buckets =
        hist.get("buckets").and_then(Json::as_obj).ok_or_else(|| format!("{name} no buckets"))?;
    for (exp, n) in buckets {
        exp.parse::<i16>().map_err(|_| format!("{name} bucket key {exp:?} not an exponent"))?;
        n.as_num().ok_or_else(|| format!("{name} bucket {exp} count not a number"))?;
    }
    Ok(())
}

fn span_contains(span: &Json, name: &str) -> bool {
    span.get("name").and_then(Json::as_str) == Some(name)
        || span
            .get("children")
            .and_then(Json::as_arr)
            .is_some_and(|kids| kids.iter().any(|k| span_contains(k, name)))
}

fn render(doc: &Json) -> String {
    let mut out = String::new();
    let task = doc.get("task").and_then(Json::as_str).unwrap_or("?");
    let _ = writeln!(out, "trace report — task {task}\n");
    if let Some(spans) = doc.get("spans").and_then(Json::as_arr) {
        let _ = writeln!(out, "spans:");
        for span in spans {
            render_span(&mut out, span, 1);
        }
    }
    if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
        if !counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            let width = counters.keys().map(String::len).max().unwrap_or(0);
            for (name, value) in counters {
                let v = value.as_num().unwrap_or(f64::NAN);
                let _ = writeln!(out, "  {name:width$}  {v}");
            }
        }
    }
    if let Some(hists) = doc.get("histograms").and_then(Json::as_obj) {
        if !hists.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (name, hist) in hists {
                let count = hist.get("count").and_then(Json::as_num).unwrap_or(0.0);
                let sum = hist.get("sum").and_then(Json::as_num).unwrap_or(0.0);
                let mean = if count > 0.0 { sum / count } else { 0.0 };
                let min = hist.get("min").and_then(Json::as_num);
                let max = hist.get("max").and_then(Json::as_num);
                let _ = write!(out, "  {name}: n={count} mean={mean:.4}");
                if let (Some(min), Some(max)) = (min, max) {
                    let _ = write!(out, " min={min} max={max}");
                }
                let _ = writeln!(out);
            }
        }
    }
    if let Some(warnings) = doc.get("warnings").and_then(Json::as_arr) {
        if !warnings.is_empty() {
            let _ = writeln!(out, "\nwarnings:");
            for w in warnings {
                let ctx = w.get("context").and_then(Json::as_str).unwrap_or("?");
                let msg = w.get("message").and_then(Json::as_str).unwrap_or("?");
                let _ = writeln!(out, "  [{ctx}] {msg}");
            }
        }
    }
    out
}

fn render_span(out: &mut String, span: &Json, depth: usize) {
    let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
    let secs = span.get("secs").and_then(Json::as_num).unwrap_or(0.0);
    let _ = writeln!(out, "{:indent$}{name}  {:.3} ms", "", secs * 1e3, indent = depth * 2);
    if let Some(children) = span.get("children").and_then(Json::as_arr) {
        for child in children {
            render_span(out, child, depth + 1);
        }
    }
}

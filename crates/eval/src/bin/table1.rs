//! Regenerate Table 1 (data set characteristics).
use transer_eval::{characteristics, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("table1");
    let opts = Options::from_env();
    match characteristics::table1(&opts) {
        Ok(rows) => {
            println!(
                "Table 1 — data set characteristics (scale {}, seed {})\n",
                opts.scale, opts.seed
            );
            print!("{}", characteristics::render(&rows));
            opts.maybe_write_json(&rows);
        }
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Regenerate Table 4 (ablation analysis).
use transer_eval::{ablation, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("table4");
    let opts = Options::from_env();
    match ablation::table4(&opts) {
        Ok(rows) => {
            println!("Table 4 — ablation analysis (scale {}, seed {})\n", opts.scale, opts.seed);
            print!("{}", ablation::render(&rows));
            opts.maybe_write_json(&rows);
        }
        Err(e) => {
            eprintln!("table4 failed: {e}");
            std::process::exit(1);
        }
    }
}

//! Run every table and figure in sequence (the full reproduction).
use transer_eval::{
    ablation, characteristics, controlled, decay_fig, distribution, quality, runtime, sensitivity,
    Options,
};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("all_experiments");
    let opts = Options::from_env();
    let run = |name: &str, body: &mut dyn FnMut() -> Result<String, transer_common::Error>| {
        eprintln!(">>> {name}");
        match body() {
            Ok(text) => println!("{name}\n\n{text}"),
            Err(e) => println!("{name}: FAILED ({e})\n"),
        }
    };
    run("Table 1", &mut || characteristics::table1(&opts).map(|r| characteristics::render(&r)));
    run("Figure 2", &mut || {
        distribution::fig2(&opts)
            .map(|s| s.iter().map(distribution::render).collect::<Vec<_>>().join("\n"))
    });
    run("Figure 5", &mut || Ok(decay_fig::render(&decay_fig::fig5(20))));
    run("Table 2", &mut || quality::table2(&opts).map(|t| quality::render(&t)));
    run("Table 3", &mut || runtime::table3(&opts).map(|r| runtime::render(&r)));
    run("Table 4", &mut || ablation::table4(&opts).map(|r| ablation::render(&r)));
    run("Figure 6", &mut || {
        sensitivity::fig6(&opts).map(|s| sensitivity::render_series("fraction", &s))
    });
    run("Figure 7", &mut || {
        sensitivity::fig7(&opts).map(|p| {
            p.iter()
                .map(|panel| sensitivity::render_series(panel.parameter.name(), &panel.series))
                .collect::<Vec<_>>()
                .join("\n")
        })
    });
    run("Controlled conflict experiment", &mut || {
        controlled::conflict_sweep(&opts).map(|p| controlled::render(&p))
    });
}

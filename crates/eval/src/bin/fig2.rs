//! Regenerate Figure 2 (bi-modal similarity distributions).
use transer_eval::{distribution, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("fig2");
    let opts = Options::from_env();
    match distribution::fig2(&opts) {
        Ok(series) => {
            println!("Figure 2 — mean pair-similarity distributions (scale {})\n", opts.scale);
            for s in &series {
                println!("{}", distribution::render(s));
                println!("peaks at bins {:?}\n", s.peaks);
            }
            opts.maybe_write_json(&series);
        }
        Err(e) => {
            eprintln!("fig2 failed: {e}");
            std::process::exit(1);
        }
    }
}

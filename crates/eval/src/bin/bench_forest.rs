//! Benchmark forest training: the per-node-sort reference tree engine vs
//! the presorted exact-greedy engine, per dataset shape and worker count,
//! recording `results/BENCH_forest.json`. Accepts the shared eval flags
//! plus `--threads <n>` (default: the global pool, i.e. `TRANSER_THREADS`
//! or the machine's available parallelism).

use transer_eval::{forest_bench, Options};

fn main() {
    // Appends one provenance record to results/ledger.jsonl on exit.
    let _ledger = transer_trace::RunLedger::new("bench_forest");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options::parse(args.iter().cloned());
    if opts.json.is_none() {
        opts.json = Some("results/BENCH_forest.json".to_string());
    }
    let threads = args.windows(2).find(|w| w[0] == "--threads").and_then(|w| w[1].parse().ok());
    match forest_bench::forest_benchmark(&opts, threads, &[8000, 32000]) {
        Ok(report) => {
            println!(
                "Forest benchmark — per-node-sort reference vs presorted engine ({} trees, depth {}, {} core(s) available)",
                report.n_trees, report.max_depth, report.available_parallelism
            );
            for d in &report.datasets {
                println!("\n{}: {} rows × {} features\n", d.name, d.rows, d.features);
                print!("{}", forest_bench::render(d));
            }
            opts.maybe_write_json(&report);
        }
        Err(e) => {
            eprintln!("bench_forest failed: {e}");
            std::process::exit(1);
        }
    }
}

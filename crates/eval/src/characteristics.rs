//! Table 1 — data set characteristics: match / non-match / ambiguous
//! shares per data set, and the class agreement of the feature vectors two
//! paired domains have in common.

use std::collections::HashMap;

use serde::Serialize;
use transer_common::LabeledDataset;
use transer_datagen::ScenarioPair;

use crate::{Cell, Options};

/// Decimal places the paper rounds feature vectors to before comparing.
pub const ROUND_DECIMALS: u32 = 2;

/// Per-data-set characteristics (the left two thirds of Table 1).
#[derive(Debug, Clone, Serialize)]
pub struct DatasetStats {
    /// Data set name.
    pub name: String,
    /// Number of similarity features.
    pub num_features: usize,
    /// Number of feature vectors (candidate record pairs).
    pub total: usize,
    /// Fraction of rows that are unambiguous matches.
    pub match_frac: f64,
    /// Fraction of rows that are unambiguous non-matches.
    pub non_match_frac: f64,
    /// Fraction of rows whose rounded feature vector carries both labels.
    pub ambiguous_frac: f64,
}

/// Group rows by rounded feature vector; value = (match rows, non-match
/// rows).
fn key_groups(ds: &LabeledDataset) -> HashMap<Vec<i64>, (usize, usize)> {
    let mut groups: HashMap<Vec<i64>, (usize, usize)> = HashMap::new();
    for i in 0..ds.len() {
        let e = groups.entry(ds.x.row_key(i, ROUND_DECIMALS)).or_default();
        if ds.y[i].is_match() {
            e.0 += 1;
        } else {
            e.1 += 1;
        }
    }
    groups
}

/// Compute the per-data-set statistics.
pub fn dataset_stats(ds: &LabeledDataset) -> DatasetStats {
    let groups = key_groups(ds);
    let mut matches = 0usize;
    let mut non_matches = 0usize;
    let mut ambiguous = 0usize;
    for (m, n) in groups.values() {
        if *m > 0 && *n > 0 {
            ambiguous += m + n;
        } else {
            matches += m;
            non_matches += n;
        }
    }
    let total = ds.len().max(1) as f64;
    DatasetStats {
        name: ds.name.clone(),
        num_features: ds.x.cols(),
        total: ds.len(),
        match_frac: matches as f64 / total,
        non_match_frac: non_matches as f64 / total,
        ambiguous_frac: ambiguous as f64 / total,
    }
}

/// Statistics of the feature vectors two domains have in common (the right
/// third of Table 1).
#[derive(Debug, Clone, Serialize)]
pub struct CommonStats {
    /// Number of distinct rounded vectors present in both domains.
    pub total: usize,
    /// Fraction with the same unambiguous class in both domains.
    pub same_class_frac: f64,
    /// Fraction unambiguous in both but with different classes.
    pub diff_class_frac: f64,
    /// Fraction ambiguous in at least one domain.
    pub ambiguous_frac: f64,
}

/// Compute the common-vector statistics of a domain pair.
pub fn common_stats(a: &LabeledDataset, b: &LabeledDataset) -> CommonStats {
    let ga = key_groups(a);
    let gb = key_groups(b);
    let mut total = 0usize;
    let mut same = 0usize;
    let mut diff = 0usize;
    let mut ambiguous = 0usize;
    for (key, (ma, na)) in &ga {
        let Some((mb, nb)) = gb.get(key) else { continue };
        total += 1;
        let amb_a = *ma > 0 && *na > 0;
        let amb_b = *mb > 0 && *nb > 0;
        if amb_a || amb_b {
            ambiguous += 1;
        } else if (*ma > 0) == (*mb > 0) {
            same += 1;
        } else {
            diff += 1;
        }
    }
    let t = total.max(1) as f64;
    CommonStats {
        total,
        same_class_frac: same as f64 / t,
        diff_class_frac: diff as f64 / t,
        ambiguous_frac: ambiguous as f64 / t,
    }
}

/// One Table 1 row: a scenario pair with both domains' statistics and
/// their common-vector statistics.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Left domain statistics.
    pub a: DatasetStats,
    /// Right domain statistics.
    pub b: DatasetStats,
    /// Common feature vector statistics.
    pub common: CommonStats,
}

/// Compute Table 1 for all four scenario pairs.
///
/// # Errors
/// Propagates workload generation errors.
pub fn table1(opts: &Options) -> transer_common::Result<Vec<Table1Row>> {
    let mut rows = Vec::new();
    for pair in ScenarioPair::ALL {
        let dp = pair.domain_pair(opts.scale, opts.seed)?;
        rows.push(Table1Row {
            a: dataset_stats(&dp.source),
            b: dataset_stats(&dp.target),
            common: common_stats(&dp.source, &dp.target),
        });
    }
    Ok(rows)
}

/// Render Table 1 in the paper's layout.
pub fn render(rows: &[Table1Row]) -> String {
    let mut table = vec![vec![
        Cell::from("m"),
        Cell::from("Domain A"),
        Cell::from("total"),
        Cell::from("M%"),
        Cell::from("N%"),
        Cell::from("Amb%"),
        Cell::from("Domain B"),
        Cell::from("total"),
        Cell::from("M%"),
        Cell::from("N%"),
        Cell::from("Amb%"),
        Cell::from("common"),
        Cell::from("Same%"),
        Cell::from("Diff%"),
        Cell::from("Amb%"),
    ]];
    for r in rows {
        table.push(vec![
            Cell::Num(r.a.num_features as f64),
            Cell::from(r.a.name.clone()),
            Cell::Num(r.a.total as f64),
            Cell::Num(r.a.match_frac * 100.0),
            Cell::Num(r.a.non_match_frac * 100.0),
            Cell::Num(r.a.ambiguous_frac * 100.0),
            Cell::from(r.b.name.clone()),
            Cell::Num(r.b.total as f64),
            Cell::Num(r.b.match_frac * 100.0),
            Cell::Num(r.b.non_match_frac * 100.0),
            Cell::Num(r.b.ambiguous_frac * 100.0),
            Cell::Num(r.common.total as f64),
            Cell::Num(r.common.same_class_frac * 100.0),
            Cell::Num(r.common.diff_class_frac * 100.0),
            Cell::Num(r.common.ambiguous_frac * 100.0),
        ]);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_common::{FeatureMatrix, Label};

    fn ds(rows: &[(f64, Label)]) -> LabeledDataset {
        let x = FeatureMatrix::from_vecs(&rows.iter().map(|(v, _)| vec![*v]).collect::<Vec<_>>())
            .unwrap();
        LabeledDataset::new("t", x, rows.iter().map(|(_, l)| *l).collect()).unwrap()
    }

    #[test]
    fn fractions_partition_the_rows() {
        let d = ds(&[
            (0.9, Label::Match),
            (0.9, Label::Match),
            (0.5, Label::Match),
            (0.5, Label::NonMatch), // ambiguous key 0.5
            (0.1, Label::NonMatch),
        ]);
        let s = dataset_stats(&d);
        assert_eq!(s.total, 5);
        assert!((s.match_frac - 0.4).abs() < 1e-12);
        assert!((s.non_match_frac - 0.2).abs() < 1e-12);
        assert!((s.ambiguous_frac - 0.4).abs() < 1e-12);
        assert!((s.match_frac + s.non_match_frac + s.ambiguous_frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn common_vector_classification() {
        let a = ds(&[
            (0.9, Label::Match), // common, same class
            (0.5, Label::Match), // common, diff class
            (0.3, Label::Match),
            (0.3, Label::NonMatch), // ambiguous in a, common
            (0.7, Label::Match),    // not common
        ]);
        let b = ds(&[
            (0.9, Label::Match),
            (0.5, Label::NonMatch),
            (0.3, Label::NonMatch),
            (0.2, Label::NonMatch), // not common
        ]);
        let c = common_stats(&a, &b);
        assert_eq!(c.total, 3);
        assert!((c.same_class_frac - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.diff_class_frac - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.ambiguous_frac - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn table1_generates_and_renders() {
        let opts = Options { scale: 0.02, ..Options::default() };
        let rows = table1(&opts).unwrap();
        assert_eq!(rows.len(), 4);
        // Feature-space widths follow the paper: 4, 5, 8, 11.
        assert_eq!(rows.iter().map(|r| r.a.num_features).collect::<Vec<_>>(), vec![4, 5, 8, 11]);
        let text = render(&rows);
        assert!(text.contains("DBLP-ACM"));
        assert!(text.contains("KIL Bp-Bp"));
    }
}

//! Figures 6 and 7 — sensitivity of TransER to the labelled-source size
//! and to its four parameters, on the paper's three representative pairs.

use serde::Serialize;
use transer_common::Result;
use transer_core::TransErConfig;
use transer_ml::stratified_fraction;

use crate::tasks::{directed_tasks, run_transer, EvalTask, QualityNumbers};
use crate::{Cell, Options};

/// The three tasks the sensitivity experiments run on (Section 5.2.3).
pub const SENSITIVITY_TASKS: [&str; 3] =
    ["DBLP-ACM -> DBLP-Scholar", "MB -> MSD", "KIL Bp-Dp -> IOS Bp-Dp"];

/// One sensitivity series: quality per swept value on one task.
#[derive(Debug, Clone, Serialize)]
pub struct SensitivitySeries {
    /// Task name.
    pub task: String,
    /// Parameter values swept.
    pub values: Vec<f64>,
    /// Quality at each value.
    pub quality: Vec<QualityNumbers>,
}

fn sensitivity_tasks(opts: &Options) -> Result<Vec<EvalTask>> {
    Ok(directed_tasks(opts.scale, opts.seed)?
        .into_iter()
        .filter(|t| SENSITIVITY_TASKS.contains(&t.name.as_str()))
        .collect())
}

/// Figure 6: vary the labelled fraction of the source domain over
/// 25%, 50%, 75%, 100% (stratified so the class mix is preserved).
///
/// # Errors
/// Propagates workload generation and TransER errors.
pub fn fig6(opts: &Options) -> Result<Vec<SensitivitySeries>> {
    let classifiers = opts.classifier_set();
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let mut out = Vec::new();
    for task in sensitivity_tasks(opts)? {
        let mut quality = Vec::new();
        for &fraction in &fractions {
            let keep = stratified_fraction(&task.source.y, fraction, opts.seed);
            let reduced = EvalTask {
                name: task.name.clone(),
                source: task.source.select(&keep),
                target: task.target.clone(),
                source_texts: keep.iter().map(|&i| task.source_texts[i].clone()).collect(),
                target_texts: task.target_texts.clone(),
            };
            let (q, _, _) =
                run_transer(TransErConfig::default(), &reduced, &classifiers, opts.seed)?;
            quality.push(q);
        }
        out.push(SensitivitySeries {
            task: task.name.clone(),
            values: fractions.to_vec(),
            quality,
        });
    }
    Ok(out)
}

/// Which parameter a Figure 7 sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum SweptParameter {
    /// Instance confidence threshold `t_c`.
    Tc,
    /// Structural similarity threshold `t_l`.
    Tl,
    /// Pseudo-label confidence threshold `t_p`.
    Tp,
    /// Neighbourhood size `k`.
    K,
}

impl SweptParameter {
    /// All four panels of Fig. 7.
    pub const ALL: [SweptParameter; 4] =
        [SweptParameter::Tc, SweptParameter::Tl, SweptParameter::Tp, SweptParameter::K];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SweptParameter::Tc => "t_c",
            SweptParameter::Tl => "t_l",
            SweptParameter::Tp => "t_p",
            SweptParameter::K => "k",
        }
    }

    /// The paper's sweep range for this parameter.
    pub fn values(self) -> Vec<f64> {
        match self {
            SweptParameter::Tc | SweptParameter::Tl | SweptParameter::Tp => {
                vec![0.5, 0.6, 0.7, 0.8, 0.9, 1.0]
            }
            SweptParameter::K => vec![3.0, 5.0, 7.0, 9.0, 11.0],
        }
    }

    /// A configuration with this parameter set to `v`, others at default.
    pub fn config(self, v: f64) -> TransErConfig {
        let mut c = TransErConfig::default();
        match self {
            SweptParameter::Tc => c.t_c = v,
            SweptParameter::Tl => c.t_l = v,
            SweptParameter::Tp => c.t_p = v,
            SweptParameter::K => c.k = v as usize,
        }
        c
    }
}

/// One Figure 7 panel: a parameter swept across the three tasks.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Panel {
    /// Which parameter this panel varies.
    pub parameter: SweptParameter,
    /// One series per task.
    pub series: Vec<SensitivitySeries>,
}

/// Figure 7: sweep each parameter with the others at their defaults.
///
/// # Errors
/// Propagates workload generation and TransER errors.
pub fn fig7(opts: &Options) -> Result<Vec<Fig7Panel>> {
    let classifiers = opts.classifier_set();
    let tasks = sensitivity_tasks(opts)?;
    let mut panels = Vec::new();
    for parameter in SweptParameter::ALL {
        let values = parameter.values();
        let mut series = Vec::new();
        for task in &tasks {
            let mut quality = Vec::new();
            for &v in &values {
                let (q, _, _) = run_transer(parameter.config(v), task, &classifiers, opts.seed)?;
                quality.push(q);
            }
            series.push(SensitivitySeries {
                task: task.name.clone(),
                values: values.clone(),
                quality,
            });
        }
        panels.push(Fig7Panel { parameter, series });
    }
    Ok(panels)
}

/// Render a set of series as a table: one row per swept value.
pub fn render_series(title: &str, series: &[SensitivitySeries]) -> String {
    let mut rows = Vec::new();
    let mut header = vec![Cell::from(title)];
    for s in series {
        header.push(Cell::from(format!("{} F*", s.task)));
        header.push(Cell::from(format!("{} F1", s.task)));
    }
    rows.push(header);
    if let Some(first) = series.first() {
        for (i, &v) in first.values.iter().enumerate() {
            let mut line = vec![Cell::Num(v)];
            for s in series {
                line.push(Cell::Pct(s.quality[i].f_star.0, s.quality[i].f_star.1));
                line.push(Cell::Pct(s.quality[i].f1.0, s.quality[i].f1.1));
            }
            rows.push(line);
        }
    }
    crate::format_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Options {
        Options { scale: 0.02, quick: true, ..Options::default() }
    }

    #[test]
    fn fig6_produces_three_series() {
        let series = fig6(&quick_opts()).unwrap();
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.values, vec![0.25, 0.5, 0.75, 1.0]);
            assert_eq!(s.quality.len(), 4);
        }
    }

    #[test]
    fn swept_parameter_configs() {
        let c = SweptParameter::Tc.config(0.6);
        assert_eq!(c.t_c, 0.6);
        assert_eq!(c.t_l, TransErConfig::default().t_l);
        let c = SweptParameter::K.config(9.0);
        assert_eq!(c.k, 9);
        assert_eq!(SweptParameter::K.values().len(), 5);
        assert_eq!(SweptParameter::Tp.values().len(), 6);
    }

    #[test]
    fn render_series_shape() {
        let s = SensitivitySeries {
            task: "A -> B".into(),
            values: vec![0.5, 1.0],
            quality: vec![
                QualityNumbers {
                    precision: (0.9, 0.0),
                    recall: (0.8, 0.0),
                    f_star: (0.7, 0.0),
                    f1: (0.8, 0.0),
                };
                2
            ],
        };
        let text = render_series("t_c", &[s]);
        assert!(text.contains("A -> B F*"));
        assert_eq!(text.lines().count(), 4);
    }
}

//! Figure 2 — the skewed, bi-modal distributions of mean record-pair
//! similarity, shown in the paper for Musicbrainz and DBLP-ACM.

use serde::Serialize;
use transer_datagen::Scenario;
use transer_metrics::Histogram;

use crate::Options;

/// One distribution: scenario name and the per-bin relative frequencies.
#[derive(Debug, Clone, Serialize)]
pub struct DistributionSeries {
    /// Scenario name.
    pub name: String,
    /// Bin centres on the mean-similarity axis.
    pub bin_centers: Vec<f64>,
    /// Relative frequency per bin.
    pub frequencies: Vec<f64>,
    /// Indices of local maxima — two entries confirm bi-modality.
    pub peaks: Vec<usize>,
}

/// Number of histogram bins used by the figure.
pub const BINS: usize = 20;

/// Compute the Fig. 2 distributions (Musicbrainz and DBLP-ACM, as in the
/// paper).
///
/// # Errors
/// Propagates workload generation errors.
pub fn fig2(opts: &Options) -> transer_common::Result<Vec<DistributionSeries>> {
    let mut out = Vec::new();
    for scenario in [Scenario::Musicbrainz, Scenario::DblpAcm] {
        let ds = scenario.generate(opts.scale, opts.seed)?;
        let hist = Histogram::from_values(BINS, ds.x.row_means());
        out.push(DistributionSeries {
            name: scenario.name().to_string(),
            bin_centers: (0..BINS).map(|i| hist.bin_center(i)).collect(),
            frequencies: hist.frequencies(),
            peaks: hist.peaks(),
        });
    }
    Ok(out)
}

/// ASCII rendering of one series.
pub fn render(series: &DistributionSeries) -> String {
    let mut hist = Histogram::new(series.frequencies.len());
    // Rebuild counts at a fixed resolution for the ASCII art.
    let mut out = format!("{} (mean pair similarity)\n", series.name);
    let max = series.frequencies.iter().cloned().fold(0.0, f64::max).max(1e-9);
    for (i, f) in series.frequencies.iter().enumerate() {
        let bar = "#".repeat((f / max * 50.0).round() as usize);
        out.push_str(&format!("{:>5.2} |{bar}\n", series.bin_centers[i]));
        hist.add(series.bin_centers[i]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_are_skewed_and_bimodal() {
        let opts = Options { scale: 0.1, ..Options::default() };
        let series = fig2(&opts).unwrap();
        assert_eq!(series.len(), 2);
        for s in &series {
            let sum: f64 = s.frequencies.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", s.name);
            // Skew: substantial mass in the lower half (non-matches),
            // strongest for Musicbrainz as in the paper's figure.
            let low: f64 = s.frequencies[..BINS / 2].iter().sum();
            let threshold = if s.name == "MB" { 0.5 } else { 0.35 };
            assert!(low > threshold, "{} low mass {low}", s.name);
            // Bi-modality: at least two local maxima.
            assert!(s.peaks.len() >= 2, "{} peaks {:?}", s.name, s.peaks);
        }
    }

    #[test]
    fn render_produces_bars() {
        let s = DistributionSeries {
            name: "X".into(),
            bin_centers: vec![0.25, 0.75],
            frequencies: vec![0.8, 0.2],
            peaks: vec![0],
        };
        let art = render(&s);
        assert!(art.contains('#'));
        assert!(art.starts_with("X"));
    }
}

//! Task generation and method execution shared by the experiments.

use std::time::Instant;

use serde::Serialize;
use transer_baselines::{ResourceBudget, RunContext, TaskView, TransferMethod};
use transer_common::{Label, LabeledDataset, Result};
use transer_core::{Diagnostics, TransEr, TransErConfig};
use transer_datagen::ScenarioPair;
use transer_metrics::{evaluate, MeanStd};
use transer_ml::ClassifierKind;

/// One directed transfer task with the raw pair texts the deep baselines
/// embed.
#[derive(Debug, Clone)]
pub struct EvalTask {
    /// `"source -> target"`.
    pub name: String,
    /// Labelled source domain.
    pub source: LabeledDataset,
    /// Target domain (labels used for evaluation only).
    pub target: LabeledDataset,
    /// Raw record-pair text per source row.
    pub source_texts: Vec<(String, String)>,
    /// Raw record-pair text per target row.
    pub target_texts: Vec<(String, String)>,
}

impl EvalTask {
    /// Borrowed view for the baselines.
    pub fn view(&self) -> TaskView<'_> {
        TaskView {
            xs: &self.source.x,
            ys: &self.source.y,
            xt: &self.target.x,
            source_texts: Some(&self.source_texts),
            target_texts: Some(&self.target_texts),
        }
    }
}

/// Generate the eight directed tasks of Table 2 (both directions of the
/// four scenario pairs), at the given scale.
///
/// # Errors
/// Propagates generation errors.
pub fn directed_tasks(scale: f64, seed: u64) -> Result<Vec<EvalTask>> {
    let mut out = Vec::with_capacity(8);
    for pair in ScenarioPair::ALL {
        let (a, b) = pair.scenarios();
        let (da, ta) = a.generate_with_text(scale, seed)?;
        let (db, tb) = b.generate_with_text(scale, seed)?;
        out.push(EvalTask {
            name: format!("{} -> {}", da.name, db.name),
            source: da.clone(),
            target: db.clone(),
            source_texts: ta.clone(),
            target_texts: tb.clone(),
        });
        out.push(EvalTask {
            name: format!("{} -> {}", db.name, da.name),
            source: db,
            target: da,
            source_texts: tb,
            target_texts: ta,
        });
    }
    Ok(out)
}

/// The paper's quality quadruple, as mean ± std over the classifier set.
#[derive(Debug, Clone, Copy, Serialize, PartialEq)]
pub struct QualityNumbers {
    /// Mean / std of precision.
    pub precision: (f64, f64),
    /// Mean / std of recall.
    pub recall: (f64, f64),
    /// Mean / std of the F* measure.
    pub f_star: (f64, f64),
    /// Mean / std of F1.
    pub f1: (f64, f64),
}

impl QualityNumbers {
    /// Aggregate per-classifier outcomes.
    pub fn from_runs(predictions: &[Vec<Label>], truth: &[Label]) -> Self {
        let mut p = MeanStd::new();
        let mut r = MeanStd::new();
        let mut fs = MeanStd::new();
        let mut f1 = MeanStd::new();
        for pred in predictions {
            let cm = evaluate(pred, truth);
            p.push(cm.precision());
            r.push(cm.recall());
            fs.push(cm.f_star());
            f1.push(cm.f1());
        }
        QualityNumbers {
            precision: (p.mean(), p.std()),
            recall: (r.mean(), r.std()),
            f_star: (fs.mean(), fs.std()),
            f1: (f1.mean(), f1.std()),
        }
    }
}

/// Outcome of running one method on one task with the full classifier set.
#[derive(Debug, Clone, Serialize)]
pub enum MethodOutcome {
    /// Completed: quality numbers and total runtime in seconds.
    Ok {
        /// Aggregated linkage quality.
        quality: QualityNumbers,
        /// Total wall-clock seconds across the classifier set.
        secs: f64,
    },
    /// Exceeded the memory budget (`ME` in the paper's tables).
    MemoryExceeded,
    /// Exceeded the runtime budget (`TE`).
    TimeExceeded,
    /// Failed for another reason (degenerate data); the message is kept.
    Failed(String),
}

impl MethodOutcome {
    /// Table cell text for quality columns, e.g. the F* cell.
    pub fn is_ok(&self) -> bool {
        matches!(self, MethodOutcome::Ok { .. })
    }
}

/// Run one baseline with every classifier in the set and aggregate.
pub fn run_baseline(
    method: &dyn TransferMethod,
    task: &EvalTask,
    classifiers: &[ClassifierKind],
    seed: u64,
    budget: ResourceBudget,
) -> MethodOutcome {
    let mut predictions = Vec::with_capacity(classifiers.len());
    let started = Instant::now();
    for (i, &kind) in classifiers.iter().enumerate() {
        let ctx = RunContext::new(kind, seed.wrapping_add(i as u64), budget);
        match method.run(&task.view(), &ctx) {
            Ok(labels) => predictions.push(labels),
            Err(transer_common::Error::MemoryExceeded { .. }) => {
                return MethodOutcome::MemoryExceeded
            }
            Err(transer_common::Error::TimeExceeded { .. }) => return MethodOutcome::TimeExceeded,
            Err(e) => return MethodOutcome::Failed(e.to_string()),
        }
    }
    MethodOutcome::Ok {
        quality: QualityNumbers::from_runs(&predictions, &task.target.y),
        secs: started.elapsed().as_secs_f64(),
    }
}

/// Run TransER with every classifier in the set and aggregate; also
/// returns the per-classifier diagnostics.
pub fn run_transer(
    config: TransErConfig,
    task: &EvalTask,
    classifiers: &[ClassifierKind],
    seed: u64,
) -> Result<(QualityNumbers, f64, Vec<Diagnostics>)> {
    let mut predictions = Vec::with_capacity(classifiers.len());
    let mut diagnostics = Vec::with_capacity(classifiers.len());
    let started = Instant::now();
    for (i, &kind) in classifiers.iter().enumerate() {
        let transer = TransEr::new(config, kind, seed.wrapping_add(i as u64))?;
        let out = transer.fit_predict(&task.source.x, &task.source.y, &task.target.x)?;
        predictions.push(out.labels);
        diagnostics.push(out.diagnostics);
    }
    Ok((
        QualityNumbers::from_runs(&predictions, &task.target.y),
        started.elapsed().as_secs_f64(),
        diagnostics,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use transer_baselines::Naive;

    fn tiny_tasks() -> Vec<EvalTask> {
        directed_tasks(0.02, 3).expect("generation succeeds")
    }

    #[test]
    fn eight_directed_tasks() {
        let tasks = tiny_tasks();
        assert_eq!(tasks.len(), 8);
        let names: Vec<&str> = tasks.iter().map(|t| t.name.as_str()).collect();
        assert!(names.contains(&"DBLP-ACM -> DBLP-Scholar"));
        assert!(names.contains(&"KIL Bp-Bp -> IOS Bp-Bp"));
        for t in &tasks {
            assert_eq!(t.source.len(), t.source_texts.len());
            assert_eq!(t.target.len(), t.target_texts.len());
            assert!(t.view().validate().is_ok());
        }
    }

    #[test]
    fn naive_runs_and_aggregates() {
        let tasks = tiny_tasks();
        let out = run_baseline(
            &Naive,
            &tasks[0],
            &[ClassifierKind::LogisticRegression, ClassifierKind::DecisionTree],
            1,
            ResourceBudget::default(),
        );
        match out {
            MethodOutcome::Ok { quality, secs } => {
                assert!(secs >= 0.0);
                assert!((0.0..=1.0).contains(&quality.f_star.0));
                assert!(quality.f_star.1 >= 0.0);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn transer_runs_and_reports_diagnostics() {
        let tasks = tiny_tasks();
        let (q, secs, diags) = run_transer(
            TransErConfig::default(),
            &tasks[1],
            &[ClassifierKind::LogisticRegression],
            1,
        )
        .unwrap();
        assert_eq!(diags.len(), 1);
        assert!(secs > 0.0);
        assert!((0.0..=1.0).contains(&q.recall.0));
    }

    #[test]
    fn quality_aggregation_matches_hand_computation() {
        let truth = vec![Label::Match, Label::NonMatch, Label::Match];
        let runs = vec![
            vec![Label::Match, Label::NonMatch, Label::Match], // perfect
            vec![Label::Match, Label::Match, Label::NonMatch], // P=.5 R=.5
        ];
        let q = QualityNumbers::from_runs(&runs, &truth);
        assert!((q.precision.0 - 0.75).abs() < 1e-12);
        assert!((q.recall.0 - 0.75).abs() < 1e-12);
        assert!((q.precision.1 - 0.25).abs() < 1e-12);
    }
}

//! Shared command-line options of the experiment binaries.

use transer_baselines::ResourceBudget;
use transer_ml::ClassifierKind;

/// Options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Entity-count multiplier relative to the paper's Table 1 sizes.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Restrict the classifier set to logistic regression (`--quick`).
    pub quick: bool,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Resource budget for the baselines (drives `ME`/`TE` entries).
    pub budget: ResourceBudget,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.1,
            seed: 42,
            quick: false,
            json: None,
            // Scaled-down counterparts of the paper's 200 GB / 72 h caps:
            // at scale 0.1 TCA's kernel fits for the bibliographic pair and
            // blows the budget beyond it, exactly as in Table 2.
            budget: ResourceBudget { max_memory_bytes: 1 << 30, max_secs: 600.0 },
        }
    }
}

impl Options {
    /// Parse from an argument iterator (skip the program name first).
    /// Unknown arguments are ignored so binaries can add their own.
    pub fn parse(args: impl Iterator<Item = String>) -> Self {
        let mut opts = Options::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.scale = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.seed = v;
                    }
                }
                "--quick" => opts.quick = true,
                // `--out` is the workspace-wide artefact-path flag
                // (`transer_trace::ledger::out_path`); `--json` is the
                // original spelling, kept as an alias.
                "--json" | "--out" => opts.json = args.next(),
                "--budget-secs" => {
                    if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                        opts.budget.max_secs = v;
                    }
                }
                "--budget-mb" => {
                    if let Some(v) = args.next().and_then(|v| v.parse::<u64>().ok()) {
                        opts.budget.max_memory_bytes = v << 20;
                    }
                }
                _ => {}
            }
        }
        opts
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Options::parse(std::env::args().skip(1))
    }

    /// The classifier set the experiment averages over: the paper's four,
    /// or just logistic regression under `--quick`.
    pub fn classifier_set(&self) -> Vec<ClassifierKind> {
        if self.quick {
            vec![ClassifierKind::LogisticRegression]
        } else {
            ClassifierKind::PAPER_SET.to_vec()
        }
    }

    /// Write a serialisable result to the `--json` path when set.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            match serde_json::to_string_pretty(value) {
                Ok(body) => {
                    if let Err(e) = std::fs::write(path, body) {
                        eprintln!("warning: could not write {path}: {e}");
                    }
                }
                Err(e) => eprintln!("warning: JSON serialisation failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Options {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.scale, 0.1);
        assert_eq!(o.seed, 42);
        assert!(!o.quick);
        assert_eq!(o.classifier_set().len(), 4);
    }

    #[test]
    fn parses_flags() {
        let o = parse(&["--scale", "0.25", "--seed", "7", "--quick", "--json", "out.json"]);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.seed, 7);
        assert!(o.quick);
        assert_eq!(o.json.as_deref(), Some("out.json"));
        assert_eq!(o.classifier_set().len(), 1);
    }

    #[test]
    fn out_is_an_alias_for_json() {
        let o = parse(&["--out", "x.json"]);
        assert_eq!(o.json.as_deref(), Some("x.json"));
    }

    #[test]
    fn parses_budget() {
        let o = parse(&["--budget-secs", "12.5", "--budget-mb", "64"]);
        assert_eq!(o.budget.max_secs, 12.5);
        assert_eq!(o.budget.max_memory_bytes, 64 << 20);
    }

    #[test]
    fn ignores_unknown() {
        let o = parse(&["--frobnicate", "--scale", "0.5"]);
        assert_eq!(o.scale, 0.5);
    }
}

//! Forest-training wall-time benchmark: the per-node-sort reference tree
//! engine vs the presorted exact-greedy engine.
//!
//! Not a paper artefact: this experiment quantifies the presorted rewrite
//! of the CART trainer that GEN and TCL sit on. Two synthetic shapes —
//! an ER-like matrix (few features, values rounded onto a coarse grid, so
//! columns are dominated by ties) and a wide continuous matrix — at two
//! row counts each, timed best-of-[`REPS`] for every engine × worker
//! count. The engines are bit-identical (asserted on every dataset before
//! any timing), so the speedup is the whole story.

use std::time::Instant;

use serde::Serialize;
use transer_common::{FeatureMatrix, Label, Result};
use transer_ml::{Classifier, RandomForest, RandomForestConfig, TreeEngine};
use transer_parallel::Pool;

use crate::{Cell, Options};

/// Timing repetitions per workload; the minimum is reported to damp
/// scheduler noise.
const REPS: usize = 5;

/// The full benchmark result written to `results/BENCH_forest.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ForestBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Trees per forest.
    pub n_trees: usize,
    /// Depth cap per tree.
    pub max_depth: usize,
    /// One entry per dataset.
    pub datasets: Vec<ForestBenchDataset>,
}

/// Shape and timings of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct ForestBenchDataset {
    /// Dataset name (`<shape>-<rows>`).
    pub name: String,
    /// Training rows.
    pub rows: usize,
    /// Feature columns.
    pub features: usize,
    /// Per-engine, per-thread-count timings.
    pub timings: Vec<ForestBenchRow>,
}

/// One timed forest fit.
#[derive(Debug, Clone, Serialize)]
pub struct ForestBenchRow {
    /// Tree engine (`reference`, `presorted`).
    pub engine: String,
    /// Worker count.
    pub threads: usize,
    /// Best-of-[`REPS`] wall-clock seconds.
    pub secs: f64,
    /// `reference` seconds at the same worker count divided by `secs`.
    pub speedup_vs_reference: f64,
}

fn time_once<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}

/// Deterministic xorshift in `[0, 1)`.
fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Synthetic training matrix: `rounded` snaps every value onto a 2-decimal
/// grid (the ER similarity regime, columns dominated by ties); labels are
/// a noisy linear rule so the trees grow to real depth instead of
/// separating the classes at the root.
fn synth(n: usize, m: usize, rounded: bool, seed: u64) -> (FeatureMatrix, Vec<Label>) {
    let mut next = xorshift(seed);
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..m)
            .map(|_| if rounded { (next() * 100.0).round() / 100.0 } else { next() })
            .collect();
        let score: f64 = row.iter().take(3).sum::<f64>() / 3.0 + 0.35 * (next() - 0.5);
        y.push(if score > 0.5 { Label::Match } else { Label::NonMatch });
        rows.push(row);
    }
    (FeatureMatrix::from_vecs(&rows).expect("synthetic matrix"), y)
}

fn fit_forest(
    x: &FeatureMatrix,
    y: &[Label],
    config: RandomForestConfig,
    seed: u64,
    engine: TreeEngine,
    threads: usize,
) -> RandomForest {
    let mut rf = RandomForest::new(config, seed).with_engine(engine).with_threads(threads);
    rf.fit(x, y).expect("forest fit");
    rf
}

fn bench_dataset(
    name: &str,
    x: &FeatureMatrix,
    y: &[Label],
    config: RandomForestConfig,
    seed: u64,
    threads: usize,
) -> ForestBenchDataset {
    // Correctness gate before any timing: the presorted engine must match
    // the reference forest bit for bit, at one worker and at several.
    let reference = fit_forest(x, y, config, seed, TreeEngine::Reference, 1).predict_proba(x);
    for workers in [1, threads] {
        let got = fit_forest(x, y, config, seed, TreeEngine::Presorted, workers).predict_proba(x);
        for (i, (a, b)) in reference.iter().zip(&got).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: presorted diverges from reference at row {i} (workers {workers})"
            );
        }
    }

    let mut timings = Vec::new();
    for threads in [1, threads] {
        // Interleave the engines rep by rep so background-load spikes hit
        // both timing windows alike instead of skewing one side of the
        // ratio; best-of-[`REPS`] then recovers each engine's quiet rep.
        let mut reference_secs = f64::INFINITY;
        let mut presorted_secs = f64::INFINITY;
        for _ in 0..REPS {
            reference_secs = reference_secs.min(time_once(|| {
                fit_forest(x, y, config, seed, TreeEngine::Reference, threads);
            }));
            presorted_secs = presorted_secs.min(time_once(|| {
                fit_forest(x, y, config, seed, TreeEngine::Presorted, threads);
            }));
        }
        for (engine, secs) in
            [(TreeEngine::Reference, reference_secs), (TreeEngine::Presorted, presorted_secs)]
        {
            timings.push(ForestBenchRow {
                engine: engine.name().to_string(),
                threads,
                secs,
                speedup_vs_reference: reference_secs / secs,
            });
        }
    }
    ForestBenchDataset { name: name.to_string(), rows: x.rows(), features: x.cols(), timings }
}

/// Run the forest benchmark over both shapes at each of `sizes` row
/// counts, at 1 worker and at `threads` workers (default: the global
/// pool's count).
///
/// # Errors
/// Currently infallible; kept fallible for parity with the other
/// experiment entry points.
pub fn forest_benchmark(
    opts: &Options,
    threads: Option<usize>,
    sizes: &[usize],
) -> Result<ForestBenchReport> {
    let threads = threads.unwrap_or_else(|| Pool::global().workers());
    let config = RandomForestConfig::default();
    let mut datasets = Vec::new();
    for &n in sizes {
        // ER-like: 9 similarity columns on a coarse grid (heavy ties).
        let (x, y) = synth(n, 9, true, opts.seed);
        datasets.push(bench_dataset(
            &format!("er-rounded-{n}"),
            &x,
            &y,
            config,
            opts.seed,
            threads,
        ));
        // Wide continuous: 24 columns, almost no ties.
        let (x, y) = synth(n, 24, false, opts.seed.wrapping_add(1));
        datasets.push(bench_dataset(
            &format!("wide-continuous-{n}"),
            &x,
            &y,
            config,
            opts.seed,
            threads,
        ));
    }
    Ok(ForestBenchReport {
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        seed: opts.seed,
        n_trees: config.n_trees,
        max_depth: config.tree.max_depth,
        datasets,
    })
}

/// Render one dataset's timings as an aligned text table.
pub fn render(d: &ForestBenchDataset) -> String {
    let mut table = vec![vec![
        Cell::from("Engine"),
        Cell::from("Threads"),
        Cell::from("Secs"),
        Cell::from("vs reference"),
    ]];
    for r in &d.timings {
        table.push(vec![
            Cell::from(r.engine.clone()),
            Cell::Num(r.threads as f64),
            Cell::Num(r.secs),
            Cell::Num(r.speedup_vs_reference),
        ]);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_shapes_and_classes() {
        let (x, y) = synth(200, 9, true, 7);
        assert_eq!((x.rows(), x.cols()), (200, 9));
        let matches = y.iter().filter(|l| l.is_match()).count();
        assert!(matches > 20 && matches < 180, "classes mixed ({matches}/200)");
        // The rounded shape actually produces tied values.
        let col: Vec<u64> = (0..x.rows()).map(|i| x.row(i)[0].to_bits()).collect();
        let distinct: std::collections::HashSet<u64> = col.iter().copied().collect();
        assert!(distinct.len() < col.len(), "rounded columns must contain ties");
    }

    #[test]
    fn quick_forest_bench_smoke() {
        let opts = Options::default();
        let report = forest_benchmark(&opts, Some(2), &[60]).unwrap();
        assert_eq!(report.datasets.len(), 2);
        for d in &report.datasets {
            // 2 engines × 2 thread counts.
            assert_eq!(d.timings.len(), 4);
            for r in &d.timings {
                assert!(r.secs > 0.0 && r.speedup_vs_reference.is_finite(), "{}", r.engine);
            }
            assert!(render(d).contains("presorted"));
        }
    }
}

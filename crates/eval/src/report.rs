//! Plain-text table rendering for the experiment binaries.

/// One table cell.
#[derive(Debug, Clone)]
pub enum Cell {
    /// Left-aligned text.
    Text(String),
    /// Right-aligned number rendered with two decimals.
    Num(f64),
    /// Right-aligned `mean ± std` percentage pair (inputs are fractions).
    Pct(f64, f64),
    /// Empty cell.
    Empty,
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => format!("{v:.2}"),
            Cell::Pct(mean, std) => format!("{:.2} \u{00b1} {:.2}", mean * 100.0, std * 100.0),
            Cell::Empty => String::new(),
        }
    }

    fn right_aligned(&self) -> bool {
        !matches!(self, Cell::Text(_))
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

/// Render rows (the first being the header) as an aligned text table.
pub fn format_table(rows: &[Vec<Cell>]) -> String {
    let columns = rows.iter().map(Vec::len).max().unwrap_or(0);
    let rendered: Vec<Vec<String>> =
        rows.iter().map(|r| r.iter().map(Cell::render).collect()).collect();
    let mut widths = vec![0usize; columns];
    for row in &rendered {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (ri, row) in rendered.iter().enumerate() {
        for (ci, cell) in row.iter().enumerate() {
            if ci > 0 {
                out.push_str("  ");
            }
            let pad = widths[ci].saturating_sub(cell.chars().count());
            let right = rows[ri].get(ci).is_some_and(Cell::right_aligned) && ri > 0;
            if right {
                out.extend(std::iter::repeat_n(' ', pad));
                out.push_str(cell);
            } else {
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', pad));
            }
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let rows = vec![
            vec![Cell::from("name"), Cell::from("value")],
            vec![Cell::from("alpha"), Cell::Num(1.5)],
            vec![Cell::from("b"), Cell::Num(22.125)],
        ];
        let t = format_table(&rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("1.50"));
        assert!(lines[3].contains("22.1"));
    }

    #[test]
    fn pct_cells_match_paper_format() {
        assert_eq!(Cell::Pct(0.9278, 0.0513).render(), "92.78 \u{00b1} 5.13");
    }

    #[test]
    fn empty_input() {
        assert_eq!(format_table(&[]), "");
    }
}

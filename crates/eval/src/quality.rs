//! Table 2 — linkage quality of TransER against every baseline on all
//! eight directed transfer tasks, averaged over the classifier set.

use serde::Serialize;
use transer_baselines::all_baselines;
use transer_core::TransErConfig;
use transer_metrics::MeanStd;

use crate::tasks::{directed_tasks, run_baseline, run_transer, MethodOutcome, QualityNumbers};
use crate::{Cell, Options};

/// All method results for one directed task.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// `"source -> target"`.
    pub task: String,
    /// `(method name, outcome)` — TransER first, then the baselines in the
    /// paper's column order.
    pub methods: Vec<(String, MethodOutcome)>,
}

/// The full Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2 {
    /// Per-task rows.
    pub rows: Vec<Table2Row>,
    /// Per-method average quality over the tasks the method completed.
    pub averages: Vec<(String, QualityNumbers)>,
}

/// Run the Table 2 experiment.
///
/// # Errors
/// Propagates workload generation and TransER errors (baseline failures
/// are captured per-cell as `ME`/`TE`/`Failed`).
pub fn table2(opts: &Options) -> transer_common::Result<Table2> {
    let classifiers = opts.classifier_set();
    let tasks = directed_tasks(opts.scale, opts.seed)?;
    let baselines = all_baselines();

    let mut rows = Vec::with_capacity(tasks.len());
    for task in &tasks {
        let mut methods = Vec::new();
        let (q, secs, _) = run_transer(TransErConfig::default(), task, &classifiers, opts.seed)?;
        methods.push(("TransER".to_string(), MethodOutcome::Ok { quality: q, secs }));
        for baseline in &baselines {
            let outcome =
                run_baseline(baseline.as_ref(), task, &classifiers, opts.seed, opts.budget);
            methods.push((baseline.name().to_string(), outcome));
        }
        rows.push(Table2Row { task: task.name.clone(), methods });
    }

    // Per-method averages over completed tasks (mean of per-task means;
    // std across tasks).
    let method_names: Vec<String> = rows
        .first()
        .map(|r| r.methods.iter().map(|(n, _)| n.clone()).collect())
        .unwrap_or_default();
    let mut averages = Vec::new();
    for name in method_names {
        let mut p = MeanStd::new();
        let mut r = MeanStd::new();
        let mut fs = MeanStd::new();
        let mut f1 = MeanStd::new();
        for row in &rows {
            if let Some((_, MethodOutcome::Ok { quality, .. })) =
                row.methods.iter().find(|(n, _)| *n == name)
            {
                p.push(quality.precision.0);
                r.push(quality.recall.0);
                fs.push(quality.f_star.0);
                f1.push(quality.f1.0);
            }
        }
        averages.push((
            name,
            QualityNumbers {
                precision: (p.mean(), p.std()),
                recall: (r.mean(), r.std()),
                f_star: (fs.mean(), fs.std()),
                f1: (f1.mean(), f1.std()),
            },
        ));
    }
    Ok(Table2 { rows, averages })
}

fn metric_cell(outcome: &MethodOutcome, metric: usize) -> Cell {
    match outcome {
        MethodOutcome::Ok { quality, .. } => {
            let (m, s) = match metric {
                0 => quality.precision,
                1 => quality.recall,
                2 => quality.f_star,
                _ => quality.f1,
            };
            Cell::Pct(m, s)
        }
        MethodOutcome::MemoryExceeded => Cell::from("ME"),
        MethodOutcome::TimeExceeded => Cell::from("TE"),
        MethodOutcome::Failed(_) => Cell::from("—"),
    }
}

/// Render Table 2 in the paper's layout (P/R/F*/F1 rows per task).
pub fn render(t: &Table2) -> String {
    let mut rows = Vec::new();
    let mut header = vec![Cell::from("Task"), Cell::from("")];
    if let Some(first) = t.rows.first() {
        header.extend(first.methods.iter().map(|(n, _)| Cell::from(n.clone())));
    }
    rows.push(header);
    let metric_names = ["P", "R", "F*", "F1"];
    for row in &t.rows {
        for (mi, mn) in metric_names.iter().enumerate() {
            let mut line = vec![
                if mi == 0 { Cell::from(row.task.clone()) } else { Cell::Empty },
                Cell::from(*mn),
            ];
            line.extend(row.methods.iter().map(|(_, o)| metric_cell(o, mi)));
            rows.push(line);
        }
    }
    for (mi, mn) in metric_names.iter().enumerate() {
        let mut line =
            vec![if mi == 0 { Cell::from("Averages") } else { Cell::Empty }, Cell::from(*mn)];
        for (_, q) in &t.averages {
            let (m, s) = match mi {
                0 => q.precision,
                1 => q.recall,
                2 => q.f_star,
                _ => q.f1,
            };
            line.push(Cell::Pct(m, s));
        }
        rows.push(line);
    }
    crate::format_table(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table2_smoke() {
        // Tiny scale + single classifier keeps this a unit test.
        let opts = Options {
            scale: 0.02,
            quick: true,
            budget: transer_baselines::ResourceBudget {
                max_memory_bytes: 64 << 20,
                max_secs: 120.0,
            },
            ..Options::default()
        };
        let t = table2(&opts).unwrap();
        assert_eq!(t.rows.len(), 8);
        // TransER plus six baselines.
        assert_eq!(t.rows[0].methods.len(), 7);
        assert_eq!(t.rows[0].methods[0].0, "TransER");
        assert!(t.rows[0].methods[0].1.is_ok(), "TransER must complete");
        let text = render(&t);
        assert!(text.contains("TransER"));
        assert!(text.contains("Averages"));
    }
}

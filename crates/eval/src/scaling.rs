//! Thread-scaling measurements for the parallel hot paths.
//!
//! Not a paper artefact: this experiment validates the `transer-parallel`
//! wiring by timing each hot path (feature comparison, MinHash blocking,
//! SEL instance scoring, random forest training) sequentially and on N
//! workers, and reporting the speedup. Results are bit-identical across
//! worker counts by construction, so the speedup is the whole story.

use std::time::Instant;

use serde::Serialize;
use transer_blocking::MinHashLsh;
use transer_common::Result;
use transer_core::{select_instances_with_pool, TransErConfig};
use transer_datagen::{Scenario, ScenarioPair};
use transer_ml::{Classifier, RandomForest};
use transer_parallel::Pool;

use crate::{Cell, Options};

/// Timing repetitions per workload; the minimum is reported to damp
/// scheduler noise.
const REPS: usize = 3;

/// The scaling rows plus the host context needed to interpret them: on a
/// single-core machine the expected speedup is ~1× (the pool degrades to
/// time-slicing), so the measurement is only meaningful together with
/// `available_parallelism`.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Entity-count multiplier the workloads were generated at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-workload timings.
    pub rows: Vec<ScalingRow>,
}

/// Sequential-vs-parallel timing of one hot path.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Hot-path name (`compare`, `minhash`, `sel`, `forest_fit`).
    pub workload: String,
    /// Work-item count (pairs, records, rows or trees × rows).
    pub items: usize,
    /// Worker count of the parallel run.
    pub threads: usize,
    /// Best-of-[`REPS`] sequential wall-clock seconds.
    pub secs_seq: f64,
    /// Best-of-[`REPS`] parallel wall-clock seconds.
    pub secs_par: f64,
    /// `secs_seq / secs_par`.
    pub speedup: f64,
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn row(workload: &str, items: usize, threads: usize, secs_seq: f64, secs_par: f64) -> ScalingRow {
    ScalingRow {
        workload: workload.to_string(),
        items,
        threads,
        secs_seq,
        secs_par,
        speedup: secs_seq / secs_par,
    }
}

/// Measure all four parallel hot paths at `threads` workers (defaulting to
/// the global pool's worker count) against their sequential runs.
///
/// # Errors
/// Propagates workload generation and selection errors.
pub fn thread_scaling(opts: &Options, threads: Option<usize>) -> Result<ScalingReport> {
    let threads = threads.unwrap_or_else(|| Pool::global().workers());
    let seq = Pool::sequential();
    let par = Pool::new(threads);
    let mut rows = Vec::new();

    // Feature comparison + MinHash blocking over raw records.
    let scenario = Scenario::DblpAcm;
    let entities = ((scenario.base_entities() as f64 * opts.scale) as usize).max(40);
    let (left, right) = transer_datagen::biblio::generate(
        &transer_datagen::biblio::BiblioConfig::dblp_acm(entities, opts.seed),
    );
    let blocker = MinHashLsh::new(scenario.lsh_config()).expect("valid LSH config");
    let attrs = Some(scenario.blocking_attrs());
    let secs_seq = time_best(|| {
        blocker.candidate_pairs_masked_with_pool(&left, &right, attrs, &seq);
    });
    let secs_par = time_best(|| {
        blocker.candidate_pairs_masked_with_pool(&left, &right, attrs, &par);
    });
    rows.push(row("minhash", left.len() + right.len(), threads, secs_seq, secs_par));

    let pairs = blocker.candidate_pairs_masked_with_pool(&left, &right, attrs, &par);
    let comparison = scenario.comparison();
    let secs_seq =
        time_best(|| drop(comparison.compare_pairs_with_pool(&left, &right, &pairs, &seq)));
    let secs_par =
        time_best(|| drop(comparison.compare_pairs_with_pool(&left, &right, &pairs, &par)));
    rows.push(row("compare", pairs.len(), threads, secs_seq, secs_par));

    // SEL scoring + forest training over the bibliographic transfer task.
    let pair = ScenarioPair::Bibliographic.domain_pair(opts.scale, opts.seed)?;
    let config = TransErConfig::default();
    let secs_seq = time_best(|| {
        select_instances_with_pool(&pair.source.x, &pair.source.y, &pair.target.x, &config, &seq)
            .expect("selection");
    });
    let secs_par = time_best(|| {
        select_instances_with_pool(&pair.source.x, &pair.source.y, &pair.target.x, &config, &par)
            .expect("selection");
    });
    rows.push(row("sel", pair.source.x.rows(), threads, secs_seq, secs_par));

    let secs_seq = time_best(|| {
        let mut rf = RandomForest::with_seed(opts.seed).with_threads(1);
        rf.fit(&pair.source.x, &pair.source.y).expect("forest fit");
    });
    let secs_par = time_best(|| {
        let mut rf = RandomForest::with_seed(opts.seed).with_threads(threads);
        rf.fit(&pair.source.x, &pair.source.y).expect("forest fit");
    });
    rows.push(row("forest_fit", pair.source.x.rows(), threads, secs_seq, secs_par));

    Ok(ScalingReport {
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        scale: opts.scale,
        seed: opts.seed,
        rows,
    })
}

/// Render the scaling rows as an aligned text table.
pub fn render(rows: &[ScalingRow]) -> String {
    let mut table = vec![vec![
        Cell::from("Workload"),
        Cell::from("Items"),
        Cell::from("Threads"),
        Cell::from("Seq s"),
        Cell::from("Par s"),
        Cell::from("Speedup"),
    ]];
    for r in rows {
        table.push(vec![
            Cell::from(r.workload.clone()),
            Cell::Num(r.items as f64),
            Cell::Num(r.threads as f64),
            Cell::Num(r.secs_seq),
            Cell::Num(r.secs_par),
            Cell::Num(r.speedup),
        ]);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scaling_smoke() {
        let opts = Options { scale: 0.02, ..Options::default() };
        let report = thread_scaling(&opts, Some(2)).unwrap();
        assert!(report.available_parallelism >= 1);
        assert_eq!(report.rows.len(), 4);
        for r in &report.rows {
            assert!(r.items > 0, "{} items", r.workload);
            assert!(r.secs_seq > 0.0 && r.secs_par > 0.0);
            assert!(r.speedup.is_finite());
            assert_eq!(r.threads, 2);
        }
        let text = render(&report.rows);
        assert!(text.contains("Speedup"));
    }
}

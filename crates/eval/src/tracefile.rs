//! Writing `results/TRACE_<task>.json` from the process-wide trace
//! accumulator (see [`transer_trace::take_global_report`]).

/// When tracing is enabled, take everything the process has accumulated
/// and write it as `results/TRACE_<task>.json` (validated and rendered by
/// the `trace_report` bin). Returns the written path; `None` when tracing
/// is disabled or the file could not be written.
pub fn write_trace_report(task: &str) -> Option<String> {
    if !transer_trace::enabled() {
        return None;
    }
    let report = transer_trace::take_global_report();
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: could not create results/: {e}");
        return None;
    }
    let path = format!("results/TRACE_{task}.json");
    match std::fs::write(&path, report.to_json(task)) {
        Ok(()) => {
            eprintln!("trace report written to {path}");
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {path}: {e}");
            None
        }
    }
}

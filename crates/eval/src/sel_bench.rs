//! SEL wall-time benchmark: per-row reference path vs the duplicate-aware
//! adaptive k-NN engine.
//!
//! Not a paper artefact: this experiment quantifies the row-interning +
//! weighted-query + blocked-kernel rewrite of the instance selector. For
//! each dataset it reports the dedup ratio of the source/target feature
//! matrices and the best-of-[`REPS`] SEL wall time of every backend
//! (`per_row`, `dedup_kdtree`, `dedup_balltree`, `dedup_blocked`,
//! `dedup_auto`) at 1 worker and at N workers. All backends produce
//! bit-identical selections — the benchmark asserts this before timing —
//! so the speedup is the whole story.
//!
//! The second half of the artefact is the [`regime_sweep`]: a per-(rows,
//! dims) grid timing the three raw index backends (KD-tree, ball tree,
//! blocked brute force) on deterministic synthetic matrices, under the
//! SEL cost model `build + rows × query`. The measured winners are what
//! [`IndexKind::Auto`]'s crossover thresholds are transcribed from.
//!
//! The duplicate-heavy case is the bibliographic pair with features
//! rounded to 1 decimal and the matrices tiled: rounded similarity values
//! live on a bounded grid, so at real candidate-set sizes the number of
//! *distinct* rows saturates while the row count keeps growing — tiling
//! reproduces that regime at benchmark scale, which is exactly the regime
//! the engine targets.

use std::time::Instant;

use serde::Serialize;
use transer_common::{FeatureMatrix, Label, Result, RowInterning};
use transer_core::{
    select_instances_per_row_with_pool, select_instances_with_backend, IndexKind, SelectionResult,
    TransErConfig,
};
use transer_datagen::ScenarioPair;
use transer_knn::{brute_force_knn, BallTree, BlockedBruteForce, KdTree};
use transer_parallel::Pool;

use crate::{Cell, Options};

/// Timing repetitions per workload; the minimum is reported to damp
/// scheduler noise.
const REPS: usize = 3;

/// The full benchmark result written to `results/BENCH_sel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Entity-count multiplier the workloads were generated at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Neighbourhood size used by SEL.
    pub k: usize,
    /// One entry per dataset.
    pub datasets: Vec<SelBenchDataset>,
    /// Per-(rows, dims) raw-index regime sweep; empty when skipped.
    pub regimes: Vec<RegimeCell>,
}

/// Shape and timings of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchDataset {
    /// Dataset name.
    pub name: String,
    /// Source rows.
    pub source_rows: usize,
    /// Distinct source rows.
    pub source_unique_rows: usize,
    /// Target rows.
    pub target_rows: usize,
    /// Distinct target rows.
    pub target_unique_rows: usize,
    /// `source_rows / source_unique_rows`.
    pub source_dedup_ratio: f64,
    /// Per-backend, per-thread-count timings.
    pub rows: Vec<SelBenchRow>,
}

/// One timed SEL run.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchRow {
    /// Backend (`per_row`, `dedup_kdtree`, `dedup_balltree`,
    /// `dedup_blocked`, `dedup_auto`).
    pub backend: String,
    /// Worker count.
    pub threads: usize,
    /// Best-of-[`REPS`] wall-clock seconds.
    pub secs: f64,
    /// `per_row` seconds at the same worker count divided by `secs`.
    pub speedup_vs_per_row: f64,
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Round every feature to `digits` decimals — the duplicate-heavy regime:
/// rounded similarity values collapse the matrix to few distinct rows.
pub fn round_features(m: &FeatureMatrix, digits: u32) -> FeatureMatrix {
    let scale = 10f64.powi(digits as i32);
    let rows: Vec<Vec<f64>> =
        m.iter_rows().map(|r| r.iter().map(|v| (v * scale).round() / scale).collect()).collect();
    FeatureMatrix::from_vecs(&rows).expect("rounded matrix keeps its shape")
}

/// Repeat the rows of a matrix (and, when given, its labels) `times`
/// times. Models large candidate sets, where the distinct rounded feature
/// vectors saturate while the row count keeps growing linearly.
pub fn tile_rows(
    m: &FeatureMatrix,
    labels: Option<&[Label]>,
    times: usize,
) -> (FeatureMatrix, Vec<Label>) {
    let mut rows = Vec::with_capacity(m.rows() * times);
    let mut ys = Vec::new();
    for _ in 0..times {
        rows.extend(m.iter_rows().map(<[f64]>::to_vec));
        if let Some(labels) = labels {
            ys.extend_from_slice(labels);
        }
    }
    (FeatureMatrix::from_vecs(&rows).expect("tiled matrix keeps its shape"), ys)
}

fn assert_identical(a: &SelectionResult, b: &SelectionResult, what: &str) {
    assert_eq!(a.indices, b.indices, "{what}: selection differs from per_row path");
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.sim_c.to_bits(), y.sim_c.to_bits(), "{what}: sim_c differs");
        assert_eq!(x.sim_l.to_bits(), y.sim_l.to_bits(), "{what}: sim_l differs");
        assert_eq!(x.sim_v.to_bits(), y.sim_v.to_bits(), "{what}: sim_v differs");
    }
}

fn bench_dataset(
    name: &str,
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    threads: usize,
) -> SelBenchDataset {
    let source_interning = RowInterning::of(xs);
    let target_interning = RowInterning::of(xt);
    let backends: [(&str, Option<IndexKind>); 5] = [
        ("per_row", None),
        ("dedup_kdtree", Some(IndexKind::KdTree)),
        ("dedup_balltree", Some(IndexKind::BallTree)),
        ("dedup_blocked", Some(IndexKind::Blocked)),
        ("dedup_auto", Some(IndexKind::Auto)),
    ];

    // Correctness gate before any timing: every engine backend must match
    // the reference selection bit for bit.
    let reference =
        select_instances_per_row_with_pool(xs, ys, xt, config, &Pool::sequential()).expect("sel");
    for (bname, kind) in backends.iter().filter_map(|(n, k)| k.map(|k| (n, k))) {
        let got = select_instances_with_backend(xs, ys, xt, config, &Pool::sequential(), kind)
            .expect("sel");
        assert_identical(&reference, &got, &format!("{name}/{bname}"));
    }

    let mut rows = Vec::new();
    for threads in [1, threads] {
        let pool = Pool::new(threads);
        let mut per_row_secs = f64::NAN;
        for (bname, kind) in backends {
            let secs = match kind {
                None => time_best(|| {
                    select_instances_per_row_with_pool(xs, ys, xt, config, &pool).expect("sel");
                }),
                Some(kind) => time_best(|| {
                    select_instances_with_backend(xs, ys, xt, config, &pool, kind).expect("sel");
                }),
            };
            if kind.is_none() {
                per_row_secs = secs;
            }
            rows.push(SelBenchRow {
                backend: bname.to_string(),
                threads,
                secs,
                speedup_vs_per_row: per_row_secs / secs,
            });
        }
    }

    SelBenchDataset {
        name: name.to_string(),
        source_rows: source_interning.original_rows(),
        source_unique_rows: source_interning.unique_rows(),
        target_rows: target_interning.original_rows(),
        target_unique_rows: target_interning.unique_rows(),
        source_dedup_ratio: source_interning.dedup_ratio(),
        rows,
    }
}

/// Run the SEL benchmark over the bibliographic pair, the music pair and
/// the duplicate-heavy rounded+tiled bibliographic pair, at 1 worker and
/// at `threads` workers (default: the global pool's count).
///
/// # Errors
/// Propagates workload generation errors.
pub fn sel_benchmark(opts: &Options, threads: Option<usize>) -> Result<SelBenchReport> {
    let threads = threads.unwrap_or_else(|| Pool::global().workers());
    let config = TransErConfig::default();
    let mut datasets = Vec::new();

    let biblio = ScenarioPair::Bibliographic.domain_pair(opts.scale, opts.seed)?;
    datasets.push(bench_dataset(
        "bibliographic",
        &biblio.source.x,
        &biblio.source.y,
        &biblio.target.x,
        &config,
        threads,
    ));

    let music = ScenarioPair::Music.domain_pair(opts.scale, opts.seed)?;
    datasets.push(bench_dataset(
        "music",
        &music.source.x,
        &music.source.y,
        &music.target.x,
        &config,
        threads,
    ));

    // Duplicate-heavy: the bibliographic features rounded to 1 decimal
    // and tiled 8×, the saturated-grid regime of real candidate sets.
    let (xs, ys) = tile_rows(&round_features(&biblio.source.x, 1), Some(&biblio.source.y), 8);
    let (xt, _) = tile_rows(&round_features(&biblio.target.x, 1), None, 8);
    datasets.push(bench_dataset("bibliographic-rounded1-x8", &xs, &ys, &xt, &config, threads));

    Ok(SelBenchReport {
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        scale: opts.scale,
        seed: opts.seed,
        k: config.k,
        datasets,
        regimes: Vec::new(),
    })
}

/// One raw-index backend measured at one (rows, dims) regime.
#[derive(Debug, Clone, Serialize)]
pub struct RegimeBackend {
    /// Backend (`kdtree`, `balltree`, `blocked`).
    pub backend: String,
    /// Best-of-[`REPS`] index construction seconds.
    pub build_secs: f64,
    /// Best-of-[`REPS`] mean nanoseconds per k-NN query.
    pub ns_per_query: f64,
    /// SEL cost model: `build_secs + rows × ns_per_query`, the cost of
    /// indexing a matrix once and querying every row against it.
    pub total_secs: f64,
}

/// One (rows, dims) cell of the regime sweep.
#[derive(Debug, Clone, Serialize)]
pub struct RegimeCell {
    /// Matrix rows.
    pub rows: usize,
    /// Matrix columns (feature dimensionality).
    pub dim: usize,
    /// Queries timed (a stride sample of the matrix's own rows).
    pub queries: usize,
    /// Neighbourhood size of the timed queries.
    pub k: usize,
    /// One entry per backend.
    pub backends: Vec<RegimeBackend>,
    /// Backend with the smallest `total_secs`.
    pub winner: String,
}

/// Row counts of the regime sweep grid.
pub const SWEEP_ROWS: [usize; 4] = [256, 1024, 4096, 16384];
/// Dimensionalities of the regime sweep grid.
pub const SWEEP_DIMS: [usize; 4] = [4, 9, 16, 24];
/// Maximum queries timed per cell.
const SWEEP_QUERIES: usize = 256;
/// Neighbourhood size of the sweep queries (SEL's default `k`).
const SWEEP_K: usize = 7;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform-`[0, 1)` matrix: a pure function of
/// `(rows, dim, seed)`.
pub fn synthetic_matrix(rows: usize, dim: usize, seed: u64) -> FeatureMatrix {
    let mut state =
        seed ^ (rows as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (dim as u64).rotate_left(32);
    let data: Vec<Vec<f64>> = (0..rows)
        .map(|_| {
            (0..dim).map(|_| (splitmix(&mut state) >> 11) as f64 / (1u64 << 53) as f64).collect()
        })
        .collect();
    FeatureMatrix::from_vecs(&data).expect("synthetic matrix keeps its shape")
}

/// Stride-sampled query rows: at most [`SWEEP_QUERIES`] of the matrix's
/// own rows, evenly spread.
fn sweep_queries(m: &FeatureMatrix) -> Vec<&[f64]> {
    let stride = m.rows().div_ceil(SWEEP_QUERIES).max(1);
    (0..m.rows()).step_by(stride).map(|i| m.row(i)).collect()
}

fn measure_backend<I>(
    name: &str,
    m: &FeatureMatrix,
    queries: &[&[f64]],
    build: impl Fn(&FeatureMatrix) -> I,
    query: impl Fn(&I, &[f64]) -> Vec<transer_knn::Neighbor>,
) -> RegimeBackend {
    let build_secs = time_best(|| {
        std::hint::black_box(build(m));
    });
    let index = build(m);
    // Bit-identity safety net on a few queries before timing anything.
    for q in queries.iter().take(4) {
        let got = query(&index, q);
        let want = brute_force_knn(m, q, SWEEP_K, None);
        assert_eq!(got, want, "{name}: disagrees with brute force at rows={}", m.rows());
    }
    let query_secs = time_best(|| {
        for q in queries {
            std::hint::black_box(query(&index, q));
        }
    });
    let ns_per_query = query_secs * 1e9 / queries.len() as f64;
    RegimeBackend {
        backend: name.to_string(),
        build_secs,
        ns_per_query,
        total_secs: build_secs + m.rows() as f64 * ns_per_query * 1e-9,
    }
}

/// Measure one (rows, dims) cell: the three raw backends, best-of-[`REPS`]
/// build and per-query times, and the cost-model winner.
pub fn regime_cell(rows: usize, dim: usize, seed: u64) -> RegimeCell {
    let m = synthetic_matrix(rows, dim, seed);
    let queries = sweep_queries(&m);
    let backends = vec![
        measure_backend("kdtree", &m, &queries, KdTree::build, |i, q| i.k_nearest(q, SWEEP_K)),
        measure_backend("balltree", &m, &queries, BallTree::build, |i, q| i.k_nearest(q, SWEEP_K)),
        measure_backend("blocked", &m, &queries, BlockedBruteForce::build, |i, q| {
            i.k_nearest(q, SWEEP_K)
        }),
    ];
    let winner = backends
        .iter()
        .min_by(|a, b| a.total_secs.total_cmp(&b.total_secs))
        .map(|b| b.backend.clone())
        .unwrap_or_default();
    RegimeCell { rows, dim, queries: queries.len(), k: SWEEP_K, backends, winner }
}

/// The full [`SWEEP_ROWS`] × [`SWEEP_DIMS`] regime sweep. The winners of
/// this grid are what [`IndexKind::resolve`]'s `Auto` thresholds are
/// transcribed from; regenerate `results/BENCH_sel.json` when either
/// changes.
pub fn regime_sweep(seed: u64) -> Vec<RegimeCell> {
    let mut cells = Vec::new();
    for rows in SWEEP_ROWS {
        for dim in SWEEP_DIMS {
            cells.push(regime_cell(rows, dim, seed));
        }
    }
    cells
}

/// Render the regime sweep as an aligned text table.
pub fn render_regimes(cells: &[RegimeCell]) -> String {
    let mut table = vec![vec![
        Cell::from("Rows"),
        Cell::from("Dim"),
        Cell::from("kdtree ns/q"),
        Cell::from("balltree ns/q"),
        Cell::from("blocked ns/q"),
        Cell::from("Winner"),
    ]];
    for c in cells {
        let ns = |name: &str| {
            c.backends.iter().find(|b| b.backend == name).map_or(f64::NAN, |b| b.ns_per_query)
        };
        table.push(vec![
            Cell::Num(c.rows as f64),
            Cell::Num(c.dim as f64),
            Cell::Num(ns("kdtree")),
            Cell::Num(ns("balltree")),
            Cell::Num(ns("blocked")),
            Cell::from(c.winner.clone()),
        ]);
    }
    crate::format_table(&table)
}

/// Tier-1 smoke: on one small deterministic dataset, every index backend
/// must agree bitwise with the brute-force reference — neighbours,
/// squared-distance bits and tie-break order — for several `k`.
///
/// # Panics
/// Panics on the first disagreement, failing the tier-1 gate.
pub fn smoke(seed: u64) -> RegimeCell {
    let rows = 512;
    let dim = 9;
    let m = synthetic_matrix(rows, dim, seed);
    let tree = KdTree::build(&m);
    let ball = BallTree::build(&m);
    let blocked = BlockedBruteForce::build(&m);
    for i in (0..rows).step_by(8) {
        for k in [1, SWEEP_K, 25] {
            let want = brute_force_knn(&m, m.row(i), k, Some(i));
            for (name, got) in [
                ("kdtree", tree.k_nearest_excluding(m.row(i), k, Some(i))),
                ("balltree", ball.k_nearest_excluding(m.row(i), k, Some(i))),
                ("blocked", blocked.k_nearest_excluding(m.row(i), k, Some(i))),
            ] {
                assert_eq!(got, want, "smoke: {name} disagrees at row {i} k {k}");
            }
        }
    }
    // The timed cell doubles as the smoke artefact.
    regime_cell(rows, dim, seed)
}

/// Render one dataset's rows as an aligned text table.
pub fn render(d: &SelBenchDataset) -> String {
    let mut table = vec![vec![
        Cell::from("Backend"),
        Cell::from("Threads"),
        Cell::from("Secs"),
        Cell::from("vs per_row"),
    ]];
    for r in &d.rows {
        table.push(vec![
            Cell::from(r.backend.clone()),
            Cell::Num(r.threads as f64),
            Cell::Num(r.secs),
            Cell::Num(r.speedup_vs_per_row),
        ]);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_creates_duplicates() {
        let m = FeatureMatrix::from_vecs(&[vec![0.123, 0.456], vec![0.1201, 0.4599]]).unwrap();
        let r = round_features(&m, 2);
        assert_eq!(r.row(0), &[0.12, 0.46]);
        assert_eq!(r.row(0), r.row(1));
    }

    #[test]
    fn tiling_repeats_rows_and_labels() {
        let m = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2]]).unwrap();
        let labels = [Label::Match, Label::NonMatch];
        let (t, ys) = tile_rows(&m, Some(&labels), 3);
        assert_eq!(t.rows(), 6);
        assert_eq!(t.row(4), m.row(0));
        assert_eq!(ys, [labels[0], labels[1]].repeat(3));
        let (_, empty) = tile_rows(&m, None, 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn quick_sel_bench_smoke() {
        let opts = Options { scale: 0.02, ..Options::default() };
        let report = sel_benchmark(&opts, Some(2)).unwrap();
        assert_eq!(report.datasets.len(), 3);
        for d in &report.datasets {
            assert!(d.source_rows >= d.source_unique_rows);
            assert!(d.source_dedup_ratio >= 1.0);
            // 5 backends × 2 thread counts.
            assert_eq!(d.rows.len(), 10);
            for r in &d.rows {
                assert!(r.secs > 0.0 && r.speedup_vs_per_row.is_finite(), "{}", r.backend);
            }
            assert!(render(d).contains("per_row"));
        }
        // The rounded dataset is the duplicate-heavy one.
        let rounded = &report.datasets[2];
        assert!(rounded.source_dedup_ratio > report.datasets[0].source_dedup_ratio);
    }

    #[test]
    fn synthetic_matrix_is_deterministic_and_uniform() {
        let a = synthetic_matrix(64, 5, 42);
        let b = synthetic_matrix(64, 5, 42);
        assert_eq!(a.rows(), 64);
        assert_eq!(a.cols(), 5);
        for i in 0..a.rows() {
            assert_eq!(a.row(i), b.row(i));
            assert!(a.row(i).iter().all(|v| (0.0..1.0).contains(v)));
        }
        // Different seeds and shapes decorrelate.
        assert_ne!(synthetic_matrix(64, 5, 43).row(0), a.row(0));
    }

    #[test]
    fn regime_cell_times_all_backends_and_picks_a_winner() {
        let cell = regime_cell(128, 4, 42);
        assert_eq!(cell.rows, 128);
        assert_eq!(cell.dim, 4);
        assert!(cell.queries > 0 && cell.queries <= SWEEP_QUERIES);
        assert_eq!(cell.backends.len(), 3);
        for b in &cell.backends {
            assert!(b.build_secs >= 0.0 && b.ns_per_query > 0.0 && b.total_secs > 0.0);
        }
        assert!(cell.backends.iter().any(|b| b.backend == cell.winner));
        assert!(render_regimes(&[cell]).contains("Winner"));
    }

    #[test]
    fn smoke_passes_on_the_reference_seed() {
        let cell = smoke(42);
        assert_eq!((cell.rows, cell.dim), (512, 9));
    }
}

//! SEL wall-time benchmark: per-row reference path vs the duplicate-aware
//! adaptive k-NN engine.
//!
//! Not a paper artefact: this experiment quantifies the row-interning +
//! weighted-query + blocked-kernel rewrite of the instance selector. For
//! each dataset it reports the dedup ratio of the source/target feature
//! matrices and the best-of-[`REPS`] SEL wall time of every backend
//! (`per_row`, `dedup_kdtree`, `dedup_blocked`, `dedup_auto`) at 1 worker
//! and at N workers. All backends produce bit-identical selections — the
//! benchmark asserts this before timing — so the speedup is the whole
//! story.
//!
//! The duplicate-heavy case is the bibliographic pair with features
//! rounded to 1 decimal and the matrices tiled: rounded similarity values
//! live on a bounded grid, so at real candidate-set sizes the number of
//! *distinct* rows saturates while the row count keeps growing — tiling
//! reproduces that regime at benchmark scale, which is exactly the regime
//! the engine targets.

use std::time::Instant;

use serde::Serialize;
use transer_common::{FeatureMatrix, Label, Result, RowInterning};
use transer_core::{
    select_instances_per_row_with_pool, select_instances_with_backend, IndexKind, SelectionResult,
    TransErConfig,
};
use transer_datagen::ScenarioPair;
use transer_parallel::Pool;

use crate::{Cell, Options};

/// Timing repetitions per workload; the minimum is reported to damp
/// scheduler noise.
const REPS: usize = 3;

/// The full benchmark result written to `results/BENCH_sel.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchReport {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub available_parallelism: usize,
    /// Entity-count multiplier the workloads were generated at.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Neighbourhood size used by SEL.
    pub k: usize,
    /// One entry per dataset.
    pub datasets: Vec<SelBenchDataset>,
}

/// Shape and timings of one dataset.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchDataset {
    /// Dataset name.
    pub name: String,
    /// Source rows.
    pub source_rows: usize,
    /// Distinct source rows.
    pub source_unique_rows: usize,
    /// Target rows.
    pub target_rows: usize,
    /// Distinct target rows.
    pub target_unique_rows: usize,
    /// `source_rows / source_unique_rows`.
    pub source_dedup_ratio: f64,
    /// Per-backend, per-thread-count timings.
    pub rows: Vec<SelBenchRow>,
}

/// One timed SEL run.
#[derive(Debug, Clone, Serialize)]
pub struct SelBenchRow {
    /// Backend (`per_row`, `dedup_kdtree`, `dedup_blocked`, `dedup_auto`).
    pub backend: String,
    /// Worker count.
    pub threads: usize,
    /// Best-of-[`REPS`] wall-clock seconds.
    pub secs: f64,
    /// `per_row` seconds at the same worker count divided by `secs`.
    pub speedup_vs_per_row: f64,
}

fn time_best<F: FnMut()>(mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Round every feature to `digits` decimals — the duplicate-heavy regime:
/// rounded similarity values collapse the matrix to few distinct rows.
pub fn round_features(m: &FeatureMatrix, digits: u32) -> FeatureMatrix {
    let scale = 10f64.powi(digits as i32);
    let rows: Vec<Vec<f64>> =
        m.iter_rows().map(|r| r.iter().map(|v| (v * scale).round() / scale).collect()).collect();
    FeatureMatrix::from_vecs(&rows).expect("rounded matrix keeps its shape")
}

/// Repeat the rows of a matrix (and, when given, its labels) `times`
/// times. Models large candidate sets, where the distinct rounded feature
/// vectors saturate while the row count keeps growing linearly.
pub fn tile_rows(
    m: &FeatureMatrix,
    labels: Option<&[Label]>,
    times: usize,
) -> (FeatureMatrix, Vec<Label>) {
    let mut rows = Vec::with_capacity(m.rows() * times);
    let mut ys = Vec::new();
    for _ in 0..times {
        rows.extend(m.iter_rows().map(<[f64]>::to_vec));
        if let Some(labels) = labels {
            ys.extend_from_slice(labels);
        }
    }
    (FeatureMatrix::from_vecs(&rows).expect("tiled matrix keeps its shape"), ys)
}

fn assert_identical(a: &SelectionResult, b: &SelectionResult, what: &str) {
    assert_eq!(a.indices, b.indices, "{what}: selection differs from per_row path");
    for (x, y) in a.scores.iter().zip(&b.scores) {
        assert_eq!(x.sim_c.to_bits(), y.sim_c.to_bits(), "{what}: sim_c differs");
        assert_eq!(x.sim_l.to_bits(), y.sim_l.to_bits(), "{what}: sim_l differs");
        assert_eq!(x.sim_v.to_bits(), y.sim_v.to_bits(), "{what}: sim_v differs");
    }
}

fn bench_dataset(
    name: &str,
    xs: &FeatureMatrix,
    ys: &[Label],
    xt: &FeatureMatrix,
    config: &TransErConfig,
    threads: usize,
) -> SelBenchDataset {
    let source_interning = RowInterning::of(xs);
    let target_interning = RowInterning::of(xt);
    let backends: [(&str, Option<IndexKind>); 4] = [
        ("per_row", None),
        ("dedup_kdtree", Some(IndexKind::KdTree)),
        ("dedup_blocked", Some(IndexKind::Blocked)),
        ("dedup_auto", Some(IndexKind::Auto)),
    ];

    // Correctness gate before any timing: every engine backend must match
    // the reference selection bit for bit.
    let reference =
        select_instances_per_row_with_pool(xs, ys, xt, config, &Pool::sequential()).expect("sel");
    for (bname, kind) in backends.iter().filter_map(|(n, k)| k.map(|k| (n, k))) {
        let got = select_instances_with_backend(xs, ys, xt, config, &Pool::sequential(), kind)
            .expect("sel");
        assert_identical(&reference, &got, &format!("{name}/{bname}"));
    }

    let mut rows = Vec::new();
    for threads in [1, threads] {
        let pool = Pool::new(threads);
        let mut per_row_secs = f64::NAN;
        for (bname, kind) in backends {
            let secs = match kind {
                None => time_best(|| {
                    select_instances_per_row_with_pool(xs, ys, xt, config, &pool).expect("sel");
                }),
                Some(kind) => time_best(|| {
                    select_instances_with_backend(xs, ys, xt, config, &pool, kind).expect("sel");
                }),
            };
            if kind.is_none() {
                per_row_secs = secs;
            }
            rows.push(SelBenchRow {
                backend: bname.to_string(),
                threads,
                secs,
                speedup_vs_per_row: per_row_secs / secs,
            });
        }
    }

    SelBenchDataset {
        name: name.to_string(),
        source_rows: source_interning.original_rows(),
        source_unique_rows: source_interning.unique_rows(),
        target_rows: target_interning.original_rows(),
        target_unique_rows: target_interning.unique_rows(),
        source_dedup_ratio: source_interning.dedup_ratio(),
        rows,
    }
}

/// Run the SEL benchmark over the bibliographic pair, the music pair and
/// the duplicate-heavy rounded+tiled bibliographic pair, at 1 worker and
/// at `threads` workers (default: the global pool's count).
///
/// # Errors
/// Propagates workload generation errors.
pub fn sel_benchmark(opts: &Options, threads: Option<usize>) -> Result<SelBenchReport> {
    let threads = threads.unwrap_or_else(|| Pool::global().workers());
    let config = TransErConfig::default();
    let mut datasets = Vec::new();

    let biblio = ScenarioPair::Bibliographic.domain_pair(opts.scale, opts.seed)?;
    datasets.push(bench_dataset(
        "bibliographic",
        &biblio.source.x,
        &biblio.source.y,
        &biblio.target.x,
        &config,
        threads,
    ));

    let music = ScenarioPair::Music.domain_pair(opts.scale, opts.seed)?;
    datasets.push(bench_dataset(
        "music",
        &music.source.x,
        &music.source.y,
        &music.target.x,
        &config,
        threads,
    ));

    // Duplicate-heavy: the bibliographic features rounded to 1 decimal
    // and tiled 8×, the saturated-grid regime of real candidate sets.
    let (xs, ys) = tile_rows(&round_features(&biblio.source.x, 1), Some(&biblio.source.y), 8);
    let (xt, _) = tile_rows(&round_features(&biblio.target.x, 1), None, 8);
    datasets.push(bench_dataset("bibliographic-rounded1-x8", &xs, &ys, &xt, &config, threads));

    Ok(SelBenchReport {
        available_parallelism: std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get),
        scale: opts.scale,
        seed: opts.seed,
        k: config.k,
        datasets,
    })
}

/// Render one dataset's rows as an aligned text table.
pub fn render(d: &SelBenchDataset) -> String {
    let mut table = vec![vec![
        Cell::from("Backend"),
        Cell::from("Threads"),
        Cell::from("Secs"),
        Cell::from("vs per_row"),
    ]];
    for r in &d.rows {
        table.push(vec![
            Cell::from(r.backend.clone()),
            Cell::Num(r.threads as f64),
            Cell::Num(r.secs),
            Cell::Num(r.speedup_vs_per_row),
        ]);
    }
    crate::format_table(&table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_creates_duplicates() {
        let m = FeatureMatrix::from_vecs(&[vec![0.123, 0.456], vec![0.1201, 0.4599]]).unwrap();
        let r = round_features(&m, 2);
        assert_eq!(r.row(0), &[0.12, 0.46]);
        assert_eq!(r.row(0), r.row(1));
    }

    #[test]
    fn tiling_repeats_rows_and_labels() {
        let m = FeatureMatrix::from_vecs(&[vec![0.1], vec![0.2]]).unwrap();
        let labels = [Label::Match, Label::NonMatch];
        let (t, ys) = tile_rows(&m, Some(&labels), 3);
        assert_eq!(t.rows(), 6);
        assert_eq!(t.row(4), m.row(0));
        assert_eq!(ys, [labels[0], labels[1]].repeat(3));
        let (_, empty) = tile_rows(&m, None, 2);
        assert!(empty.is_empty());
    }

    #[test]
    fn quick_sel_bench_smoke() {
        let opts = Options { scale: 0.02, ..Options::default() };
        let report = sel_benchmark(&opts, Some(2)).unwrap();
        assert_eq!(report.datasets.len(), 3);
        for d in &report.datasets {
            assert!(d.source_rows >= d.source_unique_rows);
            assert!(d.source_dedup_ratio >= 1.0);
            // 4 backends × 2 thread counts.
            assert_eq!(d.rows.len(), 8);
            for r in &d.rows {
                assert!(r.secs > 0.0 && r.speedup_vs_per_row.is_finite(), "{}", r.backend);
            }
            assert!(render(d).contains("per_row"));
        }
        // The rounded dataset is the duplicate-heavy one.
        let rounded = &report.datasets[2];
        assert!(rounded.source_dedup_ratio > report.datasets[0].source_dedup_ratio);
    }
}
